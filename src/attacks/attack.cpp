#include "attacks/attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "attacks/registry.h"
#include "gars/gar.h"
#include "gars/registry.h"
#include "net/conditions.h"

namespace garfield::attacks {

namespace {

void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

/// Coordinate-wise mean and population standard deviation of a cohort view
/// (what LIE-family attacks hide inside).
void view_statistics(std::span<const FlatVector> view, FlatVector& mu,
                     FlatVector& sigma) {
  const std::size_t d = view.front().size();
  mu = tensor::mean(view);
  sigma.assign(d, 0.0F);
  for (std::size_t j = 0; j < d; ++j) {
    double var = 0.0;
    for (const FlatVector& g : view) {
      const double dv = double(g[j]) - double(mu[j]);
      var += dv * dv;
    }
    var /= double(view.size());
    sigma[j] = float(std::sqrt(var));
  }
}

}  // namespace

std::optional<FlatVector> RandomAttack::craft(const FlatVector& honest,
                                              AttackContext& ctx) {
  FlatVector out(honest.size());
  for (float& v : out) v = ctx.rng().normal(0.0F, scale_);
  return out;
}

std::optional<FlatVector> ReversedAttack::craft(const FlatVector& honest,
                                                AttackContext& /*ctx*/) {
  FlatVector out = honest;
  tensor::scale(out, -factor_);
  return out;
}

std::optional<FlatVector> DroppedAttack::craft(const FlatVector& /*honest*/,
                                               AttackContext& /*ctx*/) {
  return std::nullopt;
}

std::optional<FlatVector> SignFlipAttack::craft(const FlatVector& honest,
                                                AttackContext& /*ctx*/) {
  FlatVector out = honest;
  tensor::scale(out, -1.0F);
  return out;
}

std::optional<FlatVector> ZeroAttack::craft(const FlatVector& honest,
                                            AttackContext& /*ctx*/) {
  return FlatVector(honest.size(), 0.0F);
}

std::optional<FlatVector> LittleIsEnoughAttack::craft(
    const FlatVector& honest, AttackContext& ctx) {
  if (ctx.honest.empty()) return honest;  // nothing to hide inside
  FlatVector mu;
  FlatVector sigma;
  view_statistics(ctx.honest, mu, sigma);
  FlatVector out(honest.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = mu[j] - z_ * sigma[j];
  }
  return out;
}

std::optional<FlatVector> NanPoisonAttack::craft(const FlatVector& honest,
                                                 AttackContext& ctx) {
  FlatVector out = honest;
  const std::size_t poisoned = std::max<std::size_t>(
      1, std::size_t(fraction_ * double(out.size())));
  for (std::size_t k = 0; k < poisoned; ++k) {
    const std::size_t i = ctx.rng().index(out.size());
    out[i] = ctx.rng().bernoulli(0.5)
                 ? std::numeric_limits<float>::quiet_NaN()
                 : std::numeric_limits<float>::infinity();
  }
  return out;
}

std::optional<FlatVector> FallOfEmpiresAttack::craft(const FlatVector& honest,
                                                     AttackContext& ctx) {
  if (ctx.honest.empty()) {
    FlatVector out = honest;
    tensor::scale(out, -epsilon_);
    return out;
  }
  FlatVector out = tensor::mean(ctx.honest);
  tensor::scale(out, -epsilon_);
  return out;
}

// ------------------------------------------------------------- alternating

AlternatingAttack::AlternatingAttack(AttackPtr first, AttackPtr second,
                                     std::size_t period)
    : first_(std::move(first)), second_(std::move(second)), period_(period) {
  require(first_ != nullptr && second_ != nullptr,
          "alternating: missing sub-attack");
  require(period_ >= 1, "alternating: period must be >= 1");
}

std::optional<FlatVector> AlternatingAttack::craft(const FlatVector& honest,
                                                   AttackContext& ctx) {
  return select(ctx.iteration).craft(honest, ctx);
}

// -------------------------------------------------------------- adaptive_z

AdaptiveZAttack::AdaptiveZAttack(Options options)
    : options_(std::move(options)) {
  require(options_.z_max > 0.0, "adaptive_z: z_max must be > 0");
  require(options_.steps >= 1, "adaptive_z: steps must be >= 1");
  require(options_.fallback_z >= 0.0, "adaptive_z: fallback_z must be >= 0");
  require(!options_.probe.empty(), "adaptive_z: probe must be non-empty");
  // An explicitly pinned probe is parsed and fully validated now (unknown
  // rule or option must fail at construction, i.e. at validate() time, not
  // mid-training): a throwaway construction at the probe's own resilience
  // floor exercises the factory. "deployment" resolves per craft() from
  // the AttackContext — the deployment's own GAR spec was already
  // validated by DeploymentConfig::validate().
  if (options_.probe != "deployment") {
    probe_source_ = options_.probe;
    probe_spec_ = gars::parse_gar_spec(probe_source_);
    (void)gars::make_gar(probe_spec_, gars::gar_min_n(probe_spec_, 1), 1);
  }
}

AdaptiveZAttack::~AdaptiveZAttack() = default;

void AdaptiveZAttack::resolve_probe(const AttackContext& ctx) {
  std::string wanted = options_.probe;
  if (wanted == "deployment") {
    // Probe the GAR the deployment actually aggregates this cohort with;
    // "krum" stands in for fixtures that carry no config.
    wanted = ctx.gar.empty() ? "krum" : ctx.gar;
  }
  if (wanted == probe_source_) return;
  probe_spec_ = gars::parse_gar_spec(wanted);
  probe_source_ = wanted;
  probe_gar_.reset();  // rule was built for the previous spec
}

std::optional<FlatVector> AdaptiveZAttack::craft(const FlatVector& honest,
                                                 AttackContext& ctx) {
  const std::span<const FlatVector> view = ctx.honest;
  if (view.empty()) {
    // Non-omniscient deployment: no cohort to hide inside (mirrors plain
    // little-is-enough's graceful degradation).
    last_z_ = 0.0;
    last_probe_.clear();
    return honest;
  }
  resolve_probe(ctx);
  FlatVector mu;
  FlatVector sigma;
  view_statistics(view, mu, sigma);
  const double sigma_norm = tensor::norm(sigma);
  const auto candidate = [&](double z) {
    FlatVector out(mu.size());
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] = mu[j] - float(z) * sigma[j];
    }
    return out;
  };
  if (sigma_norm == 0.0) {
    // Degenerate cohort (identical honest vectors): intensity is
    // unobservable, send the consensus vector.
    last_z_ = 0.0;
    last_probe_.clear();
    return mu;
  }

  const std::size_t f_eff = std::max<std::size_t>(ctx.f, 1);
  const std::size_t probe_n = view.size() + f_eff;
  if (probe_n < gars::gar_min_n(probe_spec_, f_eff)) {
    // Too few honest vectors to run the probe; fall back to a fixed z.
    last_z_ = options_.fallback_z;
    last_probe_.clear();
    return candidate(options_.fallback_z);
  }
  if (probe_gar_ == nullptr || probe_gar_n_ != probe_n ||
      probe_gar_f_ != f_eff) {
    probe_gar_ = gars::make_gar(probe_spec_, probe_n, f_eff);
    probe_gar_n_ = probe_n;
    probe_gar_f_ = f_eff;
  }
  const gars::Gar& gar = *probe_gar_;
  last_probe_ = probe_source_;

  // "Slips past": with f_eff copies of the candidate among the inputs, the
  // probe's aggregate moves along the *attack direction* (-sigma) by at
  // least half the displacement full incorporation would produce
  // ((f/n) * z * ||sigma||). The projection matters: when the probe filters
  // the candidates the aggregate is some robust center of the honest cloud
  // whose deviation from the mean is *random* — it projects onto the fixed
  // attack direction only ~1/sqrt(d) of its magnitude — while incorporation
  // projects in full, so the criterion tracks incorporation, not probe
  // noise.
  gars::AggregationContext probe_ctx;
  std::vector<FlatVector> inputs(view.begin(), view.end());
  inputs.resize(view.size() + f_eff);
  FlatVector aggregate;
  const auto slips_past = [&](double z) {
    FlatVector crafted = candidate(z);
    for (std::size_t k = 0; k < f_eff; ++k) {
      inputs[view.size() + k] = crafted;
    }
    gar.aggregate_into(inputs, probe_ctx, aggregate);
    double along_attack = 0.0;  // <aggregate - mu, -sigma> / ||sigma||
    for (std::size_t j = 0; j < aggregate.size(); ++j) {
      along_attack -=
          (double(aggregate[j]) - double(mu[j])) * double(sigma[j]);
    }
    along_attack /= sigma_norm;
    const double full_shift =
        z * sigma_norm * double(f_eff) / double(probe_n);
    return along_attack >= 0.5 * full_shift;
  };

  double z = 0.0;  // z = 0 sends the honest mean — always accepted
  if (slips_past(options_.z_max)) {
    z = options_.z_max;
  } else {
    double lo = 0.0;
    double hi = options_.z_max;
    for (std::size_t step = 0; step < options_.steps; ++step) {
      const double mid = 0.5 * (lo + hi);
      if (slips_past(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    z = lo;
  }
  last_z_ = z;
  return candidate(z);
}

// ---------------------------------------------------------- window_striker

WindowStrikerAttack::WindowStrikerAttack(AttackPtr inner, std::size_t margin)
    : inner_(std::move(inner)), margin_(margin) {
  require(inner_ != nullptr, "window_striker: missing inner attack");
}

bool WindowStrikerAttack::strikes(const AttackContext& ctx) {
  if (ctx.conditions == nullptr || !ctx.conditions->has_churn()) {
    return false;  // no reconfiguration windows to wait for
  }
  if (ctx.cohort_hi <= ctx.cohort_lo) return false;  // unknown cohort span
  const std::size_t span = ctx.cohort_hi - ctx.cohort_lo;
  const std::size_t down =
      ctx.conditions->count_down(ctx.cohort_lo, ctx.cohort_hi, ctx.iteration);
  // Only strike inside an active window: the whole point is hitting the
  // quorum while the membership plane has already thinned it.
  if (down == 0) return false;
  const std::string gar = ctx.gar.empty() ? "krum" : ctx.gar;
  if (gar != floor_gar_ || ctx.f != floor_f_) {
    floor_ = gars::gar_min_n(gar, ctx.f);
    floor_gar_ = gar;
    floor_f_ = ctx.f;
  }
  return span - down <= floor_ + margin_;
}

std::optional<FlatVector> WindowStrikerAttack::craft(const FlatVector& honest,
                                                     AttackContext& ctx) {
  if (!strikes(ctx)) return honest;  // camouflage phase: behave correctly
  return inner_->craft(honest, ctx);
}

// -------------------------------------------------------- corrupt_recovery

std::optional<FlatVector> CorruptRecoveryAttack::craft(
    const FlatVector& honest, AttackContext& /*ctx*/) {
  // Regular channels stay honest; the lie lives in the state-transfer
  // blobs (tampers_state_transfer + ByzantineServer::serve_checkpoint).
  return honest;
}

// ----------------------------------------------------- registry descriptors

namespace detail {

void register_core_attacks(AttackRegistry& registry) {
  registry.add({.name = "random",
                .omniscient = false,
                .factory = [](const AttackOptions& options) -> AttackPtr {
                  const double scale = options.get_double("scale", 10.0);
                  require(scale > 0.0, "random: scale must be > 0");
                  return std::make_unique<RandomAttack>(float(scale));
                }});
  registry.add({.name = "reversed",
                .omniscient = false,
                .factory = [](const AttackOptions& options) -> AttackPtr {
                  const double factor = options.get_double("factor", 100.0);
                  require(factor > 0.0, "reversed: factor must be > 0");
                  return std::make_unique<ReversedAttack>(float(factor));
                }});
  registry.add({.name = "dropped",
                .omniscient = false,
                .factory = [](const AttackOptions&) -> AttackPtr {
                  return std::make_unique<DroppedAttack>();
                }});
  registry.add({.name = "sign_flip",
                .omniscient = false,
                .factory = [](const AttackOptions&) -> AttackPtr {
                  return std::make_unique<SignFlipAttack>();
                }});
  registry.add({.name = "zero",
                .omniscient = false,
                .factory = [](const AttackOptions&) -> AttackPtr {
                  return std::make_unique<ZeroAttack>();
                }});
  registry.add({.name = "little_is_enough",
                .omniscient = true,
                .factory = [](const AttackOptions& options) -> AttackPtr {
                  const double z = options.get_double("z", 1.5);
                  require(z >= 0.0, "little_is_enough: z must be >= 0");
                  return std::make_unique<LittleIsEnoughAttack>(float(z));
                }});
  registry.add({.name = "fall_of_empires",
                .omniscient = true,
                .factory = [](const AttackOptions& options) -> AttackPtr {
                  const double epsilon = options.get_double("epsilon", 1.1);
                  require(epsilon > 0.0,
                          "fall_of_empires: epsilon must be > 0");
                  return std::make_unique<FallOfEmpiresAttack>(
                      float(epsilon));
                }});
  registry.add(
      {.name = "nan_poison",
       .omniscient = false,
       .factory = [](const AttackOptions& options) -> AttackPtr {
         const double fraction = options.get_double("fraction", 0.01);
         require(fraction > 0.0 && fraction <= 1.0,
                 "nan_poison: fraction must be in (0, 1]");
         return std::make_unique<NanPoisonAttack>(fraction);
       }});
  registry.add(
      {.name = "alternating",
       // Wants the view whenever a sub-attack does; harmless otherwise.
       .omniscient = true,
       .factory = [](const AttackOptions& options) -> AttackPtr {
         const std::size_t period = options.get_size("period", 1);
         require(period >= 1, "alternating: period must be >= 1");
         // Sub-attacks are specs themselves ("sign_flip" or a nested
         // single-option spec like "little_is_enough:z=3" — the option
         // grammar's ','/';' exclusions keep nesting unambiguous).
         const std::string first = options.get_string("first", "sign_flip");
         const std::string second = options.get_string("second", "zero");
         return std::make_unique<AlternatingAttack>(
             make_attack(first), make_attack(second), period);
       }});
  registry.add(
      {.name = "adaptive_z",
       .omniscient = true,
       .factory = [](const AttackOptions& options) -> AttackPtr {
         AdaptiveZAttack::Options opts;
         opts.probe = options.get_string("probe", opts.probe);
         opts.z_max = options.get_double("z_max", opts.z_max);
         opts.steps = options.get_size("steps", opts.steps);
         opts.fallback_z = options.get_double("fallback_z", opts.fallback_z);
         return std::make_unique<AdaptiveZAttack>(std::move(opts));
       }});
  registry.add(
      {.name = "window_striker",
       // Wants the view whenever its inner attack does; harmless otherwise.
       .omniscient = true,
       .factory = [](const AttackOptions& options) -> AttackPtr {
         const std::string inner = options.get_string("inner", "reversed");
         const std::size_t margin = options.get_size("margin", 0);
         return std::make_unique<WindowStrikerAttack>(make_attack(inner),
                                                      margin);
       }});
  registry.add({.name = "corrupt_recovery",
                .omniscient = false,
                .factory = [](const AttackOptions&) -> AttackPtr {
                  return std::make_unique<CorruptRecoveryAttack>();
                }});
}

}  // namespace detail

}  // namespace garfield::attacks
