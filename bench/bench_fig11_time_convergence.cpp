// Figure 11 (appendix) — convergence over wall-clock time.
//
// Combines the two planes of this reproduction: accuracy curves come from
// real training on the threaded cluster (as Fig 4), and the time axis
// comes from the calibrated per-iteration latency of each deployment on
// the CPU profile (as Fig 7). time(iteration k) = k * iteration_latency.
//
// Paper shapes: vanilla converges fastest in time, then crash-tolerant,
// then the Byzantine-resilient systems; the crash-tolerant protocol needs
// ~3x vanilla's time to reach the same accuracy; Byzantine resilience
// costs moderately more than crash resilience.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::core;
namespace gs = garfield::sim;

double iteration_latency(gs::SimDeployment dep, bool native) {
  gs::SimSetup s;
  s.deployment = dep;
  s.d = gs::model_spec("CifarNet").parameters;
  s.batch_size = 32;
  s.nw = 9;
  s.fw = 1;
  s.nps = 3;
  s.fps = 1;
  s.gradient_gar = "multi_krum";
  s.model_gar = "median";
  s.device = gs::cpu_profile();
  s.native_runtime = native;
  return gs::simulate_iteration(s).total();
}

}  // namespace

int main() {
  DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.dataset_noise = 1.2F;
  cfg.optimizer.lr.gamma0 = 0.08F;
  cfg.iterations = 300;
  cfg.eval_every = 30;
  cfg.seed = 21;
  cfg.nw = 9;

  struct Row {
    std::string name;
    TrainResult result;
    double latency;
  };
  std::vector<Row> rows;

  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kVanilla;
    rows.push_back({"vanilla", train(garfield::bench::smoke(c)),
                    iteration_latency(gs::SimDeployment::kVanilla, true)});
  }
  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kCrashTolerant;
    c.nps = 3;
    rows.push_back(
        {"crash_tolerant", train(garfield::bench::smoke(c)),
         iteration_latency(gs::SimDeployment::kCrashTolerant, false)});
  }
  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kSsmw;
    c.fw = 1;
    c.gradient_gar = "multi_krum";
    rows.push_back({"garfield_ssmw", train(garfield::bench::smoke(c)),
                    iteration_latency(gs::SimDeployment::kSsmw, false)});
  }
  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kMsmw;
    c.fw = 1;
    c.nps = 3;
    c.fps = 0;
    c.gradient_gar = "multi_krum";
    c.model_gar = "median";
    rows.push_back({"garfield_msmw", train(garfield::bench::smoke(c)),
                    iteration_latency(gs::SimDeployment::kMsmw, false)});
  }

  std::printf("Fig 11 — convergence over time, CifarNet-class task, CPU "
              "profile\n\n");
  for (const Row& row : rows) {
    std::printf("%s (%.2f s/iteration):\n", row.name.c_str(), row.latency);
    std::printf("  %-12s %-10s\n", "time (s)", "accuracy");
    for (const EvalPoint& p : row.result.curve) {
      std::printf("  %-12.1f %-10.3f\n", double(p.iteration) * row.latency,
                  p.accuracy);
    }
  }

  // Time-to-60% comparison (the paper's headline Fig 12b-style numbers).
  std::printf("time to reach accuracy 0.60:\n");
  for (const Row& row : rows) {
    double t = -1.0;
    for (const EvalPoint& p : row.result.curve) {
      if (p.accuracy >= 0.60) {
        t = double(p.iteration) * row.latency;
        break;
      }
    }
    if (t >= 0.0) {
      std::printf("  %-16s %.1f s\n", row.name.c_str(), t);
    } else {
      std::printf("  %-16s (not reached)\n", row.name.c_str());
    }
  }
  return 0;
}
