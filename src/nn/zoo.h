// Model zoo.
//
// Trainable stand-ins for the paper's evaluation models (Table 1). The
// original CifarNet/ResNet/VGG at full parameter count are infeasible to
// train on this offline substrate; the zoo provides architecture-faithful,
// scaled-down versions for the convergence experiments. The full Table-1
// dimensions are carried by garfield::sim::ModelSpec for the throughput
// experiments, which depend only on d.
#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "tensor/rng.h"

namespace garfield::nn {

/// Names accepted by make_model().
[[nodiscard]] std::vector<std::string> model_names();

/// Build a model by name; weights are initialized from rng, so identical
/// (name, seed) pairs build bit-identical models on every node — the
/// "separate replicated graphs" of §4.1.
///
/// - "tiny_mlp"       16-d input MLP, ~1k params. Unit-test workhorse.
/// - "small_mlp"      64-d input MLP, ~20k params.
/// - "mnist_cnn"      1x16x16 conv net, the MNIST_CNN-class model.
/// - "cifarnet"       3x16x16 conv net, the CifarNet-class model.
/// - "resnet_mini"    residual blocks + skip connections (ResNet family).
/// - "inception_mini" parallel 1x1/3x3/5x5 branches (Inception family).
/// - "vgg_mini"       stacked 3x3 convs + heavy FC head (VGG family).
[[nodiscard]] ModelPtr make_model(const std::string& name, tensor::Rng& rng);

}  // namespace garfield::nn
