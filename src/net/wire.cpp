#include "net/wire.h"

#include <array>
#include <cstring>

namespace garfield::net {

namespace {

constexpr std::uint32_t kMagic = 0x44465247;  // "GRFD" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 28;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[at + std::size_t(i)]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[at + std::size_t(i)]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

std::size_t wire_size(std::size_t d) { return kHeaderSize + 4 * d; }

std::vector<std::uint8_t> encode(std::uint64_t iteration,
                                 std::span<const float> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(payload.size()));
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, iteration);
  put_u64(out, std::uint64_t(payload.size()));
  // Payload bytes, then backfill the CRC slot.
  std::vector<std::uint8_t> body(payload.size() * 4);
  if (!payload.empty()) {
    std::memcpy(body.data(), payload.data(), body.size());
  }
  put_u32(out, crc32(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::size_t encoded_size(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    throw WireError("wire: truncated header (" +
                    std::to_string(bytes.size()) + " bytes)");
  }
  if (get_u32(bytes, 0) != kMagic) throw WireError("wire: bad magic");
  const std::uint32_t version = get_u32(bytes, 4);
  if (version != kVersion) {
    throw WireError("wire: unsupported version " + std::to_string(version));
  }
  const std::uint64_t d = get_u64(bytes, 16);
  // Compare in element space: computing kHeaderSize + 4*d with an untrusted
  // 64-bit d could wrap and defeat the truncation check.
  if (d > (bytes.size() - kHeaderSize) / 4) {
    throw WireError("wire: truncated message (header claims " +
                    std::to_string(d) + " elements, blob has " +
                    std::to_string((bytes.size() - kHeaderSize) / 4) + ")");
  }
  return kHeaderSize + 4 * std::size_t(d);
}

WireMessage decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    throw WireError("wire: truncated header (" +
                    std::to_string(bytes.size()) + " bytes)");
  }
  if (get_u32(bytes, 0) != kMagic) throw WireError("wire: bad magic");
  const std::uint32_t version = get_u32(bytes, 4);
  if (version != kVersion) {
    throw WireError("wire: unsupported version " + std::to_string(version));
  }
  WireMessage msg;
  msg.iteration = get_u64(bytes, 8);
  const std::uint64_t d = get_u64(bytes, 16);
  const std::uint32_t expected_crc = get_u32(bytes, 24);
  // Element-space comparison: kHeaderSize + 4*d could wrap for a hostile d.
  if ((bytes.size() - kHeaderSize) % 4 != 0 ||
      d != (bytes.size() - kHeaderSize) / 4) {
    throw WireError("wire: size mismatch (header claims " +
                    std::to_string(d) + " elements, blob has " +
                    std::to_string((bytes.size() - kHeaderSize) / 4) + ")");
  }
  const std::span<const std::uint8_t> body = bytes.subspan(kHeaderSize);
  if (crc32(body) != expected_crc) {
    throw WireError("wire: checksum mismatch — payload corrupted");
  }
  msg.payload.resize(d);
  if (d > 0) std::memcpy(msg.payload.data(), body.data(), body.size());
  return msg;
}

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> body,
                                std::size_t max_frame) {
  if (body.size() > max_frame || body.size() > 0xFFFFFFFFU) {
    throw WireError("wire: frame body of " + std::to_string(body.size()) +
                    " bytes exceeds the frame limit");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFramePrefixBytes + body.size());
  put_u32(out, std::uint32_t(body.size()));
  put_u32(out, crc32(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate the length prefix as soon as it is complete: a hostile or
  // corrupted prefix fails here, before next() would size a frame by it.
  if (buffer_.size() - consumed_ >= 4) {
    const std::uint32_t len = get_u32(buffer_, consumed_);
    if (len > max_frame_) {
      throw WireError("wire: stream frame of " + std::to_string(len) +
                      " bytes exceeds the frame limit");
    }
  }
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFramePrefixBytes) break;
    const std::uint32_t len = get_u32(buffer_, consumed_);
    if (len > max_frame_) {
      throw WireError("wire: stream frame of " + std::to_string(len) +
                      " bytes exceeds the frame limit");
    }
    if (available < kFramePrefixBytes + std::size_t(len)) break;
    const std::uint32_t expected_crc = get_u32(buffer_, consumed_ + 4);
    const std::span<const std::uint8_t> body_view(
        buffer_.data() + consumed_ + kFramePrefixBytes, std::size_t(len));
    if (crc32(body_view) != expected_crc) {
      // A flipped bit on the wire loses this message, nothing more: skip
      // the frame, keep the stream, and let the sender's retry layer see
      // the silence.
      consumed_ += kFramePrefixBytes + std::size_t(len);
      ++corrupt_frames_;
      continue;
    }
    std::vector<std::uint8_t> body(body_view.begin(), body_view.end());
    consumed_ += kFramePrefixBytes + std::size_t(len);
    return body;
  }
  // Compact once the prefix has nothing complete left behind it, so a
  // long-lived connection doesn't accrete every frame it ever saw.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + std::ptrdiff_t(consumed_));
    consumed_ = 0;
  }
  return std::nullopt;
}

}  // namespace garfield::net
