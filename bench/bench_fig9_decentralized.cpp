// Figure 9 — communication time of decentralized learning vs the vanilla
// baseline (GPU profile), with the number of nodes (a) and the model
// dimension (b).
//
// Paper shapes: decentralized communication grows quadratically with n
// (O(n^2) messages per round) while vanilla grows linearly; both grow
// linearly with d.
#include <cstdio>

#include "sim/deployment_sim.h"

int main() {
  using namespace garfield::sim;

  auto setup = [](SimDeployment dep, std::size_t n, std::size_t d) {
    SimSetup s;
    s.deployment = dep;
    s.d = d;
    s.batch_size = 100;
    s.nw = n;
    s.fw = 0;
    s.nps = 1;
    s.fps = 0;
    s.gradient_gar = "median";
    s.model_gar = "median";
    s.device = gpu_profile();
    s.link = gpu_link();
    s.native_runtime = dep == SimDeployment::kVanilla;
    return s;
  };

  std::printf("Fig 9a — communication time vs n (d = 1e6)\n");
  std::printf("%-6s %-18s %-14s\n", "n", "decentralized (s)", "vanilla (s)");
  for (std::size_t n = 2; n <= 6; ++n) {
    std::printf("%-6zu %-18.4f %-14.4f\n", n,
                communication_time(setup(SimDeployment::kDecentralized, n,
                                         1'000'000)),
                communication_time(setup(SimDeployment::kVanilla, n,
                                         1'000'000)));
  }

  std::printf("\nFig 9b — communication time vs d (n = 6)\n");
  std::printf("%-10s %-18s %-14s\n", "d", "decentralized (s)", "vanilla (s)");
  for (std::size_t d : {10'000UL, 100'000UL, 1'000'000UL, 10'000'000UL,
                        100'000'000UL}) {
    std::printf("%-10zu %-18.4f %-14.4f\n", d,
                communication_time(setup(SimDeployment::kDecentralized, 6, d)),
                communication_time(setup(SimDeployment::kVanilla, 6, d)));
  }
  std::printf("\nPaper shapes: panel (a) quadratic growth for decentralized, "
              "linear for vanilla;\npanel (b) linear in d for both.\n");
  return 0;
}
