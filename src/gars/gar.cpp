#include "gars/gar.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "gars/median3.h"
#include "gars/registry.h"
#include "tensor/parallel.h"

namespace garfield::gars {

using tensor::parallel_for;

void Gar::check_inputs(std::span<const FlatVector> inputs) const {
  if (inputs.size() != n_) {
    throw std::invalid_argument(name() + ": expected " + std::to_string(n_) +
                                " inputs, got " +
                                std::to_string(inputs.size()));
  }
  const std::size_t d = inputs.front().size();
  if (d == 0) throw std::invalid_argument(name() + ": empty input vectors");
  for (const FlatVector& v : inputs) {
    if (v.size() != d) {
      throw std::invalid_argument(name() + ": ragged input dimensions");
    }
  }
}

void Gar::aggregate_into(std::span<const FlatVector> inputs,
                         AggregationContext& ctx, FlatVector& out) const {
  check_inputs(inputs);
  out.resize(inputs.front().size());
  do_aggregate(inputs, ctx, out);
}

FlatVector Gar::aggregate(std::span<const FlatVector> inputs) const {
  AggregationContext ctx;
  FlatVector out;
  aggregate_into(inputs, ctx, out);
  return out;
}

namespace {

void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

}  // namespace

// ---------------------------------------------------------- DistanceCache

void DistanceCache::reset(std::span<const FlatVector> inputs) {
  n_ = inputs.size();
  active_count_ = n_;
  matrix_.assign(n_ * n_, 0.0);
  active_.assign(n_, true);
  if (n_ < 2) return;
  // Shard the upper triangle over cores by flat pair index. Each pair is
  // one O(d) squared-distance computation, so the grain (minimum pairs per
  // shard) scales inversely with d: small models stay on the inline serial
  // path where a thread spawn would dwarf the work. Every pair writes two
  // disjoint matrix slots; results are bitwise independent of the layout.
  const std::size_t n = n_;
  const std::size_t pairs = n * (n - 1) / 2;
  const std::size_t d = inputs.front().size();
  const std::size_t grain = std::max<std::size_t>(
      1, tensor::kParallelForGrain / std::max<std::size_t>(1, d));
  parallel_for(pairs, grain, [&](std::size_t begin, std::size_t end) {
    // Map the flat pair index `begin` to its (i, j) coordinates by walking
    // row lengths (row i holds n-1-i pairs), then iterate in order.
    std::size_t i = 0;
    std::size_t p = begin;
    while (p >= n - 1 - i) {
      p -= n - 1 - i;
      ++i;
    }
    std::size_t j = i + 1 + p;
    for (std::size_t k = begin; k < end; ++k) {
      const double dist = tensor::squared_distance(inputs[i], inputs[j]);
      matrix_[i * n + j] = dist;
      matrix_[j * n + i] = dist;
      if (++j == n) {
        ++i;
        j = i + 1;
      }
    }
  });
}

// ----------------------------------------------------- registry descriptors

namespace detail {

void register_core_gars(GarRegistry& registry) {
  registry.add(
      {.name = "average",
       .min_n = [](std::size_t f) { return std::max<std::size_t>(1, f + 1); },
       .option_floor = {},
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions&) -> GarPtr {
         return std::make_unique<Average>(n, f);
       }});
  registry.add({.name = "median",
                .min_n = [](std::size_t f) { return 2 * f + 1; },
                .option_floor = {},
                .factory = [](std::size_t n, std::size_t f,
                              const GarOptions&) -> GarPtr {
                  return std::make_unique<Median>(n, f);
                }});
  registry.add(
      {.name = "trimmed_mean",
       .min_n = [](std::size_t f) { return 2 * f + 1; },
       // trim=K keeps n-2K values, so a spec'd trim raises the floor.
       .option_floor =
           [](std::size_t, const GarOptions& options) {
             return 2 * options.get_size("trim", 0) + 1;
           },
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions& options) -> GarPtr {
         return std::make_unique<TrimmedMean>(n, f,
                                              options.get_size("trim", f));
       }});
  registry.add({.name = "krum",
                .min_n = [](std::size_t f) { return 2 * f + 3; },
                .option_floor = {},
                .factory = [](std::size_t n, std::size_t f,
                              const GarOptions&) -> GarPtr {
                  return std::make_unique<Krum>(n, f);
                }});
  registry.add(
      {.name = "multi_krum",
       .min_n = [](std::size_t f) { return 2 * f + 3; },
       // m averaged vectors need m <= n-f-2, i.e. n >= m+f+2.
       .option_floor =
           [](std::size_t f, const GarOptions& options) {
             return options.get_size("m", 1) + f + 2;
           },
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions& options) -> GarPtr {
         return std::make_unique<MultiKrum>(n, f,
                                            options.get_size("m", n - f - 2));
       }});
  registry.add({.name = "mda",
                .min_n = [](std::size_t f) { return 2 * f + 1; },
                .option_floor = {},
                .factory = [](std::size_t n, std::size_t f,
                              const GarOptions&) -> GarPtr {
                  return std::make_unique<Mda>(n, f);
                }});
  registry.add({.name = "bulyan",
                .min_n = [](std::size_t f) { return 4 * f + 3; },
                .option_floor = {},
                .factory = [](std::size_t n, std::size_t f,
                              const GarOptions&) -> GarPtr {
                  return std::make_unique<Bulyan>(n, f);
                }});
}

}  // namespace detail

// ---------------------------------------------------------------- Average

Average::Average(std::size_t n, std::size_t f) : Gar(n, f) {
  // Matches gar_min_n("average", f): the mean tolerates no Byzantine input,
  // so it at least needs more inputs than declared adversaries.
  require(n >= std::max<std::size_t>(1, f + 1),
          "average: needs at least f+1 inputs");
}

void Average::do_aggregate(std::span<const FlatVector> inputs,
                           AggregationContext&, FlatVector& out) const {
  tensor::mean_into(inputs, out);
}

// ---------------------------------------------------------------- Median

Median::Median(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= 2 * f + 1,
          "median: requires n >= 2f+1 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

void Median::do_aggregate(std::span<const FlatVector> inputs,
                          AggregationContext&, FlatVector& out) const {
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  if (n == 1) {
    std::copy(inputs.front().begin(), inputs.front().end(), out.begin());
    return;
  }
  if (n == 3) {
    // Fast path via the branchless SIMT primitive of §4.3.
    const float* a = inputs[0].data();
    const float* b = inputs[1].data();
    const float* c = inputs[2].data();
    parallel_for(d, [&](std::size_t begin, std::size_t end) {
      for (std::size_t j = begin; j < end; ++j)
        out[j] = median3_branchless(a[j], b[j], c[j]);
    });
    return;
  }
  // General path: each core owns a contiguous share of coordinates and runs
  // introselect (std::nth_element) per coordinate — the paper's CPU scheme.
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < n; ++i) column[i] = inputs[i][j];
      const std::size_t mid = n / 2;
      std::nth_element(column.begin(), column.begin() + long(mid),
                       column.end());
      if (n % 2 == 1) {
        out[j] = column[mid];
      } else {
        // Even count: average the two central order statistics.
        const float hi = column[mid];
        const float lo =
            *std::max_element(column.begin(), column.begin() + long(mid));
        out[j] = 0.5F * (lo + hi);
      }
    }
  });
}

// ---------------------------------------------------------------- TrimmedMean

TrimmedMean::TrimmedMean(std::size_t n, std::size_t f)
    : TrimmedMean(n, f, f) {}

TrimmedMean::TrimmedMean(std::size_t n, std::size_t f, std::size_t trim)
    : Gar(n, f), trim_(trim) {
  require(n >= 2 * f + 1, "trimmed_mean: requires n >= 2f+1");
  require(n > 2 * trim_,
          "trimmed_mean: trim=" + std::to_string(trim_) +
              " leaves no inputs (needs n > 2*trim, n=" + std::to_string(n) +
              ")");
}

void TrimmedMean::do_aggregate(std::span<const FlatVector> inputs,
                               AggregationContext&, FlatVector& out) const {
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  const std::size_t keep = n - 2 * trim_;
  const std::size_t trim = trim_;
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < n; ++i) column[i] = inputs[i][j];
      std::sort(column.begin(), column.end());
      double acc = 0.0;
      for (std::size_t i = trim; i < trim + keep; ++i) acc += column[i];
      out[j] = float(acc / double(keep));
    }
  });
}

// ---------------------------------------------------------------- Krum

Krum::Krum(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= 2 * f + 3,
          "krum: requires n >= 2f+3 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

void Krum::scores_from_cache(const DistanceCache& cache,
                             std::vector<double>& out) const {
  const std::size_t q = cache.size();
  assert(q >= 3 && cache.active_count() == q);
  // Sum of distances to the q-f-2 closest neighbours (at least one).
  const std::size_t neighbours = q > f_ + 2 ? q - f_ - 2 : std::size_t(1);
  out.assign(q, 0.0);
  std::vector<double> row(q - 1);
  for (std::size_t i = 0; i < q; ++i) {
    std::size_t k = 0;
    for (std::size_t j = 0; j < q; ++j) {
      if (j != i) row[k++] = cache.squared_distance(i, j);
    }
    std::partial_sort(row.begin(), row.begin() + long(neighbours), row.end());
    double acc = 0.0;
    for (std::size_t m = 0; m < neighbours; ++m) acc += row[m];
    out[i] = acc;
  }
}

void Krum::selection_order_cached(const DistanceCache& cache,
                                  std::span<const FlatVector> inputs,
                                  std::vector<double>& scores,
                                  std::vector<std::size_t>& order) const {
  scores_from_cache(cache, scores);
  order.resize(inputs.size());
  std::iota(order.begin(), order.end(), std::size_t(0));
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return std::lexicographical_compare(inputs[a].begin(), inputs[a].end(),
                                        inputs[b].begin(), inputs[b].end());
  });
}

std::size_t Krum::select(std::span<const FlatVector> inputs) const {
  const DistanceCache cache(inputs);
  return select_cached(cache, inputs);
}

std::size_t Krum::select_cached(const DistanceCache& cache,
                                std::span<const FlatVector> inputs) const {
  assert(cache.size() == inputs.size());
  const std::size_t q = cache.active_count();
  assert(q >= 3);
  const std::size_t neighbours = q > f_ + 2 ? q - f_ - 2 : std::size_t(1);
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best = cache.size();
  std::vector<double> row;
  row.reserve(q - 1);
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (!cache.is_active(i)) continue;
    row.clear();
    for (std::size_t j = 0; j < cache.size(); ++j) {
      if (j != i && cache.is_active(j)) {
        row.push_back(cache.squared_distance(i, j));
      }
    }
    std::partial_sort(row.begin(), row.begin() + long(neighbours), row.end());
    double score = 0.0;
    for (std::size_t m = 0; m < neighbours; ++m) score += row[m];
    const bool better =
        score < best_score ||
        (score == best_score && best < cache.size() &&
         std::lexicographical_compare(inputs[i].begin(), inputs[i].end(),
                                      inputs[best].begin(),
                                      inputs[best].end()));
    if (better) {
      best_score = score;
      best = i;
    }
  }
  assert(best < cache.size());
  return best;
}

void Krum::do_aggregate(std::span<const FlatVector> inputs,
                        AggregationContext& ctx, FlatVector& out) const {
  const DistanceCache& cache = ctx.distance_cache(inputs);
  const FlatVector& winner = inputs[select_cached(cache, inputs)];
  std::copy(winner.begin(), winner.end(), out.begin());
}

// ---------------------------------------------------------------- MultiKrum

MultiKrum::MultiKrum(std::size_t n, std::size_t f)
    : MultiKrum(n, f, n > f + 2 ? n - f - 2 : std::size_t(1)) {}

MultiKrum::MultiKrum(std::size_t n, std::size_t f, std::size_t m)
    : Krum(n, f), m_(m) {
  const std::size_t max_m = n - f - 2;  // n >= 2f+3 holds via Krum's check
  require(m_ >= 1 && m_ <= max_m,
          "multi_krum: m must be in [1, n-f-2] = [1, " +
              std::to_string(max_m) + "] (got " + std::to_string(m_) + ")");
}

void MultiKrum::do_aggregate(std::span<const FlatVector> inputs,
                             AggregationContext& ctx, FlatVector& out) const {
  const DistanceCache& cache = ctx.distance_cache(inputs);
  std::vector<double>& scores = ctx.score_scratch(inputs.size());
  std::vector<std::size_t>& order = ctx.index_scratch(inputs.size());
  selection_order_cached(cache, inputs, scores, order);
  std::fill(out.begin(), out.end(), 0.0F);
  for (std::size_t k = 0; k < m_; ++k)
    tensor::axpy(1.0F, inputs[order[k]], out);
  tensor::scale(out, 1.0F / float(m_));
}

// ---------------------------------------------------------------- MDA

Mda::Mda(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= 2 * f + 1, "mda: requires n >= 2f+1");
}

void Mda::do_aggregate(std::span<const FlatVector> inputs,
                       AggregationContext& ctx, FlatVector& out) const {
  const std::size_t n = inputs.size();
  const std::size_t keep = n - f_;
  const DistanceCache& cache = ctx.distance_cache(inputs);

  // Enumerate all C(n, keep) subsets with the classic combination walk and
  // track the one with minimum diameter (max pairwise distance).
  std::vector<std::size_t> comb(keep);
  std::iota(comb.begin(), comb.end(), 0);
  std::vector<std::size_t> best = comb;
  double best_diameter = std::numeric_limits<double>::infinity();
  while (true) {
    double diameter = 0.0;
    for (std::size_t a = 0; a < keep && diameter < best_diameter; ++a) {
      for (std::size_t b = a + 1; b < keep; ++b) {
        diameter =
            std::max(diameter, cache.squared_distance(comb[a], comb[b]));
        if (diameter >= best_diameter) break;
      }
    }
    if (diameter < best_diameter) {
      best_diameter = diameter;
      best = comb;
    }
    // Advance to the next combination.
    long i = long(keep) - 1;
    while (i >= 0 && comb[std::size_t(i)] == n - keep + std::size_t(i)) --i;
    if (i < 0) break;
    ++comb[std::size_t(i)];
    for (std::size_t j = std::size_t(i) + 1; j < keep; ++j)
      comb[j] = comb[j - 1] + 1;
  }

  std::fill(out.begin(), out.end(), 0.0F);
  for (std::size_t idx : best) tensor::axpy(1.0F, inputs[idx], out);
  tensor::scale(out, 1.0F / float(keep));
}

// ---------------------------------------------------------------- Bulyan

Bulyan::Bulyan(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= 4 * f + 3,
          "bulyan: requires n >= 4f+3 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

void Bulyan::do_aggregate(std::span<const FlatVector> inputs,
                          AggregationContext& ctx, FlatVector& out) const {
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  const std::size_t theta = n - 2 * f_;     // selection-set size
  const std::size_t beta = theta - 2 * f_;  // values averaged per coordinate

  // Phase 1: iterate Krum over a logically shrinking pool, harvesting
  // theta *indices*. The O(n^2 d) pairwise distances are computed once
  // (sharded across cores) and cached across rounds (§4.4); each selection
  // round is then O(n^2) and no input vector is ever copied.
  DistanceCache& cache = ctx.distance_cache(inputs);
  std::vector<std::size_t>& selected = ctx.index_scratch(theta);
  const Krum krum_rule(n, f_);
  for (std::size_t k = 0; k < theta; ++k) {
    std::size_t pick;
    if (cache.active_count() >= 3) {
      pick = krum_rule.select_cached(cache, inputs);
    } else {
      // Degenerate tail (only reachable when f = 0): take the
      // lexicographically smallest remaining vector, deterministically.
      pick = cache.size();
      for (std::size_t i = 0; i < cache.size(); ++i) {
        if (!cache.is_active(i)) continue;
        if (pick == cache.size() ||
            std::lexicographical_compare(inputs[i].begin(), inputs[i].end(),
                                         inputs[pick].begin(),
                                         inputs[pick].end())) {
          pick = i;
        }
      }
    }
    selected[k] = pick;
    cache.remove(pick);
  }

  // Phase 2: per coordinate, average the beta values closest to the median
  // of the selected set — coordinate shards across cores per §4.3.
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(theta);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < theta; ++i)
        column[i] = inputs[selected[i]][j];
      const std::size_t mid = theta / 2;
      std::nth_element(column.begin(), column.begin() + long(mid),
                       column.end());
      const float med = column[mid];
      std::partial_sort(column.begin(), column.begin() + long(beta),
                        column.end(), [med](float a, float b) {
                          const float da = std::abs(a - med);
                          const float db = std::abs(b - med);
                          if (da != db) return da < db;
                          return a < b;  // deterministic on symmetric ties
                        });
      double acc = 0.0;
      for (std::size_t i = 0; i < beta; ++i) acc += column[i];
      out[j] = float(acc / double(beta));
    }
  });
}

}  // namespace garfield::gars
