#include "net/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/spec.h"

namespace garfield::net {

namespace {

// Quiet-NaN-space magic words: exponent all ones + quiet bit + a payload
// no arithmetic produces. A dense gradient coordinate can be any bit
// pattern in principle, but a *leading* coordinate equal to one of these
// exact NaNs would already have been rejected by the all_finite ingress
// gates long before a codec sees it.
constexpr std::uint32_t kTopkMagic = 0x7fc0674bU;  // "gK"
constexpr std::uint32_t kInt8Magic = 0x7fc06938U;  // "i8"

float magic_float(std::uint32_t word) { return std::bit_cast<float>(word); }

std::uint32_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }

/// Exact small-integer check for header fields shipped as floats (d and k
/// stay exact below 2^24, far above any test or bench dimension).
bool integral_in_range(float f, double max, std::size_t& out) {
  if (!std::isfinite(f) || f < 0.0F || double(f) > max) return false;
  const double rounded = std::nearbyint(double(f));
  if (rounded != double(f)) return false;
  out = std::size_t(rounded);
  return true;
}

/// Deterministic int8 quantization step: symmetric linear, round-half-away
/// (std::lround), saturating at the int8 rails.
std::int8_t quantize(float x, float scale) {
  if (scale <= 0.0F || !std::isfinite(x)) return 0;
  const long q = std::lround(double(x) / double(scale));
  return std::int8_t(std::clamp<long>(q, -127, 127));
}

}  // namespace

CodecSpec CodecSpec::parse(const std::string& spec) {
  const util::ParsedSpec parsed = util::parse_spec(spec, "codec spec");
  CodecSpec out;
  if (parsed.name == "none") {
    out.kind = CodecKind::kNone;
  } else if (parsed.name == "int8") {
    out.kind = CodecKind::kInt8;
  } else if (parsed.name == "topk") {
    out.kind = CodecKind::kTopK;
    out.k = parsed.options.get_double("k", out.k);
    if (!(out.k > 0.0 && out.k <= 1.0)) {
      throw std::invalid_argument(
          "codec spec: topk k must be in (0, 1], got " +
          std::to_string(out.k));
    }
  } else {
    throw std::invalid_argument("codec spec: unknown codec '" + parsed.name +
                                "' (expected none, int8 or topk:k=...)");
  }
  const auto stray = parsed.options.unconsumed();
  if (!stray.empty()) {
    throw std::invalid_argument("codec spec: '" + parsed.name +
                                "' has unknown option '" + stray.front() +
                                "'");
  }
  return out;
}

std::size_t CodecSpec::topk_count(std::size_t d) const {
  if (d == 0) return 0;
  const auto want = std::llround(k * double(d));
  return std::size_t(std::clamp<long long>(want, 1, (long long)(d)));
}

double CodecSpec::wire_ratio(std::size_t d) const {
  if (d == 0) return 1.0;
  switch (kind) {
    case CodecKind::kNone:
      return 1.0;
    case CodecKind::kTopK:
      return (3.0 + 2.0 * double(topk_count(d))) / double(d);
    case CodecKind::kInt8:
      return (3.0 + double((d + 3) / 4)) / double(d);
  }
  return 1.0;
}

Payload Codec::encode_gradient(const Payload& dense,
                               Payload* residual) const {
  if (spec_.kind == CodecKind::kNone) return dense;
  const std::size_t d = dense.size();
  // Error feedback: compress (gradient + carried residual), then remember
  // what the compression dropped for the next round.
  Payload compensated = dense;
  if (residual != nullptr) {
    if (residual->size() != d) residual->assign(d, 0.0F);
    tensor::add(compensated, *residual, compensated);
  }

  if (spec_.kind == CodecKind::kInt8) {
    float max_abs = 0.0F;
    for (const float x : compensated) {
      if (std::isfinite(x)) max_abs = std::max(max_abs, std::abs(x));
    }
    const float scale = max_abs / 127.0F;
    Payload out;
    out.reserve(3 + (d + 3) / 4);
    out.push_back(magic_float(kInt8Magic));
    out.push_back(float(d));
    out.push_back(scale);
    for (std::size_t i = 0; i < d; i += 4) {
      std::int8_t packed[4] = {0, 0, 0, 0};
      for (std::size_t j = 0; j < 4 && i + j < d; ++j) {
        packed[j] = quantize(compensated[i + j], scale);
        if (residual != nullptr) {
          (*residual)[i + j] =
              compensated[i + j] - float(packed[j]) * scale;
        }
      }
      float slot;
      std::memcpy(&slot, packed, sizeof(slot));
      out.push_back(slot);
    }
    return out;
  }

  // topk: keep the k largest-|value| coordinates, ties to the lower index
  // so the selection (and therefore the whole trajectory) is
  // deterministic.
  const std::size_t kc = spec_.topk_count(d);
  std::vector<std::uint32_t> order(d);
  std::iota(order.begin(), order.end(), 0U);
  const auto heavier = [&](std::uint32_t a, std::uint32_t b) {
    const float fa = std::abs(compensated[a]);
    const float fb = std::abs(compensated[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  };
  if (kc < d) {
    std::nth_element(order.begin(), order.begin() + std::ptrdiff_t(kc),
                     order.end(), heavier);
    order.resize(kc);
  }
  std::sort(order.begin(), order.end());  // canonical ascending-index form
  Payload out;
  out.reserve(3 + 2 * kc);
  out.push_back(magic_float(kTopkMagic));
  out.push_back(float(d));
  out.push_back(float(kc));
  for (const std::uint32_t idx : order) out.push_back(float(idx));
  for (const std::uint32_t idx : order) out.push_back(compensated[idx]);
  if (residual != nullptr) {
    *residual = std::move(compensated);
    for (const std::uint32_t idx : order) (*residual)[idx] = 0.0F;
  }
  return out;
}

Payload Codec::encode_state(const Payload& dense) const {
  if (spec_.kind == CodecKind::kNone) return dense;
  // A model snapshot missing most of its coordinates is not a model:
  // lossy codecs degrade to int8 for state-class payloads (header block).
  Codec int8{CodecSpec{CodecKind::kInt8, spec_.k}};
  return int8.encode_gradient(dense, nullptr);
}

std::optional<Payload> Codec::decode(const Payload& encoded,
                                     std::size_t dimension) const {
  if (encoded.size() >= 3) {
    const std::uint32_t magic = float_bits(encoded[0]);
    if (magic == kTopkMagic) {
      std::size_t d = 0;
      std::size_t kc = 0;
      if (!integral_in_range(encoded[1], double(1ULL << 24), d) ||
          !integral_in_range(encoded[2], double(1ULL << 24), kc) ||
          d != dimension || kc > d || encoded.size() != 3 + 2 * kc) {
        return std::nullopt;
      }
      Payload dense(d, 0.0F);
      std::size_t prev = 0;
      for (std::size_t j = 0; j < kc; ++j) {
        std::size_t idx = 0;
        if (!integral_in_range(encoded[3 + j], double(d) - 1.0, idx)) {
          return std::nullopt;
        }
        // Canonical form is strictly ascending — duplicates or shuffles
        // are Byzantine garbage, not an alternative encoding.
        if (j > 0 && idx <= prev) return std::nullopt;
        prev = idx;
        dense[idx] = encoded[3 + kc + j];
      }
      return dense;
    }
    if (magic == kInt8Magic) {
      std::size_t d = 0;
      const float scale = encoded[2];
      if (!integral_in_range(encoded[1], double(1ULL << 24), d) ||
          d != dimension || !std::isfinite(scale) || scale < 0.0F ||
          encoded.size() != 3 + (d + 3) / 4) {
        return std::nullopt;
      }
      Payload dense(d, 0.0F);
      for (std::size_t i = 0; i < d; i += 4) {
        std::int8_t packed[4];
        std::memcpy(packed, &encoded[3 + i / 4], sizeof(packed));
        for (std::size_t j = 0; j < 4 && i + j < d; ++j) {
          dense[i + j] = float(packed[j]) * scale;
        }
      }
      return dense;
    }
  }
  // No codec magic: a plain dense payload passes through unchanged; any
  // other shape is garbage.
  if (encoded.size() == dimension) return encoded;
  return std::nullopt;
}

bool Codec::looks_encoded(const Payload& payload) {
  if (payload.size() < 3) return false;
  const std::uint32_t magic = float_bits(payload[0]);
  return magic == kTopkMagic || magic == kInt8Magic;
}

}  // namespace garfield::net
