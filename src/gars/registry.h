// GarRegistry — self-describing GAR construction (the v2 init() surface).
//
// Every rule registers a GarDescriptor {name, min_n(f), factory(n, f,
// options)}; gar_names() / gar_min_n() / make_gar() (gars/gar.h) are thin
// queries over the registry, so adding a rule means adding one descriptor —
// no string-dispatch triple to keep in sync by hand.
//
// Spec-string grammar (what DeploymentConfig::gradient_gar / model_gar and
// the CLIs accept):
//
//   spec       := name [ ":" option ("," option)* ]
//   option     := key "=" value
//   name, key  := [A-Za-z0-9_]+
//   value      := anything without ',' (parsed by the typed getters)
//
// Examples:  "krum"
//            "centered_clip:tau=0.5,iterations=20"
//            "trimmed_mean:trim=2"
//            "median:pre_clip=10"        (universal option, see below)
//
// Every rule additionally accepts the universal option `pre_clip=R`
// (R > 0): inputs are L2-norm-clipped to radius R before aggregation —
// standard gradient clipping as a composable defense layer. Unknown or
// malformed options are rejected at make_gar time, never ignored.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "gars/gar.h"
#include "util/spec.h"

namespace garfield::gars {

/// Typed key/value option bag parsed from a spec string (util/spec.h).
/// Getters convert on access and throw std::invalid_argument on malformed
/// values; each getter also marks its key consumed so make_gar can reject
/// options no factory ever read (typos never pass silently).
using GarOptions = util::SpecOptions;

/// A parsed spec string: rule name + option bag.
using GarSpec = util::ParsedSpec;

/// Parse "name" or "name:key=value,key=value"; throws std::invalid_argument
/// on grammar violations (empty name, missing '=', duplicate keys).
[[nodiscard]] GarSpec parse_gar_spec(const std::string& spec);

/// What a rule contributes to the registry.
struct GarDescriptor {
  std::string name;
  /// Minimum input count to tolerate f Byzantine ones (the resilience
  /// precondition; the factory re-validates at construction).
  std::function<std::size_t(std::size_t f)> min_n;
  /// Optional: an additional floor implied by options (e.g. multi_krum's
  /// m needs n >= m+f+2, trimmed_mean's trim needs n > 2*trim). The
  /// effective floor is max(min_n(f), option_floor(f, options)); leaving
  /// it unset means options never raise the floor. Keeping this in the
  /// descriptor lets quorum gates (trainer loops, config validation) see
  /// the true floor instead of discovering it as a factory throw at a
  /// degraded quorum mid-training.
  std::function<std::size_t(std::size_t f, const GarOptions&)> option_floor;
  /// Build the rule for n inputs / f Byzantine with the given options.
  std::function<GarPtr(std::size_t n, std::size_t f, const GarOptions&)>
      factory;
};

/// Process-wide rule registry. Built-in rules are registered on first
/// access; extensions call instance().add() (e.g. from a static
/// initializer) before first use.
class GarRegistry {
 public:
  static GarRegistry& instance();

  GarRegistry(const GarRegistry&) = delete;
  GarRegistry& operator=(const GarRegistry&) = delete;

  /// Register a rule; throws std::invalid_argument on an empty/duplicate
  /// name or missing callbacks.
  void add(GarDescriptor descriptor);

  /// Descriptor for `name`, or nullptr when unknown.
  [[nodiscard]] const GarDescriptor* find(const std::string& name) const;
  /// Descriptor for `name`; throws std::invalid_argument when unknown.
  [[nodiscard]] const GarDescriptor& at(const std::string& name) const;
  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  GarRegistry();

  std::vector<GarDescriptor> descriptors_;  // registration order
};

/// make_gar over an already-parsed spec (lets hot loops parse once and
/// construct per quorum size). Applies universal options (pre_clip) and
/// rejects unconsumed ones.
[[nodiscard]] GarPtr make_gar(const GarSpec& spec, std::size_t n,
                              std::size_t f);

/// Effective resilience floor of a parsed spec: max of the rule's min_n(f)
/// and any floor its options imply. Quorum gates must use this (not the
/// bare-name floor) so a legally degraded quorum is skipped rather than
/// exploding in the factory.
[[nodiscard]] std::size_t gar_min_n(const GarSpec& spec, std::size_t f);

namespace detail {
// Built-in registration hooks, implemented next to the rules themselves
// (gar.cpp / extended.cpp) and invoked once by GarRegistry's constructor —
// deterministic under static-library linking, where file-local registrar
// objects could silently be dropped.
void register_core_gars(GarRegistry& registry);
void register_extended_gars(GarRegistry& registry);
}  // namespace detail

}  // namespace garfield::gars
