// Wire format for flat vectors.
//
// The paper serializes tensors through protocol buffers (§4.1); this is
// the equivalent boundary format for anything garfield persists or ships
// outside process memory (checkpoints, traces). Layout, little-endian:
//
//   offset size  field
//   0      4     magic "GRFD"
//   4      4     version (currently 1)
//   8      8     iteration tag
//   16     8     element count d
//   24     4     CRC-32 of the payload bytes
//   28     4d    payload (float32)
//
// decode() verifies magic, version, size consistency and the checksum, and
// throws WireError on any mismatch — a truncated or bit-flipped blob never
// becomes a silently-wrong model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/vecops.h"

namespace garfield::net {

/// Corruption or format violation detected while decoding.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// A decoded message.
struct WireMessage {
  std::uint64_t iteration = 0;
  tensor::FlatVector payload;
};

/// CRC-32 (IEEE 802.3 polynomial) of a byte range.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Total encoded size for a d-element vector.
[[nodiscard]] std::size_t wire_size(std::size_t d);

/// Serialize payload with the given iteration tag.
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::uint64_t iteration, std::span<const float> payload);

/// Byte length of the message at the head of `bytes`, per its header.
/// Validates magic, version and that the blob holds the full message;
/// throws WireError otherwise. Lets containers (e.g. checkpoints) store
/// several messages back to back and split them before decode().
[[nodiscard]] std::size_t encoded_size(std::span<const std::uint8_t> bytes);

/// Parse and verify; throws WireError on malformed/corrupt input.
[[nodiscard]] WireMessage decode(std::span<const std::uint8_t> bytes);

}  // namespace garfield::net
