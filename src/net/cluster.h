// Simulated cluster: the stand-in for Garfield's gRPC communication layer.
//
// The paper's networking (§4.1–4.2) is point-to-point *pull-based* RPC:
// when a node needs data it initiates parallel remote calls to its peers,
// each peer runs a server answering such requests, and the caller keeps the
// fastest q replies (get_gradients(t, q) / get_models(q)). This module
// reproduces that abstraction in-process:
//
//  - every node registers handlers (method name -> function);
//  - calls execute on a shared thread pool, optionally after a simulated
//    link delay (per-link latency + seeded jitter + per-node straggler lag);
//  - crashed nodes never answer; Byzantine behaviour lives in the handler
//    (a Byzantine node simply serves corrupted payloads — separate
//    replicated state, there is no shared graph to protect);
//  - Collector implements fastest-q-of-n with a deadline, the liveness
//    primitive that lets Garfield run in asynchronous settings.
//
// Transfer accounting (requests, replies, floats moved) feeds the
// communication-cost experiments.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/thread_pool.h"
#include "tensor/rng.h"
#include "tensor/vecops.h"

namespace garfield::net {

using NodeId = std::size_t;
using Payload = tensor::FlatVector;
using Clock = std::chrono::steady_clock;
using Duration = std::chrono::microseconds;

/// A pull request: "node `from` asks node `to` to run `method`".
/// `iteration` tags the training step; `argument` carries the caller's data
/// (e.g. the server's current model when requesting a gradient).
struct Request {
  NodeId from = 0;
  NodeId to = 0;
  std::string method;
  std::uint64_t iteration = 0;
  std::shared_ptr<const Payload> argument;  // may be null
};

/// Handler executed at the callee. Returning std::nullopt means "no reply"
/// (the dropped-vector attack); throwing is a bug, not a Byzantine fault.
using Handler = std::function<std::optional<Payload>(const Request&)>;

/// One successful reply, tagged with its origin.
struct Reply {
  NodeId from = 0;
  Payload payload;
};

/// Cumulative traffic counters.
struct NetStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t floats_transferred = 0;  // request arguments + replies
};

class Cluster {
 public:
  struct Options {
    std::size_t nodes = 1;
    std::size_t pool_threads = 0;   ///< 0 => 2 * nodes
    Duration base_latency{0};      ///< fixed per-call delay
    Duration jitter{0};            ///< uniform extra delay in [0, jitter]
    std::uint64_t seed = 42;
  };

  explicit Cluster(const Options& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_; }

  /// Register/replace the handler a node serves for `method`.
  void register_handler(NodeId node, const std::string& method,
                        Handler handler);

  /// Crash a node: it stops answering any request, forever (fail-silent).
  void crash(NodeId node);
  [[nodiscard]] bool is_crashed(NodeId node) const;

  /// Add fixed extra service delay to one node (straggler injection).
  void set_straggler_lag(NodeId node, Duration lag);

  /// Pull from every peer in `peers` in parallel and return the fastest
  /// `q` replies (arrival order). Returns fewer than q only if the deadline
  /// expires first; q > peers.size() is an error.
  [[nodiscard]] std::vector<Reply> collect(
      NodeId from, std::span<const NodeId> peers, const std::string& method,
      std::uint64_t iteration, std::shared_ptr<const Payload> argument,
      std::size_t q, Duration timeout = std::chrono::seconds(30));

  /// Single async pull; the callback fires once with the reply or, when the
  /// callee is crashed / declines to answer, with std::nullopt after the
  /// simulated delay.
  void call(NodeId from, NodeId to, const std::string& method,
            std::uint64_t iteration, std::shared_ptr<const Payload> argument,
            std::function<void(std::optional<Payload>)> on_done);

  [[nodiscard]] NetStats stats() const;

 private:
  struct NodeState {
    std::mutex mutex;
    std::unordered_map<std::string, Handler> handlers;
    std::atomic<bool> crashed{false};
    std::atomic<std::int64_t> straggler_lag_us{0};
  };

  void dispatch(Request request,
                std::function<void(std::optional<Payload>)> on_done,
                Duration delay);

  std::size_t nodes_;
  Options options_;
  std::vector<std::unique_ptr<NodeState>> states_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex rng_mutex_;
  tensor::Rng rng_;
  std::atomic<std::uint64_t> requests_sent_{0};
  std::atomic<std::uint64_t> replies_received_{0};
  std::atomic<std::uint64_t> floats_transferred_{0};
};

}  // namespace garfield::net
