#include "nn/optimizer.h"

#include <cassert>

namespace garfield::nn {

void SgdOptimizer::step(FlatVector& params, const FlatVector& gradient,
                        std::size_t step) {
  assert(params.size() == gradient.size());
  const float lr = options_.lr.at(step);
  const std::size_t n = params.size();
  if (options_.momentum > 0.0F) {
    if (velocity_.size() != n) velocity_.assign(n, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
      float g = gradient[i] + options_.weight_decay * params[i];
      velocity_[i] = options_.momentum * velocity_[i] + g;
      params[i] -= lr * velocity_[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = gradient[i] + options_.weight_decay * params[i];
      params[i] -= lr * g;
    }
  }
}

void SgdOptimizer::reset() { velocity_.clear(); }

}  // namespace garfield::nn
