#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#include "net/wire.h"

namespace garfield::core {

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> blob =
      net::encode(checkpoint.iteration, checkpoint.parameters);
  if (!checkpoint.velocity.empty()) {
    const std::vector<std::uint8_t> tail =
        net::encode(checkpoint.iteration, checkpoint.velocity);
    blob.insert(blob.end(), tail.begin(), tail.end());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  // The rename only makes the checkpoint durable if the tmp file's bytes
  // reached the disk first — otherwise a crash right after the rename can
  // leave `path` pointing at a hole, exactly the corrupt state a
  // recovering node would then transfer. fsync before the swap.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot reopen '" + tmp +
                             "' for fsync");
  }
  const int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    std::error_code discard;
    std::filesystem::remove(tmp, discard);
    throw std::runtime_error("checkpoint: fsync failed for " + tmp);
  }
  std::error_code rename_error;
  std::filesystem::rename(tmp, path, rename_error);  // atomic on POSIX
  if (rename_error) {
    // Leave the previous checkpoint (if any) untouched; the tmp file is
    // ours to clean up.
    std::error_code discard;
    std::filesystem::remove(tmp, discard);
    throw std::runtime_error("checkpoint: rename to '" + path +
                             "' failed: " + rename_error.message());
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size), 0);
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed for " + path);
  const std::span<const std::uint8_t> bytes(blob);
  // Size-gate before the decoder sees the blob: encoded_size() reads the
  // header, so an empty or short file would surface as a confusing wire
  // error (or worse, garbage header fields) instead of naming the real
  // problem — the checkpoint on disk is incomplete.
  if (bytes.empty()) {
    throw net::WireError("checkpoint: empty file '" + path + "'");
  }
  if (bytes.size() < net::wire_size(0)) {
    throw net::WireError("checkpoint: truncated file '" + path + "' (" +
                         std::to_string(bytes.size()) +
                         " bytes, shorter than a header)");
  }
  const std::size_t head = net::encoded_size(bytes);
  net::WireMessage msg = net::decode(bytes.first(head));
  Checkpoint checkpoint{msg.iteration, std::move(msg.payload), {}};
  if (head < bytes.size()) {
    net::WireMessage tail = net::decode(bytes.subspan(head));
    if (tail.iteration != checkpoint.iteration) {
      throw net::WireError(
          "checkpoint: velocity iteration tag mismatch (parameters at " +
          std::to_string(checkpoint.iteration) + ", velocity at " +
          std::to_string(tail.iteration) + ")");
    }
    // A mismatched velocity would be silently discarded by the optimizer's
    // first step — fail loudly here instead, like every other corruption.
    if (tail.payload.size() != checkpoint.parameters.size()) {
      throw net::WireError(
          "checkpoint: velocity dimension mismatch (" +
          std::to_string(tail.payload.size()) + " vs " +
          std::to_string(checkpoint.parameters.size()) + " parameters)");
    }
    checkpoint.velocity = std::move(tail.payload);
  }
  return checkpoint;
}

}  // namespace garfield::core
