#include "core/server.h"

#include <cassert>

#include "core/worker.h"
#include "net/wire.h"

namespace garfield::core {

namespace {

/// Publications retained per ring. Step-tagged peers drift by at most a
/// few iterations (each pull waits for the slowest peer it needs), so a
/// short ring suffices; long-evicted tags are served the oldest retained
/// entry, which degrades to the legacy "whatever state the replica holds"
/// semantics for unboundedly-lagging asynchronous peers.
constexpr std::size_t kRingDepth = 16;

}  // namespace

Server::Server(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
               nn::SgdOptimizer::Options opt,
               std::vector<net::NodeId> workers,
               std::vector<net::NodeId> peer_servers)
    : id_(id),
      cluster_(cluster),
      model_(std::move(model)),
      optimizer_(opt),
      workers_(std::move(workers)),
      peer_servers_(std::move(peer_servers)),
      params_(std::make_shared<const net::Payload>(model_->parameters())) {
  // The serve_* calls are virtual (ByzantineServer corrupts plaintext);
  // the codec wraps them here so corruption happens before encoding.
  cluster_.register_handler(id_, kGetModel, [this](const net::Request& req) {
    return encode_result(serve_model(req), /*state_class=*/true);
  });
  cluster_.register_handler(id_, kGetAggrGrad,
                            [this](const net::Request& req) {
                              return encode_result(serve_aggr_grad(req),
                                                   /*state_class=*/false);
                            });
  cluster_.register_handler(id_, kGetCheckpoint,
                            [this](const net::Request& req) {
                              return serve_checkpoint(req);
                            });
}

void Server::rejoin() {
  {
    util::MutexLock lock(mutex_);
    model_ring_.clear();
    aggr_ring_.clear();
    latest_aggr_grad_ = nullptr;
    reply_cache_.clear();
    arg_cache_.clear();
    gossip_residual_.clear();
  }
  cluster_.register_handler(id_, kGetModel, [this](const net::Request& req) {
    return encode_result(serve_model(req), /*state_class=*/true);
  });
  cluster_.register_handler(id_, kGetAggrGrad,
                            [this](const net::Request& req) {
                              return encode_result(serve_aggr_grad(req),
                                                   /*state_class=*/false);
                            });
  cluster_.register_handler(id_, kGetCheckpoint,
                            [this](const net::Request& req) {
                              return serve_checkpoint(req);
                            });
}

net::PayloadPtr Server::snapshot() const {
  util::MutexLock lock(mutex_);
  return params_;
}

net::PayloadPtr Server::encoded_snapshot(std::size_t destinations) {
  util::MutexLock lock(mutex_);
  if (codec_.identity()) return params_;
  // Saturating: a tiny tensor's encoding can be larger than dense (the
  // 3-float header), which saves nothing rather than un-saving.
  const auto charge = [&](const net::Payload& encoded) {
    if (encoded.size() < params_->size()) {
      cluster_.note_bytes_saved(
          std::uint64_t(destinations) *
          (net::wire_size(params_->size()) - net::wire_size(encoded.size())));
    }
  };
  for (const EncodedFrame& e : arg_cache_) {
    if (e.source.get() == params_.get()) {
      charge(*e.encoded);
      return e.encoded;
    }
  }
  auto encoded =
      std::make_shared<const net::Payload>(codec_.encode_state(*params_));
  arg_cache_.push_back(EncodedFrame{params_, encoded});
  if (arg_cache_.size() > kRingDepth) arg_cache_.pop_front();
  charge(*encoded);
  return encoded;
}

net::HandlerResult Server::encode_result(net::HandlerResult r,
                                         bool state_class) {
  if (codec_.identity() || r.retry || !r.payload) return r;
  util::MutexLock lock(mutex_);
  const auto charge = [&](const net::Payload& encoded) {
    if (encoded.size() < r.payload->size()) {
      cluster_.note_bytes_saved(net::wire_size(r.payload->size()) -
                                net::wire_size(encoded.size()));
    }
  };
  // Every peer pulling the same published payload ships the same frame
  // (and the gossip residual advances exactly once per publication).
  // Byzantine replies are per-request fresh vectors, so they miss the
  // cache and are encoded standalone — the deque bound keeps that cheap.
  for (const EncodedFrame& e : reply_cache_) {
    if (e.source.get() == r.payload.get()) {
      charge(*e.encoded);
      return net::HandlerResult::reply(e.encoded);
    }
  }
  auto encoded = std::make_shared<const net::Payload>(
      state_class ? codec_.encode_state(*r.payload)
                  : codec_.encode_gradient(*r.payload, &gossip_residual_));
  reply_cache_.push_back(EncodedFrame{r.payload, encoded});
  if (reply_cache_.size() > kRingDepth) reply_cache_.pop_front();
  charge(*encoded);
  return net::HandlerResult::reply(encoded);
}

std::vector<net::Payload> Server::validate(std::vector<net::Reply> replies) {
  std::vector<net::Payload> out;
  out.reserve(replies.size());
  const std::size_t d = model_->dimension();
  for (net::Reply& r : replies) {
    if (!r.payload) {
      rejected_.fetch_add(1);
      continue;
    }
    // The aggregation kernels consume contiguous owned vectors; this is
    // the single ingress copy of the whole pull path (the wire, the
    // collector and the callee's serving side are all refcounted views).
    // Encoded frames are expanded here; a frame failing the structural
    // gate — or a decoded/plain payload failing the dimension/finiteness
    // gate — is Byzantine garbage, dropped and counted.
    net::Payload dense;
    if (net::Codec::looks_encoded(*r.payload)) {
      std::optional<net::Payload> decoded = codec_.decode(*r.payload, d);
      if (!decoded) {
        rejected_.fetch_add(1);
        continue;
      }
      dense = std::move(*decoded);
    } else {
      dense = *r.payload;
    }
    if (dense.size() != d || !tensor::all_finite(dense)) {
      rejected_.fetch_add(1);
      continue;
    }
    out.push_back(std::move(dense));
  }
  return out;
}

std::vector<net::Payload> Server::get_gradients(std::uint64_t t,
                                                std::size_t q) {
  return validate(cluster_.collect(id_, workers_, kGetGradient, t,
                                   encoded_snapshot(workers_.size()), q));
}

std::vector<net::Payload> Server::get_models(std::uint64_t t,
                                             std::size_t q) {
  return validate(
      cluster_.collect(id_, peer_servers_, kGetModel, t, nullptr, q));
}

std::vector<net::Payload> Server::get_aggr_grads(std::uint64_t tag,
                                                 std::size_t q,
                                                 std::uint64_t iteration) {
  return validate(cluster_.collect(id_, peer_servers_, kGetAggrGrad, tag,
                                   nullptr, q,
                                   std::chrono::seconds(30), iteration));
}

void Server::enable_step_tagged_serving(bool models, bool aggr_grads) {
  util::MutexLock lock(mutex_);
  tagged_models_ = models;
  tagged_aggr_grads_ = aggr_grads;
}

void Server::publish_model(std::uint64_t t) {
  util::MutexLock lock(mutex_);
  if (!tagged_models_) return;  // untagged serving never reads the ring
  model_ring_.push_back(TaggedEntry{t, params_});
  if (model_ring_.size() > kRingDepth) model_ring_.pop_front();
}

void Server::publish_aggr_grad(std::uint64_t tag, net::Payload grad) {
  util::MutexLock lock(mutex_);
  if (!tagged_aggr_grads_) return;
  auto payload = std::make_shared<const net::Payload>(std::move(grad));
  aggr_ring_.push_back(TaggedEntry{tag, payload});
  if (aggr_ring_.size() > kRingDepth) aggr_ring_.pop_front();
  // Encode the gossip frame NOW, in publish order — the peer's own loop
  // order, which every backend reproduces. Deferring to first serve would
  // let request arrival order (real transports race) decide the
  // error-feedback residual sequence, leaking transport timing into the
  // learning trajectory. serve_aggr_grad then hits this cache; the
  // bytes_saved charge stays at serve time, when a frame actually ships.
  if (!codec_.identity()) {
    reply_cache_.push_back(EncodedFrame{
        payload, std::make_shared<const net::Payload>(codec_.encode_gradient(
                     *payload, &gossip_residual_))});
    if (reply_cache_.size() > kRingDepth) reply_cache_.pop_front();
  }
}

void Server::skip_aggr_grad(std::uint64_t tag) {
  util::MutexLock lock(mutex_);
  if (!tagged_aggr_grads_) return;
  aggr_ring_.push_back(TaggedEntry{tag, nullptr});
  if (aggr_ring_.size() > kRingDepth) aggr_ring_.pop_front();
}

void Server::set_latest_aggr_grad(net::Payload grad) {
  util::MutexLock lock(mutex_);
  latest_aggr_grad_ =
      std::make_shared<const net::Payload>(std::move(grad));
}

void Server::update_model(const net::Payload& aggregated_gradient) {
  util::MutexLock lock(mutex_);
  // Copy-on-write: outstanding snapshot holders keep the old vector.
  net::Payload next = *params_;
  optimizer_.step(next, aggregated_gradient, step_);
  params_ = std::make_shared<const net::Payload>(std::move(next));
  ++step_;
}

void Server::write_model(const net::Payload& parameters) {
  util::MutexLock lock(mutex_);
  assert(parameters.size() == params_->size());
  params_ = std::make_shared<const net::Payload>(parameters);
}

double Server::compute_accuracy(const data::Batch& test) {
  util::MutexLock lock(mutex_);
  model_->set_parameters(*params_);
  return model_->accuracy(test.inputs, test.labels);
}

double Server::compute_loss(const data::Batch& test) {
  util::MutexLock lock(mutex_);
  model_->set_parameters(*params_);
  return model_->loss(test.inputs, test.labels);
}

net::Payload Server::parameters() const { return *snapshot(); }

std::uint64_t Server::steps_taken() const {
  util::MutexLock lock(mutex_);
  return step_;
}

std::uint64_t Server::rejected_payloads() const { return rejected_.load(); }

net::HandlerResult Server::serve_tagged(const std::deque<TaggedEntry>& ring,
                                        std::uint64_t tag,
                                        bool serve_oldest_on_eviction) const {
  if (ring.empty() || ring.back().tag < tag) {
    // Not published yet — this replica has not reached iteration `tag`.
    return net::HandlerResult::not_ready();
  }
  for (const TaggedEntry& e : ring) {
    if (e.tag == tag) {
      return e.payload ? net::HandlerResult::reply(e.payload)
                       : net::HandlerResult::none();  // skipped round
    }
  }
  // Evicted: the requester lags more than kRingDepth publications behind.
  // Model pulls get the oldest retained state (a stale model is the legacy
  // current-state semantics, and model aggregation tolerates staleness);
  // gossip pulls are declined instead — folding a different contraction
  // round's gradient in as if it were the requested one would silently
  // corrupt the contract() average, while a decline just shrinks the
  // quorum.
  if (!serve_oldest_on_eviction) return net::HandlerResult::none();
  const TaggedEntry& oldest = ring.front();
  return oldest.payload ? net::HandlerResult::reply(oldest.payload)
                        : net::HandlerResult::none();
}

net::HandlerResult Server::serve_model(const net::Request& req) {
  util::MutexLock lock(mutex_);
  if (tagged_models_) {
    return serve_tagged(model_ring_, req.iteration,
                        /*serve_oldest_on_eviction=*/true);
  }
  return net::HandlerResult::reply(params_);
}

net::HandlerResult Server::serve_aggr_grad(const net::Request& req) {
  util::MutexLock lock(mutex_);
  if (tagged_aggr_grads_) {
    return serve_tagged(aggr_ring_, req.iteration,
                        /*serve_oldest_on_eviction=*/false);
  }
  if (!latest_aggr_grad_) return net::HandlerResult::none();
  return net::HandlerResult::reply(latest_aggr_grad_);
}

Checkpoint Server::current_checkpoint() const {
  util::MutexLock lock(mutex_);
  return Checkpoint{step_, *params_, optimizer_.velocity()};
}

net::HandlerResult Server::serve_checkpoint(const net::Request& /*req*/) {
  return net::HandlerResult::reply(
      pack_bytes(encode_checkpoint_blob(current_checkpoint())));
}

ByzantineServer::ByzantineServer(net::NodeId id, net::Cluster& cluster,
                                 nn::ModelPtr model,
                                 nn::SgdOptimizer::Options opt,
                                 std::vector<net::NodeId> workers,
                                 std::vector<net::NodeId> peer_servers,
                                 attacks::AttackPtr attack, tensor::Rng rng,
                                 std::size_t declared_n,
                                 std::size_t declared_f,
                                 std::string model_cohort_gar,
                                 std::string aggr_cohort_gar)
    : Server(id, cluster, std::move(model), opt, std::move(workers),
             std::move(peer_servers)),
      attack_(std::move(attack)),
      rng_(rng),
      declared_n_(declared_n),
      declared_f_(declared_f),
      model_cohort_gar_(std::move(model_cohort_gar)),
      aggr_cohort_gar_(std::move(aggr_cohort_gar)) {}

net::HandlerResult ByzantineServer::corrupt(const net::Payload& honest,
                                            std::uint64_t iteration,
                                            const std::string& cohort_gar) {
  util::MutexLock lock(attack_mutex_);
  attacks::AttackContext ctx(rng_);
  ctx.iteration = iteration;
  ctx.attacker_id = id();
  ctx.n = declared_n_;
  ctx.f = declared_f_;
  ctx.gar = cohort_gar;
  std::optional<net::Payload> crafted = attack_->craft(honest, ctx);
  if (!crafted) return net::HandlerResult::none();
  return net::HandlerResult::reply(std::move(*crafted));
}

net::HandlerResult ByzantineServer::serve_model(const net::Request& req) {
  net::HandlerResult honest = Server::serve_model(req);
  if (honest.retry || !honest.payload) return honest;
  return corrupt(*honest.payload, req.iteration, model_cohort_gar_);
}

net::HandlerResult ByzantineServer::serve_aggr_grad(
    const net::Request& req) {
  net::HandlerResult honest = Server::serve_aggr_grad(req);
  if (honest.retry || !honest.payload) return honest;
  return corrupt(*honest.payload, req.iteration, aggr_cohort_gar_);
}

net::HandlerResult ByzantineServer::serve_checkpoint(
    const net::Request& req) {
  {
    util::MutexLock lock(attack_mutex_);
    if (!attack_->tampers_state_transfer()) {
      // Most attacks have no state-transfer channel — serve honestly, like
      // a correct replica (staying inconspicuous is part of the model).
      return Server::serve_checkpoint(req);
    }
  }
  std::vector<std::uint8_t> blob =
      encode_checkpoint_blob(current_checkpoint());
  // Flip a bit of the iteration tag AFTER the digest seal. The tag is not
  // covered by the per-message payload CRC, so without the whole-blob
  // digest this tampered transfer would decode "cleanly" into wrong state;
  // with it the recovering peer rejects the blob before any decode.
  blob[8] ^= 0x01;
  return net::HandlerResult::reply(pack_bytes(blob));
}

}  // namespace garfield::core
