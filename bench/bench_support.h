// Smoke-mode support for the paper-figure benches.
//
// Every bench doubles as a CTest `bench-smoke` entry: when the
// GARFIELD_BENCH_SMOKE environment variable is set (the CMake harness sets
// it on the smoke_* tests), `smoke()` shrinks a training configuration to a
// seconds-scale run. Figure code therefore executes end-to-end on every
// `ctest` invocation and cannot silently rot, while manual runs without the
// variable still reproduce the full paper workloads.
#pragma once

#include <algorithm>
#include <cstdlib>

#include "core/config.h"

namespace garfield::bench {

/// True when this process should run a tiny smoke workload.
inline bool smoke_mode() {
  const char* v = std::getenv("GARFIELD_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Identity in full mode; in smoke mode, a copy of cfg clamped to a few
/// iterations over a small dataset. Cluster shape, GARs and attacks are
/// untouched — the point is to exercise the exact code path, not the
/// statistics.
inline core::DeploymentConfig smoke(core::DeploymentConfig cfg) {
  if (!smoke_mode()) return cfg;
  cfg.iterations = std::min<std::size_t>(cfg.iterations, 6);
  // Keep at least one full batch per worker so sharding stays valid.
  const std::size_t floor_size = std::max<std::size_t>(
      cfg.nw * cfg.batch_size, 256);
  cfg.train_size = std::min(cfg.train_size, floor_size);
  cfg.test_size = std::min<std::size_t>(cfg.test_size, 128);
  if (cfg.eval_every) {
    cfg.eval_every = std::min(cfg.eval_every, cfg.iterations);
  }
  if (cfg.alignment_every) cfg.alignment_every = 2;
  if (cfg.checkpoint_every) cfg.checkpoint_every = 2;
  if (cfg.crash_primary_at) {
    cfg.crash_primary_at = std::min<std::size_t>(cfg.crash_primary_at, 2);
  }
  return cfg;
}

}  // namespace garfield::bench
