// Simulated cluster: the stand-in for Garfield's gRPC communication layer.
//
// The paper's networking (§4.1–4.2) is point-to-point *pull-based* RPC:
// when a node needs data it initiates parallel remote calls to its peers,
// each peer runs a server answering such requests, and the caller keeps the
// fastest q replies (get_gradients(t, q) / get_models(t, q)). This module
// reproduces that abstraction in-process:
//
//  - every node registers handlers (method name -> function);
//  - handler compute executes on a shared thread pool sized to hardware
//    concurrency; simulated link delay is resolved per edge from the
//    deployment's NetworkConditions (net/conditions.h: base latency +
//    deterministic per-edge hash jitter + heterogeneous slow links +
//    iteration-scheduled straggler lag + partition windows + payload-
//    proportional serialization at the edge's configured byte rate with a
//    per-link busy queue, delivered as delayed — never dropped —
//    messages) and is an event on the TimerWheel, never a sleep on a pool
//    thread;
//  - payloads are immutable and refcounted (std::shared_ptr<const Payload>)
//    end to end: a handler can serve the same snapshot to every requester
//    without copying, and the Collector never copies replies beyond the
//    awaited quorum;
//  - a handler may answer "not ready yet" (HandlerResult::not_ready());
//    the cluster redelivers the request after a short backoff instead of
//    blocking a pool thread — the primitive behind step-tagged model and
//    gossip serving;
//  - every node carries a lifecycle FSM (RUNNING -> CRASHED -> RECOVERING
//    -> RUNNING) owned by the cluster: CRASHED and RECOVERING nodes are
//    fail-silent (delivery refused, handlers dropped at crash time) and a
//    parsed churn schedule (NetworkConditions `churn:` clauses) drives the
//    transitions per training iteration, invoking a per-node recovery
//    hook — handler re-registration plus checkpoint state transfer — on
//    the way back up; Byzantine behaviour lives in the handler (a
//    Byzantine node simply serves corrupted payloads — separate
//    replicated state, there is no shared graph to protect);
//  - Collector implements fastest-q-of-n with a deadline, the liveness
//    primitive that lets Garfield run in asynchronous settings.
//
// Transfer accounting (requests, replies, floats moved, wasted replies,
// dropped tasks) feeds the communication-cost experiments.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/conditions.h"
#include "net/transport.h"
#include "tensor/vecops.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::net {

/// Per-node lifecycle state (the Graphite-style per-core state machine,
/// applied to cluster membership). Only RUNNING nodes serve requests;
/// CRASHED and RECOVERING nodes are fail-silent to every caller.
enum class NodeLifecycle { kRunning, kCrashed, kRecovering };

/// Give-up predicate for the not-ready redelivery chain: true when the
/// next attempt, landing at `next_attempt`, would arrive after the
/// caller's `deadline`. Strictly after — an attempt landing exactly at
/// the deadline is still inside the contract (a `>=` here silently shaved
/// one legitimate retry off every timeout-bounded exchange).
[[nodiscard]] inline bool retry_gives_up(Clock::time_point next_attempt,
                                         Clock::time_point deadline) {
  return next_attempt > deadline;
}

// Request (with its window_iteration tag), PayloadPtr, Clock and Duration
// moved to net/transport.h — the seam needs them and this header re-exports
// them unchanged.

/// Handler outcome. Exactly one of three shapes:
///  - reply(p): deliver payload p to the caller;
///  - none():   no reply, ever (the dropped-vector attack / unpublished
///              state) — the caller's quorum accounting sees the node as
///              silent;
///  - not_ready(): the answer does not exist *yet* (e.g. a model snapshot
///              for an iteration this node has not reached); the cluster
///              redelivers the request after a backoff.
/// Throwing from a handler is a bug, not a Byzantine fault.
struct HandlerResult {
  PayloadPtr payload;  // non-null => reply
  bool retry = false;  // true => redeliver later

  [[nodiscard]] static HandlerResult reply(PayloadPtr p) {
    return HandlerResult{std::move(p), false};
  }
  [[nodiscard]] static HandlerResult reply(Payload p) {
    return HandlerResult{std::make_shared<const Payload>(std::move(p)),
                         false};
  }
  [[nodiscard]] static HandlerResult none() { return HandlerResult{}; }
  [[nodiscard]] static HandlerResult not_ready() {
    return HandlerResult{nullptr, true};
  }
};

/// Handler executed at the callee.
using Handler = std::function<HandlerResult(const Request&)>;

/// One successful reply, tagged with its origin. The payload is shared
/// with the callee's state (or its cached computation) — treat as
/// immutable.
struct Reply {
  NodeId from = 0;
  PayloadPtr payload;
};

/// Cumulative traffic counters — a point-in-time snapshot of the cluster's
/// relaxed atomic counters (see Cluster::stats() for the exact coherence
/// contract: replies_received <= requests_sent holds in *every* snapshot,
/// even mid-flight; exact cross-field equalities are meaningful only at
/// quiescence, which is when the tests assert them).
struct NetStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t floats_transferred = 0;  // request arguments + replies
  /// Replies crafted and delivered after the caller's quorum was already
  /// met — the overshoot cost of fastest-q pulls (the callee still paid
  /// the compute and the link still carried the floats).
  std::uint64_t wasted_replies = 0;
  /// collect() calls that returned with fewer than q replies — the wait
  /// expired, or every outstanding responder resolved silent (crashed /
  /// declined). Without this counter a short quorum is indistinguishable
  /// from a met one in the stats, which hides exactly the degraded rounds
  /// a churn or straggler scenario is supposed to expose.
  std::uint64_t quorum_misses = 0;
  /// Dispatches rejected because the pool/timer had begun shutdown. The
  /// callback is resolved with "no reply" so quorum accounting cannot
  /// hang-then-timeout during teardown; nonzero values outside teardown
  /// indicate a bug.
  std::uint64_t dropped_tasks = 0;
  /// Send attempts the fault plane declared lost (dropped or corrupted in
  /// flight) plus duplicated deliveries — every verdict the `fault:`
  /// clause actually applied.
  std::uint64_t faults_injected = 0;
  /// Re-send attempts the bounded retry layer issued after a lost
  /// attempt. Always 0 without an active `fault:` clause.
  std::uint64_t retries = 0;
  /// Logical calls abandoned after the attempt cap / deadline: the caller
  /// saw a silent peer and its collect() degraded toward quorum_misses
  /// instead of hanging.
  std::uint64_t retry_give_ups = 0;
  /// Peer processes the transport observed dying mid-run (TCP backend
  /// only: a reader hitting EOF/reset outside shutdown). The in-process
  /// backend has no peer processes, so this stays 0 there.
  std::uint64_t peer_deaths = 0;
  /// Bytes a gradient-compression codec (net/codec.h) kept off the wire:
  /// the sum over every encoded frame actually sent of
  /// (plain wire cost - encoded wire cost). Always 0 under codec=none.
  /// bytes_sent counts what really crossed the link, so
  /// bytes_sent + bytes_saved is the codec=none-equivalent traffic.
  std::uint64_t bytes_saved = 0;
  /// Wire-equivalent traffic through this endpoint's Transport, charged
  /// per frame by the request/reply_frame_bytes formulas (transport.h) so
  /// the numbers are comparable across backends. In-process, every frame
  /// is both sent and received, so the two counters track each other; over
  /// TCP they are this process's view of the links.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Cluster {
 public:
  struct Options {
    std::size_t nodes = 1;
    std::size_t pool_threads = 0;  ///< 0 => hardware concurrency
    /// Everything the simulated network does to this deployment: per-edge
    /// latency/jitter, heterogeneous slow links, straggler phases and
    /// partition windows (net/conditions.h spec grammar). Defaults to the
    /// ideal network.
    NetworkConditions conditions;
    std::uint64_t seed = 42;
    /// Physical message movement. Null selects an internal InProcTransport
    /// sized by pool_threads — the original single-process path, bitwise
    /// identical to the pre-seam Cluster. A TcpTransport here turns every
    /// cross-node call into a framed localhost stream exchange. The
    /// Cluster becomes the transport's sole driver: ~Cluster shuts it
    /// down.
    std::shared_ptr<Transport> transport;
  };

  explicit Cluster(const Options& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_; }

  /// Register/replace the handler a node serves for `method`.
  void register_handler(NodeId node, const std::string& method,
                        Handler handler);

  // Lifecycle FSM: RUNNING -> CRASHED -> RECOVERING -> RUNNING. crash()
  // may fire from any state; the two recovery edges are strict and throw
  // std::logic_error on an invalid transition — an out-of-order recovery
  // is a scheduler bug, not a tolerable race.

  /// Crash a node: delivery to it is refused and its registered handlers
  /// are dropped (a restarted process has none) until it recovers.
  void crash(NodeId node);
  /// CRASHED -> RECOVERING: still fail-silent; the node is re-registering
  /// handlers and state-transferring.
  void begin_recovery(NodeId node);
  /// RECOVERING -> RUNNING: serving again; wakes wait_until_running().
  void complete_recovery(NodeId node);
  [[nodiscard]] NodeLifecycle lifecycle(NodeId node) const;
  /// True whenever the node is not serving (CRASHED or RECOVERING).
  [[nodiscard]] bool is_crashed(NodeId node) const;

  /// Hook invoked between the RECOVERING and RUNNING edges when the churn
  /// schedule brings `node` back up (advance_lifecycle), with the
  /// scheduled recovery iteration. This is where the trainer re-registers
  /// the node's handlers and transfers checkpointed state.
  void set_recovery_handler(NodeId node,
                            std::function<void(std::uint64_t)> handler);

  /// Drive the parsed churn schedule (options.conditions `churn:` clauses)
  /// up to `iteration`: apply every crash whose window has started and
  /// every recovery/join whose up-edge has passed, invoking recovery
  /// handlers along the way. Idempotent and monotonic — any loop thread
  /// may call it with its own iteration counter; the max ever seen drives
  /// the schedule. Nodes down at iteration 0 (joins, at_iter=0 crashes)
  /// start CRASHED without a call.
  void advance_lifecycle(std::uint64_t iteration);

  /// Block until `node` is RUNNING (a crashed node's own driving loop
  /// parks here while live peers drive the schedule past its up-edge).
  /// Returns the iteration the schedule recovered it at, or nullopt on
  /// timeout — the deadlock guard for schedules nobody can drive.
  [[nodiscard]] std::optional<std::uint64_t> wait_until_running(
      NodeId node, Duration timeout);

  /// Pull from every peer in `peers` in parallel and return the fastest
  /// `q` replies (arrival order). Returns fewer than q only if the deadline
  /// expires first; q > peers.size() is an error. `window_iteration` is
  /// the training iteration the NetworkConditions schedules see when the
  /// method tag (`iteration`) encodes more than it — e.g. the contraction
  /// gossip tag; it defaults to the tag itself.
  [[nodiscard]] std::vector<Reply> collect(
      NodeId from, std::span<const NodeId> peers, const std::string& method,
      std::uint64_t iteration, PayloadPtr argument, std::size_t q,
      Duration timeout = std::chrono::seconds(30),
      std::optional<std::uint64_t> window_iteration = std::nullopt);

  /// Single async pull; the callback fires once with the reply or, when the
  /// callee is crashed / declines to answer / stays not-ready past the
  /// timeout, with nullptr after the simulated delay.
  ///
  /// Under an active `fault:` clause every attempt first resolves a
  /// deterministic fault verdict (NetworkConditions::fault_verdict): lost
  /// attempts (drop, corrupt) are retried with exponential backoff and
  /// deterministic jitter up to a bounded attempt budget, after which the
  /// callback resolves nullptr (retry_give_ups) — graceful degradation to
  /// a quorum miss, never a hang. Because the verdict is a pure hash the
  /// retry schedule is identical on both transport backends and in a
  /// replay.
  void call(NodeId from, NodeId to, const std::string& method,
            std::uint64_t iteration, PayloadPtr argument,
            std::function<void(PayloadPtr)> on_done,
            Duration timeout = std::chrono::seconds(30),
            std::optional<std::uint64_t> window_iteration = std::nullopt);

  /// Coherent-enough snapshot of the traffic counters, taken at a single
  /// acquire point (no lock on the hot path). Guarantees, in every
  /// snapshot: each counter is a monotone non-decreasing event count, and
  /// replies_received <= requests_sent (every observed reply's request is
  /// included — the acquire load of replies_received pairs with its
  /// release increment on the reply path, which the request-send count
  /// happens-before). All other cross-field relations are exact only when
  /// no calls are in flight.
  [[nodiscard]] NetStats stats() const;

  /// Deterministic jitter draw: a splitmix-style hash of
  /// (seed, from, to, method, iteration) mapped to [0, jitter). Lock-free
  /// and independent of thread interleaving — two runs of the same
  /// scenario see identical simulated latencies. Public so tests can
  /// assert the determinism directly.
  [[nodiscard]] Duration jitter_for(NodeId from, NodeId to,
                                    const std::string& method,
                                    std::uint64_t iteration) const;

  /// Full simulated delivery delay of one call (latency + jitter + slow
  /// links + straggler lag + partition lag), resolved from the
  /// NetworkConditions. Pure in its arguments. The payload-proportional
  /// serialization component (frame bytes / byte_rate, plus the busy-link
  /// queue) is composed next to this in send_attempt() — it needs the
  /// concrete frame, which only the sender holds.
  [[nodiscard]] Duration delay_for(
      NodeId from, NodeId to, const std::string& method,
      std::uint64_t iteration,
      std::optional<std::uint64_t> window_iteration = std::nullopt) const;

  /// Credit `n` bytes a wire codec kept off the wire (NetStats::
  /// bytes_saved). Called by the codec seam's users at each encode that
  /// actually ships; relaxed monotone counter, same discipline as the
  /// rest.
  void note_bytes_saved(std::uint64_t n) {
    bytes_saved_.fetch_add(n, std::memory_order_relaxed);
  }

  /// The parsed conditions this cluster resolves every edge from — shared
  /// with attack contexts so schedule-aware adversaries (window_striker)
  /// read the same churn/fault windows the membership plane executes.
  [[nodiscard]] const NetworkConditions& conditions() const {
    return options_.conditions;
  }
  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }

 private:
  using Callback = std::function<void(PayloadPtr)>;
  using CallbackPtr = std::shared_ptr<Callback>;
  using RespondPtr = std::shared_ptr<Transport::Respond>;

  struct NodeState {
    util::Mutex mutex;
    std::unordered_map<std::string, Handler> handlers
        GARFIELD_GUARDED_BY(mutex);
    /// Atomic rather than guarded: deliver_local() reads it lock-free on
    /// every delivery; the lifecycle_mutex_ serializes writers
    /// (transitions).
    std::atomic<NodeLifecycle> lifecycle{NodeLifecycle::kRunning};
  };

  /// Callee-side delivery: the transport's sink. Lifecycle gate -> handler
  /// lookup -> run -> not-ready redelivery via Transport::run_after ->
  /// respond exactly once. Runs on a pool thread of whichever process owns
  /// `request.to`.
  void deliver_local(Request request, Clock::time_point retry_deadline,
                     RespondPtr respond, Duration retry_backoff);

  /// One send attempt of call()'s bounded retry chain: resolve the fault
  /// verdict for `attempt`, either hand the message to the transport or
  /// model its loss and schedule the next attempt.
  void send_attempt(NodeId from, NodeId to, const std::string& method,
                    std::uint64_t iteration, PayloadPtr argument,
                    CallbackPtr cb, Clock::time_point deadline,
                    std::uint32_t attempt,
                    std::optional<std::uint64_t> window_iteration);

  /// Serialization delay of one `frame_bytes` frame on the directed edge
  /// (from, to) at `window_iteration`: frame_bytes / byte_rate, plus the
  /// time spent queued behind whatever the link is still draining (the
  /// per-edge busy horizon below). Zero when no byte rate covers the
  /// edge. Wall-clock-stateful (the queue), so it shapes *timing* only —
  /// never a sync trajectory.
  [[nodiscard]] Duration serialization_delay(NodeId from, NodeId to,
                                             std::size_t frame_bytes,
                                             std::uint64_t window_iteration);

  /// Any state -> CRASHED + drop handlers.
  void crash_locked(NodeId node) GARFIELD_REQUIRES(lifecycle_mutex_);

  std::size_t nodes_;
  Options options_;
  std::vector<std::unique_ptr<NodeState>> states_;
  // Lifecycle scheduling state. The per-node lifecycle enum itself is
  // atomic (dispatch reads it lock-free); the mutex serializes transitions
  // and the churn schedule's one-shot event application. Lock order:
  // lifecycle_mutex_ before any NodeState::mutex (crash_locked), never the
  // reverse — dispatch takes only the node mutex, so delivery is never
  // blocked behind a state transfer.
  mutable util::Mutex lifecycle_mutex_;
  util::CondVar lifecycle_cv_;
  std::uint64_t lifecycle_horizon_ GARFIELD_GUARDED_BY(lifecycle_mutex_) = 0;
  struct ChurnEventState {
    bool crashed_applied = false;
    bool recovered_applied = false;
  };
  std::vector<ChurnEventState> churn_state_
      GARFIELD_GUARDED_BY(lifecycle_mutex_);
  std::vector<std::function<void(std::uint64_t)>> recovery_handlers_
      GARFIELD_GUARDED_BY(lifecycle_mutex_);
  std::vector<std::uint64_t> recovered_at_
      GARFIELD_GUARDED_BY(lifecycle_mutex_);
  // Traffic counters. Increments are memory_order_relaxed: each is an
  // independent monotone event count and no payload data is ever published
  // through them, so cross-thread ordering between counters is not needed
  // for correctness — with one deliberate exception: replies_received_ is
  // bumped with release and is the snapshot's single acquire point (see
  // stats() for the invariant this buys).
  std::atomic<std::uint64_t> requests_sent_{0};
  std::atomic<std::uint64_t> replies_received_{0};
  std::atomic<std::uint64_t> floats_transferred_{0};
  std::atomic<std::uint64_t> wasted_replies_{0};
  std::atomic<std::uint64_t> quorum_misses_{0};
  std::atomic<std::uint64_t> dropped_tasks_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_give_ups_{0};
  std::atomic<std::uint64_t> bytes_saved_{0};
  /// Per-directed-edge busy horizon (microseconds on Clock's timeline):
  /// the instant edge (from, to) finishes draining its last serialized
  /// frame. A message departing earlier queues behind it. Allocated
  /// (nodes^2, zero-initialized) only when the conditions carry a byte
  /// rate; null otherwise — the ideal path never touches it.
  std::unique_ptr<std::atomic<std::int64_t>[]> busy_until_us_;
  // Shut down explicitly by ~Cluster (stop-wheel -> drain-pool inside the
  // transport), so in-flight deliveries can never re-arm a dead timer or
  // submit to a dead pool.
  std::shared_ptr<Transport> transport_;
};

}  // namespace garfield::net
