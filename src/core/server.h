// Server and ByzantineServer (§3.2 "Main objects").
//
// The server stores and updates the model state and drives learning steps.
// Its Networking interface is the paper's two abstractions:
//   get_gradients(t, qw) — pull gradient estimates from workers, keep the
//                          fastest qw;
//   get_models(qps)      — pull parameter vectors from the other server
//                          replicas, keep the fastest qps.
// plus update_model() (optimizer step on an aggregated gradient),
// write_model() (overwrite state after model aggregation — the MSMW /
// decentralized convergence step) and compute_accuracy().
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "attacks/attack.h"
#include "data/dataset.h"
#include "gars/gar.h"
#include "net/cluster.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace garfield::core {

/// RPC methods served by servers.
inline constexpr const char* kGetModel = "get_model";
inline constexpr const char* kGetAggrGrad = "get_aggr_grad";

class Server {
 public:
  Server(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
         nn::SgdOptimizer::Options opt, std::vector<net::NodeId> workers,
         std::vector<net::NodeId> peer_servers);
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] std::size_t dimension() const { return model_->dimension(); }

  /// Pull gradients for iteration t from the workers; fastest q win.
  [[nodiscard]] std::vector<net::Payload> get_gradients(std::uint64_t t,
                                                        std::size_t q);

  /// Pull models from the peer server replicas; fastest q win.
  [[nodiscard]] std::vector<net::Payload> get_models(std::size_t q);

  /// Pull contracted gradients from peers (decentralized contract() round).
  [[nodiscard]] std::vector<net::Payload> get_aggr_grads(std::uint64_t t,
                                                         std::size_t q);

  /// Publish this node's latest aggregated gradient for peers to pull.
  void set_latest_aggr_grad(net::Payload grad);

  /// SGD step with an aggregated gradient (Equation (2)).
  void update_model(const net::Payload& aggregated_gradient);

  /// Overwrite the parameter vector (after model-GAR aggregation).
  void write_model(const net::Payload& parameters);

  /// Top-1 accuracy of the current state on a test batch.
  [[nodiscard]] double compute_accuracy(const data::Batch& test);
  /// Mean loss of the current state on a test batch.
  [[nodiscard]] double compute_loss(const data::Batch& test);

  /// Snapshot of the current parameter vector.
  [[nodiscard]] net::Payload parameters() const;

  /// Snapshot of the optimizer's momentum buffer (persisted in checkpoints;
  /// empty when momentum is off or no step has run yet).
  [[nodiscard]] tensor::FlatVector optimizer_velocity() const {
    std::lock_guard lock(mutex_);
    return optimizer_.velocity();
  }

  /// Reinstate a checkpointed momentum buffer (checkpoint resume).
  void restore_optimizer_velocity(tensor::FlatVector velocity) {
    std::lock_guard lock(mutex_);
    optimizer_.restore_velocity(std::move(velocity));
  }

  [[nodiscard]] std::uint64_t steps_taken() const;

  /// Scratch state for this server's aggregation calls (distance cache,
  /// score/work buffers). One context per server keeps steady-state
  /// aggregation allocation-free; it belongs to the server's driving loop
  /// thread and must not be shared across threads.
  [[nodiscard]] gars::AggregationContext& aggregation_context() {
    return aggregation_context_;
  }

  /// Payloads dropped at ingress (wrong dimension or non-finite values).
  /// A Byzantine node can send anything; malformed vectors are rejected
  /// before they can reach a GAR — a NaN survives even coordinate-wise
  /// medians of even input counts, so this gate is load-bearing.
  [[nodiscard]] std::uint64_t rejected_payloads() const;

 protected:
  /// What get_model serves; ByzantineServer corrupts it.
  [[nodiscard]] virtual std::optional<net::Payload> serve_model(
      const net::Request& req);
  [[nodiscard]] virtual std::optional<net::Payload> serve_aggr_grad(
      const net::Request& req);

  [[nodiscard]] net::Payload snapshot() const;

 private:
  /// Keep only well-formed payloads; counts the dropped ones.
  [[nodiscard]] std::vector<net::Payload> validate(
      std::vector<net::Reply> replies);

  net::NodeId id_;
  net::Cluster& cluster_;
  nn::ModelPtr model_;  // used for evaluation; params_ is canonical
  nn::SgdOptimizer optimizer_;
  std::vector<net::NodeId> workers_;
  std::vector<net::NodeId> peer_servers_;

  gars::AggregationContext aggregation_context_;

  mutable std::mutex mutex_;
  net::Payload params_;
  net::Payload latest_aggr_grad_;
  std::uint64_t step_ = 0;
  std::atomic<std::uint64_t> rejected_{0};
};

/// A server under adversarial control: serves corrupted models and
/// contracted gradients to the replicas/peers pulling from it. Craft calls
/// receive an AttackContext carrying the *requester's* training step (the
/// iteration tag on the pull), this node's id and the declared server
/// cohort shape; the honest view stays empty — a Byzantine server has no
/// channel to its peers' parameter vectors, so omniscient attacks degrade
/// gracefully to their view-free behaviour.
class ByzantineServer final : public Server {
 public:
  ByzantineServer(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
                  nn::SgdOptimizer::Options opt,
                  std::vector<net::NodeId> workers,
                  std::vector<net::NodeId> peer_servers,
                  attacks::AttackPtr attack, tensor::Rng rng,
                  std::size_t declared_n = 0, std::size_t declared_f = 0);

 protected:
  std::optional<net::Payload> serve_model(const net::Request& req) override;
  std::optional<net::Payload> serve_aggr_grad(
      const net::Request& req) override;

 private:
  [[nodiscard]] std::optional<net::Payload> corrupt(net::Payload honest,
                                                    std::uint64_t iteration);

  attacks::AttackPtr attack_;
  std::mutex attack_mutex_;
  tensor::Rng rng_;
  std::size_t declared_n_;
  std::size_t declared_f_;
};

}  // namespace garfield::core
