// Internal trainer machinery, shared between the single-process train()
// driver and the multi-process node runner (core/node_runner.h).
//
// train() owns the whole deployment in one process: it builds the Runtime,
// spawns one driving thread per server/peer and harvests the result. Under
// the TCP transport every rank is its own OS process running run_node(),
// which needs the *same* build/loop/harvest pieces — each process builds
// the full deterministic object graph (datasets and replicas are pure
// functions of the config seed, so every process constructs bitwise
// identical state) but drives only its own rank's loop; requests addressed
// to other ranks leave the process through the transport.
//
// Nothing here is public API: the header exists so node_runner.cpp can see
// the declarations. Definitions live in trainer.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/server.h"
#include "core/trainer.h"
#include "core/worker.h"
#include "data/dataset.h"
#include "net/cluster.h"
#include "net/conditions.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::core::detail {

/// Everything a deployment run needs to keep alive while threads execute.
struct Runtime {
  DeploymentConfig config;
  /// Parsed once at build time; the loops query its churn schedule every
  /// iteration (the cluster holds its own copy for delivery decisions).
  net::NetworkConditions conditions;
  /// Backend override for the cluster: null selects the in-process
  /// transport; run_node() installs the process's TcpTransport here before
  /// build_runtime(). Declared before `cluster` so it outlives the
  /// cluster's shutdown call.
  std::shared_ptr<net::Transport> transport;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<std::unique_ptr<Worker>> workers;
  data::Batch test;
  std::vector<std::vector<EvalPoint>> curves;  // one per server
  util::Mutex alignment_mutex;
  std::vector<AlignmentSample> alignment GARFIELD_GUARDED_BY(alignment_mutex);
  /// Reporting replica's per-iteration gradient reply counts (s == 0 loop
  /// thread only — no lock needed).
  std::vector<std::size_t> reporting_gradient_counts;
  /// Byzantine-recovery state transfer outcomes: peer checkpoint blobs
  /// adopted after digest verification, and blobs rejected by it (a
  /// corrupt_recovery peer, a torn carrier, a dimension mismatch).
  std::atomic<std::uint64_t> state_transfers{0};
  std::atomic<std::uint64_t> state_transfer_rejects{0};
  // Below-floor abort: the first loop that sees the churn schedule drop a
  // cohort under its GAR floor records why and flips the flag; every loop
  // exits at its next gate and the driver rethrows after the join.
  std::atomic<bool> abort{false};
  util::Mutex abort_mutex;
  std::string abort_reason GARFIELD_GUARDED_BY(abort_mutex);
  // Declared last so it is destroyed FIRST: tearing down the cluster joins
  // its thread pool, draining in-flight RPC handler invocations (replies
  // beyond the awaited quorum may still be executing) before the servers
  // and workers those handlers reference are freed.
  std::unique_ptr<net::Cluster> cluster;
};

[[nodiscard]] inline bool is_decentralized(const DeploymentConfig& cfg) {
  return cfg.deployment == Deployment::kDecentralized;
}

/// Number of ranks that run a driving loop: every peer when decentralized,
/// the server replicas otherwise (workers are passive RPC handlers).
[[nodiscard]] inline std::size_t driver_count(const DeploymentConfig& cfg) {
  return is_decentralized(cfg) ? cfg.nw : cfg.nps;
}

/// Build cluster, datasets, servers and workers for rt.config (the
/// deployment dispatch between parameter-server and decentralized shapes).
/// Uses rt.transport when set.
void build_runtime(Runtime& rt);

/// Wire the churn schedule's recovery hooks. `only_node` restricts
/// registration to one node id — a multi-process rank registers only its
/// own hook, since foreign object copies in this process never serve.
void register_recovery(Runtime& rt,
                       std::optional<net::NodeId> only_node = std::nullopt);

/// Resume support: overwrite every local replica's state with the
/// checkpoint named by config.resume_from (no-op when unset).
void maybe_resume(Runtime& rt);

/// Run rank/server-index `s`'s driving loop for the configured deployment.
void run_loop(Runtime& rt, std::size_t s);

/// Assemble the TrainResult after every driving loop has joined. Throws
/// std::runtime_error when the run aborted (below-floor churn schedule).
[[nodiscard]] TrainResult harvest(Runtime& rt);

}  // namespace garfield::core::detail
