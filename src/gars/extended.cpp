// Extended GARs: geometric median (RFA / smoothed Weiszfeld), centered
// clipping and norm-based comparative gradient elimination. These are the
// "other rules" §7 of the paper says Garfield can straightforwardly
// include; they share the same aggregate_into() interface and register
// their descriptors (with typed options) in the GarRegistry below.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "gars/gar.h"
#include "gars/registry.h"

namespace garfield::gars {

namespace {

void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

}  // namespace

// ----------------------------------------------------- registry descriptors

namespace detail {

void register_extended_gars(GarRegistry& registry) {
  registry.add(
      {.name = "geometric_median",
       .min_n = [](std::size_t f) { return 2 * f + 1; },
       .option_floor = {},
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions& options) -> GarPtr {
         GeometricMedian::Options o;
         o.max_iterations =
             options.get_size("max_iterations", o.max_iterations);
         o.tolerance = options.get_double("tolerance", o.tolerance);
         o.smoothing = options.get_double("smoothing", o.smoothing);
         return std::make_unique<GeometricMedian>(n, f, o);
       }});
  registry.add(
      {.name = "centered_clip",
       .min_n = [](std::size_t f) { return 2 * f + 1; },
       .option_floor = {},
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions& options) -> GarPtr {
         CenteredClip::Options o;
         o.iterations = options.get_size("iterations", o.iterations);
         o.tau = options.get_double("tau", o.tau);
         return std::make_unique<CenteredClip>(n, f, o);
       }});
  registry.add(
      {.name = "cge",
       .min_n = [](std::size_t f) { return 2 * f + 1; },
       // keep=K averages K inputs, so the quorum must hold at least K.
       .option_floor =
           [](std::size_t, const GarOptions& options) {
             return options.get_size("keep", 1);
           },
       .factory = [](std::size_t n, std::size_t f,
                     const GarOptions& options) -> GarPtr {
         return std::make_unique<Cge>(n, f, options.get_size("keep", n - f));
       }});
}

}  // namespace detail

// --------------------------------------------------------- GeometricMedian

GeometricMedian::GeometricMedian(std::size_t n, std::size_t f,
                                 Options options)
    : Gar(n, f), options_(options) {
  require(n >= 2 * f + 1, "geometric_median: requires n >= 2f+1");
  require(options_.max_iterations > 0,
          "geometric_median: needs at least one iteration");
  require(options_.tolerance >= 0.0 && std::isfinite(options_.tolerance),
          "geometric_median: tolerance must be finite and >= 0");
  require(options_.smoothing > 0.0 && std::isfinite(options_.smoothing),
          "geometric_median: smoothing must be finite and > 0");
}

void GeometricMedian::do_aggregate(std::span<const FlatVector> inputs,
                                   AggregationContext& ctx,
                                   FlatVector& out) const {
  const std::size_t d = inputs.front().size();
  // Start from the coordinate-wise mean and run Weiszfeld updates:
  //   z <- sum_i(x_i / max(||x_i - z||, eps)) / sum_i(1 / max(...)).
  // `out` doubles as the current center; `next` is ctx scratch.
  tensor::mean_into(inputs, out);

  FlatVector& next = ctx.vector_scratch(0, d);
  for (std::size_t it = 0; it < options_.max_iterations; ++it) {
    double weight_sum = 0.0;
    std::fill(next.begin(), next.end(), 0.0F);
    bool on_point = false;
    for (const FlatVector& x : inputs) {
      const double dist = std::sqrt(tensor::squared_distance(x, out));
      if (dist < options_.smoothing) {
        // Weiszfeld is undefined exactly on an input; that input is
        // already a 1/n-weight optimum candidate — snap to it.
        std::copy(x.begin(), x.end(), out.begin());
        on_point = true;
        break;
      }
      const double w = 1.0 / dist;
      weight_sum += w;
      tensor::axpy(float(w), x, next);
    }
    if (on_point) break;
    tensor::scale(next, float(1.0 / weight_sum));
    const double moved = tensor::squared_distance(next, out);
    const double scale = std::max(1.0, tensor::dot(out, out));
    out.swap(next);
    if (moved / scale < options_.tolerance * options_.tolerance) break;
  }
}

// ------------------------------------------------------------ CenteredClip

CenteredClip::CenteredClip(std::size_t n, std::size_t f, Options options)
    : Gar(n, f), options_(options) {
  require(n >= 2 * f + 1, "centered_clip: requires n >= 2f+1");
  require(options_.iterations > 0,
          "centered_clip: needs at least one iteration");
  require(options_.tau >= 0.0 && std::isfinite(options_.tau),
          "centered_clip: tau must be finite and >= 0 (0 = auto)");
}

void CenteredClip::do_aggregate(std::span<const FlatVector> inputs,
                                AggregationContext& ctx,
                                FlatVector& out) const {
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  // Robust starting point: coordinate-wise-median-free — use the input
  // closest to the mean? The standard recipe starts from the previous
  // round's momentum; stateless here, we start from the mean (built in
  // `out`) and rely on clipping to pull Byzantine leverage down.
  tensor::mean_into(inputs, out);

  FlatVector& shift = ctx.vector_scratch(0, d);
  std::vector<double>& dists = ctx.score_scratch(n);
  for (std::size_t it = 0; it < options_.iterations; ++it) {
    // Auto radius: median distance from the current center.
    double tau = options_.tau;
    if (tau <= 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        dists[i] = std::sqrt(tensor::squared_distance(inputs[i], out));
      }
      std::nth_element(dists.begin(), dists.begin() + long(n / 2),
                       dists.end());
      tau = dists[n / 2];
      if (tau == 0.0) break;  // all inputs at the center already
    }
    // center += (1/n) sum_i clip(x_i - center, tau)
    std::fill(shift.begin(), shift.end(), 0.0F);
    for (const FlatVector& x : inputs) {
      const double dist = std::sqrt(tensor::squared_distance(x, out));
      const double lambda = dist > tau ? tau / dist : 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        shift[j] += float(lambda * (double(x[j]) - double(out[j])));
      }
    }
    tensor::scale(shift, 1.0F / float(n));
    tensor::add(out, shift, out);
  }
}

// -------------------------------------------------------------------- Cge

Cge::Cge(std::size_t n, std::size_t f) : Cge(n, f, n - f) {}

Cge::Cge(std::size_t n, std::size_t f, std::size_t keep)
    : Gar(n, f), keep_(keep) {
  require(n >= 2 * f + 1, "cge: requires n >= 2f+1");
  require(keep_ >= 1 && keep_ <= n,
          "cge: keep must be in [1, n] (got " + std::to_string(keep_) +
              " for n=" + std::to_string(n) + ")");
}

void Cge::do_aggregate(std::span<const FlatVector> inputs,
                       AggregationContext& ctx, FlatVector& out) const {
  const std::size_t n = inputs.size();
  std::vector<std::size_t>& order = ctx.index_scratch(n);
  std::iota(order.begin(), order.end(), std::size_t(0));
  std::vector<double>& norms = ctx.score_scratch(n);
  for (std::size_t i = 0; i < n; ++i) {
    norms[i] = tensor::dot(inputs[i], inputs[i]);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (norms[a] != norms[b]) return norms[a] < norms[b];
    return std::lexicographical_compare(inputs[a].begin(), inputs[a].end(),
                                        inputs[b].begin(), inputs[b].end());
  });
  std::fill(out.begin(), out.end(), 0.0F);
  for (std::size_t k = 0; k < keep_; ++k) {
    tensor::axpy(1.0F, inputs[order[k]], out);
  }
  tensor::scale(out, 1.0F / float(keep_));
}

}  // namespace garfield::gars
