// Model checkpointing and verified state-transfer blobs.
//
// The paper's related work notes that classic parameter servers tolerate
// crashes via checkpoints [6]; garfield ships the same facility so any
// deployment can persist its model state and resume. Checkpoints use the
// CRC-verified wire format — a torn write or disk corruption is detected
// at load time, never silently trained on.
//
// On top of the per-message CRCs the serialized blob carries a whole-blob
// digest trailer (magic + CRC-32 over every preceding byte), verified
// BEFORE any message decode. The per-message CRC covers only the payload
// bytes: a flipped bit in an iteration tag, a truncated velocity message
// or two valid messages spliced from different checkpoints all decode
// "cleanly" into a wrong model — the digest catches every one of them.
// The same blob format is what a recovering replica pulls from its peers
// over the get_checkpoint RPC (core/server.h), so Byzantine recovery
// state transfer is verified by construction: a tampered blob fails its
// digest at the receiver and is rejected before a single float is
// decoded.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/transport.h"
#include "tensor/vecops.h"

namespace garfield::core {

struct Checkpoint {
  std::uint64_t iteration = 0;
  tensor::FlatVector parameters;
  /// Optimizer momentum buffer. Empty when momentum is off (or for
  /// checkpoints written before this field existed — the on-disk format is
  /// one wire message for the parameters optionally followed by a second
  /// one, with a matching iteration tag, for the velocity).
  tensor::FlatVector velocity;
};

/// Atomically write a checkpoint (temp file + rename). Throws
/// std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Load and verify. The whole-blob digest is checked before any decode;
/// pre-digest files (bare wire messages, no trailer) still load on their
/// per-message CRCs alone. Throws net::WireError on corruption and
/// std::runtime_error if the file cannot be read.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

// ----------------------------------------------- state-transfer blob API
// The serialized form shared by the on-disk file and the get_checkpoint
// RPC: wire message(s) + digest trailer.

/// Serialize `checkpoint` with the digest trailer appended.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint_blob(
    const Checkpoint& checkpoint);

/// Verify the digest trailer, then decode. Throws net::WireError naming
/// `context` when the blob is truncated, lacks a trailer, or its digest
/// does not cover the bytes — BEFORE any wire message is decoded.
[[nodiscard]] Checkpoint decode_checkpoint_blob(
    std::span<const std::uint8_t> bytes, const std::string& context);

/// Carry an opaque byte blob inside an RPC float payload (4 bytes per
/// element, length in the leading element). Bit-exact round trip;
/// unpack throws net::WireError on an inconsistent carrier.
[[nodiscard]] net::Payload pack_bytes(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> unpack_bytes(
    std::span<const float> carrier, const std::string& context);

}  // namespace garfield::core
