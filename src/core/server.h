// Server and ByzantineServer (§3.2 "Main objects").
//
// The server stores and updates the model state and drives learning steps.
// Its Networking interface is the paper's two abstractions:
//   get_gradients(t, qw) — pull gradient estimates from workers, keep the
//                          fastest qw;
//   get_models(t, qps)   — pull parameter vectors from the other server
//                          replicas, keep the fastest qps.
// plus update_model() (optimizer step on an aggregated gradient),
// write_model() (overwrite state after model aggregation — the MSMW /
// decentralized convergence step) and compute_accuracy().
//
// State is held as an immutable copy-on-write snapshot
// (std::shared_ptr<const Payload>): update_model / write_model build a new
// vector and swap the pointer, so serve_model and get_gradients hand out
// refcounted pointers instead of locking and copying — one snapshot serves
// every concurrent requester for free.
//
// Replicated deployments (MSMW, decentralized) run in *step-tagged* mode:
// the driving loop publishes its snapshot for iteration t
// (publish_model(t)) and peers pull exactly that iteration; a request for
// an iteration this replica has not reached yet answers
// HandlerResult::not_ready() and the cluster redelivers it later. This
// makes the model-exchange round deterministic — peers aggregate
// same-iteration states instead of whatever the replica happened to hold —
// without ever blocking a pool thread. The same mechanism serves the
// decentralized contract() gossip (publish_aggr_grad / skip_aggr_grad).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "attacks/attack.h"
#include "core/checkpoint.h"
#include "data/dataset.h"
#include "gars/gar.h"
#include "net/cluster.h"
#include "net/codec.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::core {

/// RPC methods served by servers.
inline constexpr const char* kGetModel = "get_model";
inline constexpr const char* kGetAggrGrad = "get_aggr_grad";
/// Byzantine-recovery state transfer: a recovering replica pulls peers'
/// digest-sealed checkpoint blobs (core/checkpoint.h) instead of trusting
/// a single local file.
inline constexpr const char* kGetCheckpoint = "get_checkpoint";

class Server {
 public:
  Server(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
         nn::SgdOptimizer::Options opt, std::vector<net::NodeId> workers,
         std::vector<net::NodeId> peer_servers);
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] std::size_t dimension() const { return model_->dimension(); }

  /// Pull gradients for iteration t from the workers; fastest q win. The
  /// request argument is this server's current snapshot pointer (no copy).
  [[nodiscard]] std::vector<net::Payload> get_gradients(std::uint64_t t,
                                                        std::size_t q);

  /// Pull models from the peer server replicas; fastest q win. `t` tags
  /// the pulled iteration for step-tagged peers; untagged peers serve
  /// their live state regardless.
  [[nodiscard]] std::vector<net::Payload> get_models(std::uint64_t t,
                                                     std::size_t q);

  /// Pull contracted gradients from peers (decentralized contract()
  /// round). `tag` is the encoded (iteration, round) gossip tag;
  /// `iteration` is the training iteration it encodes, which drives the
  /// NetworkConditions straggler/partition schedules (the tag itself
  /// would race ahead of them by the contraction depth).
  [[nodiscard]] std::vector<net::Payload> get_aggr_grads(
      std::uint64_t tag, std::size_t q, std::uint64_t iteration);

  /// Install the deployment's wire codec (net/codec.h). Call once at
  /// build time, before the driving loops start. Gradient-class payloads
  /// this node serves (the contraction gossip) are compressed with the
  /// configured codec; state-class payloads (the model snapshot riding
  /// get_gradients requests, serve_model replies) degrade lossy codecs to
  /// int8 — a model missing most coordinates is not a model. Encoded
  /// ingress payloads are decoded — and Byzantine garbage rejected — in
  /// validate(). Default: identity.
  void set_codec(net::CodecSpec spec) { codec_ = net::Codec(spec); }

  /// Switch peer-facing serving to step-tagged mode (see file comment).
  /// Call before the driving loops start; publish_model / publish_aggr_grad
  /// then gate what peers can pull. Untagged mode (the default) serves the
  /// live state, preserving the standalone-object behaviour.
  void enable_step_tagged_serving(bool models, bool aggr_grads);

  /// Publish the current snapshot as "this replica's model for iteration
  /// t"; peers pulling get_models(t, q) are answered from a small ring of
  /// recent publications.
  void publish_model(std::uint64_t t);

  /// Publish this node's contracted gradient for gossip tag `tag`.
  void publish_aggr_grad(std::uint64_t tag, net::Payload grad);

  /// Publish "no contribution" for gossip tag `tag` (the round was
  /// skipped); peers receive a decline instead of retrying forever.
  void skip_aggr_grad(std::uint64_t tag);

  /// Publish this node's latest aggregated gradient for peers to pull
  /// (untagged legacy path; step-tagged runs use publish_aggr_grad).
  void set_latest_aggr_grad(net::Payload grad);

  /// SGD step with an aggregated gradient (Equation (2)).
  void update_model(const net::Payload& aggregated_gradient);

  /// Overwrite the parameter vector (after model-GAR aggregation).
  void write_model(const net::Payload& parameters);

  /// Top-1 accuracy of the current state on a test batch.
  [[nodiscard]] double compute_accuracy(const data::Batch& test);
  /// Mean loss of the current state on a test batch.
  [[nodiscard]] double compute_loss(const data::Batch& test);

  /// Copy of the current parameter vector.
  [[nodiscard]] net::Payload parameters() const;

  /// Snapshot of the optimizer's momentum buffer (persisted in checkpoints;
  /// empty when momentum is off or no step has run yet).
  [[nodiscard]] tensor::FlatVector optimizer_velocity() const {
    util::MutexLock lock(mutex_);
    return optimizer_.velocity();
  }

  /// Reinstate a checkpointed momentum buffer (checkpoint resume).
  void restore_optimizer_velocity(tensor::FlatVector velocity) {
    util::MutexLock lock(mutex_);
    optimizer_.restore_velocity(std::move(velocity));
  }

  [[nodiscard]] std::uint64_t steps_taken() const;

  /// Scratch state for this server's aggregation calls (distance cache,
  /// score/work buffers). One context per server keeps steady-state
  /// aggregation allocation-free; it belongs to the server's driving loop
  /// thread and must not be shared across threads.
  [[nodiscard]] gars::AggregationContext& aggregation_context() {
    return aggregation_context_;
  }

  /// Come back from a crash: re-register this node's RPC handlers (a
  /// crashed node's handlers were dropped by the cluster) and clear the
  /// step-tagged publication rings — a restarted process has published
  /// nothing, and serving pre-crash entries would answer peers with state
  /// the checkpoint restore is about to overwrite. The caller (the
  /// trainer's recovery hook) then transfers checkpointed state via
  /// write_model / restore_optimizer_velocity.
  void rejoin();

  /// Payloads dropped at ingress (wrong dimension or non-finite values).
  /// A Byzantine node can send anything; malformed vectors are rejected
  /// before they can reach a GAR — a NaN survives even coordinate-wise
  /// medians of even input counts, so this gate is load-bearing.
  [[nodiscard]] std::uint64_t rejected_payloads() const;

 protected:
  /// What get_model serves; ByzantineServer corrupts it.
  [[nodiscard]] virtual net::HandlerResult serve_model(
      const net::Request& req);
  [[nodiscard]] virtual net::HandlerResult serve_aggr_grad(
      const net::Request& req);
  /// What get_checkpoint serves: the live state as a digest-sealed blob
  /// (encode_checkpoint_blob + pack_bytes). ByzantineServer tampers with
  /// the blob *after* the digest is computed, which is exactly what the
  /// receiver's verify-before-decode rejects.
  [[nodiscard]] virtual net::HandlerResult serve_checkpoint(
      const net::Request& req);

  /// Current snapshot pointer (refcount bump, no copy).
  [[nodiscard]] net::PayloadPtr snapshot() const;

  /// Consistent (parameters, velocity, step) triple under one lock hold —
  /// what serve_checkpoint seals into its blob.
  [[nodiscard]] Checkpoint current_checkpoint() const;

 private:
  /// One tagged publication (model or contracted gradient). A null payload
  /// on an aggr-grad entry marks a skipped round.
  struct TaggedEntry {
    std::uint64_t tag = 0;
    net::PayloadPtr payload;
  };

  /// Keep only well-formed payloads; counts the dropped ones. Encoded
  /// codec frames are decoded first — a frame that fails the structural
  /// gate is dropped exactly like a non-finite plain payload.
  [[nodiscard]] std::vector<net::Payload> validate(
      std::vector<net::Reply> replies);

  /// One cached wire encoding, keyed on the source payload's identity.
  /// The key is OWNING: holding the source alive is what makes pointer
  /// identity exact — a raw key would dangle once the snapshot/ring drops
  /// its reference, and the freed address can be reused by the very next
  /// published payload, silently serving a stale frame (real transports
  /// hold no extra reference to the argument bytes, so they hit this).
  struct EncodedFrame {
    net::PayloadPtr source;
    net::PayloadPtr encoded;
  };

  /// The current snapshot, state-encoded for the get_gradients request
  /// argument (identity codec: the snapshot itself). Cached per snapshot
  /// pointer; charges NetStats::bytes_saved once per destination.
  [[nodiscard]] net::PayloadPtr encoded_snapshot(std::size_t destinations);

  /// Compress an outbound handler reply. Wrapped around the *virtual*
  /// serve_model / serve_aggr_grad calls at handler-registration level, so
  /// ByzantineServer attacks operate on the plaintext payload and the
  /// corrupted result is encoded after — a Byzantine sender still speaks
  /// the wire format (attacks on the format itself live in the fuzz
  /// suite). `state_class` selects encode_state over encode_gradient.
  [[nodiscard]] net::HandlerResult encode_result(net::HandlerResult r,
                                                 bool state_class);

  /// Tagged lookup shared by serve_model / serve_aggr_grad: not_ready
  /// until `tag` is published, then the ring entry. Long-evicted tags are
  /// clamped to the oldest retained entry when `serve_oldest_on_eviction`
  /// (model pulls — staleness is tolerable) and declined otherwise
  /// (gossip pulls — a wrong round would corrupt the contraction).
  [[nodiscard]] net::HandlerResult serve_tagged(
      const std::deque<TaggedEntry>& ring, std::uint64_t tag,
      bool serve_oldest_on_eviction) const GARFIELD_REQUIRES(mutex_);

  net::NodeId id_;
  net::Cluster& cluster_;
  /// Used for evaluation (set_parameters under mutex_); params_ is
  /// canonical. Left un-annotated: the const dimension() query is read on
  /// the lock-free ingress path (validate), and only the mutable
  /// set_parameters/accuracy/loss calls need — and take — the lock.
  nn::ModelPtr model_;
  nn::SgdOptimizer optimizer_ GARFIELD_GUARDED_BY(mutex_);
  std::vector<net::NodeId> workers_;
  std::vector<net::NodeId> peer_servers_;

  gars::AggregationContext aggregation_context_;

  /// Wire codec; immutable after set_codec (build time).
  net::Codec codec_;

  mutable util::Mutex mutex_;
  /// Outbound reply encodings (serve_model / serve_aggr_grad frames).
  std::deque<EncodedFrame> reply_cache_ GARFIELD_GUARDED_BY(mutex_);
  /// State-encoded get_gradients request arguments.
  std::deque<EncodedFrame> arg_cache_ GARFIELD_GUARDED_BY(mutex_);
  /// Error-feedback memory for the gossip (gradient-class) channel; the
  /// reply cache advances it once per distinct published gradient.
  tensor::FlatVector gossip_residual_ GARFIELD_GUARDED_BY(mutex_);
  /// Immutable snapshot, swapped on write.
  net::PayloadPtr params_ GARFIELD_GUARDED_BY(mutex_);
  /// Untagged legacy gossip slot.
  net::PayloadPtr latest_aggr_grad_ GARFIELD_GUARDED_BY(mutex_);
  bool tagged_models_ GARFIELD_GUARDED_BY(mutex_) = false;
  bool tagged_aggr_grads_ GARFIELD_GUARDED_BY(mutex_) = false;
  std::deque<TaggedEntry> model_ring_ GARFIELD_GUARDED_BY(mutex_);
  std::deque<TaggedEntry> aggr_ring_ GARFIELD_GUARDED_BY(mutex_);
  std::uint64_t step_ GARFIELD_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> rejected_{0};
};

/// A server under adversarial control: serves corrupted models and
/// contracted gradients to the replicas/peers pulling from it. Craft calls
/// receive an AttackContext carrying the *requester's* training step (the
/// iteration tag on the pull), this node's id and the declared server
/// cohort shape; the honest view stays empty — a Byzantine server has no
/// channel to its peers' parameter vectors, so omniscient attacks degrade
/// gracefully to their view-free behaviour.
class ByzantineServer final : public Server {
 public:
  /// The cohort-GAR specs are what the deployment aggregates this node's
  /// two reply channels with ("" when unknown) — adaptive attacks probe
  /// them through AttackContext::gar: `model_cohort_gar` (config's
  /// model_gar) covers serve_model, `aggr_cohort_gar` (config's
  /// gradient_gar) covers the contraction-gossip serve_aggr_grad, which
  /// peers re-aggregate with the *gradient* rule.
  ByzantineServer(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
                  nn::SgdOptimizer::Options opt,
                  std::vector<net::NodeId> workers,
                  std::vector<net::NodeId> peer_servers,
                  attacks::AttackPtr attack, tensor::Rng rng,
                  std::size_t declared_n = 0, std::size_t declared_f = 0,
                  std::string model_cohort_gar = {},
                  std::string aggr_cohort_gar = {});

 protected:
  net::HandlerResult serve_model(const net::Request& req) override;
  net::HandlerResult serve_aggr_grad(const net::Request& req) override;
  /// State-transfer tamper channel: when the mounted attack declares
  /// tampers_state_transfer() (corrupt_recovery), the served blob's
  /// iteration tag is flipped *after* the digest seal — a corruption the
  /// per-message CRC would miss but the whole-blob digest catches, so a
  /// recovering peer detects and rejects the transfer.
  net::HandlerResult serve_checkpoint(const net::Request& req) override;

 private:
  /// Corrupt a copy of the honest payload (attacks rewrite in place; the
  /// honest snapshot stays shared with everyone else). `cohort_gar` names
  /// the rule the pulling peers aggregate this channel with.
  [[nodiscard]] net::HandlerResult corrupt(const net::Payload& honest,
                                           std::uint64_t iteration,
                                           const std::string& cohort_gar);

  util::Mutex attack_mutex_;
  /// Stateful across rounds (alternating phase, adaptive_z intensity) and
  /// reachable from every pool thread serving this node's pulls.
  attacks::AttackPtr attack_ GARFIELD_GUARDED_BY(attack_mutex_);
  tensor::Rng rng_ GARFIELD_GUARDED_BY(attack_mutex_);
  std::size_t declared_n_;
  std::size_t declared_f_;
  std::string model_cohort_gar_;
  std::string aggr_cohort_gar_;
};

}  // namespace garfield::core
