#include "sim/deployment_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace garfield::sim {

std::string to_string(SimDeployment d) {
  switch (d) {
    case SimDeployment::kVanilla: return "vanilla";
    case SimDeployment::kCrashTolerant: return "crash_tolerant";
    case SimDeployment::kSsmw: return "ssmw";
    case SimDeployment::kMsmw: return "msmw";
    case SimDeployment::kDecentralized: return "decentralized";
  }
  return "unknown";
}

namespace {

/// Deserialization of many concurrent replies is spread over this many
/// cores (§4.1: "we parallelize the replicated communication").
constexpr double kSerParallelism = 8.0;

/// The live sender's first retry backoff (net/cluster.h
/// kSendBackoffFloor) — the dominant per-retry cost the analytic twin
/// charges for fault-induced resends (later attempts double it, but the
/// geometric attempt distribution keeps the first term in charge for the
/// small loss rates the grammar targets).
constexpr double kRetryBackoffFloor = 50e-6;

/// What the parsed NetworkConditions do to one pull stage (see header).
struct StageNet {
  double link_factor = 1.0;  ///< slowest edge class the quorum must cross
  double wait = 0.0;         ///< unavoidable straggler/partition/jitter lag
  double byte_rate = 0.0;    ///< spec-capped edge rate, bytes/s (0 = none)
};

/// Resolve a pull by node `from` over candidate responders [lo, hi)
/// awaiting the fastest q replies. A degraded responder only costs the
/// stage when the quorum cannot be met without it — fastest-q dodges slow
/// links, stragglers and cut-off peers as long as enough healthy
/// responders remain.
StageNet resolve_pull(const SimSetup& s, std::size_t from, std::size_t lo,
                      std::size_t hi, std::size_t q) {
  const net::NetworkConditions& c = s.conditions;
  StageNet net;
  std::size_t avail = hi - lo;
  std::size_t slow = c.count_slow(lo, hi);
  std::size_t straggling = c.count_straggling(lo, hi, s.iteration);
  std::size_t cross = c.count_cross(from, lo, hi, s.iteration);
  if (from >= lo && from < hi) {  // peer pulls never await the puller
    avail -= 1;
    if (c.is_slow(from)) slow -= 1;
    if (c.is_straggling(from, s.iteration)) straggling -= 1;
  }
  // Churn removes a down node from the candidate pool entirely — it is
  // not slow, it is absent: the live plane refuses delivery to it, so the
  // analytic plane shrinks the pool (and each degraded class the node
  // belonged to) the same way. The quorum clamp below then reproduces the
  // live trajectory q' = min(q, span - count_down).
  if (c.has_churn()) {
    for (std::size_t node = lo; node < hi; ++node) {
      if (node == from || !c.churn_down(node, s.iteration)) continue;
      avail -= 1;
      if (c.is_slow(node) && slow > 0) slow -= 1;
      if (c.is_straggling(node, s.iteration) && straggling > 0) straggling -= 1;
      if (c.partitioned(from, node, s.iteration) && cross > 0) cross -= 1;
    }
  }
  // A slow puller degrades every edge it uses, regardless of who answers.
  if (c.is_slow(from)) slow = avail;
  q = std::min(q, avail);
  if (q + slow > avail) net.link_factor = c.slow_factor();
  if (q + straggling > avail) net.wait += c.straggler_lag_seconds(s.iteration);
  if (q + cross > avail) net.wait += c.partition_lag_seconds(s.iteration);
  // Bandwidth: the active wan rate binds every edge; the puller's own link
  // overrides always bind (every reply crosses them); responder-side
  // overrides bind only when the quorum cannot be met without a limited
  // responder — the same fastest-q dodge as every other degraded class.
  // The rate is pre-hetero: stage_time's degraded() derates bandwidth by
  // the factor, matching the live byte_rate()'s rate / factor. (Churn
  // shrinking the link-limited count is deliberately ignored — a small
  // conservative approximation the crossval suite does not pin.)
  {
    double rate = c.wan_byte_rate(s.iteration);
    const double own = c.link_rate_touching(from);
    if (own > 0.0) rate = rate > 0.0 ? std::min(rate, own) : own;
    std::size_t limited = c.count_link_limited(lo, hi);
    if (from >= lo && from < hi && limited > 0 &&
        c.link_rate_touching(from) > 0.0) {
      limited -= 1;
    }
    if (limited > 0 && q + limited > avail) {
      const double lim = c.min_link_rate(lo, hi);
      if (lim > 0.0) rate = rate > 0.0 ? std::min(rate, lim) : lim;
    }
    net.byte_rate = rate;
  }
  // Fault clause: a lost attempt (drop, or a corrupt frame the receiver's
  // CRC discards) surfaces on the live plane as a sender-side retry after
  // an exponential backoff — never as a hang. The analytic twin charges
  // the expected retry tail, p/(1-p) extra attempts each costing the
  // backoff floor plus a fresh edge traversal, and the expected
  // delay-spike mass, whenever the quorum cannot be met without a
  // fault-affected edge (the same fastest-q dodge as every other degraded
  // class). An ideal spec — or an iteration outside the fault window —
  // contributes exactly zero, which is what keeps the crossval
  // equalities between conditioned and unconditioned breakdowns exact.
  if (c.has_fault()) {
    std::size_t faulty;
    if (c.fault_active(from, from, s.iteration)) {
      faulty = avail;  // the puller's own edges are in the clause's set
    } else {
      faulty = c.count_faulty(lo, hi, s.iteration);
      if (c.has_churn()) {
        for (std::size_t node = lo; node < hi; ++node) {
          if (node == from || !c.churn_down(node, s.iteration)) continue;
          if (faulty > 0 && c.fault_active(from, node, s.iteration)) --faulty;
        }
      }
    }
    if (faulty > 0 && q + faulty > avail) {
      const double p = std::min(c.fault_loss_rate(), 0.99);
      const double edge_latency =
          s.link.latency + c.latency_seconds(s.iteration);
      net.wait += p / (1.0 - p) * (kRetryBackoffFloor + edge_latency) +
                  c.fault_spike_seconds();
    }
  }
  // Expected tail of the q-th fastest of `avail` jittered replies: the
  // q-th order statistic of U[0, J) draws.
  if (avail > 0) {
    net.wait += c.jitter_seconds(s.iteration) * double(q) / double(avail + 1);
  }
  return net;
}

/// One communication stage (see header for the stage model).
/// nic_floats: the largest per-node send-or-receive volume of the stage.
/// ser_floats: floats (de)serialized at the busiest node, already divided
///             by kSerParallelism where calls are concurrent.
/// total_floats: volume crossing the switch fabric.
double stage_time(const SimSetup& s, double nic_floats, double ser_floats,
                  double total_floats, const StageNet& net = StageNet{}) {
  // Codec compression shrinks what crosses the wire and the serializers,
  // never the model itself.
  nic_floats *= s.codec_ratio;
  ser_floats *= s.codec_ratio;
  total_floats *= s.codec_ratio;
  LinkProfile edge{s.link.bandwidth_floats,
                   s.link.latency + s.conditions.latency_seconds(s.iteration)};
  // A spec byte rate caps the edge (4 bytes per wire float); degraded()
  // below then derates the capped rate by the hetero factor, matching the
  // live plane's byte_rate() / factor composition.
  if (net.byte_rate > 0.0) {
    edge.bandwidth_floats =
        std::min(edge.bandwidth_floats, net.byte_rate / 4.0);
  }
  if (net.link_factor > 1.0) edge = degraded(edge, net.link_factor);
  double t = edge.latency + nic_floats / edge.bandwidth_floats +
             total_floats / (s.fabric_links * s.link.bandwidth_floats) +
             net.wait;
  if (!s.native_runtime) {
    t += ser_floats / s.device.serialize_rate + s.device.rpc_overhead;
  }
  return t;
}

/// Gradient quorum actually awaited.
std::size_t gradient_quorum(const SimSetup& s) {
  return s.asynchronous ? s.nw - s.fw : s.nw;
}

IterationBreakdown simulate_parameter_server(const SimSetup& s) {
  const double dd = double(s.d);
  const double nw = double(s.nw);
  IterationBreakdown b;

  // Reporting server 0 pulls over the worker id span [nps, nps + nw) —
  // the same node layout the live trainer builds.
  const std::size_t q = gradient_quorum(s);
  const StageNet worker_net = resolve_pull(s, 0, s.nps, s.nps + s.nw, q);

  // Servers pulling gradients this iteration (they attach their model).
  double pulling_servers = 1.0;
  if (s.deployment == SimDeployment::kCrashTolerant ||
      s.deployment == SimDeployment::kMsmw) {
    pulling_servers = double(s.nps);
  }

  // Stage A: model distribution. Vanilla/SSMW/crash: workers learn the
  // model from one (primary) server; MSMW: every replica sends its own.
  // The sender serializes the model once and reuses the buffer for every
  // destination; receivers deserialize model_senders copies each. The
  // quorum's workers must receive the model, so the stage rides the same
  // degraded edges as the gradient pull (without double-counting the
  // quorum waits — those bind once, at collection).
  const double model_senders =
      s.deployment == SimDeployment::kMsmw ? double(s.nps) : 1.0;
  b.communication += stage_time(
      s, std::max(nw * dd, model_senders * dd),  // server out vs worker in
      (1.0 + model_senders) * dd,
      model_senders * nw * dd,
      StageNet{worker_net.link_factor, 0.0});

  // Stage B: gradient computation at every worker in parallel.
  const double compute = s.device.iteration_overhead +
      dd * double(s.batch_size) / s.device.compute_rate;
  b.computation += compute;

  // Stage C: gradient collection. Every pulling server receives q
  // gradients (deserialized on parallel RPC threads); every worker
  // serializes once and uploads to every pulling server. Straggler lag,
  // partition lag and the jitter tail the quorum cannot dodge bind here.
  b.communication += stage_time(
      s, std::max(double(q) * dd, pulling_servers * dd),
      dd + double(q) * dd / kSerParallelism,
      pulling_servers * double(q) * dd, worker_net);

  // Stage D: aggregation of gradients.
  const std::string grad_gar =
      (s.deployment == SimDeployment::kVanilla ||
       s.deployment == SimDeployment::kCrashTolerant)
          ? "average"
          : s.gradient_gar;
  const double agg = gar_time(grad_gar, q, s.fw, s.d, s.device);
  if (s.native_runtime) {
    // reduce()-style streaming aggregation hides behind communication.
    b.aggregation += 0.1 * agg;
  } else {
    b.aggregation += agg;
  }

  // Stage E (MSMW only): model exchange among replicas + model GAR. The
  // reporting replica pulls q_models - 1 peer states over the server span.
  if (s.deployment == SimDeployment::kMsmw) {
    const double peers = double(s.nps - 1);
    const std::size_t q_models = s.asynchronous ? s.nps - s.fps : s.nps;
    const StageNet server_net =
        resolve_pull(s, 0, 0, s.nps, q_models > 0 ? q_models - 1 : 0);
    b.communication += stage_time(s, peers * dd,
                                  dd + peers * dd / kSerParallelism,
                                  double(s.nps) * peers * dd, server_net);
    b.aggregation += gar_time(s.model_gar, q_models, s.fps, s.d, s.device);
  }
  return b;
}

IterationBreakdown simulate_decentralized(const SimSetup& s) {
  const double dd = double(s.d);
  const double n = double(s.nw);
  const double peers = n - 1.0;
  const std::size_t q = s.nw - s.fw;
  IterationBreakdown b;

  // Every exchange round is a fastest-q pull by the reporting peer over
  // the whole peer span [0, nw).
  const StageNet peer_net = resolve_pull(s, 0, 0, s.nw, q);

  // Gradient computation happens at every peer in parallel.
  const double compute = s.device.iteration_overhead +
      dd * double(s.batch_size) / s.device.compute_rate;
  b.computation += compute;

  // All-to-all gradient exchange: every peer sends to and receives from all
  // others — O(n^2) messages per round, the scalability killer of Fig 9a.
  const double all_to_all_total = n * peers * dd;
  const double all_to_all_ser = dd + peers * dd / kSerParallelism;
  b.communication +=
      stage_time(s, peers * dd, all_to_all_ser, all_to_all_total, peer_net);
  b.aggregation += gar_time(s.gradient_gar, q, s.fw, s.d, s.device);

  // Non-iid contraction rounds: gossip the aggregated gradients again.
  for (std::size_t r = 0; r < s.contraction_steps; ++r) {
    b.communication += stage_time(s, peers * dd, all_to_all_ser,
                                  all_to_all_total, peer_net);
    b.aggregation += gar_time(s.gradient_gar, q, s.fw, s.d, s.device);
  }

  // All-to-all model exchange + model aggregation.
  b.communication +=
      stage_time(s, peers * dd, all_to_all_ser, all_to_all_total, peer_net);
  b.aggregation += gar_time(s.model_gar, q, s.fw, s.d, s.device);
  return b;
}

}  // namespace

IterationBreakdown simulate_iteration(const SimSetup& setup) {
  IterationBreakdown b =
      setup.deployment == SimDeployment::kDecentralized
          ? simulate_decentralized(setup)
          : simulate_parameter_server(setup);
  if (setup.native_runtime) {
    // The frameworks' own distributed runtimes overlap parameter pushes
    // with gradient pulls and stream transfers; model that as halving the
    // exposed communication time.
    b.communication *= 0.5;
  }
  if (setup.pipelined && !setup.native_runtime) {
    // §4.2: per-layer access lets the PyTorch backend overlap aggregation
    // with gradient transfer; the overlapped pair costs the max plus a
    // small residual rather than the sum.
    const double comm = b.communication;
    const double agg = b.aggregation;
    const double overlapped = std::max(comm, agg) + 0.2 * std::min(comm, agg);
    b.communication = overlapped * comm / (comm + agg);
    b.aggregation = overlapped * agg / (comm + agg);
    // Part of the computation also hides inside communication (Fig 16's
    // "less computation than vanilla" observation).
    b.computation *= 0.85;
  }
  return b;
}

double updates_per_sec(const SimSetup& setup) {
  return 1.0 / simulate_iteration(setup).total();
}

double batches_per_sec(const SimSetup& setup) {
  return double(setup.nw) * updates_per_sec(setup);
}

double communication_time(const SimSetup& setup) {
  return simulate_iteration(setup).communication;
}

double slowdown_vs_vanilla(const SimSetup& setup) {
  SimSetup vanilla = setup;
  vanilla.deployment = SimDeployment::kVanilla;
  vanilla.native_runtime = true;
  vanilla.pipelined = false;
  vanilla.contraction_steps = 0;
  vanilla.nps = 1;
  vanilla.fps = 0;
  vanilla.fw = 0;
  vanilla.asynchronous = false;
  return simulate_iteration(setup).total() /
         simulate_iteration(vanilla).total();
}

}  // namespace garfield::sim
