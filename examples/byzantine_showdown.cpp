// Byzantine showdown: reproduce the paper's §6.5 sanity check live.
//
// Runs the same learning task under a chosen attack on three systems —
// vanilla averaging, the crash-tolerant strawman, and MSMW (replicated
// servers + robust GARs) — and prints their accuracy curves side by side.
// Expected outcome (Fig 5): vanilla and crash-tolerant fail to learn,
// MSMW converges normally.
//
// Usage: ./examples/byzantine_showdown [attack-plan] [fw]
//   (defaults: reversed, 1)
//
// The attack argument is a full Adversary-API plan: a bare name
// ("reversed"), a typed spec ("little_is_enough:z=2.5"), or a mixed-cohort
// assignment ("little_is_enough:z=1.5;2*sign_flip" with fw=3). Unknown
// attacks and malformed options are rejected at validate() time with a
// pointed message.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "core/trainer.h"

namespace {

garfield::core::DeploymentConfig base_config(const std::string& attack,
                                             std::size_t fw) {
  garfield::core::DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  // The paper trains with 11 workers; grow the cluster when a larger fw
  // would violate multi_krum's qw = nw - fw >= 2fw + 3 precondition.
  cfg.nw = std::max<std::size_t>(11, 3 * fw + 3);
  cfg.fw = fw;
  cfg.worker_attack = attack;
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.iterations = 200;
  cfg.eval_every = 20;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace garfield::core;
  const std::string attack = argc > 1 ? argv[1] : "reversed";
  const std::size_t fw = argc > 2 ? std::stoull(argv[2]) : 1;
  // A shaped plan is sized for the fw-worker cohort; the lone msmw
  // Byzantine server only mounts a uniform plan.
  const bool uniform_plan =
      garfield::attacks::parse_attack_plan(attack).uniform();

  std::map<std::string, TrainResult> results;

  {
    DeploymentConfig cfg = base_config(attack, fw);
    cfg.deployment = Deployment::kVanilla;
    results["vanilla"] = train(cfg);
  }
  {
    DeploymentConfig cfg = base_config(attack, fw);
    cfg.deployment = Deployment::kCrashTolerant;
    cfg.nps = 3;
    results["crash_tolerant"] = train(cfg);
  }
  {
    DeploymentConfig cfg = base_config(attack, fw);
    cfg.deployment = Deployment::kMsmw;
    cfg.nps = 4;
    cfg.fps = 1;
    if (uniform_plan) cfg.server_attack = attack;  // Byzantine server too
    cfg.gradient_gar = "multi_krum";
    cfg.model_gar = "median";
    results["msmw"] = train(cfg);
  }

  std::printf(
      "attack plan: %s (mounted by %zu worker(s)%s)\n\n", attack.c_str(), fw,
      uniform_plan ? " and, for msmw, 1 server" : "");
  std::printf("%-10s", "iteration");
  for (const auto& [name, _] : results) std::printf("%-16s", name.c_str());
  std::printf("\n");
  const auto& ref = results.begin()->second.curve;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%-10zu", ref[i].iteration);
    for (const auto& [_, r] : results) {
      std::printf("%-16.3f", i < r.curve.size() ? r.curve[i].accuracy : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nExpected: vanilla and crash_tolerant stay near 0.1 under a "
              "strong attack;\nmsmw converges to high accuracy.\n");
  return 0;
}
