#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace garfield::nn {

using tensor::Shape;

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features,
               tensor::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng, 0.0F,
                            std::sqrt(2.0F / float(in_features)))),
      bias_(Tensor::zeros({out_features})),
      grad_weight_(Tensor::zeros({out_features, in_features})),
      grad_bias_(Tensor::zeros({out_features})) {}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  assert(input.rank() == 2 && input.dim(1) == in_);
  input_cache_ = input;
  Tensor out = tensor::matmul_nt(input, weight_);  // {b,in} x {out,in}^T
  const std::size_t b = out.dim(0);
  for (std::size_t i = 0; i < b; ++i)
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_[j];
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  assert(grad_output.rank() == 2 && grad_output.dim(1) == out_);
  // dW = dY^T @ X  ({out,b} x {b,in})
  grad_weight_ += tensor::matmul_tn(grad_output, input_cache_);
  const std::size_t b = grad_output.dim(0);
  for (std::size_t i = 0; i < b; ++i)
    for (std::size_t j = 0; j < out_; ++j)
      grad_bias_[j] += grad_output.at(i, j);
  // dX = dY @ W ({b,out} x {out,in})
  return tensor::matmul(grad_output, weight_);
}

std::vector<Param> Linear::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  mask_ = Tensor::zeros(input.shape());
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0F) {
      mask_[i] = 1.0F;
    } else {
      out[i] = 0.0F;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  assert(grad_output.numel() == mask_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

// ---------------------------------------------------------------- Tanh

Tensor Tanh::forward(const Tensor& input, bool /*train*/) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  output_cache_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i)
    grad[i] *= 1.0F - output_cache_[i] * output_cache_[i];
  return grad;
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               tensor::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Tensor::randn(
          {out_channels, in_channels * kernel * kernel}, rng, 0.0F,
          std::sqrt(2.0F / float(in_channels * kernel * kernel)))),
      bias_(Tensor::zeros({out_channels})),
      grad_weight_(Tensor::zeros({out_channels, in_channels * kernel * kernel})),
      grad_bias_(Tensor::zeros({out_channels})) {}

namespace {

// Expand {b, c, h, w} into columns {b*oh*ow, c*k*k}; zero padding.
Tensor im2col(const Tensor& input, std::size_t kernel, std::size_t stride,
              std::size_t padding, std::size_t oh, std::size_t ow) {
  const std::size_t b = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  Tensor cols({b * oh * ow, c * kernel * kernel});
  const float* in = input.data().data();
  float* out = cols.data().data();
  const std::size_t row_len = c * kernel * kernel;
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* row = out + ((n * oh + oy) * ow + ox) * row_len;
        std::size_t idx = 0;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const long iy = long(oy * stride + ky) - long(padding);
            for (std::size_t kx = 0; kx < kernel; ++kx, ++idx) {
              const long ix = long(ox * stride + kx) - long(padding);
              if (iy < 0 || ix < 0 || iy >= long(h) || ix >= long(w)) {
                row[idx] = 0.0F;
              } else {
                row[idx] =
                    in[((n * c + ch) * h + std::size_t(iy)) * w + std::size_t(ix)];
              }
            }
          }
        }
      }
    }
  }
  return cols;
}

// Scatter-add columns back into an image (adjoint of im2col).
void col2im(const Tensor& cols, std::size_t kernel, std::size_t stride,
            std::size_t padding, std::size_t oh, std::size_t ow,
            Tensor& image) {
  const std::size_t b = image.dim(0), c = image.dim(1), h = image.dim(2),
                    w = image.dim(3);
  const float* in = cols.data().data();
  float* out = image.data().data();
  const std::size_t row_len = c * kernel * kernel;
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* row = in + ((n * oh + oy) * ow + ox) * row_len;
        std::size_t idx = 0;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const long iy = long(oy * stride + ky) - long(padding);
            for (std::size_t kx = 0; kx < kernel; ++kx, ++idx) {
              const long ix = long(ox * stride + kx) - long(padding);
              if (iy >= 0 && ix >= 0 && iy < long(h) && ix < long(w)) {
                out[((n * c + ch) * h + std::size_t(iy)) * w +
                    std::size_t(ix)] += row[idx];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  assert(input.rank() == 4 && input.dim(1) == in_ch_);
  input_shape_ = input.shape();
  const std::size_t b = input.dim(0);
  const std::size_t oh = out_size(input.dim(2));
  const std::size_t ow = out_size(input.dim(3));
  cols_cache_ = im2col(input, kernel_, stride_, padding_, oh, ow);
  // {b*oh*ow, ckk} x {out_ch, ckk}^T -> {b*oh*ow, out_ch}
  Tensor prod = tensor::matmul_nt(cols_cache_, weight_);
  for (std::size_t r = 0; r < prod.dim(0); ++r)
    for (std::size_t ch = 0; ch < out_ch_; ++ch) prod.at(r, ch) += bias_[ch];
  // Rearrange {b*oh*ow, out_ch} -> {b, out_ch, oh, ow}.
  Tensor out({b, out_ch_, oh, ow});
  for (std::size_t n = 0; n < b; ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox)
        for (std::size_t ch = 0; ch < out_ch_; ++ch)
          out.data()[((n * out_ch_ + ch) * oh + oy) * ow + ox] =
              prod.at((n * oh + oy) * ow + ox, ch);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t b = input_shape_[0];
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  // Back to {b*oh*ow, out_ch} layout.
  Tensor grad_rows({b * oh * ow, out_ch_});
  for (std::size_t n = 0; n < b; ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox)
        for (std::size_t ch = 0; ch < out_ch_; ++ch)
          grad_rows.at((n * oh + oy) * ow + ox, ch) =
              grad_output.data()[((n * out_ch_ + ch) * oh + oy) * ow + ox];
  // dW = dY^T @ cols: {out_ch, b*oh*ow} x {b*oh*ow, ckk}.
  grad_weight_ += tensor::matmul_tn(grad_rows, cols_cache_);
  for (std::size_t r = 0; r < grad_rows.dim(0); ++r)
    for (std::size_t ch = 0; ch < out_ch_; ++ch)
      grad_bias_[ch] += grad_rows.at(r, ch);
  // dcols = dY @ W: {b*oh*ow, out_ch} x {out_ch, ckk}.
  Tensor grad_cols = tensor::matmul(grad_rows, weight_);
  Tensor grad_input(input_shape_);
  col2im(grad_cols, kernel_, stride_, padding_, oh, ow, grad_input);
  return grad_input;
}

std::vector<Param> Conv2d::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

// ---------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  assert(input.rank() == 4);
  input_shape_ = input.shape();
  const std::size_t b = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor out({b, c, oh, ow});
  argmax_.assign(out.numel(), 0);
  const float* in = input.data().data();
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (n * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = (n * c + ch) * h * w + iy * w + ix;
              }
            }
          }
          const std::size_t o = ((n * c + ch) * oh + oy) * ow + ox;
          out.data()[o] = best;
          argmax_[o] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  for (std::size_t o = 0; o < grad_output.numel(); ++o)
    grad_input[argmax_[o]] += grad_output[o];
  return grad_input;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  input_shape_ = input.shape();
  const std::size_t b = input.dim(0);
  return input.reshaped({b, input.numel() / b});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

// ---------------------------------------------------------------- Dropout

Dropout::Dropout(double p, tensor::Rng& rng) : p_(p), rng_(rng.fork(0xd0)) {}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ <= 0.0) {
    mask_ = Tensor();
    return input;
  }
  mask_ = Tensor::zeros(input.shape());
  Tensor out = input;
  const float keep_scale = 1.0F / float(1.0 - p_);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_.bernoulli(1.0 - p_)) {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    } else {
      out[i] = 0.0F;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

// ---------------------------------------------------------------- Residual

Tensor Residual::forward(const Tensor& input, bool train) {
  Tensor out = inner_->forward(input, train);
  assert(out.shape() == input.shape());
  out += input;
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor grad = inner_->backward(grad_output);
  grad += grad_output;  // the skip path
  return grad;
}

// ------------------------------------------------------------ ChannelConcat

Tensor ChannelConcat::forward(const Tensor& input, bool train) {
  assert(input.rank() == 4);
  input_shape_ = input.shape();
  std::vector<Tensor> outputs;
  outputs.reserve(branches_.size());
  branch_channels_.clear();
  std::size_t total_channels = 0;
  for (ModulePtr& branch : branches_) {
    Tensor out = branch->forward(input, train);
    assert(out.rank() == 4 && out.dim(0) == input.dim(0));
    assert(outputs.empty() || (out.dim(2) == outputs[0].dim(2) &&
                               out.dim(3) == outputs[0].dim(3)));
    branch_channels_.push_back(out.dim(1));
    total_channels += out.dim(1);
    outputs.push_back(std::move(out));
  }
  const std::size_t b = input.dim(0);
  const std::size_t h = outputs[0].dim(2), w = outputs[0].dim(3);
  Tensor result({b, total_channels, h, w});
  for (std::size_t n = 0; n < b; ++n) {
    std::size_t channel_offset = 0;
    for (std::size_t k = 0; k < outputs.size(); ++k) {
      const Tensor& out = outputs[k];
      const std::size_t c = branch_channels_[k];
      std::copy(out.data().begin() + long(n * c * h * w),
                out.data().begin() + long((n + 1) * c * h * w),
                result.data().begin() +
                    long(((n * total_channels) + channel_offset) * h * w));
      channel_offset += c;
    }
  }
  return result;
}

Tensor ChannelConcat::backward(const Tensor& grad_output) {
  const std::size_t b = grad_output.dim(0);
  const std::size_t total_channels = grad_output.dim(1);
  const std::size_t h = grad_output.dim(2), w = grad_output.dim(3);
  Tensor grad_input(input_shape_);
  std::size_t channel_offset = 0;
  for (std::size_t k = 0; k < branches_.size(); ++k) {
    const std::size_t c = branch_channels_[k];
    Tensor branch_grad({b, c, h, w});
    for (std::size_t n = 0; n < b; ++n) {
      std::copy(grad_output.data().begin() +
                    long(((n * total_channels) + channel_offset) * h * w),
                grad_output.data().begin() +
                    long(((n * total_channels) + channel_offset + c) * h * w),
                branch_grad.data().begin() + long(n * c * h * w));
    }
    grad_input += branches_[k]->backward(branch_grad);
    channel_offset += c;
  }
  return grad_input;
}

std::vector<Param> ChannelConcat::params() {
  std::vector<Param> all;
  for (ModulePtr& branch : branches_) {
    std::vector<Param> p = branch->params();
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

// ---------------------------------------------------------------- Sequential

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (ModulePtr& m : modules_) x = m->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (ModulePtr& m : modules_) {
    std::vector<Param> p = m->params();
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

}  // namespace garfield::nn
