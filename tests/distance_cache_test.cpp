// Tests for the §4.4 distance cache and Bulyan's cached iterated-Krum
// phase, including equivalence with a naive (recomputing) reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gars/gar.h"
#include "tensor/rng.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;

using gt::FlatVector;

namespace {

std::vector<FlatVector> random_inputs(std::size_t n, std::size_t d,
                                      std::uint64_t seed) {
  gt::Rng rng(seed);
  std::vector<FlatVector> out(n, FlatVector(d));
  for (auto& v : out) {
    for (float& x : v) x = rng.normal();
  }
  return out;
}

/// Reference Bulyan phase-1: iterate plain Krum on a physically shrinking
/// pool (the pre-cache implementation).
std::vector<FlatVector> naive_selection(std::vector<FlatVector> pool,
                                        std::size_t n, std::size_t f) {
  const std::size_t theta = n - 2 * f;
  const gg::Krum krum(n, f);
  std::vector<FlatVector> selected;
  for (std::size_t k = 0; k < theta; ++k) {
    const std::size_t pick = krum.select(pool);
    selected.push_back(pool[pick]);
    pool.erase(pool.begin() + long(pick));
  }
  return selected;
}

}  // namespace

TEST(DistanceCache, MatrixIsSymmetricWithZeroDiagonal) {
  auto in = random_inputs(6, 10, 1);
  gg::DistanceCache cache(in);
  EXPECT_EQ(cache.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(cache.squared_distance(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(cache.squared_distance(i, j),
                       cache.squared_distance(j, i));
      EXPECT_DOUBLE_EQ(cache.squared_distance(i, j),
                       gt::squared_distance(in[i], in[j]));
    }
  }
}

TEST(DistanceCache, RemoveTracksActiveSet) {
  auto in = random_inputs(5, 4, 2);
  gg::DistanceCache cache(in);
  EXPECT_EQ(cache.active_count(), 5u);
  cache.remove(2);
  cache.remove(4);
  EXPECT_EQ(cache.active_count(), 3u);
  EXPECT_FALSE(cache.is_active(2));
  EXPECT_TRUE(cache.is_active(0));
}

TEST(DistanceCache, SelectCachedMatchesSelectOnFullSet) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    auto in = random_inputs(9, 16, seed);
    gg::Krum krum(9, 2);
    gg::DistanceCache cache(in);
    EXPECT_EQ(krum.select_cached(cache, in), krum.select(in)) << seed;
  }
}

TEST(DistanceCache, CachedBulyanSelectionMatchesNaive) {
  // The cached phase-1 must produce the same selection sequence as the
  // naive recomputing version — value-for-value.
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    const std::size_t n = 11, f = 2;
    auto in = random_inputs(n, 12, seed);
    const auto naive = naive_selection(in, n, f);

    gg::DistanceCache cache(in);
    gg::Krum krum(n, f);
    std::vector<FlatVector> cached;
    for (std::size_t k = 0; k < n - 2 * f; ++k) {
      const std::size_t pick = krum.select_cached(cache, in);
      cached.push_back(in[pick]);
      cache.remove(pick);
    }
    ASSERT_EQ(naive.size(), cached.size()) << seed;
    for (std::size_t k = 0; k < naive.size(); ++k) {
      EXPECT_EQ(naive[k], cached[k]) << "seed " << seed << " round " << k;
    }
  }
}

TEST(DistanceCache, BulyanEndToEndUnchangedByCaching) {
  // Bulyan's aggregate (which now uses the cache internally) must still
  // average beta values around the median of the naive selection set.
  const std::size_t n = 7, f = 1, d = 8;
  auto in = random_inputs(n, d, 10);
  gg::GarPtr bulyan = gg::make_gar("bulyan", n, f);
  const FlatVector out = bulyan->aggregate(in);

  const auto selected = naive_selection(in, n, f);
  // Recompute phase 2 by hand for coordinate 0.
  std::vector<float> col;
  for (const auto& v : selected) col.push_back(v[0]);
  std::sort(col.begin(), col.end());
  const float med = col[col.size() / 2];
  std::sort(col.begin(), col.end(), [med](float a, float b) {
    const float da = std::abs(a - med), db = std::abs(b - med);
    if (da != db) return da < db;
    return a < b;
  });
  const std::size_t beta = selected.size() - 2 * f;
  double acc = 0.0;
  for (std::size_t i = 0; i < beta; ++i) acc += col[i];
  EXPECT_NEAR(out[0], float(acc / double(beta)), 1e-6F);
}

// ------------------------------------------------- edge cases (bring-up PR)

TEST(DistanceCache, RemoveUntilMinimumActiveKeepsSelectionValid) {
  // select_cached supports shrinking the active set down to its documented
  // minimum of 3; at every stage the pick must be an active index and must
  // agree with plain select() over the physically compacted survivors.
  const std::size_t n = 10, f = 2, d = 8;
  auto in = random_inputs(n, d, 21);
  gg::DistanceCache cache(in);
  gg::Krum krum(n, f);

  std::vector<std::size_t> alive(n);
  std::iota(alive.begin(), alive.end(), std::size_t{0});
  gt::Rng removal_rng(22);
  while (alive.size() > 3) {
    // Compact the active inputs and cross-check the cached selection.
    std::vector<FlatVector> pool;
    for (std::size_t i : alive) pool.push_back(in[i]);
    const std::size_t cached_pick = krum.select_cached(cache, in);
    ASSERT_TRUE(cache.is_active(cached_pick));
    EXPECT_EQ(in[cached_pick], pool[krum.select(pool)])
        << "active=" << alive.size();

    // Remove a random survivor (not necessarily the pick) and re-check
    // the book-keeping.
    const std::size_t victim = removal_rng.index(alive.size());
    cache.remove(alive[victim]);
    EXPECT_FALSE(cache.is_active(alive[victim]));
    alive.erase(alive.begin() + long(victim));
    EXPECT_EQ(cache.active_count(), alive.size());
  }

  // At exactly 3 active inputs the neighbourhood clamps to 1 and selection
  // still works.
  ASSERT_EQ(cache.active_count(), 3u);
  const std::size_t last_pick = krum.select_cached(cache, in);
  EXPECT_TRUE(cache.is_active(last_pick));
}

TEST(DistanceCache, RemoveIsIdempotent) {
  auto in = random_inputs(6, 4, 23);
  gg::DistanceCache cache(in);
  cache.remove(1);
  cache.remove(1);  // double removal must not underflow the active count
  EXPECT_EQ(cache.active_count(), 5u);
  EXPECT_FALSE(cache.is_active(1));
}

// ------------------------------------------- API v2 (registry/context PR)

TEST(DistanceCache, ActiveCountIsMaintainedNotRecounted) {
  // active_count() is a maintained O(1) counter; it must track any
  // interleaving of removals (including repeats) exactly.
  auto in = random_inputs(12, 6, 24);
  gg::DistanceCache cache(in);
  gt::Rng rng(25);
  std::size_t expected = 12;
  for (int step = 0; step < 64; ++step) {
    const std::size_t victim = rng.index(12);
    if (cache.is_active(victim)) --expected;
    cache.remove(victim);
    ASSERT_EQ(cache.active_count(), expected);
  }
}

TEST(DistanceCache, ResetReusesStorageAcrossInputSets) {
  // AggregationContext keeps one cache alive across aggregations; reset()
  // must fully reinitialize — new size, all-active, fresh distances —
  // regardless of the previous set's size or removal state.
  auto first = random_inputs(9, 8, 26);
  gg::DistanceCache cache(first);
  cache.remove(0);
  cache.remove(5);

  auto second = random_inputs(5, 12, 27);
  cache.reset(second);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.active_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(cache.is_active(i));
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(cache.squared_distance(i, j),
                       gt::squared_distance(second[i], second[j]));
    }
  }

  // Growing again after shrinking also works (no stale-capacity reads).
  auto third = random_inputs(11, 4, 28);
  cache.reset(third);
  EXPECT_EQ(cache.size(), 11u);
  EXPECT_EQ(cache.active_count(), 11u);
  EXPECT_DOUBLE_EQ(cache.squared_distance(10, 3),
                   gt::squared_distance(third[10], third[3]));
}

TEST(DistanceCache, ContextReusedAcrossCallsYieldsSameAggregates) {
  // One AggregationContext reused across many aggregate_into calls (the
  // steady-state server pattern) must agree bitwise with fresh-context
  // calls, across shrinking and growing quorums.
  gg::AggregationContext ctx;
  const std::size_t f = 1;
  for (std::uint64_t seed : {30u, 31u, 32u}) {
    for (std::size_t n : {11u, 7u, 9u}) {
      auto in = random_inputs(n, 16, seed * 100 + n);
      gg::GarPtr bulyan = gg::make_gar("bulyan", n, f);
      gt::FlatVector reused;
      bulyan->aggregate_into(in, ctx, reused);
      EXPECT_EQ(reused, bulyan->aggregate(in)) << "n=" << n;
    }
  }
}

TEST(DistanceCache, SelectCachedAgreesWithSelectOnRandomClouds) {
  // Property check over random clouds and random removal patterns: the
  // cached O(q^2) path must always agree with the uncached select() on the
  // compacted active subset — same winning vector, not just same score.
  for (std::uint64_t seed = 31; seed < 43; ++seed) {
    const std::size_t n = 12, f = 2;
    auto in = random_inputs(n, 10, seed);
    gg::DistanceCache cache(in);
    gg::Krum krum(n, f);
    gt::Rng removal_rng(seed * 7919);

    std::vector<std::size_t> alive(n);
    std::iota(alive.begin(), alive.end(), std::size_t{0});
    const std::size_t removals = 1 + removal_rng.index(n - 4);
    for (std::size_t r = 0; r < removals; ++r) {
      const std::size_t victim = removal_rng.index(alive.size());
      cache.remove(alive[victim]);
      alive.erase(alive.begin() + long(victim));
    }

    std::vector<FlatVector> pool;
    for (std::size_t i : alive) pool.push_back(in[i]);
    const std::size_t cached_pick = krum.select_cached(cache, in);
    ASSERT_TRUE(cache.is_active(cached_pick)) << seed;
    EXPECT_EQ(in[cached_pick], pool[krum.select(pool)]) << "seed " << seed;
  }
}
