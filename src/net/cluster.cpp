#include "net/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace garfield::net {

Cluster::Cluster(const Options& options)
    : nodes_(options.nodes), options_(options), rng_(options.seed) {
  if (nodes_ == 0) throw std::invalid_argument("Cluster: needs >= 1 node");
  states_.reserve(nodes_);
  for (std::size_t i = 0; i < nodes_; ++i)
    states_.push_back(std::make_unique<NodeState>());
  const std::size_t threads =
      options.pool_threads > 0 ? options.pool_threads : 2 * nodes_;
  pool_ = std::make_unique<ThreadPool>(threads);
}

Cluster::~Cluster() = default;

void Cluster::register_handler(NodeId node, const std::string& method,
                               Handler handler) {
  assert(node < nodes_);
  std::lock_guard lock(states_[node]->mutex);
  states_[node]->handlers[method] = std::move(handler);
}

void Cluster::crash(NodeId node) {
  assert(node < nodes_);
  states_[node]->crashed.store(true);
}

bool Cluster::is_crashed(NodeId node) const {
  assert(node < nodes_);
  return states_[node]->crashed.load();
}

void Cluster::set_straggler_lag(NodeId node, Duration lag) {
  assert(node < nodes_);
  states_[node]->straggler_lag_us.store(lag.count());
}

void Cluster::dispatch(Request request,
                       std::function<void(std::optional<Payload>)> on_done,
                       Duration delay) {
  requests_sent_.fetch_add(1);
  if (request.argument) floats_transferred_.fetch_add(request.argument->size());
  pool_->submit([this, request = std::move(request),
                 on_done = std::move(on_done), delay]() mutable {
    NodeState& callee = *states_[request.to];
    const Duration lag{callee.straggler_lag_us.load()};
    const Duration total = delay + lag;
    if (total.count() > 0) std::this_thread::sleep_for(total);
    // A crashed callee is fail-silent: the caller never hears back. We
    // deliver nullopt so single-call users don't hang; Collector users see
    // it as a missing reply, preserving quorum semantics.
    if (callee.crashed.load()) {
      on_done(std::nullopt);
      return;
    }
    Handler handler;
    {
      std::lock_guard lock(callee.mutex);
      auto it = callee.handlers.find(request.method);
      if (it != callee.handlers.end()) handler = it->second;
    }
    if (!handler) {
      on_done(std::nullopt);
      return;
    }
    std::optional<Payload> reply = handler(request);
    if (reply) {
      replies_received_.fetch_add(1);
      floats_transferred_.fetch_add(reply->size());
    }
    on_done(std::move(reply));
  });
}

void Cluster::call(NodeId from, NodeId to, const std::string& method,
                   std::uint64_t iteration,
                   std::shared_ptr<const Payload> argument,
                   std::function<void(std::optional<Payload>)> on_done) {
  assert(from < nodes_ && to < nodes_);
  Duration delay = options_.base_latency;
  if (options_.jitter.count() > 0) {
    std::lock_guard lock(rng_mutex_);
    delay += Duration{std::int64_t(
        rng_.uniform(0.0F, float(options_.jitter.count())))};
  }
  Request request{from, to, method, iteration, std::move(argument)};
  dispatch(std::move(request), std::move(on_done), delay);
}

std::vector<Reply> Cluster::collect(NodeId from,
                                    std::span<const NodeId> peers,
                                    const std::string& method,
                                    std::uint64_t iteration,
                                    std::shared_ptr<const Payload> argument,
                                    std::size_t q, Duration timeout) {
  if (q > peers.size()) {
    throw std::invalid_argument("Cluster::collect: q=" + std::to_string(q) +
                                " > peers=" + std::to_string(peers.size()));
  }
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Reply> replies;
    std::size_t responses = 0;  // including declined/crashed callbacks
  };
  auto state = std::make_shared<State>();
  const std::size_t total = peers.size();
  for (NodeId peer : peers) {
    call(from, peer, method, iteration, argument,
         [state, peer, q](std::optional<Payload> payload) {
           std::lock_guard lock(state->mutex);
           ++state->responses;
           if (payload && state->replies.size() < q) {
             state->replies.push_back(Reply{peer, std::move(*payload)});
           }
           state->cv.notify_all();
         });
  }
  std::unique_lock lock(state->mutex);
  const auto deadline = Clock::now() + timeout;
  state->cv.wait_until(lock, deadline, [&] {
    return state->replies.size() >= q || state->responses == total;
  });
  // Fastest-q decides *membership*; normalize the order by origin id so
  // downstream floating-point reductions (e.g. averaging) are
  // bit-reproducible whenever the membership is.
  std::vector<Reply> replies = std::move(state->replies);
  lock.unlock();
  std::sort(replies.begin(), replies.end(),
            [](const Reply& a, const Reply& b) { return a.from < b.from; });
  return replies;
}

NetStats Cluster::stats() const {
  return NetStats{requests_sent_.load(), replies_received_.load(),
                  floats_transferred_.load()};
}

}  // namespace garfield::net
