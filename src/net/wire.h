// Wire format for flat vectors.
//
// The paper serializes tensors through protocol buffers (§4.1); this is
// the equivalent boundary format for anything garfield persists or ships
// outside process memory (checkpoints, traces). Layout, little-endian:
//
//   offset size  field
//   0      4     magic "GRFD"
//   4      4     version (currently 1)
//   8      8     iteration tag
//   16     8     element count d
//   24     4     CRC-32 of the payload bytes
//   28     4d    payload (float32)
//
// decode() verifies magic, version, size consistency and the checksum, and
// throws WireError on any mismatch — a truncated or bit-flipped blob never
// becomes a silently-wrong model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/vecops.h"

namespace garfield::net {

/// Corruption or format violation detected while decoding.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// A decoded message.
struct WireMessage {
  std::uint64_t iteration = 0;
  tensor::FlatVector payload;
};

/// CRC-32 (IEEE 802.3 polynomial) of a byte range.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Total encoded size for a d-element vector.
[[nodiscard]] std::size_t wire_size(std::size_t d);

/// Serialize payload with the given iteration tag.
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::uint64_t iteration, std::span<const float> payload);

/// Byte length of the message at the head of `bytes`, per its header.
/// Validates magic, version and that the blob holds the full message;
/// throws WireError otherwise. Lets containers (e.g. checkpoints) store
/// several messages back to back and split them before decode().
[[nodiscard]] std::size_t encoded_size(std::span<const std::uint8_t> bytes);

/// Parse and verify; throws WireError on malformed/corrupt input.
[[nodiscard]] WireMessage decode(std::span<const std::uint8_t> bytes);

// ------------------------------------------------------------- streaming
//
// The TCP transport ships frames over byte streams, where read() returns
// arbitrary slices: a frame may arrive split across many reads or several
// frames may coalesce into one. frame()/FrameDecoder are the stream
// boundary: an 8-byte little-endian prefix — 4 bytes of body length, then
// a CRC-32 of the body — followed by the frame body, reassembled
// incrementally on the receive side. The frame CRC makes a flipped bit on
// the wire a *lost message* rather than a corrupted delivery or a dead
// peer: the decoder verifies every body against its prefix CRC, silently
// skips frames that fail (counting them in corrupt_frames()), and keeps
// the stream alive — the retry layer above treats the skip exactly like a
// drop.

/// Largest frame body a decoder accepts by default — a corrupted or
/// hostile length prefix must not become a multi-gigabyte allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1U << 30;

/// Bytes the stream prefix adds ahead of every frame body: u32 length +
/// u32 CRC-32 of the body.
inline constexpr std::size_t kFramePrefixBytes = 8;

/// Prepend the length + CRC prefix: the unit every stream write sends.
/// Throws WireError when `body` exceeds the u32 prefix (or `max_frame`).
[[nodiscard]] std::vector<std::uint8_t> frame(
    std::span<const std::uint8_t> body,
    std::size_t max_frame = kDefaultMaxFrameBytes);

/// Incremental reassembly of length-prefixed frames from a byte stream.
/// feed() arbitrary read slices, then drain complete frame bodies with
/// next(). idle() distinguishes a clean EOF (stream ended on a frame
/// boundary) from a truncated tail — the stream-level analogue of
/// decode()'s truncation check.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Append one read's worth of stream bytes. Throws WireError as soon as
  /// a buffered length prefix exceeds max_frame — before any allocation.
  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame body whose CRC verifies, or nullopt until
  /// more bytes arrive. A complete frame that fails its prefix CRC is
  /// skipped in place (corrupt_frames() counts it) and the scan continues
  /// with the following frame — wire corruption loses one message, it
  /// does not kill the stream.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  /// True when no partial frame is buffered — EOF here is clean; EOF with
  /// idle() false means the peer died mid-frame.
  [[nodiscard]] bool idle() const { return buffer_.size() == consumed_; }

  /// Frames discarded because their body failed the prefix CRC.
  [[nodiscard]] std::uint64_t corrupt_frames() const {
    return corrupt_frames_;
  }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buffer_;
  /// Read cursor into buffer_: consumed frames advance it and the prefix
  /// is compacted away only when the buffer drains, so a burst of
  /// coalesced frames costs one erase, not one per frame.
  std::size_t consumed_ = 0;
  std::uint64_t corrupt_frames_ = 0;
};

}  // namespace garfield::net
