// Controller demo: run an experiment described by a config file, the way
// the paper's controller launches deployments from cluster descriptions.
//
// Usage: ./examples/cluster_config <config-file>
//        ./examples/cluster_config --print-default
#include <cstdio>
#include <string>

#include "core/controller.h"

namespace {

constexpr const char* kDefaultConfig = R"(# Garfield experiment description
deployment   = msmw
model        = tiny_mlp
nw = 8   fw = 1
nps = 4  fps = 1
gradient_gar = multi_krum
model_gar    = median
worker_attack = reversed
server_attack = reversed
batch_size = 16
train_size = 2048
test_size  = 512
lr = 0.1
iterations = 150
eval_every = 25
seed = 5
# network conditions (net/conditions.h spec; omit for an ideal network):
# network = wan:latency=100us,jitter=50us;straggler:nodes=11,lag=5ms,from_iter=50
# transport backend: inproc (threads, default) or tcp (a process per node):
# transport = tcp
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace garfield::core;
  if (argc > 1 && std::string(argv[1]) == "--print-default") {
    std::printf("%s", kDefaultConfig);
    return 0;
  }

  DeploymentConfig cfg;
  if (argc > 1) {
    cfg = load_config_file(argv[1]);
    std::printf("loaded %s\n", argv[1]);
  } else {
    cfg = parse_config(kDefaultConfig);
    std::printf("no config given; using the built-in default "
                "(--print-default to inspect)\n");
  }
  cfg.validate();
  std::printf("--- effective configuration ---\n%s-------------------------------\n",
              format_config(cfg).c_str());

  const TrainResult result = train(cfg);
  for (const EvalPoint& p : result.curve) {
    std::printf("iteration %4zu: accuracy %.3f, loss %.3f\n", p.iteration,
                p.accuracy, p.loss);
  }
  std::printf("final accuracy %.3f after %zu iterations\n",
              result.final_accuracy, result.iterations_run);
  return 0;
}
