#include "net/tcp_transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/wire.h"

namespace garfield::net {

namespace {

// Frame types. Every frame body starts with one of these; the layouts are
// fixed-width little-endian (the put/get helpers below), payloads are
// net/wire blobs so they keep their magic + CRC end to end.
constexpr std::uint8_t kFrameRequest = 1;
constexpr std::uint8_t kFrameReply = 2;
constexpr std::uint8_t kFrameHello = 3;
constexpr std::uint8_t kFrameDone = 4;
constexpr std::uint8_t kFrameReady = 5;

/// How long start() waits for every sibling process to join the mesh.
constexpr Duration kMeshDeadline{std::chrono::seconds(30)};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v));
  out.push_back(std::uint8_t(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

/// Bounds-checked little-endian reads; a short or lying frame is stream
/// corruption and must surface as WireError (the reader treats it as peer
/// death), never as UB.
struct FrameReader {
  std::span<const std::uint8_t> bytes;
  std::size_t at = 0;

  void need(std::size_t n) const {
    if (bytes.size() - at < n) {
      throw WireError("tcp: truncated frame body");
    }
  }
  std::uint8_t u8() {
    need(1);
    return bytes[at++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = std::uint16_t(
        std::uint16_t(bytes[at]) | (std::uint16_t(bytes[at + 1]) << 8));
    at += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t(bytes[at + std::size_t(i)]) << (8 * i);
    }
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t(bytes[at + std::size_t(i)]) << (8 * i);
    }
    at += 8;
    return v;
  }
};

/// Read exactly `n` bytes (the hello handshake, before a reader thread
/// owns the socket). False on EOF/error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += std::size_t(r);
  }
  return true;
}

std::vector<std::uint8_t> control_body(std::uint8_t type,
                                       std::uint32_t rank) {
  std::vector<std::uint8_t> body;
  body.reserve(5);
  body.push_back(type);
  put_u32(body, rank);
  return body;
}

int connect_localhost(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(const Options& options)
    : options_(options), rank_(options.rank), nodes_(options.nodes) {
  if (nodes_ == 0 || rank_ >= nodes_) {
    throw std::invalid_argument("TcpTransport: rank " +
                                std::to_string(rank_) + " outside " +
                                std::to_string(nodes_) + " nodes");
  }
  if (options_.ports.size() != nodes_) {
    throw std::invalid_argument(
        "TcpTransport: ports vector does not cover every rank");
  }
  peers_.resize(nodes_);
  std::size_t threads = options.pool_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  timer_ = std::make_unique<TimerWheel>(*pool_);
  {
    util::MutexLock lock(control_mutex_);
    ready_.assign(nodes_, false);
    done_.assign(nodes_, false);
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::start(DeliverFn deliver) {
  deliver_ = std::move(deliver);
  const auto deadline = Clock::now() + kMeshDeadline;
  // Connects first: every rank's listener was bound and put into listen()
  // by the orchestrator before any process forked, so these succeed
  // without waiting on the peer's accept loop — which is exactly why the
  // connect-then-accept order cannot deadlock.
  for (std::size_t r = 0; r < rank_; ++r) {
    const int fd = connect_localhost(options_.ports[r]);
    if (fd < 0) {
      throw std::runtime_error("TcpTransport: rank " + std::to_string(rank_) +
                               " failed to connect to rank " +
                               std::to_string(r) + ": " +
                               std::strerror(errno));
    }
    set_nodelay(fd);
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peer->alive.store(true);
    peers_[r] = std::move(peer);
    if (!write_frame(*peers_[r],
                     control_body(kFrameHello, std::uint32_t(rank_)))) {
      throw std::runtime_error("TcpTransport: hello to rank " +
                               std::to_string(r) + " failed");
    }
  }
  // Accept one connection per higher rank; the hello frame says which.
  for (std::size_t pending = nodes_ - 1 - rank_; pending > 0; --pending) {
    pollfd pfd{};
    pfd.fd = options_.listen_fd;
    pfd.events = POLLIN;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now());
    if (remaining.count() <= 0 ||
        ::poll(&pfd, 1, int(remaining.count())) <= 0) {
      throw std::runtime_error("TcpTransport: rank " + std::to_string(rank_) +
                               " timed out waiting for peer connections");
    }
    const int fd = ::accept(options_.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      throw std::runtime_error("TcpTransport: accept failed: " +
                               std::string(std::strerror(errno)));
    }
    set_nodelay(fd);
    // Hello frame: 8-byte length+CRC prefix + type + rank.
    std::uint8_t raw[kFramePrefixBytes + 5];
    if (!read_exact(fd, raw, sizeof(raw))) {
      ::close(fd);
      throw std::runtime_error("TcpTransport: peer hung up mid-hello");
    }
    FrameReader reader{
        std::span<const std::uint8_t>(raw + kFramePrefixBytes, 5), 0};
    if (reader.u8() != kFrameHello) {
      ::close(fd);
      throw std::runtime_error("TcpTransport: first frame was not hello");
    }
    const std::uint32_t peer_rank = reader.u32();
    if (peer_rank <= rank_ || peer_rank >= nodes_ || peers_[peer_rank]) {
      ::close(fd);
      throw std::runtime_error("TcpTransport: bogus hello rank " +
                               std::to_string(peer_rank));
    }
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peer->alive.store(true);
    peers_[peer_rank] = std::move(peer);
  }
  ::close(options_.listen_fd);
  options_.listen_fd = -1;
  for (std::size_t r = 0; r < nodes_; ++r) {
    if (!peers_[r]) continue;
    peers_[r]->reader = std::thread([this, r] { reader_loop(r); });
  }
}

bool TcpTransport::send_local(Request request, Duration delay,
                              Clock::time_point deadline, Respond on_reply) {
  // Identical to InProcTransport::send — the loopback edge of a
  // multi-process deployment behaves exactly like the in-process backend.
  const std::size_t req_bytes = request_frame_bytes(request);
  bytes_sent_.fetch_add(req_bytes, std::memory_order_relaxed);
  bytes_received_.fetch_add(req_bytes, std::memory_order_relaxed);
  auto respond = [this, on_reply =
                            std::move(on_reply)](PayloadPtr payload) mutable {
    const std::size_t bytes = reply_frame_bytes(payload);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    on_reply(std::move(payload));
  };
  std::function<void()> task = [this, request = std::move(request), deadline,
                                respond = std::move(respond)]() mutable {
    deliver_(std::move(request), deadline, std::move(respond));
  };
  return run_after(delay, std::move(task));
}

bool TcpTransport::send(Request request, Duration delay,
                        Clock::time_point deadline, Respond on_reply) {
  assert(request.to < nodes_);
  if (request.to == rank_) {
    return send_local(std::move(request), delay, deadline,
                      std::move(on_reply));
  }
  // The sender-side simulated delay elapses before the frame is written —
  // the same point in the pipeline where the in-process backend delays
  // delivery, so NetworkConditions drive both backends identically.
  std::function<void()> task = [this, request = std::move(request), deadline,
                                on_reply = std::move(on_reply)]() mutable {
    write_request(std::move(request), deadline, std::move(on_reply));
  };
  return run_after(delay, std::move(task));
}

void TcpTransport::write_request(Request request, Clock::time_point deadline,
                                 Respond on_reply) {
  const std::size_t to = request.to;
  Peer* peer = peers_[to].get();
  const std::uint64_t cid = next_cid_.fetch_add(1, std::memory_order_relaxed);
  // A wire-corrupt frame can never be answered (the receiver's CRC
  // discards it before the callee sees a request), so it gets no pending
  // entry: the exchange resolves silent right after the damage ships.
  if (!request.wire_corrupt) {
    util::MutexLock lock(pending_mutex_);
    pending_.emplace(cid, PendingCall{std::move(on_reply), to});
  }
  // Ship the remaining budget, not an absolute time: steady_clock epochs
  // do not line up across processes. The callee re-anchors it on arrival.
  const auto now = Clock::now();
  const std::uint64_t budget_us =
      deadline > now
          ? std::uint64_t(
                std::chrono::duration_cast<Duration>(deadline - now).count())
          : 0;
  std::vector<std::uint8_t> body;
  body.push_back(kFrameRequest);
  put_u64(body, cid);
  put_u32(body, std::uint32_t(request.from));
  put_u32(body, std::uint32_t(request.to));
  put_u64(body, request.iteration);
  body.push_back(request.window_iteration ? 1 : 0);
  put_u64(body, request.window_iteration ? *request.window_iteration : 0);
  put_u64(body, budget_us);
  assert(request.method.size() <= 0xFFFF);
  put_u16(body, std::uint16_t(request.method.size()));
  body.insert(body.end(), request.method.begin(), request.method.end());
  body.push_back(request.argument ? 1 : 0);
  if (request.argument) {
    const std::vector<std::uint8_t> blob =
        encode(request.iteration, *request.argument);
    body.insert(body.end(), blob.begin(), blob.end());
  }
  // The frame-size formulas in transport.cpp are the single source of
  // truth for byte accounting; the real frame must match them.
  assert(kFramePrefixBytes + body.size() == request_frame_bytes(request));
  if (request.wire_corrupt) {
    if (peer) (void)write_frame(*peer, body, /*corrupt=*/true);
    on_reply(nullptr);
    return;
  }
  if (!peer || !write_frame(*peer, body)) {
    resolve_pending(cid, nullptr);
  }
}

bool TcpTransport::run_after(Duration delay, std::function<void()>&& task) {
  if (!pool_ || !timer_) return false;
  return delay.count() <= 0 ? pool_->submit(std::move(task))
                            : timer_->schedule_after(delay, std::move(task));
}

bool TcpTransport::write_frame(Peer& peer,
                               std::span<const std::uint8_t> body,
                               bool corrupt) {
  std::vector<std::uint8_t> framed = frame(body);
  if (corrupt) {
    // Flip one body byte AFTER the prefix CRC was computed: the frame
    // stays length-consistent (the stream cannot desync) but fails the
    // receiver's CRC check and is discarded — a genuine wire fault.
    framed[kFramePrefixBytes] ^= 0x01;
  }
  util::MutexLock lock(peer.write_mutex);
  if (!peer.alive.load(std::memory_order_relaxed)) return false;
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(peer.fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Peer is gone (EPIPE/reset). Mark it down for writers and poke the
      // socket so the reader thread notices and runs on_peer_down once.
      peer.alive.store(false, std::memory_order_relaxed);
      (void)::shutdown(peer.fd, SHUT_RDWR);
      return false;
    }
    sent += std::size_t(n);
  }
  bytes_sent_.fetch_add(framed.size(), std::memory_order_relaxed);
  return true;
}

void TcpTransport::broadcast_control(std::uint8_t type) {
  const std::vector<std::uint8_t> body =
      control_body(type, std::uint32_t(rank_));
  for (std::size_t r = 0; r < nodes_; ++r) {
    if (!peers_[r]) continue;
    (void)write_frame(*peers_[r], body);
  }
}

void TcpTransport::announce_ready() { broadcast_control(kFrameReady); }

bool TcpTransport::await_ready(Duration timeout) {
  util::MutexLock lock(control_mutex_);
  return control_cv_.wait_for(control_mutex_, timeout,
                              [&]() GARFIELD_REQUIRES(control_mutex_) {
                                for (std::size_t r = 0; r < nodes_; ++r) {
                                  if (r != rank_ && !ready_[r]) return false;
                                }
                                return true;
                              });
}

void TcpTransport::announce_done() { broadcast_control(kFrameDone); }

bool TcpTransport::await_done(std::size_t driver_count, Duration timeout) {
  util::MutexLock lock(control_mutex_);
  return control_cv_.wait_for(control_mutex_, timeout,
                              [&]() GARFIELD_REQUIRES(control_mutex_) {
                                for (std::size_t r = 0;
                                     r < driver_count && r < nodes_; ++r) {
                                  if (r != rank_ && !done_[r]) return false;
                                }
                                return true;
                              });
}

void TcpTransport::reader_loop(std::size_t peer_rank) {
  Peer& peer = *peers_[peer_rank];
  FrameDecoder decoder;
  std::vector<std::uint8_t> buf(64 * 1024);
  for (;;) {
    const ssize_t n = ::recv(peer.fd, buf.data(), buf.size(), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      decoder.feed(
          std::span<const std::uint8_t>(buf.data(), std::size_t(n)));
      while (auto body = decoder.next()) {
        bytes_received_.fetch_add(kFramePrefixBytes + body->size(),
                                  std::memory_order_relaxed);
        handle_frame(peer_rank, *body);
      }
    } catch (const WireError&) {
      // A corrupted stream is indistinguishable from a dying peer
      // process: fail-silence it.
      break;
    }
  }
  peer.alive.store(false, std::memory_order_relaxed);
  on_peer_down(peer_rank);
}

void TcpTransport::handle_frame(std::size_t peer_rank,
                                std::span<const std::uint8_t> body) {
  FrameReader reader{body, 0};
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kFrameRequest: {
      Request request;
      const std::uint64_t cid = reader.u64();
      request.from = reader.u32();
      request.to = reader.u32();
      request.iteration = reader.u64();
      const bool has_window = reader.u8() != 0;
      const std::uint64_t window = reader.u64();
      if (has_window) request.window_iteration = window;
      const std::uint64_t budget_us = reader.u64();
      const std::uint16_t method_len = reader.u16();
      reader.need(method_len);
      request.method.assign(
          reinterpret_cast<const char*>(body.data() + reader.at),
          method_len);
      reader.at += method_len;
      if (reader.u8() != 0) {
        WireMessage msg = decode(body.subspan(reader.at));
        request.argument =
            std::make_shared<const Payload>(std::move(msg.payload));
      }
      if (request.to != rank_) {
        throw WireError("tcp: request addressed to rank " +
                        std::to_string(request.to) + " arrived at rank " +
                        std::to_string(rank_));
      }
      // Re-anchor the caller's remaining budget on local time; the
      // not-ready redelivery chain then behaves exactly as in process.
      const Clock::time_point deadline =
          Clock::now() + Duration(std::int64_t(budget_us));
      // Exactly-once reply, silent or not: the caller's pending entry
      // must always resolve, else a crashed callee would hang every
      // pull's collect until its deadline.
      Respond respond = [this, cid, peer_rank](PayloadPtr payload) {
        std::vector<std::uint8_t> reply;
        reply.push_back(kFrameReply);
        put_u64(reply, cid);
        reply.push_back(payload ? 1 : 0);
        if (payload) {
          const std::vector<std::uint8_t> blob = encode(0, *payload);
          reply.insert(reply.end(), blob.begin(), blob.end());
        }
        assert(kFramePrefixBytes + reply.size() == reply_frame_bytes(payload));
        Peer* back = peers_[peer_rank].get();
        if (back) (void)write_frame(*back, reply);
      };
      // Handler compute belongs on the pool, exactly as in process — a
      // reader thread running handlers would serialize one peer's pulls.
      std::function<void()> task = [this, request = std::move(request),
                                    deadline,
                                    respond = std::move(respond)]() mutable {
        deliver_(std::move(request), deadline, std::move(respond));
      };
      // A refused submit means shutdown: the socket teardown resolves the
      // caller via EOF, so dropping the task here is safe.
      (void)pool_->submit(std::move(task));
      break;
    }
    case kFrameReply: {
      const std::uint64_t cid = reader.u64();
      PayloadPtr payload;
      if (reader.u8() != 0) {
        WireMessage msg = decode(body.subspan(reader.at));
        payload = std::make_shared<const Payload>(std::move(msg.payload));
      }
      resolve_pending(cid, std::move(payload));
      break;
    }
    case kFrameReady:
    case kFrameDone: {
      const std::uint32_t r = reader.u32();
      if (r >= nodes_) throw WireError("tcp: bogus control rank");
      {
        util::MutexLock lock(control_mutex_);
        if (type == kFrameReady) {
          ready_[r] = true;
        } else {
          done_[r] = true;
        }
      }
      control_cv_.notify_all();
      break;
    }
    case kFrameHello:
      // Legal only during the start() handshake, which consumed it.
      throw WireError("tcp: unexpected hello after handshake");
    default:
      throw WireError("tcp: unknown frame type " + std::to_string(type));
  }
}

void TcpTransport::resolve_pending(std::uint64_t cid, PayloadPtr payload) {
  Respond respond;
  {
    util::MutexLock lock(pending_mutex_);
    auto it = pending_.find(cid);
    if (it == pending_.end()) return;  // already resolved (peer-death race)
    respond = std::move(it->second.respond);
    pending_.erase(it);
  }
  respond(std::move(payload));
}

void TcpTransport::on_peer_down(std::size_t peer_rank) {
  // Mid-run peer death is fail-silent to the protocol but must never be
  // silent to the operator: name the dead rank. During shutdown() the EOFs
  // are expected teardown, not deaths.
  if (!down_.load(std::memory_order_relaxed)) {
    peer_deaths_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[garfield:tcp] rank %zu: peer rank %zu died mid-run "
                 "(EOF/reset on its stream); its pending calls resolve "
                 "silent and its barrier slots are forced\n",
                 rank_, peer_rank);
  }
  // Fail-silence: every call still waiting on this peer resolves as a
  // missing reply, the same shape a crashed in-process node has.
  std::vector<Respond> orphans;
  {
    util::MutexLock lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.peer == peer_rank) {
        orphans.push_back(std::move(it->second.respond));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Respond& respond : orphans) respond(nullptr);
  // A dead peer can neither announce ready nor done; count it as both so
  // the barriers unblock and the failure surfaces downstream (the parent
  // sees the process's exit status) instead of as a barrier hang.
  {
    util::MutexLock lock(control_mutex_);
    ready_[peer_rank] = true;
    done_[peer_rank] = true;
  }
  control_cv_.notify_all();
}

void TcpTransport::shutdown() {
  if (down_.exchange(true)) return;
  // Sockets first: readers see EOF, resolve their peers' pending calls,
  // and exit. Join them before draining the pool — readers submit
  // delivery tasks and must never race pool teardown.
  for (std::size_t r = 0; r < nodes_; ++r) {
    if (!peers_[r]) continue;
    peers_[r]->alive.store(false, std::memory_order_relaxed);
    (void)::shutdown(peers_[r]->fd, SHUT_RDWR);
  }
  for (std::size_t r = 0; r < nodes_; ++r) {
    if (peers_[r] && peers_[r]->reader.joinable()) peers_[r]->reader.join();
  }
  // Then the in-process machinery, in the same order as InProcTransport:
  // stop the wheel (flushed delayed writes see dead peers and resolve
  // their callbacks), drain the pool, destroy both.
  if (timer_) timer_->stop_and_flush();
  pool_.reset();
  timer_.reset();
  for (std::size_t r = 0; r < nodes_; ++r) {
    if (peers_[r] && peers_[r]->fd >= 0) {
      ::close(peers_[r]->fd);
      peers_[r]->fd = -1;
    }
  }
  if (options_.listen_fd >= 0) {
    ::close(options_.listen_fd);
    options_.listen_fd = -1;
  }
}

}  // namespace garfield::net
