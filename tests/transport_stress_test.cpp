// Transport stress: the zero-copy snapshots, the per-iteration gradient
// cache, the hash-derived jitter and the step-tagged model exchange must
// preserve the `unit-serial` determinism contract under real contention.
//
// Each cell runs a full deployment at high fan-in on the multi-threaded
// in-process cluster and asserts that the training curve (accuracy AND
// loss, compared bitwise as doubles) is identical
//   - run-to-run (same configuration, fresh cluster, different thread
//     interleavings), and
//   - across GARFIELD_THREADS-style kernel thread counts
//     (tensor::set_parallel_threads 1 vs 4 — the CTest harness additionally
//     reruns this whole binary under GARFIELD_THREADS=1).
//
// This is exactly what the old transport could NOT guarantee: the batch
// sampler advanced per request (so reply arrival order perturbed the data
// sequence) and model exchange served whatever state a racing replica
// happened to hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "tensor/parallel.h"

namespace gc = garfield::core;

namespace {

/// Restore the global kernel-thread override when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { garfield::tensor::set_parallel_threads(0); }
};

gc::DeploymentConfig stress_base() {
  gc::DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 512;
  cfg.test_size = 128;
  cfg.batch_size = 8;
  cfg.iterations = 5;
  cfg.eval_every = 1;  // probe every iteration: the whole curve is pinned
  cfg.seed = 20260728;
  return cfg;
}

/// Bitwise curve comparison: EvalPoints carry doubles produced by
/// deterministic float kernels, so == (not NEAR) is the contract.
void expect_identical(const gc::TrainResult& a, const gc::TrainResult& b,
                      const char* what) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << what;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].iteration, b.curve[i].iteration) << what;
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy)
        << what << " accuracy diverged at probe " << i;
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss)
        << what << " loss diverged at probe " << i;
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << what;
  EXPECT_EQ(a.final_loss, b.final_loss) << what;
  EXPECT_EQ(a.net_stats.floats_transferred, b.net_stats.floats_transferred)
      << what << " traffic diverged";
}

}  // namespace

TEST(TransportStress, MsmwHighFanInIsBitwiseDeterministic) {
  // 5 replicated servers x 16 workers, synchronous: every pull waits for
  // the full cohort, so the quorum membership — and therefore the whole
  // run — must be schedule-independent.
  ThreadGuard guard;
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 5;
  cfg.nw = 16;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";

  garfield::tensor::set_parallel_threads(1);
  const gc::TrainResult serial = gc::train(cfg);
  const gc::TrainResult serial_again = gc::train(cfg);
  expect_identical(serial, serial_again, "msmw run-to-run (serial kernels)");

  garfield::tensor::set_parallel_threads(4);
  const gc::TrainResult threaded = gc::train(cfg);
  expect_identical(serial, threaded, "msmw serial vs 4-thread kernels");

  ASSERT_FALSE(serial.curve.empty());
  // Synchronous pulls await the whole cohort: nothing is crafted past the
  // quorum and teardown must not drop dispatches.
  EXPECT_EQ(serial.net_stats.wasted_replies, 0u);
  EXPECT_EQ(serial.net_stats.dropped_tasks, 0u);
  // Traffic is exactly computable: per iteration every server moves
  // nw request arguments + nw gradient replies + (nps-1) model replies.
  const std::uint64_t d = 874;  // tiny_mlp parameter count
  const std::uint64_t per_iter =
      cfg.nps * (2 * cfg.nw * d + (cfg.nps - 1) * d);
  EXPECT_EQ(serial.net_stats.floats_transferred,
            cfg.iterations * per_iter);
  // The gradient cache must actually bite: all nps replicas are bitwise
  // identical here, so every worker runs ONE forward/backward per
  // iteration and serves it nps times.
  EXPECT_EQ(serial.gradients_served, cfg.iterations * cfg.nps * cfg.nw);
  EXPECT_EQ(serial.gradients_computed, cfg.iterations * cfg.nw);
}

TEST(TransportStress, MsmwWithWorkerMomentumStaysDeterministic) {
  // Distributed momentum folds the velocity once per iteration; under
  // cache hits from 3 replicas the fold must still happen exactly once.
  ThreadGuard guard;
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 3;
  cfg.nw = 8;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.worker_momentum = 0.9F;

  garfield::tensor::set_parallel_threads(1);
  const gc::TrainResult a = gc::train(cfg);
  const gc::TrainResult b = gc::train(cfg);
  expect_identical(a, b, "msmw+momentum run-to-run");
}

TEST(TransportStress, DecentralizedWithContractionIsBitwiseDeterministic) {
  // Peer-to-peer cell with a contract() gossip round: gradient pulls,
  // tagged aggregated-gradient gossip and tagged model exchange all ride
  // the same transport.
  ThreadGuard guard;
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.nw = 6;
  cfg.fw = 0;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.contraction_steps = 1;
  cfg.iterations = 4;

  garfield::tensor::set_parallel_threads(1);
  const gc::TrainResult serial = gc::train(cfg);
  const gc::TrainResult serial_again = gc::train(cfg);
  expect_identical(serial, serial_again, "decentralized run-to-run");

  garfield::tensor::set_parallel_threads(4);
  const gc::TrainResult threaded = gc::train(cfg);
  expect_identical(serial, threaded, "decentralized serial vs 4-thread");

  EXPECT_EQ(serial.net_stats.wasted_replies, 0u);
  EXPECT_EQ(serial.net_stats.dropped_tasks, 0u);
}

TEST(TransportStress, PoolSizeDoesNotChangeTheCurve) {
  // pool_threads is a pure performance knob: 1 handler thread and 8
  // handler threads must produce the same bits.
  ThreadGuard guard;
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 3;
  cfg.nw = 8;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";

  cfg.pool_threads = 1;
  const gc::TrainResult one = gc::train(cfg);
  cfg.pool_threads = 8;
  const gc::TrainResult eight = gc::train(cfg);
  expect_identical(one, eight, "pool_threads 1 vs 8");
}

TEST(TransportStress, SimulatedLatencyPreservesTheSynchronousCurve) {
  // With synchronous quorums the hash-jittered link delays reorder reply
  // *arrival*, never membership — the curve must not move.
  ThreadGuard guard;
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.nw = 8;
  cfg.fw = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.iterations = 3;

  const gc::TrainResult instant = gc::train(cfg);
  cfg.network = "wan:latency=200us,jitter=300us";
  const gc::TrainResult delayed = gc::train(cfg);
  expect_identical(instant, delayed, "latency 0 vs jittered links");
}

TEST(TransportStress, FaultInjectionStaysBitwiseDeterministic) {
  // The fault plane under contention: drop/corrupt/dup verdicts are pure
  // hashes, the retry layer's backoff is hash-jittered, and both run on
  // the multi-threaded cluster — so a faulted run must be bitwise
  // identical run-to-run, across kernel thread counts, and (because every
  // lost attempt is recovered within the budget) its CURVE must equal the
  // fault-free one. Traffic counters legitimately differ from the clean
  // run (retransmits and duplicates are real traffic), but must agree
  // between faulted runs exactly.
  ThreadGuard guard;
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 3;
  cfg.nw = 8;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.iterations = 4;

  garfield::tensor::set_parallel_threads(1);
  const gc::TrainResult clean = gc::train(cfg);
  cfg.network = "fault:drop=0.08,corrupt=0.04,dup=0.04";
  ASSERT_NO_THROW(cfg.validate());
  const gc::TrainResult faulted = gc::train(cfg);
  const gc::TrainResult faulted_again = gc::train(cfg);
  expect_identical(faulted, faulted_again, "faulted run-to-run");
  EXPECT_EQ(faulted.net_stats.faults_injected,
            faulted_again.net_stats.faults_injected);
  EXPECT_EQ(faulted.net_stats.retries, faulted_again.net_stats.retries);

  garfield::tensor::set_parallel_threads(4);
  const gc::TrainResult threaded = gc::train(cfg);
  expect_identical(faulted, threaded, "faulted serial vs 4-thread kernels");

  // The faults really happened, and really were absorbed.
  EXPECT_GT(faulted.net_stats.faults_injected, 0u);
  EXPECT_GT(faulted.net_stats.retries, 0u);
  EXPECT_EQ(faulted.net_stats.retry_give_ups, 0u);
  ASSERT_EQ(clean.curve.size(), faulted.curve.size());
  for (std::size_t i = 0; i < clean.curve.size(); ++i) {
    EXPECT_EQ(clean.curve[i].accuracy, faulted.curve[i].accuracy)
        << "probe " << i;
    EXPECT_EQ(clean.curve[i].loss, faulted.curve[i].loss) << "probe " << i;
  }
}

TEST(TransportStress, AdverseConditionsStayBitwiseDeterministic) {
  // The whole NetworkConditions surface at once — WAN latency + jitter,
  // heterogeneous slow links, an iteration-scheduled straggler phase and a
  // partition window (delayed, never dropped) — under a synchronous MSMW
  // deployment. Synchronous quorums await the full cohort, so conditions
  // reorder arrival but never membership: the curve must be identical
  // run-to-run AND identical to the ideal-network curve.
  ThreadGuard guard;
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig cfg = stress_base();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 3;
  cfg.nw = 8;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.iterations = 4;

  const gc::TrainResult ideal = gc::train(cfg);
  // Node ids: servers [0, 3), workers [3, 11). Worker 10 straggles from
  // iteration 1; iteration 2 opens a one-iteration partition cutting
  // workers 9-10 off the servers; workers 3-4 sit on 10x slower links.
  cfg.network =
      "wan:latency=150us,jitter=250us;"
      "hetero:slow_links=3-4,factor=10;"
      "straggler:nodes=10,lag=2ms,from_iter=1;"
      "partition:a=0-2,b=9-10,from_iter=2,len=1,lag=3ms";
  ASSERT_NO_THROW(cfg.validate());
  const gc::TrainResult adverse = gc::train(cfg);
  const gc::TrainResult adverse_again = gc::train(cfg);
  expect_identical(adverse, adverse_again, "adverse run-to-run");
  expect_identical(ideal, adverse, "ideal vs adverse (sync membership)");
}
