// Transport seam under the simulated cluster.
//
// The paper's deployment (§4) runs each node as its own process on its own
// machine; our Cluster grew up as a single in-process object graph. This
// header is the boundary that lets both be true at once: Cluster resolves
// simulated NetworkConditions delay, lifecycle gating, not-ready
// redelivery and quorum accounting exactly as before, but hands the
// *physical* movement of every request/reply to a Transport:
//
//  - InProcTransport: the original timer-wheel + thread-pool path,
//    factored out verbatim — same scheduling decisions in the same order,
//    so every in-process run stays bitwise identical to the pre-seam code;
//  - TcpTransport (tcp_transport.h): each node is its own OS process and
//    frames flow over localhost TCP streams (length-prefixed net/wire
//    blobs), with the same sender-side delay model so `wan:`/`hetero:`/
//    `churn:` specs drive both backends identically.
//
// The contract is deliberately small: a callee-side delivery sink
// (installed once by the Cluster), an async send whose callback resolves
// exactly once, and the delayed-execution primitive the redelivery chain
// rides on. Byte accounting lives here — both backends charge the same
// wire-equivalent frame costs, so `bytes_sent`/`bytes_received` are
// directly comparable across backends.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/thread_pool.h"
#include "net/timer_wheel.h"
#include "tensor/vecops.h"
#include "util/thread_annotations.h"

namespace garfield::net {

using NodeId = std::size_t;
using Payload = tensor::FlatVector;
/// Immutable refcounted payload — the zero-copy currency of the transport.
using PayloadPtr = std::shared_ptr<const Payload>;
using Clock = std::chrono::steady_clock;
using Duration = std::chrono::microseconds;

/// A pull request: "node `from` asks node `to` to run `method`".
/// `iteration` tags the training step; `argument` carries the caller's data
/// (e.g. the server's current model when requesting a gradient).
struct Request {
  NodeId from = 0;
  NodeId to = 0;
  std::string method;
  std::uint64_t iteration = 0;
  PayloadPtr argument;  // may be null
  /// The training iteration backing the method tag when the two differ
  /// (the contraction gossip tag encodes round*iterations). Remote
  /// backends ship it so the callee's churn schedule advances on the true
  /// training step, exactly as the caller's would.
  std::optional<std::uint64_t> window_iteration;
  /// Sender-local fault-injection instruction (never serialized): the TCP
  /// backend ships this request's frame with a flipped body byte so the
  /// receiver's stream CRC discards it, and resolves the exchange
  /// immediately as silent. Set only by the Cluster's fault plane when a
  /// `fault:corrupt` verdict fires on a remote backend.
  bool wire_corrupt = false;
};

/// On-wire cost (length prefix + envelope + wire-encoded payload) of one
/// request / reply frame. Both backends account traffic through these
/// formulas — the TCP backend's real frames are exactly this size — so
/// inproc and tcp byte counters are directly comparable. A silent
/// resolution (crashed / declined / out-retried callee) costs the bare
/// reply envelope, which the TCP backend really does send.
[[nodiscard]] std::size_t request_frame_bytes(const Request& request);
[[nodiscard]] std::size_t reply_frame_bytes(const PayloadPtr& payload);

/// Physical message movement under the Cluster. All policy — simulated
/// delay resolution, lifecycle gating, handler dispatch, retry backoff,
/// stats — stays in the Cluster; a Transport only moves requests to the
/// callee's delivery sink and replies back, and provides the delayed
/// execution primitive both the initial (delayed) delivery and the
/// not-ready redelivery chain ride on.
class Transport {
 public:
  /// Exactly-once resolution of one delivered request. nullptr means the
  /// callee stayed silent: crashed, declined, no handler, or the retry
  /// chain gave up.
  using Respond = std::function<void(PayloadPtr)>;
  /// Callee-side sink installed by the Cluster via start(): runs the
  /// lifecycle check + handler chain for `request`, with `deadline`
  /// bounding not-ready redelivery, and invokes `respond` exactly once.
  using DeliverFn =
      std::function<void(Request request, Clock::time_point deadline,
                         Respond respond)>;

  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Install the delivery sink (and, for remote backends, bring links up).
  /// Called exactly once, by the Cluster constructor, before any send().
  virtual void start(DeliverFn deliver) = 0;

  /// Route `request` toward its destination after the sender-side
  /// simulated `delay`; `on_reply` fires exactly once with the reply (or
  /// nullptr for a silent callee). Returns false — without invoking or
  /// consuming `on_reply`'s obligations — once shutdown has begun; the
  /// caller resolves the callback itself (Cluster counts a dropped task).
  [[nodiscard]] virtual bool send(Request request, Duration delay,
                                  Clock::time_point deadline,
                                  Respond on_reply) = 0;

  /// Run `task` once `delay` has elapsed: on the pool directly when the
  /// delay is not positive, via the timer otherwise. The redelivery
  /// primitive. Returns false (task left untouched) once shutdown has
  /// begun.
  [[nodiscard]] virtual bool run_after(Duration delay,
                                       std::function<void()>&& task) = 0;

  /// True when request delivery crosses a process boundary — the callee
  /// has no local loop threads driving its churn schedule, so the Cluster
  /// advances the lifecycle horizon from the arrival itself.
  [[nodiscard]] virtual bool remote() const { return false; }

  /// Stop moving messages: pending delayed entries are flushed inline,
  /// in-flight work drains, and subsequent send()/run_after() return
  /// false. Idempotent; called by ~Cluster.
  virtual void shutdown() = 0;

  /// Cumulative wire-equivalent traffic through this transport endpoint.
  /// Relaxed monotone counters, same discipline as the Cluster's (reply
  /// frame costs are charged before the reply's release bump of
  /// replies_received_, so stats() snapshots cover them).
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  /// Peer processes observed dying mid-run (a reader hitting EOF/reset
  /// outside shutdown). Always 0 for in-process backends.
  [[nodiscard]] std::uint64_t peer_deaths() const {
    return peer_deaths_.load(std::memory_order_relaxed);
  }

 protected:
  Transport() = default;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> peer_deaths_{0};
};

/// The original in-process path, factored out of the Cluster verbatim:
/// delivery is a task on the shared ThreadPool (zero delay) or an entry on
/// the TimerWheel (positive delay), and the reply is the respond callback
/// invoked on whichever pool thread ran the handler. Scheduling decisions,
/// their order, and the teardown sequence are bit-for-bit the pre-seam
/// Cluster's, so existing runs are unchanged.
class InProcTransport final : public Transport {
 public:
  /// `pool_threads` == 0 sizes the pool to hardware concurrency — pool
  /// threads only run handler compute (delays live on the wheel), so more
  /// would just contend for the same cores.
  explicit InProcTransport(std::size_t pool_threads = 0);
  ~InProcTransport() override;

  void start(DeliverFn deliver) override;
  [[nodiscard]] bool send(Request request, Duration delay,
                          Clock::time_point deadline,
                          Respond on_reply) override;
  [[nodiscard]] bool run_after(Duration delay,
                               std::function<void()>&& task) override;
  void shutdown() override;

 private:
  DeliverFn deliver_;
  bool down_ = false;  ///< set once by shutdown(); no concurrent callers
  // Torn down by shutdown() in the order stop-wheel -> drain-pool ->
  // destroy both, so in-flight deliveries can never re-arm a dead timer or
  // submit to a dead pool (see ~Cluster's original comment, which moved
  // here with the members).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TimerWheel> timer_;
};

}  // namespace garfield::net
