// Wire-protocol adversarial-bytes suite (ROADMAP "Wire-protocol fuzzing").
//
// net::decode / net::encoded_size face attacker-controlled bytes by design.
// This seeded randomized corruption suite — bit flips, truncation and
// extension, header length lies, version skew, message concatenation, raw
// garbage — asserts the decoder's total contract: every input either throws
// WireError or yields a well-formed WireMessage; no other exception type,
// no crash, no UB (the debug-asan CI preset runs this under
// AddressSanitizer + UBSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "net/codec.h"
#include "net/wire.h"
#include "tensor/rng.h"

namespace gn = garfield::net;
namespace gt = garfield::tensor;

namespace {

constexpr std::uint64_t kSeed = 0xF022ED5ULL;

std::vector<float> random_payload(gt::Rng& rng, std::size_t max_d = 64) {
  std::vector<float> payload(rng.index(max_d + 1));
  for (float& x : payload) x = rng.normal();
  return payload;
}

std::vector<std::uint8_t> random_message(gt::Rng& rng) {
  const std::vector<float> payload = random_payload(rng);
  return gn::encode(std::uint64_t(rng.index(1 << 20)), payload);
}

/// The total contract under test: decode(bytes) either throws WireError or
/// returns a message whose payload size is consistent with the blob.
void expect_total_decode(const std::vector<std::uint8_t>& bytes,
                         const char* what) {
  try {
    const gn::WireMessage msg = gn::decode(bytes);
    ASSERT_EQ(gn::wire_size(msg.payload.size()), bytes.size()) << what;
  } catch (const gn::WireError&) {
    // Rejection is the expected outcome for corrupt inputs.
  } catch (const std::exception& e) {
    FAIL() << what << ": decode leaked a non-WireError exception: "
           << e.what();
  }
  try {
    const std::size_t claimed = gn::encoded_size(bytes);
    EXPECT_GE(claimed, std::size_t(28)) << what;
    EXPECT_LE(claimed, bytes.size()) << what;
  } catch (const gn::WireError&) {
  } catch (const std::exception& e) {
    FAIL() << what << ": encoded_size leaked a non-WireError exception: "
           << e.what();
  }
}

void overwrite_u64(std::vector<std::uint8_t>& bytes, std::size_t at,
                   std::uint64_t v) {
  for (int i = 0; i < 8 && at + std::size_t(i) < bytes.size(); ++i) {
    bytes[at + std::size_t(i)] = std::uint8_t(v >> (8 * i));
  }
}

}  // namespace

TEST(WireFuzz, BitFlipsNeverEscapeTheContract) {
  gt::Rng rng(kSeed);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> bytes = random_message(rng);
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t at = rng.index(bytes.size());
      bytes[at] ^= std::uint8_t(1U << rng.index(8));
    }
    expect_total_decode(bytes, "bit flip");
  }
}

TEST(WireFuzz, TruncationAndExtensionNeverEscapeTheContract) {
  gt::Rng rng(kSeed + 1);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes = random_message(rng);
    if (rng.bernoulli(0.5)) {
      bytes.resize(rng.index(bytes.size() + 1));  // truncate, possibly to 0
    } else {
      const std::size_t extra = 1 + rng.index(64);
      for (std::size_t k = 0; k < extra; ++k) {
        bytes.push_back(std::uint8_t(rng.index(256)));
      }
    }
    expect_total_decode(bytes, "truncate/extend");
  }
}

TEST(WireFuzz, HeaderLengthLiesNeverEscapeTheContract) {
  gt::Rng rng(kSeed + 2);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes = random_message(rng);
    // Lie about the element count: small lies, huge lies, and the
    // overflow-bait values near 2^64 that would wrap kHeaderSize + 4*d.
    std::uint64_t lie;
    switch (rng.index(4)) {
      case 0: lie = rng.index(1 << 12); break;
      case 1: lie = ~std::uint64_t(0) - rng.index(16); break;
      case 2: lie = (~std::uint64_t(0) >> 2) + rng.index(16); break;
      default: lie = std::uint64_t(1) << (32 + rng.index(32)); break;
    }
    overwrite_u64(bytes, 16, lie);
    expect_total_decode(bytes, "length lie");
    // decode must reject any d that disagrees with the actual byte count.
    const std::uint64_t actual = (bytes.size() - 28) / 4;
    if (lie != actual) {
      EXPECT_THROW((void)gn::decode(bytes), gn::WireError);
    }
  }
}

TEST(WireFuzz, VersionAndMagicSkewAreRejected) {
  gt::Rng rng(kSeed + 3);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes = random_message(rng);
    if (rng.bernoulli(0.5)) {
      // Version skew: every version but the current 1 must be rejected.
      std::uint32_t version = std::uint32_t(rng.index(1 << 16));
      if (version == 1) version = 2;
      for (int i = 0; i < 4; ++i) {
        bytes[4 + std::size_t(i)] = std::uint8_t(version >> (8 * i));
      }
    } else {
      const std::size_t at = rng.index(4);
      bytes[at] ^= std::uint8_t(1 + rng.index(255));
    }
    EXPECT_THROW((void)gn::decode(bytes), gn::WireError);
    EXPECT_THROW((void)gn::encoded_size(bytes), gn::WireError);
  }
}

TEST(WireFuzz, ConcatenationSplitsCleanlyOrThrows) {
  gt::Rng rng(kSeed + 4);
  for (int round = 0; round < 200; ++round) {
    const std::vector<std::uint8_t> first = random_message(rng);
    const std::vector<std::uint8_t> second = random_message(rng);
    std::vector<std::uint8_t> blob = first;
    blob.insert(blob.end(), second.begin(), second.end());

    // decode over the whole container must refuse (size mismatch) — it
    // can never silently read just the first message.
    EXPECT_THROW((void)gn::decode(blob), gn::WireError);

    // encoded_size is the sanctioned splitter: it must report exactly the
    // first message's length, and both halves must decode.
    const std::size_t split = gn::encoded_size(blob);
    ASSERT_EQ(split, first.size());
    const std::span<const std::uint8_t> all(blob);
    EXPECT_NO_THROW((void)gn::decode(all.subspan(0, split)));
    EXPECT_NO_THROW((void)gn::decode(all.subspan(split)));

    // A corrupted first header must not let the splitter run past the end.
    std::vector<std::uint8_t> corrupt = blob;
    corrupt[16 + rng.index(8)] ^= std::uint8_t(1 + rng.index(255));
    try {
      const std::size_t claimed = gn::encoded_size(corrupt);
      EXPECT_LE(claimed, corrupt.size());
    } catch (const gn::WireError&) {
    }
    expect_total_decode(corrupt, "concatenation header corruption");
  }
}

TEST(WireFuzz, RawGarbageNeverEscapesTheContract) {
  gt::Rng rng(kSeed + 5);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> bytes(rng.index(256));
    for (std::uint8_t& b : bytes) b = std::uint8_t(rng.index(256));
    expect_total_decode(bytes, "raw garbage");
  }
}

// ---------------------------------------------------- stream reassembly
//
// The TCP transport's framed-stream decoder (net::frame / net::FrameDecoder)
// faces the read() boundary lottery: a frame may arrive in 1-byte dribbles,
// several frames may coalesce into one read, and a dying peer can cut the
// stream mid-frame. The contract: every complete frame body comes back
// exactly once and byte-identical regardless of boundaries; a truncated
// tail is reported by idle(); a hostile length prefix throws WireError
// before any allocation.

namespace {

std::vector<std::uint8_t> random_body(gt::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> body(rng.index(max_len + 1));
  for (std::uint8_t& b : body) b = std::uint8_t(rng.index(256));
  return body;
}

}  // namespace

TEST(WireStreamFuzz, ArbitrarySplitBoundariesReassembleExactly) {
  gt::Rng rng(kSeed + 7);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + rng.index(6);
    std::vector<std::vector<std::uint8_t>> bodies;
    std::vector<std::uint8_t> stream;
    for (std::size_t k = 0; k < count; ++k) {
      bodies.push_back(random_body(rng, 300));
      const std::vector<std::uint8_t> framed = gn::frame(bodies.back());
      stream.insert(stream.end(), framed.begin(), framed.end());
    }
    gn::FrameDecoder decoder;
    std::vector<std::vector<std::uint8_t>> got;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t chunk = 1 + rng.index(stream.size() - at);
      decoder.feed(std::span<const std::uint8_t>(stream.data() + at, chunk));
      at += chunk;
      while (auto body = decoder.next()) got.push_back(std::move(*body));
    }
    ASSERT_EQ(got.size(), bodies.size()) << "round " << round;
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_EQ(got[k], bodies[k]) << "frame " << k << " round " << round;
    }
    EXPECT_TRUE(decoder.idle()) << "clean stream left a partial frame";
  }
}

TEST(WireStreamFuzz, CoalescedFramesDrainInOneFeed) {
  gt::Rng rng(kSeed + 8);
  for (int round = 0; round < 100; ++round) {
    const std::size_t count = 2 + rng.index(8);
    std::vector<std::vector<std::uint8_t>> bodies;
    std::vector<std::uint8_t> stream;
    for (std::size_t k = 0; k < count; ++k) {
      bodies.push_back(random_body(rng, 120));
      const std::vector<std::uint8_t> framed = gn::frame(bodies.back());
      stream.insert(stream.end(), framed.begin(), framed.end());
    }
    gn::FrameDecoder decoder;
    decoder.feed(stream);  // one read carrying every frame
    std::vector<std::vector<std::uint8_t>> got;
    while (auto body = decoder.next()) got.push_back(std::move(*body));
    ASSERT_EQ(got.size(), bodies.size());
    for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(got[k], bodies[k]);
    EXPECT_TRUE(decoder.idle());
  }
}

TEST(WireStreamFuzz, TruncatedTailAtEofIsDetected) {
  gt::Rng rng(kSeed + 9);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + rng.index(5);
    std::vector<std::size_t> boundaries = {0};  // cumulative frame ends
    std::vector<std::uint8_t> stream;
    for (std::size_t k = 0; k < count; ++k) {
      const std::vector<std::uint8_t> framed =
          gn::frame(random_body(rng, 100));
      stream.insert(stream.end(), framed.begin(), framed.end());
      boundaries.push_back(stream.size());
    }
    // Cut anywhere, including frame boundaries and the full stream.
    const std::size_t cut = rng.index(stream.size() + 1);
    const bool clean_cut =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    const std::size_t whole_frames =
        std::size_t(std::count_if(boundaries.begin() + 1, boundaries.end(),
                                  [cut](std::size_t b) { return b <= cut; }));
    gn::FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), cut));
    std::size_t got = 0;
    while (decoder.next()) ++got;
    EXPECT_EQ(got, whole_frames) << "cut " << cut << " round " << round;
    // EOF now: idle() must say whether the peer died mid-frame.
    EXPECT_EQ(decoder.idle(), clean_cut) << "cut " << cut;
  }
}

TEST(WireStreamFuzz, OversizeLengthPrefixThrowsBeforeAllocation) {
  // A hostile prefix must fail as soon as its 4 bytes are buffered — even
  // when they arrive split across feeds — not when next() would size a
  // buffer by it.
  gn::FrameDecoder decoder(/*max_frame=*/64);
  std::vector<std::uint8_t> prefix = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB
  decoder.feed(std::span<const std::uint8_t>(prefix.data(), 2));
  EXPECT_THROW(
      decoder.feed(std::span<const std::uint8_t>(prefix.data() + 2, 2)),
      gn::WireError);

  // frame() enforces the same limit on the send side.
  const std::vector<std::uint8_t> big(65, 0);
  EXPECT_THROW((void)gn::frame(big, /*max_frame=*/64), gn::WireError);
  EXPECT_NO_THROW((void)gn::frame(
      std::span<const std::uint8_t>(big.data(), 64), /*max_frame=*/64));
}

TEST(WireStreamFuzz, CorruptedFrameBodyIsSkippedNotFatal) {
  // A flipped bit inside one frame's body must lose exactly that message:
  // the decoder skips it, counts it, and keeps delivering the frames
  // around it — the stream stays alive for the retry layer above.
  gt::Rng rng(kSeed + 10);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::vector<std::uint8_t>> bodies;
    std::vector<std::uint8_t> stream;
    std::size_t victim_at = 0;  // stream offset of the middle frame
    for (std::size_t k = 0; k < 3; ++k) {
      bodies.push_back(random_body(rng, 200));
      if (bodies.back().empty()) bodies.back().push_back(0x5A);
      if (k == 1) victim_at = stream.size();
      const std::vector<std::uint8_t> framed = gn::frame(bodies.back());
      stream.insert(stream.end(), framed.begin(), framed.end());
    }
    // Flip a byte of the middle frame — in its body, or in the prefix CRC
    // itself (either way the body no longer matches the CRC).
    const std::size_t body_len = bodies[1].size();
    const std::size_t at =
        rng.bernoulli(0.25)
            ? victim_at + 4 + rng.index(4)  // CRC field
            : victim_at + gn::kFramePrefixBytes + rng.index(body_len);
    stream[at] ^= std::uint8_t(1U << rng.index(8));

    gn::FrameDecoder decoder;
    decoder.feed(stream);
    std::vector<std::vector<std::uint8_t>> got;
    while (auto body = decoder.next()) got.push_back(std::move(*body));
    ASSERT_EQ(got.size(), 2u) << "round " << round;
    EXPECT_EQ(got[0], bodies[0]);
    EXPECT_EQ(got[1], bodies[2]);
    EXPECT_EQ(decoder.corrupt_frames(), 1u);
    EXPECT_TRUE(decoder.idle());
  }
}

TEST(WireStreamFuzz, ManyCorruptFramesAcrossSplitBoundaries) {
  // Randomized composition: corrupt a random subset of frame bodies, feed
  // the stream in random slices, and require exactly the clean bodies in
  // order with the corrupt ones counted.
  gt::Rng rng(kSeed + 11);
  for (int round = 0; round < 100; ++round) {
    const std::size_t count = 2 + rng.index(8);
    std::vector<std::vector<std::uint8_t>> clean_bodies;
    std::vector<std::uint8_t> stream;
    std::size_t corrupted = 0;
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::uint8_t> body = random_body(rng, 150);
      if (body.empty()) body.push_back(std::uint8_t(k));
      const std::vector<std::uint8_t> framed = gn::frame(body);
      const std::size_t start = stream.size();
      stream.insert(stream.end(), framed.begin(), framed.end());
      if (rng.bernoulli(0.4)) {
        // Corrupt body bytes only — the length field must stay honest or
        // the framing itself desyncs, which is a different failure mode
        // (a dead peer), not a lost message.
        stream[start + gn::kFramePrefixBytes + rng.index(body.size())] ^=
            std::uint8_t(1 + rng.index(255));
        ++corrupted;
      } else {
        clean_bodies.push_back(std::move(body));
      }
    }
    gn::FrameDecoder decoder;
    std::vector<std::vector<std::uint8_t>> got;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t chunk = 1 + rng.index(stream.size() - at);
      decoder.feed(std::span<const std::uint8_t>(stream.data() + at, chunk));
      at += chunk;
      while (auto body = decoder.next()) got.push_back(std::move(*body));
    }
    ASSERT_EQ(got.size(), clean_bodies.size()) << "round " << round;
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k], clean_bodies[k]) << "frame " << k;
    }
    EXPECT_EQ(decoder.corrupt_frames(), corrupted) << "round " << round;
    EXPECT_TRUE(decoder.idle());
  }
}

TEST(WireStreamFuzz, CorruptedCodecPayloadsNeverEscapeTheIngressGates) {
  // End-to-end adversarial pipeline for the compression path: encode a
  // gradient with a wire codec, wrap it in a wire message, frame it for
  // the TCP stream, then run the full receive path — FrameDecoder ->
  // wire decode -> Codec::decode. Two attacker models per round:
  //   - link noise: flip raw bytes of the framed stream. The frame and
  //     wire CRCs screen these; they must be dropped, never fatal.
  //   - Byzantine sender: corrupt the *encoded codec floats* and then
  //     frame them with honest CRCs. These always survive the CRC
  //     layers and land on Codec::decode — the ingress gate the codec
  //     exists for. Contract: nullopt or a well-formed d-float vector;
  //     no other exception type, no out-of-bounds scatter from a
  //     corrupted top-k index (ASan-checked in the debug-asan preset).
  gt::Rng rng(kSeed + 12);
  const gn::Codec topk(gn::CodecSpec::parse("topk:k=0.25"));
  const gn::Codec int8(gn::CodecSpec::parse("int8"));
  std::size_t reached_codec = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 400; ++round) {
    const std::size_t d = 1 + rng.index(64);
    std::vector<float> dense(d);
    for (float& x : dense) x = rng.normal();
    const gn::Codec& codec = rng.bernoulli(0.5) ? topk : int8;
    std::vector<float> encoded = codec.encode_gradient(dense);
    const bool byzantine_sender = rng.bernoulli(0.5);
    if (byzantine_sender && !encoded.empty()) {
      switch (rng.index(4)) {
        case 0: {  // bit-flip inside the encoded words (indices, scale, k)
          const std::size_t flips = 1 + rng.index(4);
          for (std::size_t k = 0; k < flips; ++k) {
            std::uint32_t bits;
            float& slot = encoded[rng.index(encoded.size())];
            std::memcpy(&bits, &slot, sizeof bits);
            bits ^= 1U << rng.index(32);
            std::memcpy(&slot, &bits, sizeof bits);
          }
          break;
        }
        case 1:  // truncate the encoded frame, possibly to nothing
          encoded.resize(rng.index(encoded.size()));
          break;
        case 2: {  // pad with junk words
          const std::size_t extra = 1 + rng.index(8);
          for (std::size_t k = 0; k < extra; ++k)
            encoded.push_back(rng.normal() * 1e6F);
          break;
        }
        default:  // scramble a header/index slot with a huge value
          encoded[rng.index(std::min<std::size_t>(encoded.size(), 4))] =
              float(1U << (10 + rng.index(20)));
          break;
      }
    }
    std::vector<std::uint8_t> framed =
        gn::frame(gn::encode(std::uint64_t(round), encoded));
    if (!byzantine_sender) {
      const std::size_t flips = 1 + rng.index(6);
      for (std::size_t k = 0; k < flips; ++k) {
        framed[rng.index(framed.size())] ^= std::uint8_t(1U << rng.index(8));
      }
    }
    gn::FrameDecoder decoder;
    try {
      decoder.feed(framed);
      while (auto body = decoder.next()) {
        try {
          const gn::WireMessage msg = gn::decode(*body);
          ++reached_codec;
          const std::optional<std::vector<float>> back =
              codec.decode(msg.payload, d);
          if (back.has_value()) {
            EXPECT_EQ(back->size(), d);
          } else {
            ++rejected;
          }
        } catch (const gn::WireError&) {
          // The wire CRC layer caught it first — also a valid outcome.
        } catch (const std::exception& e) {
          FAIL() << "codec pipeline leaked a non-WireError exception: "
                 << e.what();
        }
      }
    } catch (const gn::WireError&) {
      continue;  // hostile length prefix: rejected before any allocation
    }
  }
  // The Byzantine-sender rounds must actually exercise the gate — both
  // sides of it. (Deterministic seed: these counts are stable.)
  EXPECT_GT(reached_codec, 0u)
      << "no frame ever reached Codec::decode — the case is dead";
  EXPECT_GT(rejected, 0u)
      << "the ingress gate never fired — corruption was too gentle";
}

TEST(WireFuzz, UncorruptedRoundTripStillHolds) {
  // Sanity anchor for the suite: with no corruption, decode(encode(x)) == x.
  gt::Rng rng(kSeed + 6);
  for (int round = 0; round < 100; ++round) {
    const std::vector<float> payload = random_payload(rng);
    const std::uint64_t iteration = rng.index(1 << 30);
    const gn::WireMessage msg = gn::decode(gn::encode(iteration, payload));
    EXPECT_EQ(msg.iteration, iteration);
    EXPECT_EQ(msg.payload, payload);
  }
}
