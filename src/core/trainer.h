// Deployment trainers: the five applications of §5 and §6.2, runnable on
// the in-process threaded cluster.
//
//  - Vanilla          : 1 trusted server, plain averaging (the TF/PyTorch
//                       baseline).
//  - CrashTolerant    : primary/backup replicated servers with averaging;
//                       survives fail-silent crashes but not Byzantine lies.
//  - SSMW (Listing 1) : single trusted server + robust gradient GAR
//                       (the AggregaThor architecture).
//  - MSMW (Listing 2) : replicated servers; robust GAR on gradients *and*
//                       on models, with a model-exchange round per step.
//  - Decentralized (Listing 3): peer-to-peer, every node is Server+Worker,
//                       optional multi-round contraction for non-iid data.
//
// Every loop is executed by one thread per server/peer; workers are
// passive RPC handlers. Evaluation probes run on the reporting replica.
#pragma once

#include <vector>

#include "core/config.h"
#include "net/cluster.h"

namespace garfield::core {

/// One accuracy probe on the reporting replica.
struct EvalPoint {
  std::size_t iteration = 0;
  double accuracy = 0.0;
  double loss = 0.0;
};

/// One Table-2 alignment probe: |cos(angle)| between the two largest
/// parameter-difference vectors across correct server replicas (the sign
/// of a difference vector is an artifact of pair ordering).
struct AlignmentSample {
  std::size_t iteration = 0;
  double cos_phi = 0.0;
  double max_diff1 = 0.0;
  double max_diff2 = 0.0;
};

struct TrainResult {
  std::vector<EvalPoint> curve;         ///< reporting replica's probes
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  net::NetStats net_stats;              ///< whole-cluster traffic
  /// Malformed payloads (wrong dimension / NaN / Inf) dropped at server
  /// ingress, summed over all correct servers.
  std::uint64_t rejected_payloads = 0;
  /// Gradient replies served across all workers, and the forward/backward
  /// passes actually run to produce them — the gap is what the workers'
  /// per-iteration gradient cache saved (served == nps * computed in a
  /// fully-hitting parameter-server run).
  std::uint64_t gradients_served = 0;
  std::uint64_t gradients_computed = 0;
  std::vector<AlignmentSample> alignment;
  std::size_t iterations_run = 0;
  /// The reporting replica's (server 0 / peer 0) final parameter vector,
  /// bit-exact. Sync deployments are bitwise deterministic, so this is the
  /// cross-backend parity probe: an `inproc` and a `tcp` run of the same
  /// config must produce identical bytes here.
  net::Payload final_parameters;
  /// Byzantine-recovery state transfer outcomes, summed over every
  /// recovery the churn schedule drove: peer checkpoint blobs adopted
  /// after their whole-blob digest verified, and blobs rejected by that
  /// verification (a corrupt_recovery peer tampering post-seal, a torn
  /// carrier, a dimension mismatch). A run where recovering replicas hit
  /// tampered peers shows rejects > 0 while the honest trajectory
  /// continues unchanged.
  std::uint64_t state_transfers = 0;
  std::uint64_t state_transfer_rejects = 0;
  /// Gradient replies the reporting replica's pull returned per iteration —
  /// the live quorum trajectory. Under a churn schedule this is what the
  /// analytic plane predicts as span - count_down(span, it); compared
  /// directly in the churn crossval tests. Empty when the reporting
  /// replica's loop itself was churned past iterations (its counter then
  /// skips the crash window).
  std::vector<std::size_t> reporting_gradient_counts;
};

/// Run the configured deployment to completion and report its curve.
/// Throws std::runtime_error when a churn schedule drops the scheduled
/// availability of a cohort below its GAR's min_n(f) resilience floor —
/// aggregating below the (n, f) bound would silently void the paper's
/// guarantees, so the run aborts loudly instead.
[[nodiscard]] TrainResult train(const DeploymentConfig& config);

}  // namespace garfield::core
