// Figure 4 — convergence of Garfield applications vs baselines
// (accuracy against training iterations).
//
//  Fig 4a (paper): CifarNet on the TensorFlow CPU cluster; here the
//  cifarnet-class task with all five deployments plus the AggregaThor
//  configuration (SSMW + Multi-Krum, synchronous — its architecture).
//  Fig 4b (paper): ResNet-50 on GPUs; here the mnist_cnn-class task with
//  asynchronous MSMW/decentralized, showing the Byzantine accuracy gap.
//
// Expected shapes: every system converges; Byzantine-resilient deployments
// trail slightly; asynchrony + decentralization lose the most accuracy;
// crash tolerance loses none.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"

namespace {

using namespace garfield::core;

DeploymentConfig task(const std::string& model, std::size_t iterations) {
  DeploymentConfig cfg;
  cfg.model = model;
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.dataset_noise = 1.2F;  // headroom so accuracy differences show
  cfg.optimizer.lr.gamma0 = 0.08F;
  cfg.iterations = iterations;
  cfg.eval_every = iterations / 10;
  cfg.seed = 21;
  return cfg;
}

void print_panel(const char* title,
                 const std::vector<std::pair<std::string, TrainResult>>& rs) {
  std::printf("\n%s\n", title);
  std::printf("%-10s", "iteration");
  for (const auto& [name, _] : rs) std::printf("%-18s", name.c_str());
  std::printf("\n");
  const auto& ref = rs.front().second.curve;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%-10zu", ref[i].iteration);
    for (const auto& [_, r] : rs) {
      std::printf("%-18.3f", i < r.curve.size() ? r.curve[i].accuracy : 0.0);
    }
    std::printf("\n");
  }
  std::printf("final:    ");
  for (const auto& [_, r] : rs) std::printf("%-18.3f", r.final_accuracy);
  std::printf("\n");
}

}  // namespace

int main() {
  // ----- Fig 4a: synchronous CPU-cluster-style comparison -----
  std::vector<std::pair<std::string, TrainResult>> panel_a;
  {
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kVanilla;
    cfg.nw = 9;
    panel_a.emplace_back("vanilla", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kCrashTolerant;
    cfg.nw = 9;
    cfg.nps = 3;
    panel_a.emplace_back("crash_tolerant", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kSsmw;
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.gradient_gar = "multi_krum";
    panel_a.emplace_back("ssmw", train(garfield::bench::smoke(cfg)));
  }
  {
    // AggregaThor's architecture: SSMW + Multi-Krum, synchronous network.
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kSsmw;
    cfg.nw = 9;
    cfg.fw = 2;
    cfg.gradient_gar = "multi_krum";
    cfg.asynchronous = false;
    panel_a.emplace_back("aggregathor", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kMsmw;
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.nps = 3;
    cfg.fps = 0;
    cfg.gradient_gar = "multi_krum";
    cfg.model_gar = "median";
    panel_a.emplace_back("msmw", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("tiny_mlp", 300);
    cfg.deployment = Deployment::kDecentralized;
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.gradient_gar = "median";
    cfg.model_gar = "median";
    panel_a.emplace_back("decentralized", train(garfield::bench::smoke(cfg)));
  }
  print_panel("Fig 4a — convergence, CifarNet-class task (accuracy vs iteration)",
              panel_a);

  // ----- Fig 4b: asynchronous GPU-cluster-style comparison, larger model -----
  std::vector<std::pair<std::string, TrainResult>> panel_b;
  {
    DeploymentConfig cfg = task("mnist_cnn", 200);
    cfg.deployment = Deployment::kVanilla;
    cfg.nw = 10;
    panel_b.emplace_back("vanilla", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("mnist_cnn", 200);
    cfg.deployment = Deployment::kCrashTolerant;
    cfg.nw = 10;
    cfg.nps = 3;
    panel_b.emplace_back("crash_tolerant", train(garfield::bench::smoke(cfg)));
  }
  {
    // The paper's PyTorch variant: Multi-Krum under network synchrony.
    DeploymentConfig cfg = task("mnist_cnn", 200);
    cfg.deployment = Deployment::kSsmw;
    cfg.nw = 10;
    cfg.fw = 3;
    cfg.gradient_gar = "multi_krum";
    cfg.asynchronous = false;
    panel_b.emplace_back("ssmw", train(garfield::bench::smoke(cfg)));
  }
  {
    // The paper's TensorFlow variant: Bulyan under asynchrony
    // (nw - fw = 7 >= 4*fw + 3 for fw = 1).
    DeploymentConfig cfg = task("mnist_cnn", 200);
    cfg.deployment = Deployment::kMsmw;
    cfg.nw = 8;
    cfg.fw = 1;
    cfg.nps = 3;
    cfg.fps = 0;
    cfg.gradient_gar = "bulyan";
    cfg.model_gar = "median";
    cfg.asynchronous = true;
    panel_b.emplace_back("msmw", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = task("mnist_cnn", 200);
    cfg.deployment = Deployment::kDecentralized;
    cfg.nw = 10;
    cfg.fw = 3;
    cfg.gradient_gar = "median";
    cfg.model_gar = "median";
    panel_b.emplace_back("decentralized", train(garfield::bench::smoke(cfg)));
  }
  print_panel("Fig 4b — convergence, larger model, asynchronous variants "
              "(accuracy vs iteration)",
              panel_b);

  std::printf("\nPaper shapes to check: all panel-a systems reach similar "
              "accuracy;\npanel-b Byzantine deployments (especially "
              "decentralized) trail vanilla;\ncrash-tolerant matches "
              "vanilla.\n");
  return 0;
}
