#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#include "net/wire.h"

namespace garfield::core {

namespace {

/// Digest trailer: magic "GCKD" + CRC-32 of every byte before it.
constexpr std::uint32_t kDigestMagic = 0x444b4347;  // "GCKD" little-endian
constexpr std::size_t kDigestTrailerBytes = 8;

std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t(in[at + std::size_t(i)]) << (8 * i);
  }
  return v;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

/// Digest check first, message decodes second — a blob that fails its
/// digest is rejected before a single header field is trusted. Returns
/// the body (trailer stripped).
std::span<const std::uint8_t> verify_digest(
    std::span<const std::uint8_t> bytes, const std::string& context) {
  if (bytes.size() < net::wire_size(0) + kDigestTrailerBytes) {
    throw net::WireError(context + ": truncated blob (" +
                         std::to_string(bytes.size()) +
                         " bytes, shorter than a message plus digest)");
  }
  const std::size_t body_size = bytes.size() - kDigestTrailerBytes;
  if (read_u32(bytes, body_size) != kDigestMagic) {
    throw net::WireError(context +
                         ": missing digest trailer (pre-digest blob, or "
                         "the trailer itself was damaged)");
  }
  const std::uint32_t stored = read_u32(bytes, body_size + 4);
  if (net::crc32(bytes.first(body_size)) != stored) {
    throw net::WireError(context +
                         ": digest mismatch — state blob corrupted or "
                         "tampered with; rejecting before decode");
  }
  return bytes.first(body_size);
}

/// True when the blob ends in a digest trailer (by magic). Distinguishes
/// the current format from pre-digest on-disk checkpoints.
bool has_digest_trailer(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= net::wire_size(0) + kDigestTrailerBytes &&
         read_u32(bytes, bytes.size() - kDigestTrailerBytes) == kDigestMagic;
}

/// Decode the message body (digest already stripped/absent): parameters
/// message, optionally followed by a velocity message with a matching
/// iteration tag and dimension.
Checkpoint decode_messages(std::span<const std::uint8_t> body,
                           const std::string& context) {
  const std::size_t head = net::encoded_size(body);
  net::WireMessage msg = net::decode(body.first(head));
  Checkpoint checkpoint{msg.iteration, std::move(msg.payload), {}};
  if (head < body.size()) {
    net::WireMessage tail = net::decode(body.subspan(head));
    if (tail.iteration != checkpoint.iteration) {
      throw net::WireError(
          context + ": velocity iteration tag mismatch (parameters at " +
          std::to_string(checkpoint.iteration) + ", velocity at " +
          std::to_string(tail.iteration) + ")");
    }
    // A mismatched velocity would be silently discarded by the optimizer's
    // first step — fail loudly here instead, like every other corruption.
    if (tail.payload.size() != checkpoint.parameters.size()) {
      throw net::WireError(
          context + ": velocity dimension mismatch (" +
          std::to_string(tail.payload.size()) + " vs " +
          std::to_string(checkpoint.parameters.size()) + " parameters)");
    }
    checkpoint.velocity = std::move(tail.payload);
  }
  return checkpoint;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint_blob(
    const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> blob =
      net::encode(checkpoint.iteration, checkpoint.parameters);
  if (!checkpoint.velocity.empty()) {
    const std::vector<std::uint8_t> tail =
        net::encode(checkpoint.iteration, checkpoint.velocity);
    blob.insert(blob.end(), tail.begin(), tail.end());
  }
  const std::uint32_t digest = net::crc32(blob);
  append_u32(blob, kDigestMagic);
  append_u32(blob, digest);
  return blob;
}

Checkpoint decode_checkpoint_blob(std::span<const std::uint8_t> bytes,
                                  const std::string& context) {
  return decode_messages(verify_digest(bytes, context), context);
}

net::Payload pack_bytes(std::span<const std::uint8_t> bytes) {
  net::Payload carrier(1 + (bytes.size() + 3) / 4, 0.0F);
  const std::uint32_t size = std::uint32_t(bytes.size());
  std::memcpy(carrier.data(), &size, 4);
  if (!bytes.empty()) {
    std::memcpy(carrier.data() + 1, bytes.data(), bytes.size());
  }
  return carrier;
}

std::vector<std::uint8_t> unpack_bytes(std::span<const float> carrier,
                                       const std::string& context) {
  if (carrier.empty()) {
    throw net::WireError(context + ": empty byte carrier");
  }
  std::uint32_t size = 0;
  std::memcpy(&size, carrier.data(), 4);
  const std::size_t capacity = (carrier.size() - 1) * 4;
  if (size > capacity || capacity - size >= 4) {
    throw net::WireError(context + ": byte carrier claims " +
                         std::to_string(size) + " bytes but holds " +
                         std::to_string(capacity));
  }
  std::vector<std::uint8_t> bytes(size);
  if (size > 0) std::memcpy(bytes.data(), carrier.data() + 1, size);
  return bytes;
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  const std::vector<std::uint8_t> blob = encode_checkpoint_blob(checkpoint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  // The rename only makes the checkpoint durable if the tmp file's bytes
  // reached the disk first — otherwise a crash right after the rename can
  // leave `path` pointing at a hole, exactly the corrupt state a
  // recovering node would then transfer. fsync before the swap.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot reopen '" + tmp +
                             "' for fsync");
  }
  const int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    std::error_code discard;
    std::filesystem::remove(tmp, discard);
    throw std::runtime_error("checkpoint: fsync failed for " + tmp);
  }
  std::error_code rename_error;
  std::filesystem::rename(tmp, path, rename_error);  // atomic on POSIX
  if (rename_error) {
    // Leave the previous checkpoint (if any) untouched; the tmp file is
    // ours to clean up.
    std::error_code discard;
    std::filesystem::remove(tmp, discard);
    throw std::runtime_error("checkpoint: rename to '" + path +
                             "' failed: " + rename_error.message());
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size), 0);
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed for " + path);
  const std::span<const std::uint8_t> bytes(blob);
  // Size-gate before the decoder sees the blob: the digest check reads the
  // trailer, so an empty or short file would surface as a confusing wire
  // error instead of naming the real problem — the checkpoint on disk is
  // incomplete.
  if (bytes.empty()) {
    throw net::WireError("checkpoint: empty file '" + path + "'");
  }
  if (bytes.size() < net::wire_size(0)) {
    throw net::WireError("checkpoint: truncated file '" + path + "' (" +
                         std::to_string(bytes.size()) +
                         " bytes, shorter than a header)");
  }
  // Digest before any decode: a bit-flipped blob that keeps a plausible
  // message header must never reach the field decoders. Files written
  // before the digest trailer existed carry bare messages; those still
  // load on the per-message CRCs alone (local disk only — the RPC
  // state-transfer path always requires the digest).
  if (!has_digest_trailer(bytes)) {
    return decode_messages(bytes, "checkpoint '" + path + "'");
  }
  return decode_checkpoint_blob(bytes, "checkpoint '" + path + "'");
}

}  // namespace garfield::core
