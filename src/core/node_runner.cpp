#include "core/node_runner.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/controller.h"
#include "core/train_loop.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace garfield::core {

namespace {

// ------------------------------------------------------------ result blob
//
// Rank 0 ships its TrainResult back to the parent as a small binary file:
// magic "GRTR", version, an ok/abort flag with the abort reason, the
// scalar counters, the curves, and the final parameter vector as a
// net/wire blob (magic + CRC, so a torn write cannot decode as a model).

constexpr std::uint32_t kResultMagic = 0x52545247;  // "GRTR" little-endian
// v2: fault/retry NetStats (faults_injected, retries, retry_give_ups,
// peer_deaths) and the Byzantine-recovery state-transfer counters.
// v3: bytes_saved (wire-codec compression credit).
constexpr std::uint32_t kResultVersion = 3;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reads over the result blob; a short file
/// must surface as a pointed error, never as UB.
struct BlobReader {
  std::span<const std::uint8_t> bytes;
  std::size_t at = 0;

  void need(std::size_t n) const {
    if (bytes.size() - at < n) {
      throw std::runtime_error("node result blob truncated");
    }
  }
  std::uint8_t u8() {
    need(1);
    return bytes[at++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t(bytes[at + std::size_t(i)]) << (8 * i);
    }
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t(bytes[at + std::size_t(i)]) << (8 * i);
    }
    at += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes.data() + at), n);
    at += n;
    return s;
  }
};

void put_header(std::vector<std::uint8_t>& out, bool ok,
                const std::string& reason) {
  put_u32(out, kResultMagic);
  put_u32(out, kResultVersion);
  out.push_back(ok ? 1 : 0);
  put_u32(out, std::uint32_t(reason.size()));
  out.insert(out.end(), reason.begin(), reason.end());
}

std::vector<std::uint8_t> encode_abort(const std::string& reason) {
  std::vector<std::uint8_t> out;
  put_header(out, /*ok=*/false, reason);
  return out;
}

std::vector<std::uint8_t> encode_result(const TrainResult& r) {
  std::vector<std::uint8_t> out;
  put_header(out, /*ok=*/true, "");
  put_u64(out, r.iterations_run);
  put_f64(out, r.final_accuracy);
  put_f64(out, r.final_loss);
  put_u64(out, r.rejected_payloads);
  put_u64(out, r.gradients_served);
  put_u64(out, r.gradients_computed);
  put_u64(out, r.net_stats.requests_sent);
  put_u64(out, r.net_stats.replies_received);
  put_u64(out, r.net_stats.floats_transferred);
  put_u64(out, r.net_stats.wasted_replies);
  put_u64(out, r.net_stats.quorum_misses);
  put_u64(out, r.net_stats.dropped_tasks);
  put_u64(out, r.net_stats.bytes_sent);
  put_u64(out, r.net_stats.bytes_received);
  put_u64(out, r.net_stats.bytes_saved);
  put_u64(out, r.net_stats.faults_injected);
  put_u64(out, r.net_stats.retries);
  put_u64(out, r.net_stats.retry_give_ups);
  put_u64(out, r.net_stats.peer_deaths);
  put_u64(out, r.state_transfers);
  put_u64(out, r.state_transfer_rejects);
  put_u64(out, r.curve.size());
  for (const EvalPoint& p : r.curve) {
    put_u64(out, p.iteration);
    put_f64(out, p.accuracy);
    put_f64(out, p.loss);
  }
  put_u64(out, r.reporting_gradient_counts.size());
  for (std::size_t c : r.reporting_gradient_counts) put_u64(out, c);
  put_u64(out, r.alignment.size());
  for (const AlignmentSample& a : r.alignment) {
    put_u64(out, a.iteration);
    put_f64(out, a.cos_phi);
    put_f64(out, a.max_diff1);
    put_f64(out, a.max_diff2);
  }
  const std::vector<std::uint8_t> params =
      net::encode(r.iterations_run, r.final_parameters);
  put_u64(out, params.size());
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

/// Decode, or rethrow the child's abort reason.
TrainResult decode_result(std::span<const std::uint8_t> bytes) {
  BlobReader in{bytes};
  if (in.u32() != kResultMagic) {
    throw std::runtime_error("node result blob: bad magic");
  }
  const std::uint32_t version = in.u32();
  if (version != kResultVersion) {
    throw std::runtime_error("node result blob: unsupported version " +
                             std::to_string(version));
  }
  const bool ok = in.u8() != 0;
  const std::string reason = in.str(in.u32());
  if (!ok) throw std::runtime_error(reason);
  TrainResult r;
  r.iterations_run = std::size_t(in.u64());
  r.final_accuracy = in.f64();
  r.final_loss = in.f64();
  r.rejected_payloads = in.u64();
  r.gradients_served = in.u64();
  r.gradients_computed = in.u64();
  r.net_stats.requests_sent = in.u64();
  r.net_stats.replies_received = in.u64();
  r.net_stats.floats_transferred = in.u64();
  r.net_stats.wasted_replies = in.u64();
  r.net_stats.quorum_misses = in.u64();
  r.net_stats.dropped_tasks = in.u64();
  r.net_stats.bytes_sent = in.u64();
  r.net_stats.bytes_received = in.u64();
  r.net_stats.bytes_saved = in.u64();
  r.net_stats.faults_injected = in.u64();
  r.net_stats.retries = in.u64();
  r.net_stats.retry_give_ups = in.u64();
  r.net_stats.peer_deaths = in.u64();
  r.state_transfers = in.u64();
  r.state_transfer_rejects = in.u64();
  const std::uint64_t curve_n = in.u64();
  for (std::uint64_t i = 0; i < curve_n; ++i) {
    EvalPoint p;
    p.iteration = std::size_t(in.u64());
    p.accuracy = in.f64();
    p.loss = in.f64();
    r.curve.push_back(p);
  }
  const std::uint64_t counts_n = in.u64();
  for (std::uint64_t i = 0; i < counts_n; ++i) {
    r.reporting_gradient_counts.push_back(std::size_t(in.u64()));
  }
  const std::uint64_t align_n = in.u64();
  for (std::uint64_t i = 0; i < align_n; ++i) {
    AlignmentSample a;
    a.iteration = std::size_t(in.u64());
    a.cos_phi = in.f64();
    a.max_diff1 = in.f64();
    a.max_diff2 = in.f64();
    r.alignment.push_back(a);
  }
  const std::uint64_t params_len = in.u64();
  in.need(params_len);
  net::WireMessage msg =
      net::decode(bytes.subspan(in.at, std::size_t(params_len)));
  r.final_parameters = std::move(msg.payload);
  return r;
}

void write_file(const std::string& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

// ----------------------------------------------------------- orchestrator

struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Bind a kernel-assigned loopback port and put it into listen() — done in
/// the parent for every rank before any fork, so no child can race another
/// child's bind and every connect() in the mesh handshake finds an
/// established backlog.
Listener bind_loopback(int backlog) {
  Listener l;
  l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // kernel-assigned
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(l.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(l.fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(l.fd);
    throw std::runtime_error("bind/listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(l.fd);
    throw std::runtime_error("getsockname: " + err);
  }
  l.port = ntohs(addr.sin_port);
  return l;
}

/// Locate the garfield_node launcher: the GARFIELD_NODE_BIN override
/// first (tests point it at the build tree), then siblings of the current
/// executable — covering tests (build/<test>) and tools (build/tools/<t>)
/// in the same build tree.
std::string find_node_binary() {
  if (const char* env = std::getenv("GARFIELD_NODE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string exe(buf);
  const auto slash = exe.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : exe.substr(0, slash);
  for (const std::string& candidate :
       {dir + "/garfield_node", dir + "/tools/garfield_node",
        dir + "/../tools/garfield_node"}) {
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

namespace detail {

TrainResult train_multiprocess(const DeploymentConfig& config) {
  const std::size_t nodes = config.total_nodes();

  const std::string node_bin = find_node_binary();
  if (node_bin.empty()) {
    throw std::runtime_error(
        "transport=tcp: cannot locate the garfield_node launcher — build "
        "the tools (GARFIELD_BUILD_TOOLS) or set GARFIELD_NODE_BIN");
  }

  std::vector<Listener> listeners;
  listeners.reserve(nodes);
  for (std::size_t r = 0; r < nodes; ++r) {
    listeners.push_back(bind_loopback(int(nodes) + 8));
  }
  std::string ports_arg;
  for (std::size_t r = 0; r < nodes; ++r) {
    if (r > 0) ports_arg += ',';
    ports_arg += std::to_string(listeners[r].port);
  }

  char dir_template[] = "/tmp/garfield_mp.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    for (const Listener& l : listeners) ::close(l.fd);
    throw std::runtime_error("mkdtemp failed");
  }
  const std::string dir(dir_template);
  const std::string config_path = dir + "/deployment.conf";
  const std::string result_path = dir + "/result.grtr";
  const std::string config_text = format_config(config);
  write_file(config_path,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(config_text.data()),
                 config_text.size()));

  // Argv strings are composed before fork so the child only execs.
  std::vector<std::vector<std::string>> argv_strings(nodes);
  for (std::size_t r = 0; r < nodes; ++r) {
    argv_strings[r] = {node_bin,
                       "--rank",      std::to_string(r),
                       "--nodes",     std::to_string(nodes),
                       "--listen-fd", std::to_string(listeners[r].fd),
                       "--ports",     ports_arg,
                       "--config",    config_path};
    if (r == 0) {
      argv_strings[r].push_back("--result");
      argv_strings[r].push_back(result_path);
    }
  }

  std::vector<pid_t> pids(nodes, -1);
  for (std::size_t r = 0; r < nodes; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (std::size_t k = 0; k < nodes; ++k) {
        if (pids[k] > 0) ::kill(pids[k], SIGKILL);
      }
      for (std::size_t k = 0; k < nodes; ++k) {
        if (pids[k] > 0) (void)::waitpid(pids[k], nullptr, 0);
      }
      for (const Listener& l : listeners) ::close(l.fd);
      throw std::runtime_error("fork failed");
    }
    if (pid == 0) {
      // Child: keep only our own listener; exec the launcher.
      for (std::size_t k = 0; k < nodes; ++k) {
        if (k != r) ::close(listeners[k].fd);
      }
      std::vector<char*> argv;
      argv.reserve(argv_strings[r].size() + 1);
      for (std::string& s : argv_strings[r]) argv.push_back(s.data());
      argv.push_back(nullptr);
      ::execv(node_bin.c_str(), argv.data());
      _exit(127);
    }
    pids[r] = pid;
  }
  for (const Listener& l : listeners) ::close(l.fd);

  // Reap every child, SIGKILLing the stragglers once the deadline passes —
  // a wedged mesh must become a thrown error, not a hung parent.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  std::vector<int> status(nodes, 0);
  std::vector<bool> reaped(nodes, false);
  std::size_t remaining = nodes;
  bool killed = false;
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < nodes; ++r) {
      if (reaped[r]) continue;
      int st = 0;
      const pid_t p = ::waitpid(pids[r], &st, WNOHANG);
      if (p == pids[r]) {
        status[r] = st;
        reaped[r] = true;
        --remaining;
        progressed = true;
      }
    }
    if (remaining == 0) break;
    if (!killed && std::chrono::steady_clock::now() >= deadline) {
      killed = true;
      for (std::size_t r = 0; r < nodes; ++r) {
        if (!reaped[r]) ::kill(pids[r], SIGKILL);
      }
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::string failure;
  if (killed) {
    failure = "transport=tcp: node processes exceeded the run deadline";
  } else {
    for (std::size_t r = 0; r < nodes; ++r) {
      if (status[r] != 0) {
        failure = "transport=tcp: node rank " + std::to_string(r) +
                  " failed (" + describe_exit(status[r]) + ")";
        break;
      }
    }
  }

  TrainResult result;
  std::string decode_failure;
  if (failure.empty()) {
    try {
      const std::vector<std::uint8_t> blob = read_file(result_path);
      result = decode_result(blob);
    } catch (const std::exception& e) {
      decode_failure = e.what();
    }
  }

  ::unlink(config_path.c_str());
  ::unlink(result_path.c_str());
  ::rmdir(dir.c_str());

  if (!failure.empty()) throw std::runtime_error(failure);
  if (!decode_failure.empty()) throw std::runtime_error(decode_failure);
  return result;
}

}  // namespace detail

int run_node(const DeploymentConfig& config, const NodeOptions& options) {
  const auto fail = [&options](const std::string& what, int code) {
    std::cerr << "garfield_node[" << options.rank << "]: " << what << '\n';
    return code;
  };
  try {
    config.validate();
    if (config.transport != "tcp") {
      return fail("config does not select transport=tcp", 2);
    }
    if (options.nodes != config.total_nodes()) {
      return fail("--nodes does not match the config's node count", 2);
    }

    net::TcpTransport::Options topts;
    topts.rank = options.rank;
    topts.nodes = options.nodes;
    topts.listen_fd = options.listen_fd;
    topts.ports = options.ports;
    topts.pool_threads = config.pool_threads;
    auto transport = std::make_shared<net::TcpTransport>(topts);

    detail::Runtime rt;
    rt.config = config;
    rt.transport = transport;
    detail::build_runtime(rt);  // Cluster ctor blocks on the mesh handshake
    detail::register_recovery(rt, options.rank);
    detail::maybe_resume(rt);

    // Ready barrier: every process has its handlers registered before any
    // driving loop issues a pull — a pull racing a sibling's construction
    // would read a missing handler as a silent decline and deterministically
    // change quorum membership relative to the in-process backend.
    transport->announce_ready();
    if (!transport->await_ready(std::chrono::seconds(60))) {
      return fail("ready barrier timed out", 3);
    }

    const std::size_t drivers = detail::driver_count(config);
    if (options.rank < drivers) {
      detail::run_loop(rt, options.rank);
      transport->announce_done();
    }
    // Quiescence barrier: serve step-tagged pulls until every driving rank
    // finished — tearing down early would cut off a slower peer's final
    // iterations.
    if (!transport->await_done(drivers, std::chrono::minutes(10))) {
      return fail("done barrier timed out", 4);
    }

    if (options.rank == 0 && !options.result_path.empty()) {
      std::vector<std::uint8_t> blob;
      try {
        blob = encode_result(detail::harvest(rt));
      } catch (const std::exception& e) {
        // Below-floor churn abort (or any harvest failure): the reason
        // travels to the parent, which rethrows it from train().
        blob = encode_abort(e.what());
      }
      write_file(options.result_path, blob);
    }
    return 0;
  } catch (const std::exception& e) {
    return fail(e.what(), 2);
  }
}

}  // namespace garfield::core
