#include "net/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "tensor/rng.h"

namespace garfield::net {

namespace {

/// First redelivery delay for a not-ready handler; doubles per attempt.
/// The floor is deliberately tight: in the replicated deployments peers
/// run in near-lockstep, so the answer is typically published within tens
/// of microseconds of the first delivery — a loose floor would serialize
/// the model-exchange round behind timer waits.
constexpr Duration kRetryBackoffFloor{20};
/// Redelivery backoff ceiling — keeps a long-lagging callee from being
/// polled hot, without adding seconds of artificial latency.
constexpr Duration kRetryBackoffCeiling{2000};

/// Fault-retry layer: a lost attempt (fault:drop / fault:corrupt) is
/// re-sent after floor * 2^attempt capped at the ceiling, plus a
/// deterministic hash jitter in [0, backoff/2) so synchronized cohorts
/// don't re-strike the network in lockstep. Bounded: after
/// kMaxSendAttempts the call resolves nullptr (retry_give_ups).
constexpr Duration kSendBackoffFloor{50};
constexpr Duration kSendBackoffCeiling{5000};
constexpr std::uint32_t kMaxSendAttempts = 8;

Duration send_backoff(std::uint64_t seed, NodeId from, NodeId to,
                      std::uint64_t iteration, std::uint32_t attempt) {
  Duration base = kSendBackoffFloor;
  for (std::uint32_t k = 0; k < attempt && base < kSendBackoffCeiling; ++k) {
    base *= 2;
  }
  base = std::min(base, kSendBackoffCeiling);
  std::uint64_t h = tensor::splitmix64_mix(seed ^ 0xbac0ff5eedULL);
  h = tensor::splitmix64_mix(h ^ (std::uint64_t(from) << 32) ^
                             std::uint64_t(to));
  h = tensor::splitmix64_mix(h ^ iteration);
  h = tensor::splitmix64_mix(h ^ std::uint64_t(attempt));
  const double u = double(h >> 11) * 0x1.0p-53;
  return base + Duration{std::int64_t(u * double(base.count()) * 0.5)};
}

}  // namespace

Cluster::Cluster(const Options& options)
    : nodes_(options.nodes), options_(options) {
  if (nodes_ == 0) throw std::invalid_argument("Cluster: needs >= 1 node");
  // A scenario referencing nodes outside the deployment is a bug in the
  // scenario, not a quietly-ideal network.
  options_.conditions.validate(nodes_);
  states_.reserve(nodes_);
  for (std::size_t i = 0; i < nodes_; ++i)
    states_.push_back(std::make_unique<NodeState>());
  // Physical message movement: the caller's transport, or the original
  // in-process path (timer wheel + thread pool sized by pool_threads).
  transport_ = options.transport;
  if (!transport_) {
    transport_ = std::make_shared<InProcTransport>(options.pool_threads);
  }
  transport_->start([this](Request request, Clock::time_point deadline,
                           Transport::Respond respond) {
    deliver_local(std::move(request), deadline,
                  std::make_shared<Transport::Respond>(std::move(respond)),
                  kRetryBackoffFloor);
  });
  // Churn schedule bootstrap: joins (and at_iter=0 crashes) are down
  // before anyone drives an iteration. Their one-shot down-edges are
  // marked applied so advance_lifecycle() cannot re-crash them later.
  const auto& churn = options_.conditions.churn();
  churn_state_.resize(churn.size());
  recovery_handlers_.resize(nodes_);
  recovered_at_.resize(nodes_, 0);
  for (std::size_t i = 0; i < churn.size(); ++i) {
    if (!churn[i].join && churn[i].at_iter == 0) {
      churn_state_[i].crashed_applied = true;
    }
  }
  for (std::size_t node = 0; node < nodes_; ++node) {
    if (options_.conditions.churn_down(node, 0)) {
      states_[node]->lifecycle.store(NodeLifecycle::kCrashed);
    }
  }
  if (options_.conditions.has_bandwidth()) {
    // Zero-initialized busy horizons: every link starts idle.
    busy_until_us_ =
        std::make_unique<std::atomic<std::int64_t>[]>(nodes_ * nodes_);
  }
}

Cluster::~Cluster() {
  // The transport owns the teardown order (stop wheel, flush its backlog
  // inline, drain the pool): flushed or in-flight not-ready retries see
  // run_after() refuse and resolve their callbacks (counted as dropped)
  // instead of re-arming a dying timer.
  transport_->shutdown();
}

void Cluster::register_handler(NodeId node, const std::string& method,
                               Handler handler) {
  assert(node < nodes_);
  util::MutexLock lock(states_[node]->mutex);
  states_[node]->handlers[method] = std::move(handler);
}

void Cluster::crash_locked(NodeId node) {
  states_[node]->lifecycle.store(NodeLifecycle::kCrashed);
  // A crashed process loses its registered handlers: recovery must
  // re-register them (Server/Worker::rejoin), not just flip the state.
  // Lock order: lifecycle_mutex_ (held by our caller) before the node
  // mutex — dispatch only ever takes the node mutex, so no cycle.
  util::MutexLock node_lock(states_[node]->mutex);
  states_[node]->handlers.clear();
}

void Cluster::crash(NodeId node) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  crash_locked(node);
}

void Cluster::begin_recovery(NodeId node) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  if (states_[node]->lifecycle.load() != NodeLifecycle::kCrashed) {
    throw std::logic_error("Cluster::begin_recovery: node " +
                           std::to_string(node) + " is not CRASHED");
  }
  states_[node]->lifecycle.store(NodeLifecycle::kRecovering);
}

void Cluster::complete_recovery(NodeId node) {
  assert(node < nodes_);
  {
    util::MutexLock lock(lifecycle_mutex_);
    if (states_[node]->lifecycle.load() != NodeLifecycle::kRecovering) {
      throw std::logic_error("Cluster::complete_recovery: node " +
                             std::to_string(node) + " is not RECOVERING");
    }
    states_[node]->lifecycle.store(NodeLifecycle::kRunning);
  }
  lifecycle_cv_.notify_all();
}

NodeLifecycle Cluster::lifecycle(NodeId node) const {
  assert(node < nodes_);
  return states_[node]->lifecycle.load();
}

bool Cluster::is_crashed(NodeId node) const {
  assert(node < nodes_);
  return states_[node]->lifecycle.load() != NodeLifecycle::kRunning;
}

void Cluster::set_recovery_handler(
    NodeId node, std::function<void(std::uint64_t)> handler) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  recovery_handlers_[node] = std::move(handler);
}

void Cluster::advance_lifecycle(std::uint64_t iteration) {
  const auto& churn = options_.conditions.churn();
  if (churn.empty()) return;
  {
    util::MutexLock lock(lifecycle_mutex_);
    lifecycle_horizon_ = std::max(lifecycle_horizon_, iteration);
    // Down-edges first: a horizon jump spanning a whole crash window must
    // kill before it resurrects, or the recovery hook would run against a
    // node that was never torn down.
    for (std::size_t i = 0; i < churn.size(); ++i) {
      const NetworkConditions::ChurnEvent& e = churn[i];
      if (e.join || churn_state_[i].crashed_applied ||
          e.at_iter > lifecycle_horizon_) {
        continue;
      }
      churn_state_[i].crashed_applied = true;
      for (std::size_t node = e.nodes.lo; node <= e.nodes.hi; ++node) {
        crash_locked(node);
      }
    }
    for (std::size_t i = 0; i < churn.size(); ++i) {
      const NetworkConditions::ChurnEvent& e = churn[i];
      if (churn_state_[i].recovered_applied) continue;
      if (!e.join && e.recover_after == 0) continue;  // permanent crash
      const std::uint64_t up =
          e.join ? e.at_iter : e.at_iter + e.recover_after;
      if (up > lifecycle_horizon_) continue;
      churn_state_[i].recovered_applied = true;
      for (std::size_t node = e.nodes.lo; node <= e.nodes.hi; ++node) {
        // Another event may still hold the node down at its up-edge, and a
        // manual crash()/recovery may already have moved it on.
        if (options_.conditions.churn_down(node, up)) continue;
        if (states_[node]->lifecycle.load() != NodeLifecycle::kCrashed) {
          continue;
        }
        states_[node]->lifecycle.store(NodeLifecycle::kRecovering);
        // The hook runs under the lifecycle mutex: transitions stay
        // serialized, and dispatch never takes this mutex so delivery is
        // not blocked while the node state-transfers.
        if (recovery_handlers_[node]) recovery_handlers_[node](up);
        states_[node]->lifecycle.store(NodeLifecycle::kRunning);
        recovered_at_[node] = up;
      }
    }
  }
  lifecycle_cv_.notify_all();
}

std::optional<std::uint64_t> Cluster::wait_until_running(NodeId node,
                                                         Duration timeout) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  const bool up = lifecycle_cv_.wait_for(lifecycle_mutex_, timeout, [&] {
    return states_[node]->lifecycle.load() == NodeLifecycle::kRunning;
  });
  if (!up) return std::nullopt;
  return recovered_at_[node];
}

Duration Cluster::jitter_for(NodeId from, NodeId to,
                             const std::string& method,
                             std::uint64_t iteration) const {
  return options_.conditions.jitter_for(from, to, method, iteration,
                                        options_.seed);
}

Duration Cluster::delay_for(
    NodeId from, NodeId to, const std::string& method,
    std::uint64_t iteration,
    std::optional<std::uint64_t> window_iteration) const {
  return options_.conditions.delay(from, to, method, iteration,
                                   options_.seed, window_iteration);
}

Duration Cluster::serialization_delay(NodeId from, NodeId to,
                                      std::size_t frame_bytes,
                                      std::uint64_t window_iteration) {
  if (!busy_until_us_ || frame_bytes == 0) return Duration{0};
  const double rate =
      options_.conditions.byte_rate(from, to, window_iteration);
  if (rate <= 0.0) return Duration{0};
  const auto ser =
      std::int64_t(double(frame_bytes) / rate * 1e6);
  // Busy-queue: reserve [start, start + ser) on the directed edge with a
  // CAS race — a message departing while the link still drains a prior
  // frame waits out the difference. Wall-clock state: it shapes delivery
  // *timing* only (who waits how long), never which payload arrives, so
  // sync trajectories stay bitwise deterministic.
  std::atomic<std::int64_t>& busy = busy_until_us_[from * nodes_ + to];
  const std::int64_t now_us =
      std::chrono::duration_cast<Duration>(Clock::now().time_since_epoch())
          .count();
  std::int64_t prev = busy.load(std::memory_order_relaxed);
  std::int64_t start;
  do {
    start = std::max(prev, now_us);
  } while (!busy.compare_exchange_weak(prev, start + ser,
                                       std::memory_order_relaxed));
  return Duration{(start - now_us) + ser};
}

void Cluster::deliver_local(Request request,
                            Clock::time_point retry_deadline,
                            RespondPtr respond, Duration retry_backoff) {
  if (transport_->remote()) {
    // A remote callee has no local loop threads driving its churn
    // schedule: the arrival itself carries the caller's notion of
    // training time, so advance on it. Gated on remote() so the
    // in-process path's transition points are exactly the pre-seam ones.
    advance_lifecycle(request.window_iteration ? *request.window_iteration
                                               : request.iteration);
  }
  NodeState& callee = *states_[request.to];
  // A crashed callee is fail-silent: the caller never hears back. We
  // deliver nullptr so single-call users don't hang; Collector users see
  // it as a missing reply, preserving quorum semantics.
  if (callee.lifecycle.load() != NodeLifecycle::kRunning) {
    (*respond)(nullptr);
    return;
  }
  Handler handler;
  {
    util::MutexLock lock(callee.mutex);
    auto it = callee.handlers.find(request.method);
    if (it != callee.handlers.end()) handler = it->second;
  }
  if (!handler) {
    (*respond)(nullptr);
    return;
  }
  HandlerResult result = handler(request);
  if (result.retry) {
    // Not ready yet: redeliver after a backoff instead of blocking a
    // pool thread. Give up past the caller's deadline so an abandoned
    // request cannot poll a dead-ended callee forever — a retry landing
    // exactly AT the deadline is still a legitimate attempt.
    if (retry_gives_up(Clock::now() + retry_backoff, retry_deadline)) {
      (*respond)(nullptr);
      return;
    }
    const Duration next =
        std::min(retry_backoff * 2, kRetryBackoffCeiling);
    std::function<void()> task = [this, request = std::move(request),
                                  retry_deadline, respond,
                                  next]() mutable {
      deliver_local(std::move(request), retry_deadline, std::move(respond),
                    next);
    };
    if (!transport_->run_after(retry_backoff, std::move(task))) {
      // Shutdown already began: count the drop and resolve so a
      // concurrent collect() sees a response instead of hanging into its
      // deadline.
      dropped_tasks_.fetch_add(1, std::memory_order_relaxed);
      (*respond)(nullptr);
    }
    return;
  }
  (*respond)(std::move(result.payload));
}

void Cluster::call(NodeId from, NodeId to, const std::string& method,
                   std::uint64_t iteration, PayloadPtr argument,
                   std::function<void(PayloadPtr)> on_done,
                   Duration timeout,
                   std::optional<std::uint64_t> window_iteration) {
  assert(from < nodes_ && to < nodes_);
  requests_sent_.fetch_add(1, std::memory_order_relaxed);
  if (argument) {
    floats_transferred_.fetch_add(argument->size(),
                                  std::memory_order_relaxed);
  }
  auto cb = std::make_shared<Callback>(std::move(on_done));
  send_attempt(from, to, method, iteration, std::move(argument),
               std::move(cb), Clock::now() + timeout, 0, window_iteration);
}

void Cluster::send_attempt(NodeId from, NodeId to, const std::string& method,
                           std::uint64_t iteration, PayloadPtr argument,
                           CallbackPtr cb, Clock::time_point deadline,
                           std::uint32_t attempt,
                           std::optional<std::uint64_t> window_iteration) {
  // The SENDER resolves the fault verdict: it is a pure hash of
  // (seed, edge, method, iteration, attempt), so the caller knows a lost
  // attempt is lost without waiting out a timeout — the retry fires after
  // a backoff, and both transport backends replay the identical schedule.
  const NetworkConditions::FaultVerdict verdict =
      options_.conditions.fault_verdict(from, to, method, iteration,
                                        options_.seed, attempt,
                                        window_iteration);
  const Duration delay = delay_for(from, to, method, iteration,
                                   window_iteration) +
                         verdict.spike_delay;
  if (verdict.drop || verdict.corrupt || verdict.dup) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (verdict.lost()) {
    if (verdict.corrupt && transport_->remote()) {
      // Ship the damage for real on the multi-process backend: the frame
      // goes out with a flipped body byte, the receiver's stream CRC
      // discards it (FrameDecoder::corrupt_frames), and the transport
      // resolves the doomed exchange immediately into this no-op — the
      // retry below is the recovery path, exactly as for a drop.
      Request doomed{from,      to,       method, iteration, argument,
                     window_iteration};
      doomed.wire_corrupt = true;
      (void)transport_->send(std::move(doomed), delay, deadline,
                             [](PayloadPtr) {});
    }
    const Duration backoff =
        send_backoff(options_.seed, from, to, iteration, attempt);
    if (attempt + 1 >= kMaxSendAttempts ||
        retry_gives_up(Clock::now() + backoff, deadline)) {
      // Bounded degradation: the caller sees a silent peer, its collect()
      // books a quorum miss if q becomes unreachable — never a hang.
      retry_give_ups_.fetch_add(1, std::memory_order_relaxed);
      (*cb)(nullptr);
      return;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    std::function<void()> task = [this, from, to, method, iteration,
                                  argument = std::move(argument),
                                  cb = std::move(cb), deadline, attempt,
                                  window_iteration]() mutable {
      send_attempt(from, to, method, iteration, std::move(argument),
                   std::move(cb), deadline, attempt + 1, window_iteration);
    };
    if (!transport_->run_after(backoff, std::move(task))) {
      dropped_tasks_.fetch_add(1, std::memory_order_relaxed);
      (*cb)(nullptr);
    }
    return;
  }
  Request request{from,      to,       method, iteration, std::move(argument),
                  window_iteration};
  const std::uint64_t window = window_iteration.value_or(iteration);
  // Bandwidth-honest request leg: the frame costs its bytes at the edge's
  // rate (plus any wait behind a draining link) before the latency path.
  const Duration send_delay =
      delay + serialization_delay(from, to, request_frame_bytes(request),
                                  window);
  // Caller-side reply accounting rides the respond path: the transport
  // invokes this on whichever thread produced the reply, which for the
  // in-process backend is exactly where the pre-seam dispatch counted it.
  Transport::Respond wrapped = [this, cb, from, to, window,
                                dup = verdict.dup](PayloadPtr payload) {
    if (payload) {
      // Floats first, then the release bump of replies_received_: the
      // snapshot's acquire load of replies_received_ (stats()) then also
      // covers this reply's float accounting.
      floats_transferred_.fetch_add(payload->size(),
                                    std::memory_order_relaxed);
      replies_received_.fetch_add(1, std::memory_order_release);
      if (dup) {
        // fault:dup models a duplicated delivery of this reply; the RPC
        // layer is idempotent, so the second copy is suppressed here and
        // surfaces only as a wasted (crafted-and-discarded) reply.
        wasted_replies_.fetch_add(1, std::memory_order_relaxed);
      }
      // Bandwidth-honest reply leg: a fat reply drains the reverse edge
      // (to, from) for bytes / rate; defer the caller's callback by that
      // long. Accounting above already happened — the deferral shapes
      // when the caller *sees* the reply, not whether.
      const Duration ser = serialization_delay(
          to, from, reply_frame_bytes(payload), window);
      if (ser.count() > 0) {
        std::function<void()> deliver = [cb, payload]() mutable {
          (*cb)(std::move(payload));
        };
        if (transport_->run_after(ser, std::move(deliver))) return;
        // Shutdown began: deliver inline rather than losing the reply.
      }
    }
    (*cb)(std::move(payload));
  };
  if (!transport_->send(std::move(request), send_delay, deadline,
                        std::move(wrapped))) {
    // Shutdown already began: count the drop and resolve the callback so
    // a concurrent collect() sees a response instead of hanging into its
    // deadline.
    dropped_tasks_.fetch_add(1, std::memory_order_relaxed);
    (*cb)(nullptr);
  }
}

std::vector<Reply> Cluster::collect(
    NodeId from, std::span<const NodeId> peers, const std::string& method,
    std::uint64_t iteration, PayloadPtr argument, std::size_t q,
    Duration timeout, std::optional<std::uint64_t> window_iteration) {
  if (q > peers.size()) {
    throw std::invalid_argument("Cluster::collect: q=" + std::to_string(q) +
                                " > peers=" + std::to_string(peers.size()));
  }
  struct State {
    util::Mutex mutex;
    util::CondVar cv;
    std::vector<Reply> replies GARFIELD_GUARDED_BY(mutex);
    /// Responses seen, including declined/crashed callbacks.
    std::size_t responses GARFIELD_GUARDED_BY(mutex) = 0;
    /// Caller harvested; late replies are wasted.
    bool closed GARFIELD_GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<State>();
  const std::size_t total = peers.size();
  for (NodeId peer : peers) {
    call(
        from, peer, method, iteration, argument,
        [this, state, peer, q, total](PayloadPtr payload) {
          util::MutexLock lock(state->mutex);
          ++state->responses;
          if (payload) {
            if (!state->closed && state->replies.size() < q) {
              // Refcount bump only — the payload stays wherever the callee
              // keeps it.
              state->replies.push_back(Reply{peer, std::move(payload)});
            } else {
              // Crafted, transferred, and already useless: the quorum was
              // met by faster peers (or the caller gave up at its
              // deadline).
              wasted_replies_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          // Wake the collector only when its wait predicate can pass —
          // notifying on every response would context-switch it q times
          // per pull for nothing.
          if (state->replies.size() >= q || state->responses == total) {
            state->cv.notify_all();
          }
        },
        timeout, window_iteration);
  }
  std::vector<Reply> replies;
  {
    util::MutexLock lock(state->mutex);
    const auto deadline = Clock::now() + timeout;
    (void)state->cv.wait_until(
        state->mutex, deadline, [&]() GARFIELD_REQUIRES(state->mutex) {
          return state->replies.size() >= q || state->responses == total;
        });
    state->closed = true;
    // Deadline expired short of quorum (or every responder resolved
    // silent): record it, so churn/straggler scenarios are distinguishable
    // from runs that genuinely met q, instead of just looking slow.
    if (state->replies.size() < q) {
      quorum_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    replies = std::move(state->replies);
  }
  // Fastest-q decides *membership*; normalize the order by origin id so
  // downstream floating-point reductions (e.g. averaging) are
  // bit-reproducible whenever the membership is.
  std::sort(replies.begin(), replies.end(),
            [](const Reply& a, const Reply& b) { return a.from < b.from; });
  return replies;
}

NetStats Cluster::stats() const {
  NetStats s;
  // Single acquire point for the whole snapshot: pairs with the release
  // increment on call()'s reply path. Every write that happened-before an
  // observed
  // reply bump — its request's requests_sent_/floats_transferred_
  // accounting, the reply's own float count — is therefore visible to the
  // relaxed loads below, so replies_received <= requests_sent holds in
  // every snapshot, even taken mid-flight. Beyond that pairing the
  // counters are independent relaxed monotone counts (nothing is published
  // through them), so no stronger ordering is required; exact cross-field
  // equalities (e.g. floats vs replies) are only asserted at quiescence.
  s.replies_received = replies_received_.load(std::memory_order_acquire);
  s.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  s.floats_transferred = floats_transferred_.load(std::memory_order_relaxed);
  s.wasted_replies = wasted_replies_.load(std::memory_order_relaxed);
  s.quorum_misses = quorum_misses_.load(std::memory_order_relaxed);
  s.dropped_tasks = dropped_tasks_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.retry_give_ups = retry_give_ups_.load(std::memory_order_relaxed);
  s.peer_deaths = transport_->peer_deaths();
  // Reply frame costs are charged before the release bump above pairs
  // with this snapshot's acquire, so every observed reply's bytes are
  // covered; request bytes follow the requests_sent_ charge-at-send rule.
  s.bytes_sent = transport_->bytes_sent();
  s.bytes_received = transport_->bytes_received();
  s.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace garfield::net
