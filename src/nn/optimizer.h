// SGD optimizer over flat parameter vectors.
//
// Servers in garfield hold model state as a flat vector and apply
// aggregated gradients to it (Equation (2) of the paper:
// x_{k+1} = x_k - gamma_k * G). Momentum is included because the paper's
// concluding remarks point at distributed momentum as the variance-reduction
// technique that restores GAR guarantees.
#pragma once

#include <cstddef>
#include <utility>

#include "tensor/vecops.h"

namespace garfield::nn {

using tensor::FlatVector;

/// Learning-rate schedule: constant, or inverse decay gamma0 / (1 + k/decay).
struct LrSchedule {
  float gamma0 = 0.05F;
  float decay_steps = 0.0F;  // 0 => constant

  [[nodiscard]] float at(std::size_t step) const {
    if (decay_steps <= 0.0F) return gamma0;
    return gamma0 / (1.0F + float(step) / decay_steps);
  }
};

/// Stochastic gradient descent with optional momentum and L2 weight decay.
class SgdOptimizer {
 public:
  struct Options {
    LrSchedule lr;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  SgdOptimizer() : options_() {}
  explicit SgdOptimizer(Options options) : options_(options) {}

  /// Apply one update in place; step index selects the learning rate.
  void step(FlatVector& params, const FlatVector& gradient, std::size_t step);

  /// Forget momentum state (used when a server re-writes its model from
  /// other replicas and the old velocity no longer applies).
  void reset();

  /// Momentum buffer; empty until the first momentum step. Checkpoints
  /// persist it so a resumed run continues with the same velocity.
  [[nodiscard]] const FlatVector& velocity() const { return velocity_; }

  /// Reinstate a saved momentum buffer (checkpoint resume).
  void restore_velocity(FlatVector velocity) {
    velocity_ = std::move(velocity);
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  FlatVector velocity_;
};

}  // namespace garfield::nn
