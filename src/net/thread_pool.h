// Fixed-size thread pool used by the simulated cluster to execute RPC
// handler invocations concurrently, the way a gRPC server's completion
// queues would.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace garfield::net {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; never blocks. Tasks submitted after shutdown begins
  /// are silently dropped.
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace garfield::net
