// spec_lint — validates every spec-string literal in the tree against the
// real parsers.
//
// The repo's configuration surface is spec strings: GAR specs
// ("multi_krum:m=4", gars/registry.h), attack specs/plans
// ("little_is_enough:z=2.5", "2*sign_flip;reversed", attacks/registry.h),
// network-conditions specs ("wan:latency=5ms,jitter=2ms;churn:...",
// net/conditions.h, including bw=/link: bandwidth clauses), the transport
// backend key ("transport=tcp", core/config.h) and the wire-codec key
// ("codec=topk:k=0.01", net/codec.h). Benches, tests, examples and the README quote dozens
// of them, and nothing ties those literals to the grammar: a registry
// rename or an option change rots them silently until someone pastes one.
//
// This linter closes the loop. It extracts every string literal from
// bench/, tests/, examples/ (C++ literal grammar, including adjacent-
// literal concatenation) and every code span from README.md, classifies
// the ones whose leading name is a known conditions clause, registered GAR
// or registered attack, and validates each candidate through the same
// entry points the runtime uses — NetworkConditions::parse,
// make_gar(spec, effective_min_n, 1), validate_attack_plan. Any failure is
// a lint error naming file:line.
//
// Intentionally-invalid literals (negative grammar tests) are skipped when
// they sit within three lines of a gtest *_THROW macro or carry a
// `spec-lint: ignore` marker on their own or the preceding line. Zero
// extracted specs is itself a failure: it means the extractor rotted, not
// that the tree went clean.
//
// Usage: spec_lint <repo-root>          (exit 0 clean, 1 findings, 2 usage)
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "attacks/registry.h"
#include "core/config.h"
#include "gars/gar.h"
#include "gars/registry.h"
#include "net/conditions.h"

namespace fs = std::filesystem;

namespace {

struct Candidate {
  std::string text;
  std::string file;  // repo-relative
  std::size_t line = 0;
  bool skip = false;  // negative-test or explicitly ignored
};

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// True when the literal starting at `line` is a deliberate grammar
/// violation: a gtest *_THROW within the previous three lines (the literal
/// is the macro's argument) or an explicit ignore marker.
bool in_negative_context(const std::vector<std::string>& lines,
                         std::size_t line_index) {
  const std::size_t lo = line_index >= 3 ? line_index - 3 : 0;
  for (std::size_t i = lo; i <= line_index && i < lines.size(); ++i) {
    if (contains(lines[i], "_THROW(") || contains(lines[i], "_THROW (") ||
        contains(lines[i], "spec-lint: ignore")) {
      return true;
    }
  }
  return false;
}

/// Extract C++ string literals from `lines`, concatenating adjacent
/// literals (separated only by whitespace, possibly across lines) the way
/// the compiler does — long spec strings are written exactly that way.
/// Comments are skipped; escapes inside literals are passed through
/// verbatim except \" (specs never contain escapes, and a literal that
/// does will simply fail classification).
std::vector<Candidate> extract_cpp_literals(
    const std::vector<std::string>& lines, const std::string& file) {
  std::vector<Candidate> out;
  bool in_block_comment = false;
  bool in_literal = false;       // between the quotes
  bool pending_concat = false;   // literal just closed; whitespace so far
  Candidate current;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (in_literal) {
        if (c == '\\' && i + 1 < line.size()) {
          current.text += c;
          current.text += line[i + 1];
          ++i;
        } else if (c == '"') {
          in_literal = false;
          pending_concat = true;
        } else {
          current.text += c;
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '\'') {  // char literal: skip to its close
        ++i;
        while (i < line.size() && line[i] != '\'') {
          if (line[i] == '\\') ++i;
          ++i;
        }
        continue;
      }
      if (c == '"') {
        if (!pending_concat) {
          current = Candidate{};
          current.file = file;
          current.line = li + 1;
          current.skip = in_negative_context(lines, li);
        }
        // Adjacent literal: keep accumulating into `current`; a negative
        // context on any fragment poisons the whole concatenation.
        if (pending_concat) current.skip |= in_negative_context(lines, li);
        pending_concat = false;
        in_literal = true;
        continue;
      }
      if (pending_concat && !std::isspace(static_cast<unsigned char>(c))) {
        out.push_back(current);
        pending_concat = false;
      }
    }
    // An unterminated literal at end-of-line is not valid C++ (no raw
    // strings in this tree); just close it defensively.
    if (in_literal) {
      in_literal = false;
      pending_concat = true;
    }
  }
  if (pending_concat) out.push_back(current);
  return out;
}

/// Extract backtick spans and double-quoted spans from a markdown file —
/// the README quotes every spec it shows one of those two ways.
std::vector<Candidate> extract_markdown_spans(
    const std::vector<std::string>& lines, const std::string& file) {
  std::vector<Candidate> out;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const bool ignored = contains(line, "spec-lint: ignore") ||
                         (li > 0 && contains(lines[li - 1], "spec-lint: ignore"));
    for (const char delim : {'`', '"'}) {
      std::size_t pos = 0;
      for (;;) {
        const std::size_t open = line.find(delim, pos);
        if (open == std::string::npos) break;
        const std::size_t close = line.find(delim, open + 1);
        if (close == std::string::npos) break;
        Candidate c;
        c.text = line.substr(open + 1, close - open - 1);
        c.file = file;
        c.line = li + 1;
        c.skip = ignored;
        out.push_back(std::move(c));
        pos = close + 1;
      }
    }
  }
  return out;
}

/// Leading name of a spec-shaped string: [a-z0-9_]+ up to ':' or end.
/// Empty when the string cannot open a spec (space, uppercase, ...).
std::string leading_name(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() &&
         (std::islower(static_cast<unsigned char>(text[i])) ||
          std::isdigit(static_cast<unsigned char>(text[i])) ||
          text[i] == '_')) {
    ++i;
  }
  if (i == 0) return {};
  if (i < text.size() && text[i] != ':') return {};
  return text.substr(0, i);
}

enum class SpecKind {
  kNone,
  kConditions,
  kGar,
  kAttackPlan,
  kTransport,
  kCodec
};

/// The transport backend key: "transport=tcp" in docs and specs,
/// "transport = tcp" in controller config text. Returns the assigned
/// value, nullopt when the text is not a transport assignment.
std::optional<std::string> transport_value(const std::string& text) {
  static const std::string kKey = "transport";
  if (text.compare(0, kKey.size(), kKey) != 0) return std::nullopt;
  std::size_t i = kKey.size();
  while (i < text.size() && text[i] == ' ') ++i;
  if (i >= text.size() || text[i] != '=') return std::nullopt;
  ++i;
  while (i < text.size() && text[i] == ' ') ++i;
  std::string value = text.substr(i);
  while (!value.empty() && value.back() == ' ') value.pop_back();
  return value;
}

/// The wire-codec key: "codec=topk:k=0.01" in docs and bench specs,
/// "codec = int8" in controller config text. Same shape as the transport
/// key; returns the assigned value, nullopt when not a codec assignment.
std::optional<std::string> codec_value(const std::string& text) {
  static const std::string kKey = "codec";
  if (text.compare(0, kKey.size(), kKey) != 0) return std::nullopt;
  std::size_t i = kKey.size();
  while (i < text.size() && text[i] == ' ') ++i;
  if (i >= text.size() || text[i] != '=') return std::nullopt;
  ++i;
  while (i < text.size() && text[i] == ' ') ++i;
  std::string value = text.substr(i);
  while (!value.empty() && value.back() == ' ') value.pop_back();
  return value;
}

const std::unordered_set<std::string>& conditions_clauses() {
  static const std::unordered_set<std::string> kClauses{
      "wan", "hetero", "straggler", "partition", "link", "churn", "fault"};
  return kClauses;
}

/// A string fragment used to build a spec at runtime ("churn:crash=" +
/// std::to_string(n)) is not itself a spec; don't classify it.
bool looks_like_fragment(const std::string& text) {
  if (text.empty()) return true;
  const char last = text.back();
  return last == '=' || last == ',' || last == ':' || last == ';';
}

/// The README's option tables document schemas with single-capital
/// placeholders ("trimmed_mean:trim=N", "little_is_enough:z=X"). Those are
/// templates, not instances — any option whose entire value is one
/// uppercase letter marks the string as such.
bool looks_like_template(const std::string& text) {
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '=') continue;
    if (!std::isupper(static_cast<unsigned char>(text[i + 1]))) continue;
    const std::size_t end = i + 2;
    if (end == text.size() || text[end] == ',' || text[end] == ';') {
      return true;
    }
  }
  return false;
}

SpecKind classify(const std::string& text,
                  const std::unordered_set<std::string>& gars,
                  const std::unordered_set<std::string>& attacks) {
  if (looks_like_fragment(text) || looks_like_template(text)) {
    return SpecKind::kNone;
  }
  if (transport_value(text)) return SpecKind::kTransport;
  if (codec_value(text)) return SpecKind::kCodec;
  const std::string name = leading_name(text);
  if (name.empty()) return SpecKind::kNone;
  // A conditions spec needs a clause body ("churn:crash=..."); the bare
  // clause name is prose (a label, a column header), not a spec. Bare GAR
  // and attack names ARE complete specs, so those classify as-is.
  if (conditions_clauses().count(name) > 0) {
    return text.size() > name.size() ? SpecKind::kConditions
                                     : SpecKind::kNone;
  }
  if (gars.count(name) > 0) return SpecKind::kGar;
  if (attacks.count(name) > 0) return SpecKind::kAttackPlan;
  return SpecKind::kNone;
}

/// Validate through the runtime's own entry points; returns an error
/// message, empty on success.
std::string validate(SpecKind kind, const std::string& text) {
  try {
    switch (kind) {
      case SpecKind::kConditions: {
        (void)garfield::net::NetworkConditions::parse(text);
        return {};
      }
      case SpecKind::kGar: {
        // Construct at the spec's own effective floor with f=1 — exactly
        // what a deployment at the resilience bound would do.
        const std::size_t floor = garfield::gars::gar_min_n(text, 1);
        (void)garfield::gars::make_gar(text, floor, 1);
        return {};
      }
      case SpecKind::kAttackPlan: {
        // Validate as a plan sized to its own declared attacker count —
        // single specs are one-entry plans, so this covers both forms.
        const garfield::attacks::AttackPlan plan =
            garfield::attacks::parse_attack_plan(text);
        std::size_t f = 0;
        for (const auto& entry : plan.entries) f += entry.count;
        if (f == 0) f = 1;
        (void)garfield::attacks::validate_attack_plan(text, f, "spec_lint");
        return {};
      }
      case SpecKind::kTransport: {
        // Route through the runtime validator: a default config with only
        // the transport swapped is exactly what the quoted key claims
        // works, so cfg.validate() is the closed loop.
        garfield::core::DeploymentConfig cfg;
        cfg.transport = *transport_value(text);
        cfg.validate();
        return {};
      }
      case SpecKind::kCodec: {
        // Same closed loop for the wire-codec key: cfg.validate() runs
        // CodecSpec::parse on the value, the exact gate the trainer uses.
        garfield::core::DeploymentConfig cfg;
        cfg.codec = *codec_value(text);
        cfg.validate();
        return {};
      }
      case SpecKind::kNone:
        return {};
    }
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

const char* kind_name(SpecKind kind) {
  switch (kind) {
    case SpecKind::kConditions:
      return "conditions";
    case SpecKind::kGar:
      return "gar";
    case SpecKind::kAttackPlan:
      return "attack";
    case SpecKind::kTransport:
      return "transport";
    case SpecKind::kCodec:
      return "codec";
    case SpecKind::kNone:
      return "none";
  }
  return "none";
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: spec_lint <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::cerr << "spec_lint: not a directory: " << root << "\n";
    return 2;
  }

  // Registry snapshots drive classification, so a registered-but-renamed
  // rule immediately reclassifies (and fails) every stale literal.
  std::unordered_set<std::string> gars;
  for (const std::string& n : garfield::gars::gar_names()) gars.insert(n);
  std::unordered_set<std::string> attacks;
  for (const std::string& n : garfield::attacks::attack_names()) {
    attacks.insert(n);
  }

  std::vector<Candidate> candidates;
  for (const char* dir : {"bench", "tests", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".h") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      const std::string rel = fs::relative(path, root).string();
      const std::vector<std::string> lines = read_lines(path);
      std::vector<Candidate> found = extract_cpp_literals(lines, rel);
      candidates.insert(candidates.end(), found.begin(), found.end());
    }
  }
  {
    const fs::path readme = root / "README.md";
    if (fs::is_regular_file(readme)) {
      const std::vector<std::string> lines = read_lines(readme);
      std::vector<Candidate> found = extract_markdown_spans(lines, "README.md");
      candidates.insert(candidates.end(), found.begin(), found.end());
    }
  }

  std::size_t checked = 0;
  std::size_t skipped = 0;
  std::size_t failures = 0;
  for (const Candidate& c : candidates) {
    const SpecKind kind = classify(c.text, gars, attacks);
    if (kind == SpecKind::kNone) continue;
    if (c.skip) {
      ++skipped;
      continue;
    }
    const std::string error = validate(kind, c.text);
    ++checked;
    if (!error.empty()) {
      ++failures;
      std::cerr << c.file << ":" << c.line << ": invalid " << kind_name(kind)
                << " spec \"" << c.text << "\": " << error << "\n";
    }
  }

  std::cout << "spec_lint: " << checked << " specs validated, " << skipped
            << " negative-test literals skipped, " << failures
            << " invalid\n";
  if (checked == 0) {
    std::cerr << "spec_lint: extracted zero spec literals — the extractor "
                 "or the classification registries rotted\n";
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
