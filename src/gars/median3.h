// Branchless 3-element ordering primitive (§4.3 of the paper).
//
// GPUs execute warps in lock-step, so branch-heavy selection (introselect)
// does not scale there; the paper builds its SIMT median around a primitive
// that reorders 3 values using only comparisons converted to integers (the
// "selection instruction"). We reproduce the same index arithmetic; on CPUs
// it compiles to cmov/setcc, i.e. it is also branch-free.
#pragma once

#include <array>
#include <cstddef>

namespace garfield::gars {

/// Reorder {v0, v1, v2} into ascending order without branches, using the
/// exact index computation from the paper:
///   c = { v0>v1, v0>v2, v1>v2 }
///   i0 = (1 + c0 + 2*c1 + c2 - (c1^c2)) / 2
///   i1 = (4 - c0 - 2*c1 - c2 + (c0^c1)) / 2
///   w  = { v[i0], v[3-i0-i1], v[i1] }
[[nodiscard]] inline std::array<float, 3> sort3_branchless(float v0, float v1,
                                                           float v2) {
  const int c0 = int(v0 > v1);
  const int c1 = int(v0 > v2);
  const int c2 = int(v1 > v2);
  const std::size_t i0 = std::size_t((1 + c0 + 2 * c1 + c2 - (c1 ^ c2)) / 2);
  const std::size_t i1 = std::size_t((4 - c0 - 2 * c1 - c2 + (c0 ^ c1)) / 2);
  const float v[3] = {v0, v1, v2};
  return {v[i0], v[3 - i0 - i1], v[i1]};
}

/// Median of three values via the branchless network.
[[nodiscard]] inline float median3_branchless(float v0, float v1, float v2) {
  return sort3_branchless(v0, v1, v2)[1];
}

}  // namespace garfield::gars
