// Figure 8 — throughput with an increasing number of workers.
//
// Two complementary modes:
//
//  1. Analytic panels (the paper's CPU/GPU clusters, CifarNet/ResNet-50):
//     the cost-model simulator projects batches/sec for hardware we do not
//     have. Paper shapes: every parameter-server system scales with nw
//     (vanilla fastest, then crash-tolerant ~ MSMW, SSMW close to
//     AggregaThor); decentralized learning does not scale; GPU throughput
//     is about an order of magnitude above CPU.
//
//  2. Live real-contention mode: the *actual* in-process trainer at
//     latency 0, sweeping (deployment x nps x nw x pool_threads) and
//     measuring hardware-limited iterations/sec. Since the timer-wheel /
//     zero-copy / gradient-cache transport rework, pool threads only run
//     handler compute, so these numbers are real contention, not simulated
//     sleeps. Results are written to BENCH_fig8.json (override the path
//     with GARFIELD_FIG8_JSON; one run per file — the committed copy is
//     the trajectory record) and each row whose shape matches the
//     committed pre-rework baseline prints its speedup.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/config.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::sim;
namespace gc = garfield::core;

void panel(const char* title, const char* model, const DeviceProfile& device,
           const LinkProfile& link, std::size_t batch,
           const std::vector<std::size_t>& nws) {
  std::printf("\n%s\n%-6s %-10s %-16s %-10s %-10s %-10s %-14s\n", title, "nw",
              "vanilla", "crash_tolerant", "ssmw", "msmw", "aggr.thor",
              "decentralized");
  for (std::size_t nw : nws) {
    SimSetup s;
    s.d = model_spec(model).parameters;
    s.batch_size = batch;
    s.nw = nw;
    s.fw = nw > 6 ? 3 : 1;
    s.nps = 3;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = device;
    s.link = link;

    auto at = [&](SimDeployment dep, bool native, bool sync) {
      SimSetup v = s;
      v.deployment = dep;
      v.native_runtime = native;
      v.asynchronous = !sync;
      if (dep == SimDeployment::kVanilla || dep == SimDeployment::kSsmw)
        v.nps = 1;
      return batches_per_sec(v);
    };
    std::printf("%-6zu %-10.1f %-16.1f %-10.1f %-10.1f %-10.1f %-14.1f\n",
                nw, at(SimDeployment::kVanilla, true, true),
                at(SimDeployment::kCrashTolerant, false, true),
                at(SimDeployment::kSsmw, false, false),
                at(SimDeployment::kMsmw, false, false),
                // AggregaThor: SSMW architecture, synchronous, older
                // runtime (no parallelized deserialization) — modelled as
                // the synchronous SSMW point.
                at(SimDeployment::kSsmw, false, true),
                at(SimDeployment::kDecentralized, false, false));
  }
}

// ------------------------------------------------- live contention mode

/// Pre-rework throughput on the reference shape (nw=8, auto pool, latency
/// 0, 60 iterations of tiny_mlp/cluster, seed 7), measured with the
/// sleep-on-pool + O(nps)-recompute transport this PR replaced — the
/// committed "before" of BENCH_fig8.json's before/after speedups. 0 = no
/// baseline for that deployment.
struct PrePrBaseline {
  const char* deployment;
  std::size_t nps;
  double its_per_sec;
};
constexpr PrePrBaseline kPrePr[] = {
    {"vanilla", 1, 3121.2},
    {"ssmw", 1, 3049.9},
    {"msmw", 3, 1102.2},
    {"decentralized", 1, 345.9},
};

struct LiveCell {
  gc::Deployment deployment;
  std::size_t nps = 1;
  std::size_t nw = 8;
  std::size_t fw = 1;
  std::size_t fps = 0;
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  /// "inproc" = threads in this process; "tcp" = one OS process per node
  /// over localhost streams — the multi-process section's cross-process
  /// its/sec, scheduler and loopback included.
  const char* transport = "inproc";
  /// Wire codec spec (net/codec.h) and network-conditions spec — the
  /// codec-frontier sweep varies these; the main contention sweep keeps
  /// the identity codec on an ideal network.
  const char* codec = "none";
  const char* network = "";
};

struct LiveResult {
  LiveCell cell;
  double its_per_sec = 0.0;
  std::uint64_t floats_transferred = 0;
  std::uint64_t wasted_replies = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_saved = 0;
  double final_accuracy = 0.0;
  double speedup_vs_pre_pr = 0.0;  // 0 = shape has no committed baseline
  /// codec=none bytes_sent of the same (deployment, transport, nw,
  /// network) shape divided by this row's bytes_sent — the compression
  /// headline. 0 = not a codec-frontier row or no baseline to compare.
  double bytes_ratio_vs_none = 0.0;
};

gc::DeploymentConfig live_config(const LiveCell& cell,
                                 std::size_t iterations) {
  gc::DeploymentConfig cfg;
  cfg.deployment = cell.deployment;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 2048;
  cfg.test_size = 256;
  cfg.batch_size = 16;
  cfg.iterations = iterations;
  cfg.eval_every = 0;  // pure throughput: no probes in the timed loop
  cfg.seed = 7;
  cfg.nps = cell.nps;
  cfg.nw = cell.nw;
  cfg.fw = cell.fw;
  cfg.fps = cell.fps;
  cfg.pool_threads = cell.pool_threads;
  cfg.transport = cell.transport;
  cfg.codec = cell.codec;
  cfg.network = cell.network;
  if (cell.deployment != gc::Deployment::kVanilla) {
    cfg.gradient_gar = "multi_krum";
    cfg.model_gar = "median";
  }
  return cfg;
}

LiveResult run_live(const LiveCell& cell, std::size_t iterations) {
  const gc::DeploymentConfig cfg =
      garfield::bench::smoke(live_config(cell, iterations));
  // Best-of-3 in full mode: throughput on a shared box is noisy downward
  // (scheduler preemption), never upward, so the max is the
  // hardware-limited figure. Smoke mode runs once — it only guards the
  // code path.
  const int repeats = garfield::bench::smoke_mode() ? 1 : 3;
  LiveResult out;
  out.cell = cell;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const gc::TrainResult r = gc::train(cfg);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const double its = secs > 0 ? double(cfg.iterations) / secs : 0.0;
    if (its > out.its_per_sec) {
      out.its_per_sec = its;
      out.floats_transferred = r.net_stats.floats_transferred;
      out.wasted_replies = r.net_stats.wasted_replies;
      out.bytes_sent = r.net_stats.bytes_sent;
      out.bytes_received = r.net_stats.bytes_received;
      out.bytes_saved = r.net_stats.bytes_saved;
      out.final_accuracy = r.final_accuracy;
    }
  }
  // The committed baseline covers the reference shape only: nw=8, auto
  // pool, full-length run.
  if (!garfield::bench::smoke_mode() && cell.nw == 8 &&
      cell.pool_threads == 0 && std::string(cell.transport) == "inproc") {
    for (const PrePrBaseline& b : kPrePr) {
      if (gc::to_string(cell.deployment) == b.deployment &&
          cell.nps == b.nps && b.its_per_sec > 0) {
        out.speedup_vs_pre_pr = out.its_per_sec / b.its_per_sec;
      }
    }
  }
  return out;
}

void write_row(std::FILE* f, const LiveResult& r, bool last) {
  std::fprintf(
      f,
      "    {\"deployment\": \"%s\", \"transport\": \"%s\", \"nps\": %zu, "
      "\"nw\": %zu, \"pool_threads\": %zu, \"codec\": \"%s\", "
      "\"network\": \"%s\", \"iterations_per_sec\": %.1f, "
      "\"floats_transferred\": %llu, \"wasted_replies\": %llu, "
      "\"bytes_sent\": %llu, \"bytes_received\": %llu, "
      "\"bytes_saved\": %llu, \"final_accuracy\": %.4f",
      gc::to_string(r.cell.deployment).c_str(), r.cell.transport, r.cell.nps,
      r.cell.nw, r.cell.pool_threads, r.cell.codec, r.cell.network,
      r.its_per_sec, (unsigned long long)r.floats_transferred,
      (unsigned long long)r.wasted_replies, (unsigned long long)r.bytes_sent,
      (unsigned long long)r.bytes_received, (unsigned long long)r.bytes_saved,
      r.final_accuracy);
  if (r.bytes_ratio_vs_none > 0) {
    std::fprintf(f, ", \"bytes_ratio_vs_none\": %.2f", r.bytes_ratio_vs_none);
  }
  if (r.speedup_vs_pre_pr > 0) {
    std::fprintf(f, ", \"speedup_vs_pre_pr\": %.2f", r.speedup_vs_pre_pr);
  }
  std::fprintf(f, "}%s\n", last ? "" : ",");
}

void write_json(const std::vector<LiveResult>& results,
                const std::vector<LiveResult>& frontier,
                std::size_t iterations) {
  const char* path = std::getenv("GARFIELD_FIG8_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_fig8.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("(could not open %s for writing — skipping JSON)\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fig8_live_contention\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n",
               garfield::bench::smoke_mode() ? "true" : "false");
  std::fprintf(f, "  \"iterations\": %zu,\n", iterations);
  std::fprintf(f, "  \"workload\": \"tiny_mlp, cluster dataset, "
                  "train=2048, batch=16, latency=0, seed=7\",\n");
  std::fprintf(f, "  \"pre_pr_baseline_its_per_sec\": {");
  for (std::size_t i = 0; i < std::size(kPrePr); ++i) {
    std::fprintf(f, "%s\"%s\": %.1f", i == 0 ? "" : ", ",
                 kPrePr[i].deployment, kPrePr[i].its_per_sec);
  }
  std::fprintf(f, "},\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    write_row(f, results[i], i + 1 == results.size());
  }
  // Accuracy-vs-bytes frontier: (deployment x codec x nw), the tcp
  // decentralized bytes-cut rows and the constrained-bw throughput rows.
  std::fprintf(f, "  ],\n  \"codec_frontier\": [\n");
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    write_row(f, frontier[i], i + 1 == frontier.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu + %zu cells)\n", path, results.size(),
              frontier.size());
}

std::vector<LiveResult> live_mode(std::size_t iterations) {
  const bool smoke = garfield::bench::smoke_mode();
  std::printf("\nLive real-contention mode — in-process trainer, latency "
              "0,\n(deployment x nps x nw x pool_threads), %zu iterations "
              "per cell\n", iterations);
  std::printf("%-14s %-7s %-4s %-4s %-6s %-10s %-12s %-12s %-8s %-10s\n",
              "deployment", "trans", "nps", "nw", "pool", "its/sec", "floats",
              "bytes_sent", "wasted", "vs pre-PR");

  std::vector<LiveCell> cells;
  // nw floor is 6: multi_krum at fw=1 needs 2f+3 = 5 inputs and the
  // decentralized quorum is nw - fw - 1 peers + self.
  const std::vector<std::size_t> nws =
      smoke ? std::vector<std::size_t>{6, 8}
            : std::vector<std::size_t>{6, 8, 16};
  const std::size_t pools[] = {1, 0};  // serialized handlers vs hardware
  for (std::size_t nw : nws) {
    for (std::size_t pool : pools) {
      cells.push_back({gc::Deployment::kVanilla, 1, nw, 0, 0, pool});
      cells.push_back({gc::Deployment::kSsmw, 1, nw, 1, 0, pool});
      cells.push_back({gc::Deployment::kMsmw, 3, nw, 1, 1, pool});
      cells.push_back({gc::Deployment::kDecentralized, 1, nw, 1, 0, pool});
    }
  }
  // nps scaling point: more server replicas at fixed nw.
  cells.push_back({gc::Deployment::kMsmw, 5, 8, 1, 1, 0});

  // Multi-process section: the same robust deployments with one OS process
  // per node over localhost TCP streams — cross-process its/sec with
  // fork/exec, loopback framing and the ready/done barriers on the clock.
  // Auto pool only: each node process sizes its own pool. Needs the
  // tools/garfield_node launcher; without it the cells are skipped. The
  // floats/wasted columns of tcp rows are the orchestrating rank's
  // process-local view (core/node_runner.h scope note).
  for (std::size_t nw : nws) {
    cells.push_back({gc::Deployment::kSsmw, 1, nw, 1, 0, 0, "tcp"});
    cells.push_back({gc::Deployment::kMsmw, 3, nw, 1, 1, 0, "tcp"});
    cells.push_back({gc::Deployment::kDecentralized, 1, nw, 1, 0, 0, "tcp"});
  }

  std::vector<LiveResult> results;
  results.reserve(cells.size());
  bool tcp_unavailable = false;
  for (const LiveCell& cell : cells) {
    const bool is_tcp = std::string(cell.transport) == "tcp";
    if (tcp_unavailable && is_tcp) continue;
    LiveResult r;
    try {
      r = run_live(cell, iterations);
    } catch (const std::runtime_error& e) {
      if (is_tcp && std::string(e.what()).find("garfield_node") !=
                        std::string::npos) {
        std::printf("(skipping transport=tcp cells: %s)\n", e.what());
        tcp_unavailable = true;
        continue;
      }
      throw;
    }
    char speedup[32] = "-";
    if (r.speedup_vs_pre_pr > 0) {
      std::snprintf(speedup, sizeof speedup, "%.2fx", r.speedup_vs_pre_pr);
    }
    std::printf("%-14s %-7s %-4zu %-4zu %-6zu %-10.1f %-12llu %-12llu "
                "%-8llu %-10s\n",
                gc::to_string(cell.deployment).c_str(), cell.transport,
                cell.nps, cell.nw, cell.pool_threads, r.its_per_sec,
                (unsigned long long)r.floats_transferred,
                (unsigned long long)r.bytes_sent,
                (unsigned long long)r.wasted_replies, speedup);
    results.push_back(r);
  }
  return results;
}

// ------------------------------------------------- codec frontier mode

/// Accuracy-vs-bytes frontier: the same live trainer sweeping
/// (deployment x codec x nw), plus two acceptance groups on the
/// decentralized nw=8 shape — transport=tcp rows pinning the bytes cut a
/// codec buys on a real multi-process deployment, and bandwidth-capped
/// rows ("wan:bw=25Mbps") where serialization delay makes the saved bytes
/// show up as iterations per second. Every row carries final_accuracy so
/// the frontier (accuracy loss vs bytes shipped) reads straight off the
/// JSON; bytes_ratio_vs_none compares each lossy row to the codec=none
/// row of the same (deployment, transport, nw, network) shape.
std::vector<LiveResult> codec_mode(std::size_t iterations) {
  const bool smoke = garfield::bench::smoke_mode();
  std::printf("\nCodec frontier — accuracy vs bytes, %zu iterations per "
              "cell\n", iterations);
  std::printf("%-14s %-7s %-4s %-12s %-16s %-10s %-12s %-12s %-9s %-8s\n",
              "deployment", "trans", "nw", "codec", "network", "its/sec",
              "bytes_sent", "bytes_saved", "accuracy", "vs none");

  const char* codecs[] = {"none", "int8", "topk:k=0.01"};
  std::vector<LiveCell> cells;
  const std::vector<std::size_t> nws =
      smoke ? std::vector<std::size_t>{6} : std::vector<std::size_t>{6, 8};
  for (std::size_t nw : nws) {
    for (const char* codec : codecs) {
      cells.push_back({gc::Deployment::kSsmw, 1, nw, 1, 0, 0, "inproc",
                       codec, ""});
      cells.push_back({gc::Deployment::kDecentralized, 1, nw, 1, 0, 0,
                       "inproc", codec, ""});
    }
  }
  // Acceptance group 1: decentralized nw=8 over real processes — the
  // bytes a codec keeps off the localhost links (rank-0's process-local
  // view, like every tcp row).
  for (const char* codec : codecs) {
    cells.push_back({gc::Deployment::kDecentralized, 1, 8, 1, 0, 0, "tcp",
                     codec, ""});
  }
  // Acceptance group 2: same shape in-process under a bandwidth-honest
  // 25 Mbps WAN — compressed frames serialize in a fraction of the time,
  // so its/sec must strictly beat codec=none.
  for (const char* codec : codecs) {
    cells.push_back({gc::Deployment::kDecentralized, 1, 8, 1, 0, 0,
                     "inproc", codec, "wan:bw=25Mbps"});
  }

  std::vector<LiveResult> results;
  results.reserve(cells.size());
  bool tcp_unavailable = false;
  for (const LiveCell& cell : cells) {
    const bool is_tcp = std::string(cell.transport) == "tcp";
    if (tcp_unavailable && is_tcp) continue;
    LiveResult r;
    try {
      r = run_live(cell, iterations);
    } catch (const std::runtime_error& e) {
      if (is_tcp && std::string(e.what()).find("garfield_node") !=
                        std::string::npos) {
        std::printf("(skipping transport=tcp cells: %s)\n", e.what());
        tcp_unavailable = true;
        continue;
      }
      throw;
    }
    // Each group's codec=none row runs first (the codecs[] order), so the
    // baseline is already in `results` when its lossy rows arrive.
    for (const LiveResult& base : results) {
      if (base.cell.deployment == cell.deployment &&
          std::string(base.cell.transport) == cell.transport &&
          base.cell.nw == cell.nw &&
          std::string(base.cell.network) == cell.network &&
          std::string(base.cell.codec) == "none" &&
          std::string(cell.codec) != "none" && r.bytes_sent > 0) {
        r.bytes_ratio_vs_none = double(base.bytes_sent) / double(r.bytes_sent);
      }
    }
    char ratio[32] = "-";
    if (r.bytes_ratio_vs_none > 0) {
      std::snprintf(ratio, sizeof ratio, "%.2fx", r.bytes_ratio_vs_none);
    }
    std::printf("%-14s %-7s %-4zu %-12s %-16s %-10.1f %-12llu %-12llu "
                "%-9.4f %-8s\n",
                gc::to_string(cell.deployment).c_str(), cell.transport,
                cell.nw, cell.codec, *cell.network ? cell.network : "-",
                r.its_per_sec, (unsigned long long)r.bytes_sent,
                (unsigned long long)r.bytes_saved, r.final_accuracy, ratio);
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main() {
  panel("Fig 8a — CPU cluster, CifarNet, batches/sec vs nw (analytic)",
        "CifarNet", cpu_profile(), cpu_link(), 32,
        {3, 5, 7, 9, 11, 13, 15, 17, 19});
  panel("Fig 8b — GPU cluster, ResNet-50, batches/sec vs nw (analytic)",
        "ResNet-50", gpu_profile(), gpu_link(), 100, {5, 7, 9, 11, 13});
  std::printf("\nPaper shapes: all parameter-server systems scale with nw; "
              "the decentralized\ncolumn flattens; GPU panel sits about an "
              "order of magnitude above CPU.\n");
  const std::size_t iterations = garfield::bench::smoke_mode() ? 6 : 60;
  const std::vector<LiveResult> results = live_mode(iterations);
  const std::vector<LiveResult> frontier = codec_mode(iterations);
  write_json(results, frontier, iterations);
  return 0;
}
