#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace garfield::data {

Dataset::Dataset(Tensor inputs, std::vector<std::size_t> labels,
                 std::size_t num_classes)
    : inputs_(std::move(inputs)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  if (inputs_.rank() < 2) {
    throw std::invalid_argument("Dataset: inputs must be {n, ...}");
  }
  if (inputs_.dim(0) != labels_.size()) {
    throw std::invalid_argument("Dataset: inputs/labels size mismatch");
  }
  sample_shape_.assign(inputs_.shape().begin() + 1, inputs_.shape().end());
  sample_numel_ = tensor::shape_numel(sample_shape_);
}

Batch Dataset::gather(std::span<const std::size_t> indices) const {
  tensor::Shape shape = sample_shape_;
  shape.insert(shape.begin(), indices.size());
  Batch batch;
  batch.inputs = Tensor(std::move(shape));
  batch.labels.reserve(indices.size());
  float* out = batch.inputs.data().data();
  const float* in = inputs_.data().data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    assert(i < size());
    std::copy(in + i * sample_numel_, in + (i + 1) * sample_numel_,
              out + k * sample_numel_);
    batch.labels.push_back(labels_[i]);
  }
  return batch;
}

Batch Dataset::all() const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  return gather(idx);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Batch b = gather(indices);
  return Dataset(std::move(b.inputs), std::move(b.labels), num_classes_);
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t n_train) const {
  if (n_train > size()) {
    throw std::invalid_argument("Dataset::split: n_train exceeds size");
  }
  std::vector<std::size_t> head(n_train), tail(size() - n_train);
  std::iota(head.begin(), head.end(), 0);
  std::iota(tail.begin(), tail.end(), n_train);
  return {subset(head), subset(tail)};
}

Dataset make_cluster_dataset(const tensor::Shape& sample_shape,
                             std::size_t num_classes, std::size_t n, Rng& rng,
                             float noise) {
  const std::size_t d = tensor::shape_numel(sample_shape);
  std::vector<Tensor> prototypes;
  prototypes.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c)
    prototypes.push_back(Tensor::randn(sample_shape, rng));
  tensor::Shape full = sample_shape;
  full.insert(full.begin(), n);
  Tensor inputs(std::move(full));
  std::vector<std::size_t> labels(n);
  float* out = inputs.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % num_classes;  // balanced classes
    labels[i] = c;
    const float* proto = prototypes[c].data().data();
    for (std::size_t j = 0; j < d; ++j)
      out[i * d + j] = proto[j] + rng.normal(0.0F, noise);
  }
  return Dataset(std::move(inputs), std::move(labels), num_classes);
}

Dataset make_teacher_dataset(const tensor::Shape& sample_shape,
                             std::size_t num_classes, std::size_t n,
                             Rng& rng) {
  const std::size_t d = tensor::shape_numel(sample_shape);
  const std::size_t hidden = std::max<std::size_t>(2 * num_classes, 16);
  // Frozen random teacher: tanh(x W1) W2, label = argmax.
  Tensor w1 = Tensor::randn({d, hidden}, rng, 0.0F, 1.0F / std::sqrt(float(d)));
  Tensor w2 = Tensor::randn({hidden, num_classes}, rng, 0.0F,
                            1.0F / std::sqrt(float(hidden)));
  tensor::Shape full = sample_shape;
  full.insert(full.begin(), n);
  Tensor inputs(std::move(full));
  for (float& v : inputs.data()) v = rng.normal();
  Tensor flat = inputs.reshaped({n, d});
  Tensor h = tensor::matmul(flat, w1);
  for (float& v : h.data()) v = std::tanh(v);
  Tensor logits = tensor::matmul(h, w2);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data().data() + i * num_classes;
    labels[i] = std::size_t(
        std::distance(row, std::max_element(row, row + num_classes)));
  }
  return Dataset(std::move(inputs), std::move(labels), num_classes);
}

std::vector<Dataset> shard_iid(const Dataset& dataset, std::size_t parts,
                               Rng& rng) {
  assert(parts > 0);
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<Dataset> shards;
  shards.reserve(parts);
  const std::size_t chunk = dataset.size() / parts;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = (p + 1 == parts) ? dataset.size() : begin + chunk;
    shards.push_back(dataset.subset(
        std::span<const std::size_t>(order.data() + begin, end - begin)));
  }
  return shards;
}

std::vector<Dataset> shard_by_class(const Dataset& dataset,
                                    std::size_t parts) {
  assert(parts > 0);
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dataset.labels()[a] < dataset.labels()[b];
                   });
  std::vector<Dataset> shards;
  shards.reserve(parts);
  const std::size_t chunk = dataset.size() / parts;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = (p + 1 == parts) ? dataset.size() : begin + chunk;
    shards.push_back(dataset.subset(
        std::span<const std::size_t>(order.data() + begin, end - begin)));
  }
  return shards;
}

BatchSampler::BatchSampler(const Dataset& dataset, std::size_t batch_size,
                           Rng rng)
    : dataset_(&dataset),
      batch_size_(batch_size),
      rng_(rng),
      keyed_root_(rng.fork(0x6b65)) {
  assert(batch_size_ > 0);
  order_.resize(dataset.size());
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void BatchSampler::reshuffle() {
  std::shuffle(order_.begin(), order_.end(), rng_.engine());
  cursor_ = 0;
}

Batch BatchSampler::next() {
  if (cursor_ >= order_.size()) {
    ++epoch_;
    reshuffle();
  }
  const std::size_t take = std::min(batch_size_, order_.size() - cursor_);
  std::span<const std::size_t> idx(order_.data() + cursor_, take);
  cursor_ += take;
  return dataset_->gather(idx);
}

Batch BatchSampler::batch_for(std::uint64_t iteration) {
  const std::size_t n = order_.size();
  if (n == 0) return dataset_->gather({});
  const std::size_t per_epoch = (n + batch_size_ - 1) / batch_size_;
  const std::uint64_t e = iteration / per_epoch;
  const std::size_t slot = std::size_t(iteration % per_epoch);
  if (e != keyed_epoch_) {
    keyed_order_.resize(n);
    std::iota(keyed_order_.begin(), keyed_order_.end(), 0);
    Rng epoch_rng = keyed_root_.fork(e);
    std::shuffle(keyed_order_.begin(), keyed_order_.end(),
                 epoch_rng.engine());
    keyed_epoch_ = e;
  }
  const std::size_t begin = slot * batch_size_;
  const std::size_t take = std::min(batch_size_, n - begin);
  std::span<const std::size_t> idx(keyed_order_.data() + begin, take);
  return dataset_->gather(idx);
}

}  // namespace garfield::data
