// Figure 3 — GAR micro-benchmark (measured, not simulated).
//
// Reproduces both panels on this machine's CPU implementation of the GARs:
//   Fig 3a: aggregation time vs n (number of inputs), fixed d.
//   Fig 3b: aggregation time vs d (input dimension), fixed n = 17.
// As in the paper, f = floor((n-3)/4) for all Byzantine-resilient GARs, so
// the smallest n is 7. The paper's d = 1e7 runs on two 1080 Ti GPUs; we
// sweep to d = 1e7 on the CPU (expect the same ordering and growth shapes,
// scaled by hardware: Average ~ Median < Multi-Krum ~ MDA < Bulyan, all
// linear in d, Krum-family quadratic in n).
//
// A third section ("fig3c") tracks the §4.3 multi-core claim: each rule is
// timed through the aggregate_into hot path at 1 / 2 / max threads
// (set_parallel_threads) and the serial-vs-parallel speedup is printed, so
// the coordinate-sharding scaling is a recorded number, not an assumption.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_support.h"
#include "gars/gar.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace {

using garfield::tensor::FlatVector;

std::vector<FlatVector> make_inputs(std::size_t n, std::size_t d) {
  garfield::tensor::Rng rng(1234);
  std::vector<FlatVector> inputs(n, FlatVector(d));
  for (auto& v : inputs) {
    for (float& x : v) x = rng.normal();
  }
  return inputs;
}

void run_gar(benchmark::State& state, const std::string& name) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t d = std::size_t(state.range(1));
  const std::size_t f = (n - 3) / 4;  // the paper's setting
  const auto inputs = make_inputs(n, d);
  const auto gar = garfield::gars::make_gar(
      name, n, name == "average" ? 0 : f);
  for (auto _ : state) {
    FlatVector out = gar->aggregate(inputs);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["n"] = double(n);
  state.counters["d"] = double(d);
  state.counters["f"] = double(f);
}

void register_all() {
  const std::vector<std::string> gars = {"average", "median", "multi_krum",
                                         "mda", "bulyan"};
  // Smoke mode (ctest bench-smoke): one tiny point per GAR and panel so the
  // registration + aggregation path runs in milliseconds.
  if (garfield::bench::smoke_mode()) {
    for (const auto& g : gars) {
      for (const char* panel : {"fig3a/", "fig3b/"}) {
        benchmark::RegisterBenchmark(
            (panel + g).c_str(),
            [g](benchmark::State& s) { run_gar(s, g); })
            ->Args({7, 1'000})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
    return;
  }
  // Fig 3a: n sweep at fixed d (paper: d = 1e7; scaled to 1e6 to keep the
  // CPU sweep minutes, the n-shape is unchanged).
  for (const auto& g : gars) {
    for (std::size_t n = 7; n <= 23; n += 2) {
      benchmark::RegisterBenchmark(
          ("fig3a/" + g).c_str(),
          [g](benchmark::State& s) { run_gar(s, g); })
          ->Args({long(n), 1'000'000})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
  // Fig 3b: d sweep at fixed n = 17.
  for (const auto& g : gars) {
    for (long d : {10'000L, 100'000L, 1'000'000L, 10'000'000L}) {
      benchmark::RegisterBenchmark(
          ("fig3b/" + g).c_str(),
          [g](benchmark::State& s) { run_gar(s, g); })
          ->Args({17, d})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(d >= 10'000'000 ? 1 : 2);
    }
  }
}

// Fig 3c: serial-vs-parallel scaling of the aggregate_into hot path. Times
// each rule at 1 / 2 / max threads on one reused AggregationContext and
// prints the speedup over the 1-thread run — the §4.3 scaling claim as a
// tracked number. Smoke mode shrinks d so the sweep stays in milliseconds.
void thread_scaling_report() {
  namespace gt = garfield::tensor;
  using clock = std::chrono::steady_clock;

  const bool smoke = garfield::bench::smoke_mode();
  const std::size_t n = 17;
  const std::size_t f = (n - 3) / 4;
  const std::size_t d = smoke ? 200'000 : 10'000'000;
  const int reps = smoke ? 1 : 3;
  const auto inputs = make_inputs(n, d);

  // Always sweep 2 threads — even on a single-core host this drives the
  // sharded code path (expect ~1.0x there; the speedup column only means
  // something when hardware threads > 1).
  std::vector<std::size_t> thread_counts = {1, 2};
  const std::size_t max_threads = gt::parallel_threads();
  if (max_threads > 2) thread_counts.push_back(max_threads);

  std::printf(
      "\nfig3c/thread_scaling: aggregate_into, n=%zu d=%zu f=%zu "
      "(hardware threads: %zu)\n",
      n, d, f, max_threads);
  std::printf("%-14s %9s %12s %9s\n", "gar", "threads", "time_ms",
              "speedup");
  for (const auto& g : {std::string("average"), std::string("median"),
                        std::string("trimmed_mean"), std::string("krum"),
                        std::string("multi_krum"), std::string("bulyan")}) {
    const auto gar =
        garfield::gars::make_gar(g, n, g == "average" ? 0 : f);
    garfield::gars::AggregationContext ctx;
    FlatVector out;
    double serial_ms = 0.0;
    for (const std::size_t threads : thread_counts) {
      gt::set_parallel_threads(threads);
      gar->aggregate_into(inputs, ctx, out);  // warm-up + buffer growth
      double best_ms = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        const auto begin = clock::now();
        gar->aggregate_into(inputs, ctx, out);
        const auto end = clock::now();
        best_ms = std::min(
            best_ms,
            std::chrono::duration<double, std::milli>(end - begin).count());
      }
      if (threads == 1) serial_ms = best_ms;
      std::printf("%-14s %9zu %12.3f %8.2fx\n", g.c_str(), threads, best_ms,
                  serial_ms / best_ms);
      benchmark::DoNotOptimize(out.data());
    }
    gt::set_parallel_threads(0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  thread_scaling_report();
  return 0;
}
