#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace garfield::sim {

DeviceProfile cpu_profile() {
  // Anchors: ResNet-50 (d = 23.5e6), batch 32 per worker, ~1.6 s of
  // gradient computation per iteration (Fig 7) => compute_rate ~ 4.7e8.
  // GAR rate anchors Fig 3 run on CPU being ~20x slower than the GPU runs.
  // gar_rate reflects the multi-core coordinate partitioning of §4.3
  // (20 cores x vectorized selection), anchored to keep aggregation ~10% of
  // the Byzantine-resilience overhead (Fig 7).
  return DeviceProfile{
      .name = "cpu",
      .compute_rate = 4.7e8,
      .gar_rate = 2.0e10,
      .serialize_rate = 6.0e8,
      .rpc_overhead = 300e-6,
      .iteration_overhead = 0.25,
  };
}

DeviceProfile gpu_profile() {
  // Anchors: Fig 3 micro-benchmarks (Average of 17 x 1e7 floats in ~8 ms;
  // Multi-Krum/Bulyan ~0.05-0.1 s) and the paper's "one order of magnitude
  // over CPUs" end-to-end observation.
  return DeviceProfile{
      .name = "gpu",
      .compute_rate = 7.5e9,
      .gar_rate = 9.0e10,
      .serialize_rate = 4.0e9,
      .rpc_overhead = 200e-6,
      .iteration_overhead = 0.02,
  };
}

LinkProfile cpu_link() { return LinkProfile{312.5e6, 100e-6}; }

LinkProfile gpu_link() { return LinkProfile{1.25e9, 50e-6}; }

LinkProfile degraded(const LinkProfile& base, double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("degraded: factor must be >= 1");
  }
  return LinkProfile{base.bandwidth_floats / factor,
                     base.latency * factor};
}

double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    result *= double(n - k + i) / double(i);
    if (result > 1e15) return 1e15;  // saturate: "exponential" is enough
  }
  return result;
}

double gar_time(const std::string& gar, std::size_t n, std::size_t f,
                std::size_t d, const DeviceProfile& device) {
  if (n == 0 || d == 0) return 0.0;
  const double nd = double(n) * double(d);
  const double n2d = double(n) * nd;
  double ops = 0.0;
  if (gar == "average") {
    ops = nd;
  } else if (gar == "median") {
    // introselect per coordinate: linear in n with a ~3x constant.
    ops = 3.0 * nd;
  } else if (gar == "trimmed_mean") {
    ops = std::log2(double(std::max<std::size_t>(n, 2))) * nd;
  } else if (gar == "krum" || gar == "multi_krum") {
    ops = 1.5 * n2d;
  } else if (gar == "bulyan") {
    // Iterated Krum selection + per-coordinate trimmed averaging.
    ops = 2.5 * n2d;
  } else if (gar == "mda") {
    // Pairwise distances + subset search over C(n, f) candidates.
    ops = n2d + binomial(n, f) * double(n - f) * double(n - f) * 4.0;
  } else {
    throw std::invalid_argument("gar_time: unknown GAR '" + gar + "'");
  }
  return ops / device.gar_rate + device.rpc_overhead;
}

}  // namespace garfield::sim
