// AttackRegistry — self-describing adversary construction (the attack-side
// twin of gars/registry.h).
//
// Every attack registers an AttackDescriptor {name, omniscient, factory};
// attack_names() / make_attack() / attack_is_omniscient() (attacks/attack.h)
// are thin queries over the registry, so adding an attack means adding one
// descriptor — no string-dispatch switch to keep in sync by hand.
//
// Spec-string grammar (util/spec.h, shared with the GAR registry):
//
//   spec := name [ ":" key "=" value ("," key "=" value)* ]
//
// Examples:  "sign_flip"
//            "little_is_enough:z=2.5"
//            "random:scale=100"
//            "alternating:period=5,first=sign_flip,second=zero"
//
// Unknown names and unknown/malformed options are rejected at make_attack
// time — DeploymentConfig::validate() probes every configured spec, so a
// typo fails at config time, never mid-training.
//
// Attack *plans* extend specs to per-node assignments within one Byzantine
// cohort:
//
//   plan  := entry (";" entry)*
//   entry := [ count "*" ] spec
//
// Examples:  "reversed"                          (every attacker)
//            "little_is_enough:z=1.5;2*sign_flip" (1 LIE + 2 sign-flippers)
//
// A single-spec plan without a count is *uniform*: it applies to however
// many attackers the cohort declares (the legacy worker_attack semantics).
// Any plan with counts or multiple entries is *shaped*: its counts must sum
// exactly to the cohort's f, checked by AttackPlan::expand and at
// validate() time.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "util/spec.h"

namespace garfield::attacks {

/// Typed option bag (util/spec.h) — see gars::GarOptions for semantics.
using AttackOptions = util::SpecOptions;

/// A parsed attack spec string: attack name + option bag.
using AttackSpec = util::ParsedSpec;

/// Parse "name" or "name:key=value,..."; throws std::invalid_argument on
/// grammar violations.
[[nodiscard]] AttackSpec parse_attack_spec(const std::string& spec);

/// What an attack contributes to the registry.
struct AttackDescriptor {
  std::string name;
  /// True when craft() wants the honest cohort view in its AttackContext
  /// (the strongest adversary model); false for attacks that only rewrite
  /// the attacker's own payload.
  bool omniscient = false;
  /// Build the attack with the given options. Factories must read every
  /// option they accept through the typed getters; unconsumed options are
  /// rejected by make_attack after the factory returns.
  std::function<AttackPtr(const AttackOptions& options)> factory;
};

/// Process-wide attack registry. Built-in attacks are registered on first
/// access; extensions call instance().add() (e.g. from a static
/// initializer) before first use.
class AttackRegistry {
 public:
  static AttackRegistry& instance();

  AttackRegistry(const AttackRegistry&) = delete;
  AttackRegistry& operator=(const AttackRegistry&) = delete;

  /// Register an attack; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(AttackDescriptor descriptor);

  /// Descriptor for `name`, or nullptr when unknown.
  [[nodiscard]] const AttackDescriptor* find(const std::string& name) const;
  /// Descriptor for `name`; throws std::invalid_argument when unknown.
  [[nodiscard]] const AttackDescriptor& at(const std::string& name) const;
  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AttackRegistry();

  std::vector<AttackDescriptor> descriptors_;  // registration order
};

/// make_attack over an already-parsed spec (lets plans parse once and
/// construct per node). Rejects unconsumed options.
[[nodiscard]] AttackPtr make_attack(const AttackSpec& spec);

// ------------------------------------------------------------ attack plans

/// A per-cohort attack assignment parsed from a plan string (grammar
/// above). Node *ranks* are positions within the Byzantine cohort: rank 0
/// is the first declared-Byzantine node, rank f-1 the last.
struct AttackPlan {
  struct Entry {
    AttackSpec spec;
    std::size_t count = 1;        ///< attackers mounting this spec
    bool explicit_count = false;  ///< entry was written "count*spec"
  };

  std::vector<Entry> entries;

  /// True for the no-adversary plan (parsed from "").
  [[nodiscard]] bool empty() const { return entries.empty(); }
  /// True for a single spec without a count — applies to any cohort size.
  [[nodiscard]] bool uniform() const {
    return entries.size() == 1 && !entries.front().explicit_count;
  }
  /// Sum of entry counts (the cohort size a shaped plan is written for).
  [[nodiscard]] std::size_t declared_attackers() const;

  /// One spec per cohort rank, in plan order. A uniform plan replicates its
  /// spec f times; a shaped plan's counts must sum exactly to f (throws
  /// std::invalid_argument otherwise, naming both numbers). expand(0) on a
  /// non-empty plan returns an empty vector only for uniform plans.
  [[nodiscard]] std::vector<AttackSpec> expand(std::size_t f) const;
};

/// Parse a plan string; "" yields the empty plan. Throws
/// std::invalid_argument on grammar violations (empty entries, zero
/// counts, malformed specs). Does NOT touch the registry — pair with
/// make_attack / validate_attack_plan for existence checks.
[[nodiscard]] AttackPlan parse_attack_plan(const std::string& plan);

/// Full config-time validation of a plan string for a cohort declaring f
/// Byzantine nodes: grammar, attack existence, option types, and shape
/// (shaped plans must cover exactly f attackers). `role` names the cohort
/// in error messages ("worker_attack", "server_attack"). Returns the
/// parsed plan so callers can reuse it.
AttackPlan validate_attack_plan(const std::string& plan, std::size_t f,
                                const std::string& role);

namespace detail {
// Built-in registration hook, implemented next to the attacks themselves
// (attack.cpp) and invoked once by AttackRegistry's constructor —
// deterministic under static-library linking, where file-local registrar
// objects could silently be dropped.
void register_core_attacks(AttackRegistry& registry);
}  // namespace detail

}  // namespace garfield::attacks
