#include "core/worker.h"

#include <cassert>
#include <cstring>

#include "net/wire.h"

namespace garfield::core {

namespace {

/// Cached computations retained. Server replicas drift by at most a few
/// iterations (model exchange bounds them), so a short ring covers every
/// live pull; an evicted (very old) iteration is simply recomputed — the
/// keyed batch sampler makes the recomputation bitwise identical for
/// momentum-free workers. With momentum the recomputation folds against
/// the *current* pre-commit velocity base, not the one that was live when
/// the iteration was first served — an approximation only reachable in
/// asynchronous runs whose replicas already drift by > kGradientCacheDepth
/// iterations, where quorum membership is timing-dependent anyway.
constexpr std::size_t kGradientCacheDepth = 8;

/// Cohort-estimate size an omniscient worker attack samples per request.
/// Enough batches for a usable mean/stddev estimate; small enough that the
/// adversary's extra compute stays a constant factor.
constexpr std::size_t kOmniscienceProbes = 4;

bool same_payload(const net::Payload& a, const net::Payload& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(float)) == 0);
}

}  // namespace

Worker::Worker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
               data::Dataset shard, std::size_t batch_size, tensor::Rng rng,
               float momentum)
    : rng_(rng),
      id_(id),
      cluster_(cluster),
      model_(std::move(model)),
      shard_(std::move(shard)),
      sampler_(shard_, batch_size, rng_.fork(0xb0)),
      probe_sampler_(shard_, batch_size, rng_.fork(0xb1)),
      momentum_(momentum) {
  cluster.register_handler(id_, kGetGradient,
                           [this](const net::Request& req) {
                             return serve_gradient(req);
                           });
}

void Worker::rejoin() {
  {
    util::MutexLock lock(mutex_);
    cache_.clear();
    cloud_cache_.clear();
    encode_cache_.clear();
    residuals_.clear();
    velocity_.clear();
    velocity_pre_.clear();
    velocity_iteration_ = std::uint64_t(-1);
  }
  cluster_.register_handler(id_, kGetGradient,
                            [this](const net::Request& req) {
                              return serve_gradient(req);
                            });
}

Worker::ServedGradient Worker::compute_locked(const net::Request& req) {
  model_->set_parameters(*req.argument);
  const data::Batch batch = sampler_.batch_for(req.iteration);
  nn::GradientResult result = model_->gradient(batch.inputs, batch.labels);
  ++computed_;
  if (momentum_ > 0.0F) {
    // Distributed momentum: v = m*v + g; the server receives v. The
    // velocity advances once per *iteration*: the first compute for
    // iteration t commits v_t = m*v_{t-1} + g_t; a later compute for the
    // same (or an older) iteration — diverged replicas under asynchrony —
    // folds its gradient into the pre-commit base without moving the
    // committed state.
    if (velocity_.size() != result.gradient.size()) {
      velocity_.assign(result.gradient.size(), 0.0F);
      velocity_pre_.assign(result.gradient.size(), 0.0F);
    }
    if (velocity_iteration_ == std::uint64_t(-1) ||
        req.iteration > velocity_iteration_) {
      velocity_pre_ = velocity_;
      for (std::size_t i = 0; i < velocity_.size(); ++i) {
        velocity_[i] = momentum_ * velocity_[i] + result.gradient[i];
      }
      velocity_iteration_ = req.iteration;
      result.gradient = velocity_;
    } else {
      for (std::size_t i = 0; i < result.gradient.size(); ++i) {
        result.gradient[i] =
            momentum_ * velocity_pre_[i] + result.gradient[i];
      }
    }
  }
  ServedGradient served{
      std::make_shared<const net::Payload>(std::move(result.gradient)),
      result.loss};
  cache_.push_back(
      CacheEntry{req.iteration, req.argument, served.gradient, served.loss});
  if (cache_.size() > kGradientCacheDepth) cache_.pop_front();
  return served;
}

Worker::ServedGradient Worker::honest_gradient(const net::Request& req) {
  util::MutexLock lock(mutex_);
  assert(req.argument && req.argument->size() == model_->dimension());
  for (const CacheEntry& e : cache_) {
    if (e.iteration != req.iteration) continue;
    if (e.params == req.argument || same_payload(*e.params, *req.argument)) {
      loss_sum_ += e.loss;
      ++served_;
      return ServedGradient{e.gradient, e.loss};
    }
  }
  ServedGradient served = compute_locked(req);
  loss_sum_ += served.loss;
  ++served_;
  return served;
}

std::vector<net::Payload> Worker::local_gradient_cloud(
    const net::Request& req, std::size_t k) {
  util::MutexLock lock(mutex_);
  assert(req.argument && req.argument->size() == model_->dimension());
  for (const CloudEntry& e : cloud_cache_) {
    if (e.iteration == req.iteration && e.cloud.size() == k &&
        (e.params == req.argument ||
         same_payload(*e.params, *req.argument))) {
      return e.cloud;  // every replica's pull shares one probe pass
    }
  }
  model_->set_parameters(*req.argument);
  std::vector<net::Payload> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const data::Batch batch =
        probe_sampler_.batch_for(req.iteration * kOmniscienceProbes + i);
    out.push_back(model_->gradient(batch.inputs, batch.labels).gradient);
  }
  cloud_cache_.push_back(CloudEntry{req.iteration, req.argument, out});
  if (cloud_cache_.size() > kGradientCacheDepth) cloud_cache_.pop_front();
  return out;
}

bool Worker::decode_argument(net::Request& req) {
  if (!req.argument || !net::Codec::looks_encoded(*req.argument)) {
    return true;  // plain dense payload (or no argument): pass through
  }
  std::size_t dimension = 0;
  {
    util::MutexLock lock(mutex_);
    dimension = model_->dimension();
  }
  std::optional<net::Payload> dense = codec_.decode(*req.argument, dimension);
  if (!dense) return false;
  req.argument = std::make_shared<const net::Payload>(std::move(*dense));
  return true;
}

net::PayloadPtr Worker::encode_reply(const net::PayloadPtr& dense,
                                     net::NodeId from) {
  if (codec_.identity() || !dense) return dense;
  util::MutexLock lock(mutex_);
  // Saturating: encoding a tiny tensor can be *larger* than dense (the
  // 3-float header), which saves nothing rather than un-saving.
  const auto charge_saved = [&](const net::Payload& encoded) {
    if (encoded.size() < dense->size()) {
      cluster_.note_bytes_saved(net::wire_size(dense->size()) -
                                net::wire_size(encoded.size()));
    }
  };
  for (const EncodedEntry& e : encode_cache_) {
    if (e.source == dense && e.from == from) {
      charge_saved(*e.encoded);
      return e.encoded;
    }
  }
  auto encoded = std::make_shared<const net::Payload>(
      codec_.encode_gradient(*dense, &residuals_[from]));
  encode_cache_.push_back(EncodedEntry{dense, from, encoded});
  if (encode_cache_.size() > kGradientCacheDepth) encode_cache_.pop_front();
  charge_saved(*encoded);
  return encoded;
}

net::HandlerResult Worker::serve_gradient(const net::Request& req) {
  net::Request local = req;
  // Ingress gate: a Byzantine caller can ship arbitrary bytes as an
  // "encoded" model — structural garbage answers with silence, exactly
  // like a crashed peer, never a throw.
  if (!decode_argument(local)) return net::HandlerResult::none();
  return net::HandlerResult::reply(
      encode_reply(honest_gradient(local).gradient, local.from));
}

double Worker::mean_loss() const {
  util::MutexLock lock(mutex_);
  return served_ == 0 ? 0.0 : loss_sum_ / double(served_);
}

std::uint64_t Worker::gradients_served() const {
  util::MutexLock lock(mutex_);
  return served_;
}

std::uint64_t Worker::gradients_computed() const {
  util::MutexLock lock(mutex_);
  return computed_;
}

ByzantineWorker::ByzantineWorker(net::NodeId id, net::Cluster& cluster,
                                 nn::ModelPtr model, data::Dataset shard,
                                 std::size_t batch_size, tensor::Rng rng,
                                 attacks::AttackPtr attack, float momentum,
                                 bool omniscient, std::size_t declared_n,
                                 std::size_t declared_f,
                                 std::string cohort_gar,
                                 std::size_t cohort_lo,
                                 std::size_t cohort_hi)
    : Worker(id, cluster, std::move(model), std::move(shard), batch_size,
             rng, momentum),
      attack_(std::move(attack)),
      conditions_(&cluster.conditions()),
      omniscient_(omniscient),
      declared_n_(declared_n),
      declared_f_(declared_f),
      cohort_gar_(std::move(cohort_gar)),
      cohort_lo_(cohort_lo),
      cohort_hi_(cohort_hi) {}

net::HandlerResult ByzantineWorker::serve_gradient(const net::Request& req) {
  net::Request local = req;
  if (!decode_argument(local)) return net::HandlerResult::none();
  const ServedGradient honest = honest_gradient(local);
  // Omniscient attacks get a local cohort estimate (see class comment);
  // non-omniscient ones see only the attacker's own honest estimate. The
  // full honest-cohort view is exercised directly against GARs in the
  // robustness-matrix tests.
  std::vector<net::Payload> view;
  if (omniscient_) {
    view = local_gradient_cloud(local, kOmniscienceProbes);
  }
  util::MutexLock lock(attack_mutex_);
  attacks::AttackContext ctx(rng_);
  ctx.iteration = local.iteration;
  ctx.attacker_id = id();
  ctx.n = declared_n_;
  ctx.f = declared_f_;
  ctx.honest = view;
  ctx.gar = cohort_gar_;
  ctx.conditions = conditions_;
  ctx.cohort_lo = cohort_lo_;
  ctx.cohort_hi = cohort_hi_;
  std::optional<net::Payload> crafted =
      attack_->craft(*honest.gradient, ctx);
  if (!crafted) return net::HandlerResult::none();
  // The attack operates on the plaintext gradient; the codec is a wire
  // concern, applied after corruption (a Byzantine sender still speaks
  // the wire format — attacks on the *format* live in the fuzz suite).
  // No shared residual: crafted payloads are per-request, so each is
  // encoded standalone.
  if (!codec().identity()) {
    return net::HandlerResult::reply(
        codec().encode_gradient(*crafted, nullptr));
  }
  return net::HandlerResult::reply(std::move(*crafted));
}

}  // namespace garfield::core
