// Concrete layers: Linear, activations, Conv2d (im2col), MaxPool2d,
// Flatten, Dropout and the Sequential container.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/module.h"
#include "tensor/rng.h"

namespace garfield::nn {

/// Fully-connected layer: y = x W^T + b, x of shape {batch, in}.
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, tensor::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Tensor weight_, bias_;        // {out, in}, {out}
  Tensor grad_weight_, grad_bias_;
  Tensor input_cache_;
};

/// Rectified linear unit, elementwise.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

/// Hyperbolic tangent, elementwise.
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor output_cache_;
};

/// 2-D convolution over {batch, in_ch, h, w} inputs, implemented with
/// im2col + GEMM (the standard framework lowering).
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         tensor::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

 private:
  [[nodiscard]] std::size_t out_size(std::size_t in) const {
    return (in + 2 * padding_ - kernel_) / stride_ + 1;
  }

  std::size_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Tensor weight_, bias_;  // {out_ch, in_ch*k*k}, {out_ch}
  Tensor grad_weight_, grad_bias_;
  Tensor cols_cache_;     // im2col buffer from forward
  tensor::Shape input_shape_;
};

/// Max pooling over {batch, ch, h, w}.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_, stride_;
  std::vector<std::size_t> argmax_;
  tensor::Shape input_shape_;
};

/// Collapse all non-batch dimensions: {b, ...} -> {b, prod(...)}.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout : public Module {
 public:
  Dropout(double p, tensor::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double p_;
  tensor::Rng rng_;
  Tensor mask_;
};

/// Residual (skip) connection: y = inner(x) + x. Inner must preserve the
/// input shape. The building block of the ResNet family (He et al.).
class Residual : public Module {
 public:
  explicit Residual(ModulePtr inner) : inner_(std::move(inner)) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override { return inner_->params(); }
  [[nodiscard]] std::string name() const override { return "Residual"; }

 private:
  ModulePtr inner_;
};

/// Parallel branches over the same input, concatenated along the channel
/// dimension: the Inception pattern. Input {b, c, h, w}; every branch must
/// produce {b, c_i, h, w} with identical spatial dims.
class ChannelConcat : public Module {
 public:
  explicit ChannelConcat(std::vector<ModulePtr> branches)
      : branches_(std::move(branches)) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "ChannelConcat"; }

 private:
  std::vector<ModulePtr> branches_;
  std::vector<std::size_t> branch_channels_;
  tensor::Shape input_shape_;
};

/// Ordered chain of modules.
class Sequential : public Module {
 public:
  Sequential() = default;

  void push(ModulePtr module) { modules_.push_back(std::move(module)); }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const { return modules_.size(); }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace garfield::nn
