// Ablation — decentralized contraction depth on non-iid data (§5.3).
//
// Listing 3's contract() runs `steps` extra gossip rounds per iteration
// "to force the model states on all machines to get closer to each other".
// This sweep quantifies exactly that: the inter-peer model drift (largest
// parameter-difference norm across correct peers, averaged over the run),
// the message cost of each extra round, and the resulting accuracy.
#include <cstdio>

#include "bench_support.h"
#include "core/trainer.h"

int main() {
  using namespace garfield::core;

  std::printf("Ablation — contraction rounds, decentralized, 9 peers, "
              "class-concentrated shards\n\n");
  std::printf("%-20s %-16s %-18s %-18s\n", "contraction steps",
              "final accuracy", "mean peer drift", "messages");

  for (std::size_t steps = 0; steps <= 3; ++steps) {
    DeploymentConfig cfg;
    cfg.deployment = Deployment::kDecentralized;
    cfg.model = "tiny_mlp";
    cfg.nw = 9;
    cfg.fw = 1;
    cfg.gradient_gar = "median";
    cfg.model_gar = "median";
    cfg.non_iid = true;  // class-concentrated shards in every row
    cfg.contraction_steps = steps;
    cfg.batch_size = 16;
    cfg.train_size = 2304;
    cfg.test_size = 512;
    cfg.optimizer.lr.gamma0 = 0.08F;
    cfg.iterations = 200;
    cfg.eval_every = 0;
    cfg.alignment_every = 20;  // drift probe cadence
    cfg.seed = 11;
    const TrainResult result = train(garfield::bench::smoke(cfg));
    double drift = 0.0;
    for (const AlignmentSample& a : result.alignment) drift += a.max_diff1;
    if (!result.alignment.empty()) drift /= double(result.alignment.size());
    std::printf("%-20zu %-16.3f %-18.4f %-18llu\n", steps,
                result.final_accuracy, drift,
                static_cast<unsigned long long>(
                    result.net_stats.requests_sent));
  }
  std::printf("\nShape: contraction shrinks the inter-peer model drift (its "
              "stated purpose);\nmessage count grows linearly with depth. "
              "Accuracy within a fixed iteration\nbudget does not improve "
              "here — each peer already aggregates n-f peers'\ngradients "
              "every step, so extra gossip mostly adds staleness (the "
              "paper's\nasynchrony-slows-convergence observation).\n");
  return 0;
}
