#include "net/timer_wheel.h"

#include <algorithm>
#include <utility>

namespace garfield::net {

TimerWheel::TimerWheel(ThreadPool& pool)
    : pool_(pool), thread_([this] { run(); }) {}

TimerWheel::~TimerWheel() { stop_and_flush(); }

void TimerWheel::stop_and_flush() {
  {
    util::MutexLock lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Run the backlog inline, in due order. A flushed task may itself try to
  // re-arm (a not-ready retry); schedule_after now returns false, so the
  // dispatcher resolves its callback instead of looping. The pool is
  // deliberately not used here: inline execution keeps teardown correct
  // whichever of pool/wheel the owner destroys first.
  for (;;) {
    Entry entry;
    {
      util::MutexLock lock(mutex_);
      if (heap_.empty()) return;
      entry = pop_locked();
    }
    entry.task();
  }
}

TimerWheel::Entry TimerWheel::pop_locked() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool TimerWheel::schedule_after(Clock::duration delay,
                                std::function<void()>&& task) {
  const Clock::time_point due = Clock::now() + delay;
  bool new_front = false;
  {
    util::MutexLock lock(mutex_);
    if (stop_) return false;
    heap_.push_back(Entry{due, next_seq_++, std::move(task)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    new_front = heap_.front().seq == next_seq_ - 1;
  }
  // The (single) timer thread only needs waking when its next due time
  // changed; entries behind the current front will be seen when it pops.
  if (new_front) cv_.notify_one();
  return true;
}

std::size_t TimerWheel::pending() const {
  util::MutexLock lock(mutex_);
  return heap_.size();
}

void TimerWheel::run() {
  for (;;) {
    Entry entry;
    {
      util::MutexLock lock(mutex_);
      if (stop_) return;
      if (heap_.empty()) {
        cv_.wait(mutex_, [this]() GARFIELD_REQUIRES(mutex_) {
          return stop_ || !heap_.empty();
        });
        continue;  // re-check stop with the fresh state
      }
      const Clock::time_point due = heap_.front().due;
      if (Clock::now() < due) {
        // Woken early by a new entry (possibly with an earlier due time) or
        // by shutdown; re-evaluate the heap top either way.
        (void)cv_.wait_until(mutex_, due);
        continue;
      }
      entry = pop_locked();
    }
    // submit() leaves the task untouched on refusal (pool shutdown while
    // the wheel still runs — only possible for standalone wheel users;
    // Cluster stops the wheel first), so running it inline is safe.
    if (!pool_.submit(std::move(entry.task))) entry.task();
  }
}

}  // namespace garfield::net
