// Per-deployment iteration-latency composition.
//
// simulate_iteration() walks the stages of one training iteration of each
// §5 application on the modelled cluster and returns the same breakdown
// the paper measures (Fig 7/16): computation, communication (transfer +
// serialization + RPC overhead + straggler/partition waits) and robust
// aggregation. Throughput figures (Fig 6, 8, 9, 10, 13, 14, 15) are
// derived from it.
//
// Stage model: every communication stage costs
//     latency + max-per-node-NIC-floats / link-bandwidth
//             + serialized-floats * 2 / serialize-rate
//             + stage-floats-total / fabric-capacity
// The fabric term models switch contention: parameter-server traffic is
// O(n) per iteration, decentralized traffic is O(n^2) — which is exactly
// why decentralized learning does not scale (Fig 9a).
//
// Network conditions: the same net::NetworkConditions spec that drives the
// live cluster drives this plane (the cross-validation contract). Per pull
// stage the model resolves, from the parsed spec, whether the awaited
// quorum can dodge the degraded responders:
//  - heterogeneous slow links force the stage onto the degraded edge class
//    (cost_model's degraded()) whenever q exceeds the fast responders;
//  - an active straggler phase adds its full lag whenever q cannot be met
//    without a straggling responder — which is exactly why an asynchronous
//    n-f quorum rides out stragglers a synchronous deployment waits on;
//  - an active partition window adds its delivery lag whenever q cannot be
//    met on the puller's side of the cut (messages are delayed, not
//    dropped — the pre-GST partial-synchrony regime);
//  - jitter contributes the expected tail of the q-th fastest reply;
//  - a configured byte rate (wan bw=, link: overrides) caps the stage's
//    edge bandwidth at the spec's rate — the puller's own overrides always
//    bind, responder-side overrides only when the quorum cannot be met
//    without a limited responder (the usual fastest-q dodge), and the
//    hetero factor derates the capped rate on degraded stages exactly as
//    the live cluster derates byte_rate() — the analytic twin of the
//    cluster's per-message serialization delay;
//  - a churn schedule removes its down nodes from the stage's candidate
//    pool outright (they are absent, not slow) and clamps the quorum to
//    what remains — the analytic twin of the live cluster's lifecycle FSM
//    refusing delivery to CRASHED nodes, so both planes walk the same
//    per-iteration quorum trajectory;
//  - an active fault clause charges the expected retry tail of its lost
//    attempts (drop + corrupt, each resent after the live sender's
//    backoff floor) plus its expected delay-spike mass whenever the
//    quorum cannot dodge the affected edges — the analytic twin of the
//    cluster's bounded retry layer, zero outside the fault window.
#pragma once

#include <cstdint>
#include <string>

#include "net/conditions.h"
#include "sim/cost_model.h"
#include "sim/model_spec.h"

namespace garfield::sim {

enum class SimDeployment {
  kVanilla,
  kCrashTolerant,
  kSsmw,
  kMsmw,
  kDecentralized,
};

[[nodiscard]] std::string to_string(SimDeployment d);

struct SimSetup {
  SimDeployment deployment = SimDeployment::kSsmw;
  std::size_t d = 23539850;      ///< model dimension (ResNet-50 default)
  std::size_t batch_size = 32;   ///< per-worker mini-batch
  std::size_t nw = 18;           ///< workers (or peers when decentralized)
  std::size_t fw = 3;
  std::size_t nps = 6;           ///< ignored by vanilla/ssmw/decentralized
  std::size_t fps = 1;
  std::string gradient_gar = "bulyan";
  std::string model_gar = "median";
  bool asynchronous = true;      ///< wait for n-f replies instead of n
  DeviceProfile device = cpu_profile();
  LinkProfile link{};
  /// Native-runtime baseline (vanilla TF / PyTorch): optimized collectives,
  /// no per-message protobuf serialization, streaming aggregation.
  bool native_runtime = false;
  /// PyTorch-backend Garfield (§4.2): per-layer pipelining overlaps
  /// communication with aggregation.
  bool pipelined = false;
  /// Decentralized contraction rounds per iteration (non-iid data).
  std::size_t contraction_steps = 0;
  /// Switch-fabric capacity in units of link bandwidth.
  double fabric_links = 8.0;
  /// Network conditions shared verbatim with the live plane
  /// (net/conditions.h spec grammar). Node ids follow the live trainer's
  /// layout: parameter-server deployments place servers at [0, nps) and
  /// workers at [nps, nps + nw); decentralized deployments place peers at
  /// [0, nw). `link` is the fast edge class; a hetero clause derives the
  /// slow class via degraded(link, factor).
  net::NetworkConditions conditions{};
  /// Iteration the breakdown is computed for — straggler phases, partition
  /// windows and windowed wan phases (latency/jitter/bandwidth) are
  /// iteration-scheduled, so the breakdown is a function of *when* you
  /// look.
  std::uint64_t iteration = 0;
  /// Wire floats per model float after gradient compression (net/codec.h):
  /// 1.0 for codec=none, ~2k/d for topk:k=..., ~0.25 for int8. Scales every
  /// communication volume — computation and aggregation stay full-size.
  double codec_ratio = 1.0;
};

struct IterationBreakdown {
  double computation = 0.0;
  double communication = 0.0;
  double aggregation = 0.0;

  [[nodiscard]] double total() const {
    return computation + communication + aggregation;
  }
};

/// Latency composition of one iteration at the reporting server/peer.
[[nodiscard]] IterationBreakdown simulate_iteration(const SimSetup& setup);

/// Model updates per second (1 / iteration latency).
[[nodiscard]] double updates_per_sec(const SimSetup& setup);

/// Mini-batches processed per second (nw per iteration — employing more
/// workers grows the effective batch, Fig 8's metric).
[[nodiscard]] double batches_per_sec(const SimSetup& setup);

/// Communication component only (Fig 9's metric).
[[nodiscard]] double communication_time(const SimSetup& setup);

/// Slowdown of `setup` relative to the native vanilla baseline on the same
/// device/model (Fig 6/15's metric).
[[nodiscard]] double slowdown_vs_vanilla(const SimSetup& setup);

}  // namespace garfield::sim
