// Gradient Aggregation Rules (GARs) — the paper's §3.1.
//
// A GAR is a function (R^d)^q -> R^d aggregating q gradient (or model)
// vectors, of which up to f may be Byzantine. Garfield mirrors the paper's
// two-call interface: make_gar(spec, n, f) is init(), aggregation is
// aggregate(). Each rule validates its resilience precondition (the
// inequality relating q and f) at construction.
//
// The primary aggregation entry point is
//
//   gar->aggregate_into(inputs, ctx, out);
//
// where `ctx` is a caller-owned AggregationContext holding every scratch
// buffer a rule needs (distance matrix, score/index arrays, work vectors).
// Reusing one context across iterations makes steady-state aggregation
// allocation-free on the O(d) and O(n^2) paths — the §4.4 caching story
// generalized to all rule scratch state. The classic
//
//   FlatVector out = gar->aggregate(inputs);
//
// remains as a compatibility wrapper that builds a throwaway context per
// call; migrate hot paths to aggregate_into.
//
// Rule construction goes through the GarRegistry (gars/registry.h):
// make_gar accepts either a bare rule name ("krum") or a spec string with
// typed options ("centered_clip:tau=0.5,iterations=20").
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/vecops.h"

namespace garfield::gars {

using tensor::FlatVector;

/// Cache of pairwise squared distances over a fixed input set, with O(1)
/// logical removal and an O(1) maintained active count. §4.4: "aggregating
/// gradients may require multiple iterations, calculating some
/// distance-based scores ... we cache the results of each of these
/// iterations and hence remove redundant computations" — Bulyan's
/// iterated-Krum phase computes the O(n^2 d) distance matrix once and
/// reuses it across all selection rounds. The matrix fill is sharded over
/// pairs with tensor::parallel_for (§4.3). reset() recomputes in place,
/// reusing the allocation — AggregationContext keeps one instance alive
/// across aggregation calls.
class DistanceCache {
 public:
  DistanceCache() = default;
  explicit DistanceCache(std::span<const FlatVector> inputs) {
    reset(inputs);
  }

  /// Recompute the matrix for a new input set, reusing storage. All inputs
  /// become active again.
  void reset(std::span<const FlatVector> inputs);

  [[nodiscard]] double squared_distance(std::size_t i, std::size_t j) const {
    assert(i < n_ && j < n_);
    return matrix_[i * n_ + j];
  }
  /// Logically remove an input from the active set (idempotent).
  void remove(std::size_t i) {
    assert(i < n_);
    if (active_[i]) {
      active_[i] = false;
      --active_count_;
    }
  }
  [[nodiscard]] bool is_active(std::size_t i) const {
    assert(i < n_);
    return active_[i];
  }
  [[nodiscard]] std::size_t active_count() const { return active_count_; }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t active_count_ = 0;
  std::vector<double> matrix_;
  std::vector<bool> active_;
};

/// Reusable scratch state for aggregation. One context per aggregating
/// thread (a Server owns one for its loop); NOT thread-safe — the
/// parallelism lives inside the kernels, not across contexts. Buffers grow
/// to the high-water mark of (n, d) seen and are then reused, so
/// steady-state calls perform no heap allocation on the O(d)/O(n^2) paths.
/// Lifetime rules: a context must outlive every aggregate_into call using
/// it, and buffers handed out are valid only until the next request for the
/// same buffer — rules own the context for the duration of one call.
class AggregationContext {
 public:
  AggregationContext() = default;
  AggregationContext(const AggregationContext&) = delete;
  AggregationContext& operator=(const AggregationContext&) = delete;

  /// Pairwise distances for `inputs`, recomputed in place on each call.
  [[nodiscard]] DistanceCache& distance_cache(
      std::span<const FlatVector> inputs) {
    cache_.reset(inputs);
    return cache_;
  }

  /// Slot-indexed d-element work vector (contents unspecified). Slots let
  /// a rule hold several live vectors (e.g. Weiszfeld center + next).
  [[nodiscard]] FlatVector& vector_scratch(std::size_t slot, std::size_t d) {
    if (vectors_.size() <= slot) vectors_.resize(slot + 1);
    vectors_[slot].resize(d);
    return vectors_[slot];
  }

  /// n-element double scratch (scores, norms, per-input statistics).
  [[nodiscard]] std::vector<double>& score_scratch(std::size_t n) {
    scores_.resize(n);
    return scores_;
  }

  /// n-element index scratch (selection orders).
  [[nodiscard]] std::vector<std::size_t>& index_scratch(std::size_t n) {
    indices_.resize(n);
    return indices_;
  }

  /// Pool of n staged input vectors of dimension d (used by input-rewriting
  /// decorators such as pre_clip; one decorator level deep).
  [[nodiscard]] std::vector<FlatVector>& input_scratch(std::size_t n,
                                                       std::size_t d) {
    staged_.resize(n);
    for (FlatVector& v : staged_) v.resize(d);
    return staged_;
  }

 private:
  DistanceCache cache_;
  std::vector<FlatVector> vectors_;
  std::vector<double> scores_;
  std::vector<std::size_t> indices_;
  std::vector<FlatVector> staged_;
};

/// Interface of a gradient aggregation rule.
class Gar {
 public:
  virtual ~Gar() = default;

  Gar(const Gar&) = delete;
  Gar& operator=(const Gar&) = delete;

  /// Primary entry point: aggregate exactly n() vectors of equal dimension
  /// into `out` (resized to d), drawing all scratch from `ctx`. `out` must
  /// not alias any input or a ctx buffer.
  void aggregate_into(std::span<const FlatVector> inputs,
                      AggregationContext& ctx, FlatVector& out) const;

  /// Compatibility wrapper around aggregate_into: builds a throwaway
  /// context (and therefore allocates) per call. Fine for tests and cold
  /// paths; hot loops should hold an AggregationContext and use
  /// aggregate_into.
  [[nodiscard]] FlatVector aggregate(std::span<const FlatVector> inputs) const;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t f() const { return f_; }

 protected:
  Gar(std::size_t n, std::size_t f) : n_(n), f_(f) {}

  /// Rule kernel: inputs are validated and `out` is sized to d already.
  virtual void do_aggregate(std::span<const FlatVector> inputs,
                            AggregationContext& ctx, FlatVector& out) const = 0;

  /// Throws std::invalid_argument unless sizes match (n inputs, equal d>0).
  void check_inputs(std::span<const FlatVector> inputs) const;

  std::size_t n_;
  std::size_t f_;
};

using GarPtr = std::unique_ptr<Gar>;

/// Names registered in the GarRegistry, in registration order: "average",
/// "median", "trimmed_mean", "krum", "multi_krum", "mda", "bulyan", plus
/// the extended rules the paper's related-work section points at:
/// "geometric_median" (RFA), "centered_clip", "cge" (norm-based comparative
/// gradient elimination) — and anything registered at runtime.
[[nodiscard]] std::vector<std::string> gar_names();

/// Minimum number of inputs rule `spec` needs to tolerate f Byzantine ones
/// (spec may be a bare name or a full spec string; only the name matters).
/// average: 1 (tolerates none); median/trimmed_mean/mda: 2f+1;
/// krum/multi_krum: 2f+3; bulyan: 4f+3.
[[nodiscard]] std::size_t gar_min_n(const std::string& spec, std::size_t f);

/// The paper's init(): build a rule for n inputs with at most f Byzantine.
/// `spec` is either a bare registry name ("krum") or a spec string with
/// options ("centered_clip:tau=0.5,iterations=20") — see gars/registry.h
/// for the grammar. Throws std::invalid_argument for unknown names,
/// malformed or unknown options, or n < gar_min_n(name, f).
[[nodiscard]] GarPtr make_gar(const std::string& spec, std::size_t n,
                              std::size_t f);

// ------------------------------------------------------------------------
// Concrete rules. Exposed so callers can construct them directly; most code
// should go through make_gar / the registry.

/// Arithmetic mean — the vanilla (non-resilient) baseline.
class Average final : public Gar {
 public:
  Average(std::size_t n, std::size_t f);
  [[nodiscard]] std::string name() const override { return "average"; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;
};

/// Coordinate-wise median [Xie et al.]. Requires n >= 2f+1. O(nd).
class Median final : public Gar {
 public:
  Median(std::size_t n, std::size_t f);
  [[nodiscard]] std::string name() const override { return "median"; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;
};

/// Coordinate-wise trimmed mean: drop the `trim` lowest and `trim` highest
/// values of every coordinate (default trim = f), average the rest.
/// Requires n >= 2f+1 and n > 2*trim. O(n log n · d).
class TrimmedMean final : public Gar {
 public:
  TrimmedMean(std::size_t n, std::size_t f);
  TrimmedMean(std::size_t n, std::size_t f, std::size_t trim);
  [[nodiscard]] std::string name() const override { return "trimmed_mean"; }
  [[nodiscard]] std::size_t trim() const { return trim_; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

 private:
  std::size_t trim_;
};

/// Krum [Blanchard et al.]: score each vector by the sum of squared
/// distances to its n-f-2 nearest neighbours; return the argmin vector.
/// Requires n >= 2f+3. O(n^2 d), distance matrix sharded across cores.
class Krum : public Gar {
 public:
  Krum(std::size_t n, std::size_t f);
  [[nodiscard]] std::string name() const override { return "krum"; }

  /// Index of the Krum-selected vector (exposed for Bulyan and tests).
  /// Builds a throwaway distance cache; hot paths use select_cached.
  [[nodiscard]] std::size_t select(std::span<const FlatVector> inputs) const;

  /// Krum selection over the active subset of a distance cache — the
  /// O(q^2) re-scoring path used by Bulyan's iterations, with no O(d) work.
  [[nodiscard]] std::size_t select_cached(const DistanceCache& cache,
                                          std::span<const FlatVector> inputs)
      const;

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

  /// Krum scores for the full (all-active) cache into `out`, with the
  /// neighbourhood size q-f-2 (clamped to >= 1).
  void scores_from_cache(const DistanceCache& cache,
                         std::vector<double>& out) const;

  /// Input indices ordered by ascending score into `order`. Exact score
  /// ties are real (mutual nearest neighbours score identically), so ties
  /// break on the vectors' lexicographic order — this keeps aggregation
  /// invariant to reply-arrival order, which is adversarial under
  /// asynchrony.
  void selection_order_cached(const DistanceCache& cache,
                              std::span<const FlatVector> inputs,
                              std::vector<double>& scores,
                              std::vector<std::size_t>& order) const;
};

/// Multi-Krum: average the m smallest-scoring vectors (default m = n-f-2,
/// overridable via the registry option "m" in [1, n-f-2]).
class MultiKrum final : public Krum {
 public:
  MultiKrum(std::size_t n, std::size_t f);
  MultiKrum(std::size_t n, std::size_t f, std::size_t m);
  [[nodiscard]] std::string name() const override { return "multi_krum"; }

  [[nodiscard]] std::size_t m() const { return m_; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

 private:
  std::size_t m_;
};

/// MDA (Minimum-Diameter Averaging) [Rousseeuw]: average the subset of
/// size n-f with the smallest diameter. Requires n >= 2f+1.
/// O(C(n,f) + n^2 d) — exponential when f = Θ(n).
class Mda final : public Gar {
 public:
  Mda(std::size_t n, std::size_t f);
  [[nodiscard]] std::string name() const override { return "mda"; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;
};

/// Bulyan [El Mhamdi et al.]: iterate Krum n-2f times to build a selection
/// set, then per coordinate average the n-4f values closest to the median
/// of the selected set. Requires n >= 4f+3. O(n^2 d).
class Bulyan final : public Gar {
 public:
  Bulyan(std::size_t n, std::size_t f);
  [[nodiscard]] std::string name() const override { return "bulyan"; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;
};

// ------------------------------------------------------------------------
// Extended rules (beyond the four the paper ships; §7 notes Garfield "can
// straightforwardly include the other ones").

/// Geometric median via the smoothed Weiszfeld iteration (RFA, Pillutla et
/// al.). Minimizes the sum of Euclidean distances to the inputs — a
/// rotation-invariant robust center. Requires n >= 2f+1. O(k n d) for k
/// Weiszfeld rounds.
class GeometricMedian final : public Gar {
 public:
  struct Options {
    std::size_t max_iterations = 32;
    double tolerance = 1e-8;      ///< relative movement stopping criterion
    double smoothing = 1e-6;      ///< Weiszfeld denominator floor
  };

  GeometricMedian(std::size_t n, std::size_t f, Options options);
  GeometricMedian(std::size_t n, std::size_t f)
      : GeometricMedian(n, f, Options{}) {}
  [[nodiscard]] std::string name() const override {
    return "geometric_median";
  }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

 private:
  Options options_;
};

/// Centered clipping (Karimireddy et al.): iteratively re-center on the
/// clipped mean — every input's deviation from the current center is
/// clipped to radius tau before averaging. Requires n >= 2f+1. O(k n d).
class CenteredClip final : public Gar {
 public:
  struct Options {
    /// Re-centering rounds. Each round shrinks a far outlier's leverage to
    /// at most tau/n, so ~10 rounds collapse even 1e4-scale outliers.
    std::size_t iterations = 10;
    double tau = 0.0;  ///< clipping radius; 0 = auto (median distance)
  };

  CenteredClip(std::size_t n, std::size_t f, Options options);
  CenteredClip(std::size_t n, std::size_t f)
      : CenteredClip(n, f, Options{}) {}
  [[nodiscard]] std::string name() const override { return "centered_clip"; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

 private:
  Options options_;
};

/// Comparative gradient elimination (norm filtering): sort inputs by
/// Euclidean norm and average the `keep` smallest (default keep = n-f).
/// Cheap — O(n d) — but only robust against magnitude-based attacks.
/// Requires n >= 2f+1 and 1 <= keep <= n.
class Cge final : public Gar {
 public:
  Cge(std::size_t n, std::size_t f);
  Cge(std::size_t n, std::size_t f, std::size_t keep);
  [[nodiscard]] std::string name() const override { return "cge"; }
  [[nodiscard]] std::size_t keep() const { return keep_; }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override;

 private:
  std::size_t keep_;
};

}  // namespace garfield::gars
