// Extended GARs: geometric median (RFA / smoothed Weiszfeld), centered
// clipping and norm-based comparative gradient elimination. These are the
// "other rules" §7 of the paper says Garfield can straightforwardly
// include; they share the same init()/aggregate() interface and factory.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "gars/gar.h"

namespace garfield::gars {

namespace {

void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

}  // namespace

// --------------------------------------------------------- GeometricMedian

GeometricMedian::GeometricMedian(std::size_t n, std::size_t f,
                                 Options options)
    : Gar(n, f), options_(options) {
  require(n >= 2 * f + 1, "geometric_median: requires n >= 2f+1");
  require(options_.max_iterations > 0,
          "geometric_median: needs at least one iteration");
}

FlatVector GeometricMedian::aggregate(
    std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t d = inputs.front().size();
  // Start from the coordinate-wise mean and run Weiszfeld updates:
  //   z <- sum_i(x_i / max(||x_i - z||, eps)) / sum_i(1 / max(...)).
  FlatVector center = tensor::mean(inputs);
  FlatVector next(d);
  for (std::size_t it = 0; it < options_.max_iterations; ++it) {
    double weight_sum = 0.0;
    std::fill(next.begin(), next.end(), 0.0F);
    bool on_point = false;
    for (const FlatVector& x : inputs) {
      const double dist =
          std::sqrt(tensor::squared_distance(x, center));
      if (dist < options_.smoothing) {
        // Weiszfeld is undefined exactly on an input; that input is
        // already a 1/n-weight optimum candidate — snap to it.
        center = x;
        on_point = true;
        break;
      }
      const double w = 1.0 / dist;
      weight_sum += w;
      tensor::axpy(float(w), x, next);
    }
    if (on_point) break;
    tensor::scale(next, float(1.0 / weight_sum));
    const double moved = tensor::squared_distance(next, center);
    const double scale = std::max(1.0, tensor::dot(center, center));
    center.swap(next);
    if (moved / scale < options_.tolerance * options_.tolerance) break;
  }
  return center;
}

// ------------------------------------------------------------ CenteredClip

CenteredClip::CenteredClip(std::size_t n, std::size_t f, Options options)
    : Gar(n, f), options_(options) {
  require(n >= 2 * f + 1, "centered_clip: requires n >= 2f+1");
  require(options_.iterations > 0,
          "centered_clip: needs at least one iteration");
}

FlatVector CenteredClip::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  // Robust starting point: coordinate-wise-median-free — use the input
  // closest to the mean? The standard recipe starts from the previous
  // round's momentum; stateless here, we start from the mean and rely on
  // clipping to pull Byzantine leverage down.
  FlatVector center = tensor::mean(inputs);

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    // Auto radius: median distance from the current center.
    double tau = options_.tau;
    if (tau <= 0.0) {
      std::vector<double> dists(n);
      for (std::size_t i = 0; i < n; ++i) {
        dists[i] = std::sqrt(tensor::squared_distance(inputs[i], center));
      }
      std::nth_element(dists.begin(), dists.begin() + long(n / 2),
                       dists.end());
      tau = dists[n / 2];
      if (tau == 0.0) break;  // all inputs at the center already
    }
    // center += (1/n) sum_i clip(x_i - center, tau)
    FlatVector shift(d, 0.0F);
    for (const FlatVector& x : inputs) {
      const double dist = std::sqrt(tensor::squared_distance(x, center));
      const double lambda = dist > tau ? tau / dist : 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        shift[j] += float(lambda * (double(x[j]) - double(center[j])));
      }
    }
    tensor::scale(shift, 1.0F / float(n));
    tensor::add(center, shift, center);
  }
  return center;
}

// -------------------------------------------------------------------- Cge

Cge::Cge(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= 2 * f + 1, "cge: requires n >= 2f+1");
}

FlatVector Cge::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t keep = n - f_;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> norms(n);
  for (std::size_t i = 0; i < n; ++i) norms[i] = tensor::dot(inputs[i], inputs[i]);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (norms[a] != norms[b]) return norms[a] < norms[b];
    return std::lexicographical_compare(inputs[a].begin(), inputs[a].end(),
                                        inputs[b].begin(), inputs[b].end());
  });
  FlatVector out(inputs.front().size(), 0.0F);
  for (std::size_t k = 0; k < keep; ++k) {
    tensor::axpy(1.0F, inputs[order[k]], out);
  }
  tensor::scale(out, 1.0F / float(keep));
  return out;
}

}  // namespace garfield::gars
