// Parameterized sweeps: Conv2d against a reference implementation across
// kernel/stride/padding combinations, GAR consistency across (n, f)
// grids, and controller end-to-end matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.h"
#include "gars/gar.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "tensor/rng.h"

namespace nn = garfield::nn;
namespace gg = garfield::gars;
namespace gc = garfield::core;
namespace gt = garfield::tensor;

// ------------------------------------------------- Conv2d reference sweep

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, padding, h, w;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

namespace {

/// Direct (quadruple-loop) convolution, the obviously-correct reference
/// for the im2col+GEMM implementation.
gt::Tensor conv_reference(const gt::Tensor& input, const gt::Tensor& weight,
                          const gt::Tensor& bias, const ConvCase& c) {
  const std::size_t b = input.dim(0);
  const std::size_t oh = (c.h + 2 * c.padding - c.kernel) / c.stride + 1;
  const std::size_t ow = (c.w + 2 * c.padding - c.kernel) / c.stride + 1;
  gt::Tensor out({b, c.out_ch, oh, ow});
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t oc = 0; oc < c.out_ch; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          double acc = bias[oc];
          for (std::size_t ic = 0; ic < c.in_ch; ++ic) {
            for (std::size_t ky = 0; ky < c.kernel; ++ky) {
              for (std::size_t kx = 0; kx < c.kernel; ++kx) {
                const long iy = long(oy * c.stride + ky) - long(c.padding);
                const long ix = long(ox * c.stride + kx) - long(c.padding);
                if (iy < 0 || ix < 0 || iy >= long(c.h) || ix >= long(c.w))
                  continue;
                const float v =
                    input.data()[((n * c.in_ch + ic) * c.h + std::size_t(iy)) *
                                     c.w +
                                 std::size_t(ix)];
                const float wv =
                    weight.data()[oc * c.in_ch * c.kernel * c.kernel +
                                  (ic * c.kernel + ky) * c.kernel + kx];
                acc += double(v) * wv;
              }
            }
          }
          out.data()[((n * c.out_ch + oc) * oh + oy) * ow + ox] = float(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace

TEST_P(ConvSweep, MatchesDirectConvolution) {
  const ConvCase& c = GetParam();
  gt::Rng rng(31);
  nn::Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  gt::Tensor x = gt::Tensor::randn({2, c.in_ch, c.h, c.w}, rng);
  const gt::Tensor fast = conv.forward(x, true);
  auto params = conv.params();
  const gt::Tensor ref =
      conv_reference(x, *params[0].value, *params[1].value, c);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.numel(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5, 5},
                      ConvCase{1, 4, 3, 1, 1, 8, 8},
                      ConvCase{3, 2, 3, 1, 0, 7, 7},
                      ConvCase{2, 3, 3, 2, 1, 9, 9},
                      ConvCase{4, 4, 5, 1, 2, 8, 8},
                      ConvCase{2, 2, 3, 3, 0, 10, 10},
                      ConvCase{1, 8, 3, 2, 1, 6, 9}),  // non-square input
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const ConvCase& c = info.param;
      return "c" + std::to_string(c.in_ch) + "o" + std::to_string(c.out_ch) +
             "k" + std::to_string(c.kernel) + "s" + std::to_string(c.stride) +
             "p" + std::to_string(c.padding) + "h" + std::to_string(c.h) +
             "w" + std::to_string(c.w);
    });

// ----------------------------------------------------- GAR (n, f) grids

class GarGrid : public ::testing::TestWithParam<std::size_t> {};

/// Every GAR, at every feasible f for the given n: finite output of the
/// right size, inside the coordinate envelope, and stable under input
/// duplication at the boundary sizes.
TEST_P(GarGrid, AllFeasibleFValues) {
  const std::size_t n = GetParam();
  gt::Rng rng(37);
  std::vector<gt::FlatVector> in(n, gt::FlatVector(10));
  for (auto& v : in) {
    for (float& x : v) x = rng.normal();
  }
  for (const std::string& name : gg::gar_names()) {
    for (std::size_t f = 0; f < n; ++f) {
      if (gg::gar_min_n(name, f) > n) {
        EXPECT_THROW((void)gg::make_gar(name, n, f), std::invalid_argument)
            << name << " n=" << n << " f=" << f;
        continue;
      }
      gg::GarPtr gar = gg::make_gar(name, n, f);
      const gt::FlatVector out = gar->aggregate(in);
      ASSERT_EQ(out.size(), 10u) << name;
      EXPECT_TRUE(gt::all_finite(out)) << name << " n=" << n << " f=" << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, GarGrid, ::testing::Values(3, 5, 7, 9, 12, 15),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

// -------------------------------------------- controller end-to-end grid

struct DeployGar {
  const char* deployment;
  const char* gar;
};

class ControllerMatrix : public ::testing::TestWithParam<DeployGar> {};

TEST_P(ControllerMatrix, ShortRunLearns) {
  const DeployGar& p = GetParam();
  const std::string text = std::string("deployment = ") + p.deployment +
                           "\nmodel = tiny_mlp\nnw = 7\nfw = 1\n"
                           "nps = 3\nfps = 0\ngradient_gar = " +
                           p.gar +
                           "\nmodel_gar = median\ntrain_size = 768\n"
                           "test_size = 192\nbatch_size = 16\nlr = 0.1\n"
                           "iterations = 80\neval_every = 0\nseed = 51\n";
  const gc::TrainResult result = gc::run_experiment(text);
  EXPECT_GT(result.final_accuracy, 0.55)
      << p.deployment << " + " << p.gar;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ControllerMatrix,
    ::testing::Values(DeployGar{"ssmw", "median"},
                      DeployGar{"ssmw", "trimmed_mean"},
                      DeployGar{"ssmw", "multi_krum"},
                      DeployGar{"ssmw", "mda"},
                      DeployGar{"ssmw", "geometric_median"},
                      DeployGar{"ssmw", "centered_clip"},
                      DeployGar{"ssmw", "cge"},
                      DeployGar{"msmw", "median"},
                      DeployGar{"msmw", "multi_krum"},
                      DeployGar{"decentralized", "median"},
                      DeployGar{"decentralized", "trimmed_mean"}),
    [](const ::testing::TestParamInfo<DeployGar>& info) {
      return std::string(info.param.deployment) + "_" + info.param.gar;
    });
