// Elastic-membership cross-validation: one `churn:` spec string drives
// BOTH execution planes (README "Node lifecycle & churn") —
//   - the analytic simulator removes down nodes from every pull stage's
//     candidate pool (sim/deployment_sim.h), and
//   - the live cluster's lifecycle FSM refuses delivery to them and runs
//     the recovery hook (handler re-registration + checkpoint state
//     transfer) at the scheduled up-edge (net/cluster.h, core/trainer.cpp),
// and the two planes must walk the same per-iteration quorum trajectory.
//
// Also pinned here: the churn grammar (repeatable clauses, crash/join
// exclusivity), the shared membership predicates, the step-tagged
// stale-state rejection a recovering replica relies on, the below-floor
// loud abort, and the config-time checkpoint requirement for recovering
// server replicas.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/server.h"
#include "core/trainer.h"
#include "net/cluster.h"
#include "net/conditions.h"
#include "nn/zoo.h"
#include "sim/deployment_sim.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace gc = garfield::core;
namespace gn = garfield::net;
namespace gs = garfield::sim;

namespace {

gs::SimSetup sim_ssmw() {
  gs::SimSetup s;
  s.deployment = gs::SimDeployment::kSsmw;
  s.d = 1'000'000;
  s.batch_size = 32;
  s.nw = 6;
  s.fw = 1;
  s.nps = 1;
  s.fps = 0;
  s.gradient_gar = "multi_krum";
  s.device = gs::cpu_profile();
  return s;
}

gc::DeploymentConfig live_ssmw() {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.nw = 6;
  cfg.fw = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.iterations = 5;
  cfg.eval_every = 1;
  cfg.seed = 20260808;
  return cfg;
}

void expect_same_curve(const gc::TrainResult& a, const gc::TrainResult& b,
                       const char* what) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << what;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy) << what << " @" << i;
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss) << what << " @" << i;
  }
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          ("garfield_churn_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

}  // namespace

// ------------------------------------------------------- grammar & predicates

TEST(ChurnGrammar, ClausesMayRepeatAndEachSchedulesOneEvent) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "churn:crash=3,at_iter=4,recover_after=2;churn:join=5,at_iter=6");
  ASSERT_EQ(c.churn().size(), 2u);
  EXPECT_TRUE(c.has_churn());
  EXPECT_FALSE(c.ideal());
  const auto& crash = c.churn()[0];
  EXPECT_FALSE(crash.join);
  EXPECT_EQ(crash.nodes.lo, 3u);
  EXPECT_EQ(crash.at_iter, 4u);
  EXPECT_EQ(crash.recover_after, 2u);
  const auto& join = c.churn()[1];
  EXPECT_TRUE(join.join);
  EXPECT_EQ(join.nodes.lo, 5u);
  EXPECT_EQ(join.at_iter, 6u);
}

TEST(ChurnGrammar, CrashAndJoinAreMutuallyExclusive) {
  EXPECT_THROW((void)gn::NetworkConditions::parse(
                   "churn:crash=1,join=2,at_iter=3"),
               std::invalid_argument);
  // An event must name somebody.
  EXPECT_THROW((void)gn::NetworkConditions::parse("churn:at_iter=3"),
               std::invalid_argument);
}

TEST(ChurnGrammar, JoinRejectsRecoverAfter) {
  // A join IS the recovery of a node that was never alive; a
  // recover_after on it has no meaning and must not parse.
  EXPECT_THROW((void)gn::NetworkConditions::parse(
                   "churn:join=2,at_iter=3,recover_after=1"),
               std::invalid_argument);
}

TEST(ChurnGrammar, ValidateRejectsOutOfClusterNodes) {
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("churn:crash=9,at_iter=1");
  EXPECT_THROW(c.validate(5), std::invalid_argument);
  EXPECT_NO_THROW(c.validate(10));
}

TEST(ChurnPredicates, CrashWindowIsHalfOpenAndJoinIsAPrefix) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "churn:crash=3,at_iter=4,recover_after=2;churn:join=5,at_iter=6");
  // crash=3: down exactly over [4, 6).
  EXPECT_FALSE(c.churn_down(3, 3));
  EXPECT_TRUE(c.churn_down(3, 4));
  EXPECT_TRUE(c.churn_down(3, 5));
  EXPECT_FALSE(c.churn_down(3, 6));
  // join=5: down over [0, 6), up from 6 on.
  EXPECT_TRUE(c.churn_down(5, 0));
  EXPECT_TRUE(c.churn_down(5, 5));
  EXPECT_FALSE(c.churn_down(5, 6));
  // Bystanders are never down.
  EXPECT_FALSE(c.churn_down(4, 5));
  // next_up_iteration agrees with the windows.
  EXPECT_EQ(c.next_up_iteration(3, 4), std::optional<std::uint64_t>(6));
  EXPECT_EQ(c.next_up_iteration(5, 2), std::optional<std::uint64_t>(6));
  // count_down sums per node over a span.
  EXPECT_EQ(c.count_down(0, 8, 5), 2u);   // nodes 3 and 5
  EXPECT_EQ(c.count_down(0, 8, 6), 0u);
}

TEST(ChurnPredicates, PermanentCrashNeverComesBack) {
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("churn:crash=2,at_iter=3");
  EXPECT_FALSE(c.churn_down(2, 2));
  EXPECT_TRUE(c.churn_down(2, 3));
  EXPECT_TRUE(c.churn_down(2, 1'000'000));
  EXPECT_EQ(c.next_up_iteration(2, 3), std::nullopt);
}

TEST(ChurnPredicates, OverlappingEventsDownWheneverAnySaysSo) {
  // Node 1 crashes twice; the union of the windows holds it down.
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "churn:crash=1,at_iter=2,recover_after=2;"
      "churn:crash=1,at_iter=3,recover_after=3");
  EXPECT_TRUE(c.churn_down(1, 2));
  EXPECT_TRUE(c.churn_down(1, 4));  // first window over, second active
  EXPECT_TRUE(c.churn_down(1, 5));
  EXPECT_FALSE(c.churn_down(1, 6));
  // The up-edge skips to the end of the covering union.
  EXPECT_EQ(c.next_up_iteration(1, 2), std::optional<std::uint64_t>(6));
}

// --------------------------------------------------------- analytic plane

TEST(ChurnSim, CrashedStragglerStopsCostingItsLagInsideTheWindow) {
  // Worker 6 straggles with a 50ms lag the synchronous full-cohort pull
  // cannot dodge — until the churn schedule crashes it: a down node is
  // absent, not slow, so inside [2, 4) the stage loses both the
  // straggling responder and the wait for it. Outside the window the
  // breakdown is bit-identical to before.
  gs::SimSetup sim = sim_ssmw();
  sim.asynchronous = false;
  sim.conditions = gn::NetworkConditions::parse(
      "straggler:nodes=6,lag=50ms;churn:crash=6,at_iter=2,recover_after=2");
  sim.iteration = 0;
  const double before = gs::simulate_iteration(sim).total();
  sim.iteration = 2;
  const double inside = gs::simulate_iteration(sim).total();
  sim.iteration = 4;
  const double after = gs::simulate_iteration(sim).total();
  EXPECT_NEAR(before, after, 1e-12);
  EXPECT_LT(inside, before - 0.04);  // ~the 50ms lag vanished with the node
}

TEST(ChurnSim, ShrunkenQuorumTrimsTheJitterTail) {
  // With jitter, the q-th order statistic tail scales with q/(avail+1);
  // crashing a worker clamps the synchronous quorum from 6-of-6 to
  // 5-of-5, so the expected tail strictly drops inside the window.
  gs::SimSetup sim = sim_ssmw();
  sim.asynchronous = false;
  sim.conditions = gn::NetworkConditions::parse(
      "wan:jitter=10ms;churn:crash=6,at_iter=2,recover_after=2");
  sim.iteration = 0;
  const double before = gs::simulate_iteration(sim).communication;
  sim.iteration = 2;
  const double inside = gs::simulate_iteration(sim).communication;
  sim.iteration = 4;
  const double after = gs::simulate_iteration(sim).communication;
  EXPECT_LT(inside, before);
  EXPECT_NEAR(before, after, 1e-12);
}

// ------------------------------------------- live plane: quorum trajectory

TEST(ChurnLive, SsmwTrajectoryMatchesTheScheduleOnBothPlanes) {
  // Synchronous SSMW, worker 6 down over [2, 4): the reporting server's
  // per-iteration gradient reply counts must equal the analytic plane's
  // prediction span - count_down(span, it) — the cross-plane contract —
  // and every short pull must be visible as a quorum miss in the stats.
  const char* spec = "churn:crash=6,at_iter=2,recover_after=2";
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig live = live_ssmw();
  live.asynchronous = false;
  live.network = spec;
  ASSERT_NO_THROW(live.validate());
  const gc::TrainResult result = gc::train(live);
  garfield::tensor::set_parallel_threads(0);

  const gn::NetworkConditions c = gn::NetworkConditions::parse(spec);
  ASSERT_EQ(result.reporting_gradient_counts.size(), live.iterations);
  for (std::size_t it = 0; it < live.iterations; ++it) {
    const std::size_t predicted =
        live.nw - c.count_down(live.nps, live.nps + live.nw, it);
    EXPECT_EQ(result.reporting_gradient_counts[it], predicted) << "@" << it;
  }
  // Exactly the two window iterations returned short of q = nw.
  EXPECT_EQ(result.net_stats.quorum_misses, 2u);
}

// ---------------------------------- live plane: recovery w/ state transfer

TEST(ChurnLive, MsmwServerRecoveryRestoresBitwiseIdenticalLearning) {
  // Replicated servers, fps=0, synchronous, coordinate-wise median on
  // models: server 2 crashes over [2, 4) and recovers via the checkpoint
  // state transfer. The two live replicas stay bitwise in sync, so the
  // model median washes out whatever the recovering replica brings back —
  // the churned curve must equal the undisturbed one bit for bit.
  // Checkpointing stays on in BOTH runs so the trajectories only differ
  // by the churn itself.
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.nw = 4;
  cfg.fw = 0;
  cfg.nps = 3;
  cfg.fps = 0;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.asynchronous = false;
  cfg.iterations = 6;
  cfg.eval_every = 1;
  cfg.seed = 20260808;
  cfg.checkpoint_every = 1;

  garfield::tensor::set_parallel_threads(1);
  cfg.checkpoint_path = temp_path("msmw_ideal.ckpt");
  const gc::TrainResult ideal = gc::train(cfg);
  cfg.checkpoint_path = temp_path("msmw_churned.ckpt");
  cfg.network = "churn:crash=2,at_iter=2,recover_after=2";
  ASSERT_NO_THROW(cfg.validate());
  const gc::TrainResult churned = gc::train(cfg);
  garfield::tensor::set_parallel_threads(0);
  std::filesystem::remove(temp_path("msmw_ideal.ckpt"));
  std::filesystem::remove(temp_path("msmw_churned.ckpt"));

  ASSERT_FALSE(ideal.curve.empty());
  expect_same_curve(ideal, churned,
                    "recovery with state transfer is invisible to learning");
}

TEST(ChurnLive, DecentralizedPeerRecoversThroughTheModelExchange) {
  // Peer 3 crashes over [1, 3) and rejoins without a checkpoint — config
  // validation exempts decentralized peers because the step-tagged model
  // exchange re-syncs them. The run must complete all iterations with the
  // reporting peer observing the scheduled gradient-quorum trajectory.
  const char* spec = "churn:crash=3,at_iter=1,recover_after=2";
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.nw = 4;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.iterations = 5;
  cfg.eval_every = 1;
  cfg.seed = 20260808;
  cfg.network = spec;
  ASSERT_NO_THROW(cfg.validate());

  garfield::tensor::set_parallel_threads(1);
  const gc::TrainResult result = gc::train(cfg);
  garfield::tensor::set_parallel_threads(0);
  EXPECT_EQ(result.curve.size(), cfg.iterations);
  ASSERT_EQ(result.reporting_gradient_counts.size(), cfg.iterations);
}

// --------------------------------------- stale-step rejection on recovery

TEST(ChurnLive, RecoveredReplicaServesNothingStaleThroughTaggedPulls) {
  // A restarted replica has published nothing: its cleared publication
  // ring answers tagged pulls not_ready until it republishes, so a peer
  // can never aggregate the recovering node's pre-crash state under a
  // fresh iteration tag. Short-timeout collects make the decline visible
  // without waiting out the full RPC deadline.
  gn::Cluster::Options opts;
  opts.nodes = 2;
  gn::Cluster cluster(opts);
  garfield::tensor::Rng r0(21), r1(21);
  gc::Server puller(0, cluster, garfield::nn::make_model("tiny_mlp", r0), {},
                    {}, {1});
  gc::Server replica(1, cluster, garfield::nn::make_model("tiny_mlp", r1),
                     {}, {}, {0});
  replica.enable_step_tagged_serving(/*models=*/true, /*aggr_grads=*/false);
  const std::vector<gn::NodeId> peers{1};
  const auto pull = [&](std::uint64_t tag) {
    return cluster.collect(0, peers, gc::kGetModel, tag, nullptr, 1,
                           std::chrono::milliseconds(150));
  };

  // Unpublished tag: not_ready until the collect deadline, empty result.
  EXPECT_TRUE(pull(0).empty());
  replica.publish_model(0);
  EXPECT_EQ(pull(0).size(), 1u);

  // Pre-crash publication for tag 1, then a restart: the cleared ring must
  // NOT serve the stale entry — the pull for tag 1 declines again until
  // the recovered replica republishes it.
  replica.publish_model(1);
  replica.rejoin();
  EXPECT_TRUE(pull(1).empty());
  replica.publish_model(1);
  EXPECT_EQ(pull(1).size(), 1u);
}

// ---------------------------------------------- below-floor loud abort

TEST(ChurnLive, ScheduleBelowTheGarFloorAbortsWithADiagnostic) {
  // multi_krum needs min_n = 2f+3 = 5 inputs at fw = 1; permanently
  // crashing one of five workers leaves 4 — aggregating there would void
  // the (n, f) bound, so train() must throw, naming the floor.
  gc::DeploymentConfig cfg = live_ssmw();
  cfg.nw = 5;
  cfg.asynchronous = false;  // q = nw = 5 passes config validation
  cfg.iterations = 4;
  cfg.network = "churn:crash=5,at_iter=2";
  ASSERT_NO_THROW(cfg.validate());
  garfield::tensor::set_parallel_threads(1);
  try {
    (void)gc::train(cfg);
    garfield::tensor::set_parallel_threads(0);
    FAIL() << "a schedule below the GAR floor must abort the run";
  } catch (const std::runtime_error& e) {
    garfield::tensor::set_parallel_threads(0);
    const std::string what = e.what();
    EXPECT_NE(what.find("resilience floor"), std::string::npos) << what;
    EXPECT_NE(what.find("min_n=5"), std::string::npos) << what;
    EXPECT_NE(what.find("iteration 2"), std::string::npos) << what;
  }
}

// ------------------------------------------- config-time churn validation

TEST(ChurnConfig, RecoveringAServerReplicaRequiresCheckpointing) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nw = 4;
  cfg.fw = 0;
  cfg.nps = 3;
  cfg.fps = 0;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.network = "churn:crash=1,at_iter=2,recover_after=2";
  try {
    cfg.validate();
    FAIL() << "server recovery without a checkpoint must not validate";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("checkpointing is off"),
              std::string::npos)
        << e.what();
  }
  // With checkpointing on — or when the crash is permanent — it validates.
  cfg.checkpoint_path = "ckpt.bin";
  cfg.checkpoint_every = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.checkpoint_path.clear();
  cfg.checkpoint_every = 0;
  cfg.network = "churn:crash=1,at_iter=2";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ChurnConfig, WorkerChurnNeedsNoCheckpoint) {
  // Workers hold no aggregate state worth transferring; recovering one
  // must not demand checkpointing.
  gc::DeploymentConfig cfg = live_ssmw();
  cfg.network = "churn:crash=6,at_iter=2,recover_after=2";
  EXPECT_NO_THROW(cfg.validate());
}
