// Tests for the extended GARs (geometric median / RFA, centered clipping,
// norm-based CGE) — correctness, convergence of the iterative rules, and
// their robustness envelopes (including CGE's documented blind spot).
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attack.h"
#include "gars/gar.h"
#include "tensor/rng.h"

namespace gg = garfield::gars;
namespace ga = garfield::attacks;
namespace gt = garfield::tensor;

using gt::FlatVector;

namespace {

std::vector<FlatVector> cloud(std::size_t n, std::size_t d, gt::Rng& rng,
                              float center, float spread) {
  std::vector<FlatVector> out(n, FlatVector(d));
  for (auto& v : out) {
    for (float& x : v) x = center + rng.normal(0.0F, spread);
  }
  return out;
}

double dist_to(const FlatVector& v, float center) {
  FlatVector ref(v.size(), center);
  return std::sqrt(gt::squared_distance(v, ref));
}

}  // namespace

// -------------------------------------------------------- factory wiring

TEST(ExtendedGars, FactoryAndPreconditions) {
  EXPECT_NO_THROW((void)gg::make_gar("geometric_median", 3, 1));
  EXPECT_THROW((void)gg::make_gar("geometric_median", 2, 1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("centered_clip", 3, 1));
  EXPECT_THROW((void)gg::make_gar("centered_clip", 2, 1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("cge", 3, 1));
  EXPECT_THROW((void)gg::make_gar("cge", 2, 1), std::invalid_argument);
  EXPECT_EQ(gg::gar_min_n("geometric_median", 2), 5u);
  EXPECT_EQ(gg::gar_min_n("cge", 3), 7u);
}

TEST(ExtendedGars, ListedInGarNames) {
  const auto names = gg::gar_names();
  for (const char* name : {"geometric_median", "centered_clip", "cge"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(ExtendedGars, SpecOptionsReachTheRules) {
  // The extended rules' Options structs are configurable through spec
  // strings (the gap the registry closes): a materially different setting
  // must produce a materially different aggregate.
  gt::Rng rng(77);
  auto in = cloud(5, 16, rng, 1.0F, 0.2F);
  for (float& x : in[4]) x = 50.0F;  // one far outlier

  // One Weiszfeld step barely moves off the (outlier-dragged) mean; the
  // default 32 steps converge near the honest cluster.
  const FlatVector one_step =
      gg::make_gar("geometric_median:max_iterations=1", 5, 1)->aggregate(in);
  const FlatVector converged =
      gg::make_gar("geometric_median", 5, 1)->aggregate(in);
  EXPECT_LT(dist_to(converged, 1.0F), dist_to(one_step, 1.0F));

  // A tight fixed clipping radius discounts the outlier far harder than a
  // huge one (which degenerates toward the mean).
  const FlatVector tight =
      gg::make_gar("centered_clip:tau=0.5,iterations=20", 5, 1)
          ->aggregate(in);
  const FlatVector loose =
      gg::make_gar("centered_clip:tau=1000", 5, 1)->aggregate(in);
  EXPECT_LT(dist_to(tight, 1.0F), dist_to(loose, 1.0F));

  // cge:keep=n degenerates to the mean; the default keep=n-f sheds the
  // largest-norm input.
  const FlatVector keep_all = gg::make_gar("cge:keep=5", 5, 1)->aggregate(in);
  const FlatVector keep_default = gg::make_gar("cge", 5, 1)->aggregate(in);
  EXPECT_LT(dist_to(keep_default, 1.0F), dist_to(keep_all, 1.0F));
}

// -------------------------------------------------------- geometric median

TEST(GeometricMedian, SinglePointFixedPoint) {
  // All inputs identical: the geometric median is that point.
  FlatVector v{1.0F, -2.0F, 3.0F};
  std::vector<FlatVector> in(5, v);
  gg::GeometricMedian gar(5, 2);
  FlatVector out = gar.aggregate(in);
  for (std::size_t j = 0; j < v.size(); ++j) EXPECT_NEAR(out[j], v[j], 1e-5);
}

TEST(GeometricMedian, OneDimensionalMatchesMedianInterval) {
  // In 1-D the geometric median is any point between the middle order
  // statistics; with odd n it is THE median.
  std::vector<FlatVector> in = {{1.0F}, {2.0F}, {7.0F}, {100.0F}, {3.0F}};
  gg::GeometricMedian gar(5, 2);
  EXPECT_NEAR(gar.aggregate(in)[0], 3.0F, 0.05F);
}

TEST(GeometricMedian, ResistsFarOutliers) {
  gt::Rng rng(1);
  auto in = cloud(9, 16, rng, 1.0F, 0.05F);
  in[7].assign(16, 1e5F);
  in[8].assign(16, -1e5F);
  gg::GeometricMedian gar(9, 2);
  EXPECT_LT(dist_to(gar.aggregate(in), 1.0F), 0.5);
}

TEST(GeometricMedian, BeatsMeanUnderAsymmetricOutliers) {
  gt::Rng rng(2);
  auto in = cloud(7, 8, rng, 0.0F, 0.1F);
  in[5].assign(8, 50.0F);
  in[6].assign(8, 60.0F);  // both outliers on the same side
  gg::GeometricMedian gmed(7, 2);
  gg::Average avg(7, 0);
  EXPECT_LT(dist_to(gmed.aggregate(in), 0.0F),
            0.1 * dist_to(avg.aggregate(in), 0.0F));
}

TEST(GeometricMedian, RotationInvariantUnlikeCoordinateMedian) {
  // The classic separation: coordinate-wise median is not rotation
  // invariant; the geometric median is (up to tolerance). Rotate a 2-D
  // configuration by 45 degrees and compare the aggregate of rotations vs
  // the rotation of the aggregate.
  std::vector<FlatVector> in = {{1.0F, 0.0F}, {0.0F, 1.0F}, {-0.6F, -0.7F}};
  const float c = std::sqrt(0.5F);
  auto rotate = [&](const FlatVector& v) {
    return FlatVector{c * v[0] - c * v[1], c * v[0] + c * v[1]};
  };
  std::vector<FlatVector> rotated;
  for (const auto& v : in) rotated.push_back(rotate(v));
  gg::GeometricMedian gar(3, 1);
  const FlatVector direct = rotate(gar.aggregate(in));
  const FlatVector via = gar.aggregate(rotated);
  EXPECT_NEAR(direct[0], via[0], 1e-3);
  EXPECT_NEAR(direct[1], via[1], 1e-3);
}

// ---------------------------------------------------------- centered clip

TEST(CenteredClip, CleanInputsCloseToMean) {
  gt::Rng rng(3);
  auto in = cloud(9, 12, rng, 2.0F, 0.1F);
  gg::CenteredClip gar(9, 2);
  const FlatVector mean = gt::mean(in);
  EXPECT_LT(std::sqrt(gt::squared_distance(gar.aggregate(in), mean)), 0.3);
}

TEST(CenteredClip, ClipsOutlierLeverage) {
  gt::Rng rng(4);
  auto in = cloud(9, 12, rng, 1.0F, 0.1F);
  in[8].assign(12, 1e4F);
  gg::CenteredClip gar(9, 1);
  EXPECT_LT(dist_to(gar.aggregate(in), 1.0F), 1.0);
}

TEST(CenteredClip, ExplicitTauRespected) {
  // With a generous fixed tau nothing is clipped: one iteration equals the
  // plain mean.
  std::vector<FlatVector> in = {{0.0F}, {1.0F}, {2.0F}};
  gg::CenteredClip::Options opts;
  opts.iterations = 1;
  opts.tau = 100.0;
  gg::CenteredClip gar(3, 1, opts);
  EXPECT_NEAR(gar.aggregate(in)[0], 1.0F, 1e-5F);
}

TEST(CenteredClip, IdenticalInputsShortCircuit) {
  std::vector<FlatVector> in(5, FlatVector{3.0F, 3.0F});
  gg::CenteredClip gar(5, 2);
  FlatVector out = gar.aggregate(in);
  EXPECT_FLOAT_EQ(out[0], 3.0F);
  EXPECT_FLOAT_EQ(out[1], 3.0F);
}

// -------------------------------------------------------------------- cge

TEST(Cge, DropsLargestNorms) {
  std::vector<FlatVector> in = {{1.0F}, {1.2F}, {0.8F}, {-100.0F}, {90.0F}};
  gg::Cge gar(5, 2);
  EXPECT_NEAR(gar.aggregate(in)[0], 1.0F, 0.21F);
}

TEST(Cge, FZeroIsPlainMean) {
  std::vector<FlatVector> in = {{3.0F}, {6.0F}, {9.0F}};
  gg::Cge gar(3, 0);
  EXPECT_FLOAT_EQ(gar.aggregate(in)[0], 6.0F);
}

TEST(Cge, PermutationInvariantWithNormTies) {
  // Two vectors with identical norms but different directions: the
  // lexicographic tie-break keeps the output order independent.
  std::vector<FlatVector> in = {{1.0F, 0.0F}, {0.0F, 1.0F}, {0.1F, 0.1F}};
  gg::Cge gar(3, 1);
  FlatVector a = gar.aggregate(in);
  std::swap(in[0], in[1]);
  FlatVector b = gar.aggregate(in);
  EXPECT_EQ(a, b);
}

TEST(Cge, DocumentedBlindSpotSameNormFlip) {
  // CGE's known limitation: a sign-flipped vector has the SAME norm as the
  // honest one, so norm filtering cannot remove it. The aggregate is
  // dragged noticeably further from the honest center than Krum's.
  gt::Rng rng(5);
  auto honest = cloud(6, 16, rng, 1.0F, 0.05F);
  auto in = honest;
  FlatVector flipped = honest[0];
  gt::scale(flipped, -1.0F);
  in.push_back(flipped);
  gg::Cge cge(7, 1);
  gg::Krum krum(7, 1);
  const double cge_err = dist_to(cge.aggregate(in), 1.0F);
  const double krum_err = dist_to(krum.aggregate(in), 1.0F);
  EXPECT_GT(cge_err, 2.0 * krum_err);
}

// --------------------------------------------- robustness matrix (extended)

struct ExtCase {
  std::string gar;
  std::string attack;
};

class ExtendedGarVsAttack : public ::testing::TestWithParam<ExtCase> {};

TEST_P(ExtendedGarVsAttack, StaysAlignedWithHonestMean) {
  const ExtCase& c = GetParam();
  gt::Rng rng(6);
  const std::size_t n = 11, f = 2, d = 32;
  auto honest = cloud(n - f, d, rng, 1.0F, 0.15F);
  const FlatVector honest_mean = gt::mean(honest);
  ga::AttackPtr attack = ga::make_attack(c.attack);
  std::vector<FlatVector> delivered = honest;
  std::size_t byz = 0;
  for (std::size_t k = 0; k < f; ++k) {
    ga::AttackContext ctx(rng);
    ctx.attacker_id = n - f + k;
    ctx.n = n;
    ctx.f = f;
    ctx.honest = honest;
    auto crafted = attack->craft(honest[k], ctx);
    if (crafted) {
      delivered.push_back(std::move(*crafted));
      ++byz;
    }
  }
  gg::GarPtr gar = gg::make_gar(c.gar, delivered.size(), byz);
  const FlatVector out = gar->aggregate(delivered);
  EXPECT_TRUE(gt::all_finite(out)) << c.gar << " vs " << c.attack;
  EXPECT_GT(gt::cosine(out, honest_mean), 0.5) << c.gar << " vs " << c.attack;
}

INSTANTIATE_TEST_SUITE_P(
    Extended, ExtendedGarVsAttack,
    ::testing::Values(
        ExtCase{"geometric_median", "random"},
        ExtCase{"geometric_median", "reversed"},
        ExtCase{"geometric_median", "sign_flip"},
        ExtCase{"geometric_median", "zero"},
        ExtCase{"geometric_median", "little_is_enough"},
        ExtCase{"geometric_median", "fall_of_empires"},
        ExtCase{"centered_clip", "random"},
        ExtCase{"centered_clip", "reversed"},
        ExtCase{"centered_clip", "little_is_enough"},
        ExtCase{"centered_clip", "fall_of_empires"},
        // CGE only on the magnitude attacks it is designed for (see
        // DocumentedBlindSpotSameNormFlip for its failure mode).
        ExtCase{"cge", "random"}, ExtCase{"cge", "reversed"}),
    [](const ::testing::TestParamInfo<ExtCase>& info) {
      return info.param.gar + "_vs_" + info.param.attack;
    });
