// Shared test support for garfield's gtest suites.
//
// Centralizes what every Byzantine-resilience test needs: seeded gradient
// clouds, attack-scenario fixtures that model garfield's server ingress
// (finite-payload filtering, silent nodes shrinking the quorum), tolerance
// helpers, and a ScenarioMatrix runner that sweeps GAR x attack x (n, f)
// cells of the paper's robustness claim.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/conditions.h"
#include "tensor/rng.h"
#include "tensor/vecops.h"

namespace garfield::testsupport {

using tensor::FlatVector;
using tensor::Rng;

// ------------------------------------------------------- cloud generation

/// Parameters of a synthetic "honest" gradient cloud: every coordinate is
/// i.i.d. N(center, spread), mirroring the concentrated honest gradients
/// the paper's resilience proofs assume.
struct CloudSpec {
  std::size_t n = 0;
  std::size_t d = 32;
  float center = 1.0F;
  float spread = 0.1F;
};

/// Draw spec.n vectors from the spec's distribution using rng.
[[nodiscard]] std::vector<FlatVector> honest_cloud(const CloudSpec& spec,
                                                   Rng& rng);

// ------------------------------------------------------ tolerance helpers

/// Coordinate-wise mean. Precondition: !inputs.empty().
[[nodiscard]] FlatVector mean_of(std::span<const FlatVector> inputs);

/// Root-mean-square per-coordinate difference: ||a - b||_2 / sqrt(d).
/// Dimension-free, so one tolerance works across every d in a sweep.
[[nodiscard]] double rms_diff(const FlatVector& a, const FlatVector& b);

/// Largest absolute coordinate difference.
[[nodiscard]] double max_abs_diff(const FlatVector& a, const FlatVector& b);

// ------------------------------------------------------- attack scenarios

/// One GAR x attack x (n, f) cell. n counts expected inputs (honest plus
/// Byzantine); the fixture crafts the f Byzantine payloads from the attack
/// *plan* (attacks/registry.h grammar: a GAR-style spec like
/// "little_is_enough:z=2.5" applied to the whole cohort, or a ';'-separated
/// per-rank assignment like "little_is_enough:z=1.5;2*sign_flip"), giving
/// omniscient attacks the honest vectors as required. `gar` is a GAR spec
/// string; `iteration` feeds time-varying attacks' AttackContext.
struct Scenario {
  std::string gar;
  std::string attack;
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t d = 32;
  float center = 1.0F;
  float spread = 0.1F;
  std::uint64_t seed = 42;
  std::uint64_t iteration = 0;
  /// NetworkConditions spec (net/conditions.h grammar) the cell's inputs
  /// traverse; "" = ideal. Input nodes occupy ids [0, n) with the
  /// aggregating server colocated with partition group `a`: a node
  /// straggling at `iteration`, or cut off in group `b` during an active
  /// partition window, misses the quorum — its payload (honest or
  /// Byzantine) never reaches the GAR. Cells must stay sized so the
  /// surviving quorum satisfies gar_min_n(gar, f).
  std::string network;
  /// `fault:` clause (net/conditions.h grammar) composed onto `network`;
  /// "" = none. The ingress model mirrors the live cluster's bounded
  /// retry layer: a node's payload misses the quorum only when every
  /// attempt in the retry budget draws a losing fault verdict (drop or
  /// corrupt) — the give-up case — so modest loss rates leave the quorum
  /// whole and only near-certain loss silences a node, deterministically
  /// per (seed, edge, iteration).
  std::string fault;
  /// Transport backend a deployment-level consumer should run this cell
  /// under ("inproc" | "tcp", the DeploymentConfig::transport values).
  /// run_scenario() itself models server ingress above the transport seam
  /// and is backend-independent; the axis exists so deployment suites
  /// (transport_backend_test) sweep identical cells across backends.
  std::string transport = "inproc";
};

struct ScenarioResult {
  FlatVector aggregate;
  FlatVector honest_mean;   ///< mean of the n-f honest vectors
  double rms_deviation = 0; ///< rms_diff(aggregate, honest_mean)
  std::size_t received = 0; ///< inputs that survived ingress filtering
};

/// Run one cell. Models garfield's server ingress: non-finite payloads are
/// rejected and silent ("dropped") nodes contribute nothing, so the rule is
/// built for the received quorum with the same Byzantine budget f. The
/// caller must size n so that n - f >= gar_min_n(gar, f) — ScenarioMatrix
/// guarantees this by construction.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario);

/// RMS tolerance under which `scenario`'s aggregate must stay of the honest
/// mean. A few honest spreads for resilient cells; deliberately loose for
/// the known-weak cells (e.g. norm-filtering CGE against the zero attack,
/// which pulls the aggregate toward the origin without looking like an
/// outlier) where only boundedness is guaranteed.
[[nodiscard]] double robustness_tolerance(const Scenario& scenario);

// --------------------------------------------------------- matrix runner

/// Sweep generator for the scenario matrix. For every (gar, f, slack)
/// combination it emits n = gar_min_n(gar, f) + f + slack expected inputs —
/// the +f keeps the quorum valid even when the whole Byzantine cohort goes
/// silent — crossed with every attack. The non-resilient "average" baseline
/// runs with f = 0 (it tolerates none) as a sanity row.
struct ScenarioMatrix {
  std::vector<std::string> gars;         ///< empty = gar_names()
  std::vector<std::string> attacks;      ///< empty = attack_names()
  std::vector<std::size_t> byzantine_fs = {1, 2};
  std::vector<std::size_t> quorum_slacks = {0, 2};
  /// Network-conditions axis crossed over every (gar, attack, f, slack)
  /// cell; the default single ideal network preserves the classic matrix.
  /// Non-ideal entries must only degrade nodes the cell sizes can spare
  /// (see Scenario::network).
  std::vector<std::string> networks = {""};
  /// `fault:` clause axis crossed inside the network axis (Scenario::fault
  /// semantics); the default single empty entry preserves the classic
  /// matrix's cell count and per-cell seeds.
  std::vector<std::string> faults = {""};
  /// Transport-backend axis, innermost so the default single entry leaves
  /// every existing matrix's cell count and per-cell seeds untouched.
  std::vector<std::string> transports = {"inproc"};
  std::size_t d = 32;
  std::uint64_t seed = 42;

  /// Invoke fn on every cell. Returns the number of cells visited.
  std::size_t for_each(const std::function<void(const Scenario&)>& fn) const;
};

}  // namespace garfield::testsupport
