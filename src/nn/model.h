// Model: a network + loss packaged behind the flat-vector interface that
// Garfield's Server/Worker objects exchange over the network.
//
// The paper's workers "compute a gradient estimate, when asked by the
// server, using the data chunk [they own]" and reply with a serialized
// gradient; servers hold the parameter vector. Model provides exactly those
// two currencies: parameters() / set_parameters() for model state and
// gradient() for estimates, both as tensor::FlatVector.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/loss.h"
#include "nn/module.h"
#include "tensor/vecops.h"

namespace garfield::nn {

using tensor::FlatVector;

/// Gradient of the loss on one mini-batch, plus bookkeeping.
struct GradientResult {
  FlatVector gradient;
  double loss = 0.0;
};

/// A trainable model with a classification loss.
class Model {
 public:
  /// input_shape excludes the batch dimension; e.g. {3, 16, 16} or {64}.
  Model(std::string name, ModulePtr net, tensor::Shape input_shape,
        std::size_t num_classes);

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Total number of learnable scalars (the paper's d).
  [[nodiscard]] std::size_t dimension() const { return dimension_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const tensor::Shape& input_shape() const { return input_shape_; }

  /// Snapshot all parameters into one flat vector (deterministic order).
  [[nodiscard]] FlatVector parameters() const;
  /// Overwrite all parameters from a flat vector of size dimension().
  void set_parameters(std::span<const float> flat);

  /// Forward + loss + backward on one batch; returns the flat gradient.
  /// Leaves layer gradients zeroed for the next call.
  [[nodiscard]] GradientResult gradient(const Tensor& inputs,
                                        const std::vector<std::size_t>& labels);

  /// Mean loss on a batch without computing gradients' flattening.
  [[nodiscard]] double loss(const Tensor& inputs,
                            const std::vector<std::size_t>& labels);

  /// Top-1 accuracy on a batch.
  [[nodiscard]] double accuracy(const Tensor& inputs,
                                const std::vector<std::size_t>& labels);

 private:
  void zero_grad();

  std::string name_;
  ModulePtr net_;
  tensor::Shape input_shape_;
  std::size_t num_classes_;
  std::vector<Param> params_;
  std::size_t dimension_ = 0;
  SoftmaxCrossEntropy loss_fn_;
};

using ModelPtr = std::unique_ptr<Model>;

}  // namespace garfield::nn
