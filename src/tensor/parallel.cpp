#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace garfield::tensor {

namespace {

std::atomic<std::size_t> g_thread_override{0};

std::size_t default_threads() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("GARFIELD_THREADS")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 4096) {
        return std::size_t(v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t(1) : std::size_t(hw);
  }();
  return cached;
}

}  // namespace

std::size_t parallel_threads() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  return override != 0 ? override : default_threads();
}

void set_parallel_threads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t workers = parallel_threads();
  const std::size_t shards =
      std::min(workers, std::max<std::size_t>(1, n / grain));
  if (shards <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + shards - 1) / shards;
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(n, kParallelForGrain, fn);
}

}  // namespace garfield::tensor
