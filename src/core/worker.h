// Worker and ByzantineWorker (§3.2 "Main objects").
//
// The worker is passive: it owns a data shard and a private model replica,
// and answers get_gradient pulls from servers. The request carries the
// requesting server's current parameter vector (the pull-based equivalent
// of the server broadcasting its parameters), the reply is the gradient of
// the loss on the worker's mini-batch for that iteration at those
// parameters.
//
// Gradient serving is cached per iteration: the forward/backward for
// iteration t runs ONCE and the resulting (refcounted, immutable) gradient
// is served to every server replica pulling for t — Garfield's actual
// semantics, where one worker computes one estimate per step regardless of
// how many parameter servers replicate it. The cache key is
// (iteration, requested parameters): replicas whose parameter vectors are
// bitwise identical (the synchronous steady state) share one computation;
// genuinely diverged replicas each get an honest gradient at their own
// parameters. The mini-batch is keyed on the iteration
// (BatchSampler::batch_for), not on request arrival, so concurrent pulls
// cannot perturb the data order — the determinism contract the
// transport_stress_test pins.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "attacks/attack.h"
#include "data/dataset.h"
#include "net/cluster.h"
#include "net/codec.h"
#include "nn/model.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::core {

/// RPC method served by workers.
inline constexpr const char* kGetGradient = "get_gradient";

class Worker {
 public:
  /// momentum > 0 enables *worker-side* momentum (distributed momentum,
  /// [23] in the paper): the worker replies with its exponentially-averaged
  /// gradient v = m*v + g instead of the raw estimate. This reduces the
  /// variance the GAR sees, which §8 points at as the technique restoring
  /// GAR resilience guarantees when the variance condition is violated.
  /// The velocity advances once per iteration (first compute wins), not
  /// once per requesting server.
  Worker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
         data::Dataset shard, std::size_t batch_size, tensor::Rng rng,
         float momentum = 0.0F);
  virtual ~Worker() = default;

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }

  /// Come back from a crash: re-register the get_gradient handler (the
  /// cluster dropped it at crash time) and forget the gradient caches and
  /// momentum state — a restarted worker process has computed nothing, and
  /// replaying a pre-crash velocity would double-count the iterations the
  /// crash window skipped.
  void rejoin();

  /// Install the deployment's gradient-compression codec (net/codec.h).
  /// Called once at build time, before any pull arrives: replies are
  /// encoded with it (one error-feedback residual per requesting node, so
  /// each requester sees a coherent corrected stream regardless of how
  /// concurrent pulls interleave) and encoded request arguments (the
  /// server's int8 model snapshot) are decoded at ingress. Default:
  /// identity.
  void set_codec(net::CodecSpec spec) { codec_ = net::Codec(spec); }

  /// Mean training loss of the gradients served so far (diagnostics).
  [[nodiscard]] double mean_loss() const;
  /// Replies served (cache hits included).
  [[nodiscard]] std::uint64_t gradients_served() const;
  /// Forward/backward passes actually run for honest serving; the gap to
  /// gradients_served() is what the per-iteration cache saved.
  [[nodiscard]] std::uint64_t gradients_computed() const;

 protected:
  /// A served (possibly cached) honest gradient.
  struct ServedGradient {
    net::PayloadPtr gradient;
    double loss = 0.0;
  };

  /// The honest gradient for this request — cached per (iteration,
  /// parameters), computed on first demand (thread-safe).
  [[nodiscard]] ServedGradient honest_gradient(const net::Request& req);

  /// k extra raw gradient estimates at the requested parameters, drawn
  /// deterministically from this node's own shard (no momentum, no loss
  /// accounting) — the local cohort estimate an omniscient-style attacker
  /// builds when it cannot see other nodes' payloads. Probe batches are
  /// keyed on (iteration, probe index), so the estimate is reproducible
  /// and independent of request arrival order — which also makes it
  /// cacheable per (iteration, parameters), the same once-per-iteration
  /// discipline as honest serving. Thread-safe.
  [[nodiscard]] std::vector<net::Payload> local_gradient_cloud(
      const net::Request& req, std::size_t k);

  /// Handler body; ByzantineWorker overrides to corrupt the reply.
  [[nodiscard]] virtual net::HandlerResult serve_gradient(
      const net::Request& req);

  /// Rewrite an encoded request argument (a codec state frame) back to a
  /// dense model vector, in place. Returns false on Byzantine garbage —
  /// the caller answers with silence, exactly like a crashed peer. Plain
  /// dense arguments pass through untouched.
  [[nodiscard]] bool decode_argument(net::Request& req);

  /// Wire-encode one outbound gradient with the configured codec. The
  /// error-feedback residual is keyed on the requesting node: each
  /// requester's stream of gradients is corrected independently, which
  /// keeps the encoding a pure function of (requester, computed-gradient
  /// sequence) — request arrival order across requesters, which real
  /// transports do not make deterministic, cannot leak into the frames.
  /// Cached per (source payload, requester) so a re-pull of the same
  /// computation ships the same frame and advances the residual once.
  /// Charges NetStats::bytes_saved for the frame. Identity codec returns
  /// `dense` unchanged.
  [[nodiscard]] net::PayloadPtr encode_reply(const net::PayloadPtr& dense,
                                             net::NodeId from);

  [[nodiscard]] const net::Codec& codec() const { return codec_; }

  tensor::Rng rng_;

 private:
  /// One cached computation. `params` pins the exact parameter vector the
  /// gradient was taken at; lookups match on pointer identity first (the
  /// same server pulling again / the collector fanning out one snapshot),
  /// then on bitwise content (distinct replicas in the synchronous steady
  /// state).
  struct CacheEntry {
    std::uint64_t iteration = 0;
    net::PayloadPtr params;
    net::PayloadPtr gradient;
    double loss = 0.0;
  };

  [[nodiscard]] ServedGradient compute_locked(const net::Request& req)
      GARFIELD_REQUIRES(mutex_);

  net::NodeId id_;
  net::Cluster& cluster_;  // for handler re-registration on rejoin()
  /// The private model replica: every forward/backward (set_parameters +
  /// gradient) runs under mutex_ — concurrent pulls from several server
  /// replicas serialize on it, which is what makes the per-iteration cache
  /// coherent.
  nn::ModelPtr model_ GARFIELD_GUARDED_BY(mutex_);
  data::Dataset shard_;
  data::BatchSampler sampler_ GARFIELD_GUARDED_BY(mutex_);
  /// Omniscience probes (disjoint stream).
  data::BatchSampler probe_sampler_ GARFIELD_GUARDED_BY(mutex_);
  float momentum_;
  /// Worker-side momentum state.
  tensor::FlatVector velocity_ GARFIELD_GUARDED_BY(mutex_);
  // Velocity bookkeeping for once-per-iteration momentum: velocity_ holds
  // the state *after* folding velocity_iteration_; velocity_pre_ the state
  // before it, so a second distinct-parameter compute at the same
  // iteration folds into the same base instead of double-counting.
  tensor::FlatVector velocity_pre_ GARFIELD_GUARDED_BY(mutex_);
  std::uint64_t velocity_iteration_ GARFIELD_GUARDED_BY(mutex_) =
      std::uint64_t(-1);
  /// One cached omniscience probe cloud (see local_gradient_cloud).
  struct CloudEntry {
    std::uint64_t iteration = 0;
    net::PayloadPtr params;
    std::vector<net::Payload> cloud;
  };

  /// One cached wire encoding, keyed on the source gradient's identity
  /// and the requesting node (whose residual the frame folded in). The
  /// key is OWNING: holding the source alive is what makes pointer
  /// identity exact — a raw key would dangle once the gradient ring
  /// evicts, and the freed address can be reused by a later computation,
  /// silently serving a stale frame.
  struct EncodedEntry {
    net::PayloadPtr source;
    net::NodeId from = 0;
    net::PayloadPtr encoded;
  };

  net::Codec codec_;

  mutable util::Mutex mutex_;
  std::deque<CacheEntry> cache_ GARFIELD_GUARDED_BY(mutex_);
  std::deque<CloudEntry> cloud_cache_ GARFIELD_GUARDED_BY(mutex_);
  std::deque<EncodedEntry> encode_cache_ GARFIELD_GUARDED_BY(mutex_);
  /// Error-feedback memory per requesting node: what compression dropped
  /// from that requester's stream last round, added back before
  /// compressing this round (net/codec.h).
  std::map<net::NodeId, tensor::FlatVector> residuals_
      GARFIELD_GUARDED_BY(mutex_);
  double loss_sum_ GARFIELD_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t served_ GARFIELD_GUARDED_BY(mutex_) = 0;
  std::uint64_t computed_ GARFIELD_GUARDED_BY(mutex_) = 0;
};

/// A worker under adversarial control: computes the honest gradient, then
/// rewrites it with the configured attack before replying. Each craft call
/// receives an AttackContext carrying the request's training iteration, the
/// attacker's node id and the declared cohort shape; when the attack is
/// omniscient, the context additionally carries a *local cohort estimate* —
/// a handful of extra raw gradients sampled from this node's own shard at
/// the requested parameters, the standard stand-in for full omniscience
/// when the live cluster gives the adversary no channel to other nodes'
/// payloads (Baruch et al. estimate mean/stddev exactly this way).
class ByzantineWorker final : public Worker {
 public:
  /// `cohort_gar` is the GAR spec the deployment aggregates this node's
  /// gradients with (config's gradient_gar; "" when unknown) — adaptive
  /// attacks probe it through AttackContext::gar. `cohort_lo`/`cohort_hi`
  /// span the worker cohort's node ids (both 0 when unknown) — schedule-
  /// aware attacks (window_striker) count live cohort members over it
  /// against the cluster's churn schedule.
  ByzantineWorker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
                  data::Dataset shard, std::size_t batch_size,
                  tensor::Rng rng, attacks::AttackPtr attack,
                  float momentum = 0.0F, bool omniscient = false,
                  std::size_t declared_n = 0, std::size_t declared_f = 0,
                  std::string cohort_gar = {}, std::size_t cohort_lo = 0,
                  std::size_t cohort_hi = 0);

 protected:
  net::HandlerResult serve_gradient(const net::Request& req) override;

 private:
  util::Mutex attack_mutex_;
  /// Stateful across rounds (alternating phase, adaptive_z intensity) and
  /// reachable from every pool thread serving this node's pulls.
  attacks::AttackPtr attack_ GARFIELD_GUARDED_BY(attack_mutex_);
  /// The cluster's parsed schedules, shared into every AttackContext.
  const net::NetworkConditions* conditions_;
  bool omniscient_;
  std::size_t declared_n_;
  std::size_t declared_f_;
  std::string cohort_gar_;
  std::size_t cohort_lo_;
  std::size_t cohort_hi_;
};

}  // namespace garfield::core
