// Byzantine recovery under the deterministic fault plane (README "Fault
// injection & Byzantine recovery"):
//
//   - window_striker: a schedule-aware adversary that behaves honestly
//     until the churn plane thins its cohort to the GAR's resilience
//     floor, then mounts its inner attack at full intensity. Pinned: the
//     strike predicate (pure function of schedule x iteration x gar x f),
//     the camouflage phase (bitwise honest), and the end-to-end claim —
//     the strike wrecks a plain `average` deployment yet bounces off
//     `krum` and `centered_clip`.
//   - corrupt_recovery: a server that serves every regular channel
//     honestly but damages the checkpoint blobs it serves to recovering
//     peers. Pinned: the verified state-transfer path detects the damage
//     (digest mismatch), rejects the blob before decoding a float, falls
//     back to an honest peer, and the honest trajectory is untouched —
//     bitwise identical to a run with no tampering.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "attacks/attack.h"
#include "core/config.h"
#include "core/trainer.h"
#include "gars/gar.h"
#include "net/conditions.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace ga = garfield::attacks;
namespace gc = garfield::core;
namespace gn = garfield::net;

using garfield::tensor::FlatVector;

namespace {

/// Restore the global kernel-thread override when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { garfield::tensor::set_parallel_threads(0); }
};

FlatVector ramp(std::size_t d) {
  FlatVector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = 0.5F + 0.25F * float(i);
  return v;
}

}  // namespace

// ----------------------------------------------- window_striker predicate

TEST(WindowStriker, WaitsWithoutAScheduleViewOrChurn) {
  const ga::AttackPtr attack = ga::make_attack("window_striker");
  garfield::tensor::Rng rng(1);
  ga::AttackContext ctx(rng);
  ctx.iteration = 3;
  ctx.f = 1;
  ctx.gar = "krum";
  ctx.cohort_lo = 1;
  ctx.cohort_hi = 7;
  const FlatVector honest = ramp(8);

  // No cluster view at all: camouflage, bitwise.
  auto p = attack->craft(honest, ctx);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, honest);

  // A view with no churn schedule: nothing to wait for, still honest.
  const gn::NetworkConditions wan =
      gn::NetworkConditions::parse("wan:latency=1ms");
  ctx.conditions = &wan;
  p = attack->craft(honest, ctx);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, honest);

  // A churn view but an unknown cohort span: still honest.
  const gn::NetworkConditions churn =
      gn::NetworkConditions::parse("churn:crash=5,at_iter=2,recover_after=3");
  ctx.conditions = &churn;
  ctx.cohort_lo = ctx.cohort_hi = 0;
  p = attack->craft(honest, ctx);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, honest);
}

TEST(WindowStriker, StrikesExactlyWhenChurnGrazesTheFloor) {
  // Cohort [1, 7) (span 6), f = 1; node 5 is down over iterations [2, 5).
  // krum's floor is 2f + 3 = 5, so the live span 6 - 1 = 5 grazes the
  // floor exactly inside the window — and only there.
  const gn::NetworkConditions churn =
      gn::NetworkConditions::parse("churn:crash=5,at_iter=2,recover_after=3");
  ga::WindowStrikerAttack striker(ga::make_attack("reversed"), /*margin=*/0);
  garfield::tensor::Rng rng(2);
  ga::AttackContext ctx(rng);
  ctx.f = 1;
  ctx.gar = "krum";
  ctx.conditions = &churn;
  ctx.cohort_lo = 1;
  ctx.cohort_hi = 7;
  const FlatVector honest = ramp(8);
  for (std::uint64_t it = 0; it < 8; ++it) {
    ctx.iteration = it;
    const bool in_window = it >= 2 && it < 5;
    EXPECT_EQ(striker.strikes(ctx), in_window) << "iteration " << it;
    const auto payload = striker.craft(honest, ctx);
    ASSERT_TRUE(payload.has_value());
    if (in_window) {
      EXPECT_NE(*payload, honest) << "strike must mount the inner attack";
    } else {
      EXPECT_EQ(*payload, honest) << "camouflage must be bitwise honest";
    }
  }

  // A roomier floor never triggers: average needs only f + 1 = 2 nodes,
  // and 5 live is far above it.
  ctx.gar = "average";
  ctx.iteration = 3;
  EXPECT_FALSE(striker.strikes(ctx));
  // ... unless the margin option widens the trigger band to reach it.
  ga::WindowStrikerAttack eager(ga::make_attack("reversed"), /*margin=*/3);
  EXPECT_TRUE(eager.strikes(ctx));
  // Outside the window the margin changes nothing: down == 0, no strike.
  ctx.iteration = 0;
  EXPECT_FALSE(eager.strikes(ctx));
}

// -------------------------------------------- end-to-end window_striker

namespace {

/// SSMW run sized so the churn window [5, 25) thins the worker cohort to
/// exactly min_n(gar, 1) + 1 live nodes — one inside the striker's
/// margin=1 trigger band. The crashed worker (node 1) is honest; the
/// Byzantine one holds the highest rank. Twenty clean iterations after
/// the window separate transient damage (a robust GAR re-converges) from
/// permanent damage (the wrecked mean cannot).
double final_accuracy(const std::string& gar, const std::string& attack) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.nps = 1;
  cfg.nw = garfield::gars::gar_min_n(gar, 1) + 2;
  cfg.fw = 1;
  cfg.gradient_gar = gar;
  cfg.iterations = 45;
  cfg.eval_every = 0;
  cfg.seed = 20260808;
  cfg.worker_attack = attack;
  cfg.network = "churn:crash=1,at_iter=5,recover_after=20";
  cfg.validate();
  return gc::train(cfg).final_accuracy;
}

}  // namespace

TEST(WindowStriker, WrecksAverageButBouncesOffRobustGars) {
  ThreadGuard guard;
  garfield::tensor::set_parallel_threads(1);
  const char* striker = "window_striker:margin=1";
  // Unprotected mean: the -100x reversed strike during the twenty thinned
  // iterations destroys what the run learned, beyond repair.
  const double avg_clean = final_accuracy("average", "");
  const double avg_struck = final_accuracy("average", striker);
  EXPECT_LT(avg_struck, avg_clean - 0.15)
      << "clean " << avg_clean << " struck " << avg_struck;
  // Robust GARs at their floor still filter the striker.
  for (const char* gar : {"krum", "centered_clip"}) {
    const double clean = final_accuracy(gar, "");
    const double struck = final_accuracy(gar, striker);
    EXPECT_GT(struck, clean - 0.08)
        << gar << ": clean " << clean << " struck " << struck;
  }
}

// ------------------------------------------------------- corrupt_recovery

namespace {

class CorruptRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("garfield_recovery_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// MSMW with 4 server replicas (the highest rank declared Byzantine)
  /// where honest server 1 crashes at iteration 2 and recovers at 4 —
  /// recovery runs the peer state-transfer protocol against honest and
  /// tampering sources, and the 3 surviving replicas keep the model GAR
  /// above its min_n(median, 1) = 3 floor through the outage.
  gc::DeploymentConfig recovery_config(const std::string& server_attack,
                                       const char* ckpt_name) const {
    gc::DeploymentConfig cfg;
    cfg.deployment = gc::Deployment::kMsmw;
    cfg.model = "tiny_mlp";
    cfg.dataset = "cluster";
    cfg.train_size = 256;
    cfg.test_size = 64;
    cfg.batch_size = 8;
    cfg.nps = 4;
    cfg.fps = 1;
    cfg.nw = 3;
    cfg.fw = 0;
    cfg.gradient_gar = "median";
    cfg.model_gar = "median";
    cfg.iterations = 8;
    cfg.eval_every = 4;
    cfg.seed = 20260808;
    cfg.server_attack = server_attack;
    cfg.network = "churn:crash=1,at_iter=2,recover_after=2";
    cfg.checkpoint_path = (dir_ / ckpt_name).string();
    cfg.checkpoint_every = 1;
    return cfg;
  }

  std::filesystem::path dir_;
};

}  // namespace

TEST_F(CorruptRecovery, TamperedStateTransferIsRejectedAndHarmless) {
  ThreadGuard guard;
  garfield::tensor::set_parallel_threads(1);

  // Baseline: every state-transfer source honest. The recovering server
  // adopts a verified peer blob (freshest iteration, lowest rank on ties).
  gc::DeploymentConfig honest_cfg = recovery_config("", "honest.ckpt");
  ASSERT_NO_THROW(honest_cfg.validate());
  const gc::TrainResult honest = gc::train(honest_cfg);
  EXPECT_GE(honest.state_transfers, 1u);
  EXPECT_EQ(honest.state_transfer_rejects, 0u);

  // Under attack: the Byzantine replica (server 2) serves a blob damaged
  // after the digest seal. The receiver must detect it, reject it without
  // decoding, and adopt honest server 0's blob instead — the same blob
  // the baseline adopted, so the whole run stays bitwise identical.
  gc::DeploymentConfig attacked_cfg =
      recovery_config("corrupt_recovery", "attacked.ckpt");
  ASSERT_NO_THROW(attacked_cfg.validate());
  const gc::TrainResult attacked = gc::train(attacked_cfg);
  EXPECT_GE(attacked.state_transfers, 1u);
  EXPECT_GE(attacked.state_transfer_rejects, 1u);

  ASSERT_EQ(honest.final_parameters.size(), attacked.final_parameters.size());
  EXPECT_EQ(std::memcmp(honest.final_parameters.data(),
                        attacked.final_parameters.data(),
                        honest.final_parameters.size() * sizeof(float)),
            0)
      << "a rejected tampered blob must not perturb the trajectory";
  ASSERT_EQ(honest.curve.size(), attacked.curve.size());
  for (std::size_t i = 0; i < honest.curve.size(); ++i) {
    EXPECT_EQ(honest.curve[i].accuracy, attacked.curve[i].accuracy);
    EXPECT_EQ(honest.curve[i].loss, attacked.curve[i].loss);
  }
  EXPECT_EQ(honest.final_accuracy, attacked.final_accuracy);
}
