// Figure 8 — throughput with an increasing number of workers.
//
// Two complementary modes:
//
//  1. Analytic panels (the paper's CPU/GPU clusters, CifarNet/ResNet-50):
//     the cost-model simulator projects batches/sec for hardware we do not
//     have. Paper shapes: every parameter-server system scales with nw
//     (vanilla fastest, then crash-tolerant ~ MSMW, SSMW close to
//     AggregaThor); decentralized learning does not scale; GPU throughput
//     is about an order of magnitude above CPU.
//
//  2. Live real-contention mode: the *actual* in-process trainer at
//     latency 0, sweeping (deployment x nps x nw x pool_threads) and
//     measuring hardware-limited iterations/sec. Since the timer-wheel /
//     zero-copy / gradient-cache transport rework, pool threads only run
//     handler compute, so these numbers are real contention, not simulated
//     sleeps. Results are written to BENCH_fig8.json (override the path
//     with GARFIELD_FIG8_JSON; one run per file — the committed copy is
//     the trajectory record) and each row whose shape matches the
//     committed pre-rework baseline prints its speedup.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/config.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::sim;
namespace gc = garfield::core;

void panel(const char* title, const char* model, const DeviceProfile& device,
           const LinkProfile& link, std::size_t batch,
           const std::vector<std::size_t>& nws) {
  std::printf("\n%s\n%-6s %-10s %-16s %-10s %-10s %-10s %-14s\n", title, "nw",
              "vanilla", "crash_tolerant", "ssmw", "msmw", "aggr.thor",
              "decentralized");
  for (std::size_t nw : nws) {
    SimSetup s;
    s.d = model_spec(model).parameters;
    s.batch_size = batch;
    s.nw = nw;
    s.fw = nw > 6 ? 3 : 1;
    s.nps = 3;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = device;
    s.link = link;

    auto at = [&](SimDeployment dep, bool native, bool sync) {
      SimSetup v = s;
      v.deployment = dep;
      v.native_runtime = native;
      v.asynchronous = !sync;
      if (dep == SimDeployment::kVanilla || dep == SimDeployment::kSsmw)
        v.nps = 1;
      return batches_per_sec(v);
    };
    std::printf("%-6zu %-10.1f %-16.1f %-10.1f %-10.1f %-10.1f %-14.1f\n",
                nw, at(SimDeployment::kVanilla, true, true),
                at(SimDeployment::kCrashTolerant, false, true),
                at(SimDeployment::kSsmw, false, false),
                at(SimDeployment::kMsmw, false, false),
                // AggregaThor: SSMW architecture, synchronous, older
                // runtime (no parallelized deserialization) — modelled as
                // the synchronous SSMW point.
                at(SimDeployment::kSsmw, false, true),
                at(SimDeployment::kDecentralized, false, false));
  }
}

// ------------------------------------------------- live contention mode

/// Pre-rework throughput on the reference shape (nw=8, auto pool, latency
/// 0, 60 iterations of tiny_mlp/cluster, seed 7), measured with the
/// sleep-on-pool + O(nps)-recompute transport this PR replaced — the
/// committed "before" of BENCH_fig8.json's before/after speedups. 0 = no
/// baseline for that deployment.
struct PrePrBaseline {
  const char* deployment;
  std::size_t nps;
  double its_per_sec;
};
constexpr PrePrBaseline kPrePr[] = {
    {"vanilla", 1, 3121.2},
    {"ssmw", 1, 3049.9},
    {"msmw", 3, 1102.2},
    {"decentralized", 1, 345.9},
};

struct LiveCell {
  gc::Deployment deployment;
  std::size_t nps = 1;
  std::size_t nw = 8;
  std::size_t fw = 1;
  std::size_t fps = 0;
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  /// "inproc" = threads in this process; "tcp" = one OS process per node
  /// over localhost streams — the multi-process section's cross-process
  /// its/sec, scheduler and loopback included.
  const char* transport = "inproc";
};

struct LiveResult {
  LiveCell cell;
  double its_per_sec = 0.0;
  std::uint64_t floats_transferred = 0;
  std::uint64_t wasted_replies = 0;
  double speedup_vs_pre_pr = 0.0;  // 0 = shape has no committed baseline
};

gc::DeploymentConfig live_config(const LiveCell& cell,
                                 std::size_t iterations) {
  gc::DeploymentConfig cfg;
  cfg.deployment = cell.deployment;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 2048;
  cfg.test_size = 256;
  cfg.batch_size = 16;
  cfg.iterations = iterations;
  cfg.eval_every = 0;  // pure throughput: no probes in the timed loop
  cfg.seed = 7;
  cfg.nps = cell.nps;
  cfg.nw = cell.nw;
  cfg.fw = cell.fw;
  cfg.fps = cell.fps;
  cfg.pool_threads = cell.pool_threads;
  cfg.transport = cell.transport;
  if (cell.deployment != gc::Deployment::kVanilla) {
    cfg.gradient_gar = "multi_krum";
    cfg.model_gar = "median";
  }
  return cfg;
}

LiveResult run_live(const LiveCell& cell, std::size_t iterations) {
  const gc::DeploymentConfig cfg =
      garfield::bench::smoke(live_config(cell, iterations));
  // Best-of-3 in full mode: throughput on a shared box is noisy downward
  // (scheduler preemption), never upward, so the max is the
  // hardware-limited figure. Smoke mode runs once — it only guards the
  // code path.
  const int repeats = garfield::bench::smoke_mode() ? 1 : 3;
  LiveResult out;
  out.cell = cell;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const gc::TrainResult r = gc::train(cfg);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const double its = secs > 0 ? double(cfg.iterations) / secs : 0.0;
    if (its > out.its_per_sec) {
      out.its_per_sec = its;
      out.floats_transferred = r.net_stats.floats_transferred;
      out.wasted_replies = r.net_stats.wasted_replies;
    }
  }
  // The committed baseline covers the reference shape only: nw=8, auto
  // pool, full-length run.
  if (!garfield::bench::smoke_mode() && cell.nw == 8 &&
      cell.pool_threads == 0 && std::string(cell.transport) == "inproc") {
    for (const PrePrBaseline& b : kPrePr) {
      if (gc::to_string(cell.deployment) == b.deployment &&
          cell.nps == b.nps && b.its_per_sec > 0) {
        out.speedup_vs_pre_pr = out.its_per_sec / b.its_per_sec;
      }
    }
  }
  return out;
}

void write_json(const std::vector<LiveResult>& results,
                std::size_t iterations) {
  const char* path = std::getenv("GARFIELD_FIG8_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_fig8.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("(could not open %s for writing — skipping JSON)\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fig8_live_contention\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n",
               garfield::bench::smoke_mode() ? "true" : "false");
  std::fprintf(f, "  \"iterations\": %zu,\n", iterations);
  std::fprintf(f, "  \"workload\": \"tiny_mlp, cluster dataset, "
                  "train=2048, batch=16, latency=0, seed=7\",\n");
  std::fprintf(f, "  \"pre_pr_baseline_its_per_sec\": {");
  for (std::size_t i = 0; i < std::size(kPrePr); ++i) {
    std::fprintf(f, "%s\"%s\": %.1f", i == 0 ? "" : ", ",
                 kPrePr[i].deployment, kPrePr[i].its_per_sec);
  }
  std::fprintf(f, "},\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LiveResult& r = results[i];
    std::fprintf(
        f,
        "    {\"deployment\": \"%s\", \"transport\": \"%s\", \"nps\": %zu, "
        "\"nw\": %zu, \"pool_threads\": %zu, \"iterations_per_sec\": %.1f, "
        "\"floats_transferred\": %llu, \"wasted_replies\": %llu",
        gc::to_string(r.cell.deployment).c_str(), r.cell.transport,
        r.cell.nps, r.cell.nw, r.cell.pool_threads, r.its_per_sec,
        (unsigned long long)r.floats_transferred,
        (unsigned long long)r.wasted_replies);
    if (r.speedup_vs_pre_pr > 0) {
      std::fprintf(f, ", \"speedup_vs_pre_pr\": %.2f", r.speedup_vs_pre_pr);
    }
    std::fprintf(f, "}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", path, results.size());
}

void live_mode() {
  const bool smoke = garfield::bench::smoke_mode();
  const std::size_t iterations = smoke ? 6 : 60;
  std::printf("\nLive real-contention mode — in-process trainer, latency "
              "0,\n(deployment x nps x nw x pool_threads), %zu iterations "
              "per cell\n", iterations);
  std::printf("%-14s %-7s %-4s %-4s %-6s %-10s %-12s %-8s %-10s\n",
              "deployment", "trans", "nps", "nw", "pool", "its/sec", "floats",
              "wasted", "vs pre-PR");

  std::vector<LiveCell> cells;
  // nw floor is 6: multi_krum at fw=1 needs 2f+3 = 5 inputs and the
  // decentralized quorum is nw - fw - 1 peers + self.
  const std::vector<std::size_t> nws =
      smoke ? std::vector<std::size_t>{6, 8}
            : std::vector<std::size_t>{6, 8, 16};
  const std::size_t pools[] = {1, 0};  // serialized handlers vs hardware
  for (std::size_t nw : nws) {
    for (std::size_t pool : pools) {
      cells.push_back({gc::Deployment::kVanilla, 1, nw, 0, 0, pool});
      cells.push_back({gc::Deployment::kSsmw, 1, nw, 1, 0, pool});
      cells.push_back({gc::Deployment::kMsmw, 3, nw, 1, 1, pool});
      cells.push_back({gc::Deployment::kDecentralized, 1, nw, 1, 0, pool});
    }
  }
  // nps scaling point: more server replicas at fixed nw.
  cells.push_back({gc::Deployment::kMsmw, 5, 8, 1, 1, 0});

  // Multi-process section: the same robust deployments with one OS process
  // per node over localhost TCP streams — cross-process its/sec with
  // fork/exec, loopback framing and the ready/done barriers on the clock.
  // Auto pool only: each node process sizes its own pool. Needs the
  // tools/garfield_node launcher; without it the cells are skipped. The
  // floats/wasted columns of tcp rows are the orchestrating rank's
  // process-local view (core/node_runner.h scope note).
  for (std::size_t nw : nws) {
    cells.push_back({gc::Deployment::kSsmw, 1, nw, 1, 0, 0, "tcp"});
    cells.push_back({gc::Deployment::kMsmw, 3, nw, 1, 1, 0, "tcp"});
    cells.push_back({gc::Deployment::kDecentralized, 1, nw, 1, 0, 0, "tcp"});
  }

  std::vector<LiveResult> results;
  results.reserve(cells.size());
  bool tcp_unavailable = false;
  for (const LiveCell& cell : cells) {
    const bool is_tcp = std::string(cell.transport) == "tcp";
    if (tcp_unavailable && is_tcp) continue;
    LiveResult r;
    try {
      r = run_live(cell, iterations);
    } catch (const std::runtime_error& e) {
      if (is_tcp && std::string(e.what()).find("garfield_node") !=
                        std::string::npos) {
        std::printf("(skipping transport=tcp cells: %s)\n", e.what());
        tcp_unavailable = true;
        continue;
      }
      throw;
    }
    char speedup[32] = "-";
    if (r.speedup_vs_pre_pr > 0) {
      std::snprintf(speedup, sizeof speedup, "%.2fx", r.speedup_vs_pre_pr);
    }
    std::printf("%-14s %-7s %-4zu %-4zu %-6zu %-10.1f %-12llu %-8llu %-10s\n",
                gc::to_string(cell.deployment).c_str(), cell.transport,
                cell.nps, cell.nw, cell.pool_threads, r.its_per_sec,
                (unsigned long long)r.floats_transferred,
                (unsigned long long)r.wasted_replies, speedup);
    results.push_back(r);
  }
  write_json(results, iterations);
}

}  // namespace

int main() {
  panel("Fig 8a — CPU cluster, CifarNet, batches/sec vs nw (analytic)",
        "CifarNet", cpu_profile(), cpu_link(), 32,
        {3, 5, 7, 9, 11, 13, 15, 17, 19});
  panel("Fig 8b — GPU cluster, ResNet-50, batches/sec vs nw (analytic)",
        "ResNet-50", gpu_profile(), gpu_link(), 100, {5, 7, 9, 11, 13});
  std::printf("\nPaper shapes: all parameter-server systems scale with nw; "
              "the decentralized\ncolumn flattens; GPU panel sits about an "
              "order of magnitude above CPU.\n");
  live_mode();
  return 0;
}
