#include "util/spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace garfield::util {

bool valid_identifier(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_';
  });
}

void SpecOptions::set(const std::string& key, std::string value) {
  if (!valid_identifier(key)) {
    throw std::invalid_argument("spec: bad option key '" + key + "'");
  }
  const auto [it, inserted] = entries_.emplace(key, Entry{std::move(value)});
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("spec: duplicate option '" + key + "'");
  }
}

std::size_t SpecOptions::get_size(const std::string& key,
                                  std::size_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  const std::string& raw = it->second.value;
  try {
    std::size_t pos = 0;
    if (!raw.empty() && raw.front() == '-') throw std::invalid_argument(raw);
    const unsigned long long v = std::stoull(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument(raw);
    return std::size_t(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("spec: option '" + key +
                                "' expects a non-negative integer, got '" +
                                raw + "'");
  }
}

double SpecOptions::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  const std::string& raw = it->second.value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size() || !std::isfinite(v)) {
      throw std::invalid_argument(raw);
    }
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("spec: option '" + key +
                                "' expects a finite number, got '" + raw +
                                "'");
  }
}

std::string SpecOptions::get_string(const std::string& key,
                                    std::string fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  if (it->second.value.empty()) {
    throw std::invalid_argument("spec: option '" + key +
                                "' expects a non-empty value");
  }
  return it->second.value;
}

std::chrono::microseconds SpecOptions::get_duration(
    const std::string& key, std::chrono::microseconds fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  const std::string& raw = it->second.value;
  bool ok = !raw.empty() && std::isdigit(static_cast<unsigned char>(raw[0]));
  unsigned long long value = 0;
  std::string unit;
  if (ok) {
    try {
      std::size_t pos = 0;
      value = std::stoull(raw, &pos);
      unit = raw.substr(pos);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  unsigned long long scale = 1;  // bare integers are microseconds
  if (unit == "ms") {
    scale = 1000;
  } else if (unit == "s") {
    scale = 1'000'000;
  } else if (!unit.empty() && unit != "us") {
    ok = false;
  }
  // Guard the us conversion against overflow into a negative delay.
  if (ok && value > 0 &&
      value > std::uint64_t(INT64_MAX) / scale) {
    ok = false;
  }
  if (!ok) {
    throw std::invalid_argument(
        "spec: option '" + key +
        "' expects a non-negative duration (e.g. 50us, 5ms, 2s), got '" +
        raw + "'");
  }
  return std::chrono::microseconds(std::int64_t(value * scale));
}

double SpecOptions::get_byte_rate(const std::string& key,
                                  double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  const std::string& raw = it->second.value;
  bool ok = !raw.empty() && std::isdigit(static_cast<unsigned char>(raw[0]));
  double value = 0.0;
  std::string unit;
  if (ok) {
    try {
      std::size_t pos = 0;
      value = std::stod(raw, &pos);
      unit = raw.substr(pos);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  // Network units are decimal: 1 Gbps = 1e9 bits/s = 1.25e8 bytes/s.
  double scale = 0.0;
  if (unit == "Gbps") {
    scale = 1e9 / 8.0;
  } else if (unit == "Mbps") {
    scale = 1e6 / 8.0;
  } else if (unit == "MBps") {
    scale = 1e6;
  } else {
    ok = false;
  }
  if (ok && !(value > 0.0 && std::isfinite(value))) ok = false;
  if (!ok) {
    throw std::invalid_argument(
        "spec: option '" + key +
        "' expects a positive rate with a unit (e.g. 1Gbps, 200Mbps, "
        "50MBps), got '" + raw + "'");
  }
  return value * scale;
}

std::vector<std::string> SpecOptions::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : entries_) {
    if (!entry.consumed) out.push_back(key);
  }
  return out;
}

ParsedSpec parse_spec(const std::string& spec, const std::string& context) {
  ParsedSpec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (!valid_identifier(out.name)) {
    throw std::invalid_argument(context + ": bad name in '" + spec + "'");
  }
  if (colon == std::string::npos) return out;

  std::string rest = spec.substr(colon + 1);
  if (rest.empty()) {
    throw std::invalid_argument(context + ": empty option list in '" + spec +
                                "'");
  }
  std::size_t begin = 0;
  while (begin <= rest.size()) {
    const auto comma = rest.find(',', begin);
    const std::string item =
        rest.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      throw std::invalid_argument(context + ": expected key=value, got '" +
                                  item + "' in '" + spec + "'");
    }
    out.options.set(item.substr(0, eq), item.substr(eq + 1));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

}  // namespace garfield::util
