#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace garfield::nn {

LossResult SoftmaxCrossEntropy::compute(
    const Tensor& logits, const std::vector<std::size_t>& labels) const {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t b = logits.dim(0), c = logits.dim(1);
  LossResult result;
  result.grad = Tensor::zeros(logits.shape());
  double total = 0.0;
  for (std::size_t i = 0; i < b; ++i) {
    const float* row = logits.data().data() + i * c;
    float* grow = result.grad.data().data() + i * c;
    const float mx = *std::max_element(row, row + c);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(double(row[j] - mx));
    const double log_denom = std::log(denom);
    assert(labels[i] < c);
    total += log_denom - double(row[labels[i]] - mx);
    // dL/dlogit = softmax - onehot, averaged over the batch.
    for (std::size_t j = 0; j < c; ++j) {
      const double p = std::exp(double(row[j] - mx)) / denom;
      grow[j] = float(p / double(b));
    }
    grow[labels[i]] -= 1.0F / float(b);
  }
  result.value = total / double(b);
  return result;
}

LossResult MeanSquaredError::compute(const Tensor& output,
                                     const Tensor& target) const {
  assert(output.numel() == target.numel());
  LossResult result;
  result.grad = Tensor::zeros(output.shape());
  const std::size_t n = output.numel();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = double(output[i]) - double(target[i]);
    total += d * d;
    result.grad[i] = float(2.0 * d / double(n));
  }
  result.value = total / double(n);
  return result;
}

std::vector<std::size_t> predict_classes(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::size_t b = logits.dim(0), c = logits.dim(1);
  std::vector<std::size_t> out(b);
  for (std::size_t i = 0; i < b; ++i) {
    const float* row = logits.data().data() + i * c;
    out[i] = std::size_t(
        std::distance(row, std::max_element(row, row + c)));
  }
  return out;
}

}  // namespace garfield::nn
