// Figures 15 and 16 (appendix) — the PyTorch-backend implementation:
// slowdown per model (Fig 15) and overhead breakdown (Fig 16) on the GPU
// cluster profile, with the per-layer pipelining of §4.2.
//
// Paper shapes (Fig 15): fault-tolerance cost invisible on the small
// models (MNIST_CNN, CifarNet), grows with size; Garfield's slowdown vs
// vanilla PyTorch is *larger* than the TF version's because vanilla
// PyTorch's reduce() streams GPU-to-GPU and folds averaging into the
// transfer. (Fig 16): fault-tolerant systems show *less* exposed
// computation than vanilla (pipelining hides part of it); the combined
// communication+aggregation bar is highest for Garfield.
#include <cstdio>
#include <vector>

#include "sim/deployment_sim.h"

int main() {
  using namespace garfield::sim;

  const std::vector<const char*> models = {"MNIST_CNN", "CifarNet",
                                           "Inception", "ResNet-50",
                                           "ResNet-152", "VGG"};

  auto setup = [&](SimDeployment dep, std::size_t d, bool native) {
    SimSetup s;
    s.deployment = dep;
    s.d = d;
    s.batch_size = 100;
    s.nw = 10;
    s.fw = 3;
    s.nps = 3;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "mda";
    s.device = gpu_profile();
    s.link = gpu_link();
    s.native_runtime = native;
    s.pipelined = !native;  // §4.2 per-layer pipelining in the PT backend
    return s;
  };

  std::printf("Fig 15 — PyTorch backend: slowdown vs vanilla PyTorch, GPU "
              "cluster (nw=10, nps=3)\n\n");
  std::printf("%-12s %-16s %-12s\n", "Model", "Crash-tolerant", "Garfield");
  for (const char* name : models) {
    const std::size_t d = model_spec(name).parameters;
    const double vanilla =
        simulate_iteration(setup(SimDeployment::kVanilla, d, true)).total();
    const double crash =
        simulate_iteration(setup(SimDeployment::kCrashTolerant, d, false))
            .total();
    const double garfield =
        simulate_iteration(setup(SimDeployment::kMsmw, d, false)).total();
    std::printf("%-12s %-16.2f %-12.2f\n", name, crash / vanilla,
                garfield / vanilla);
  }

  std::printf("\nFig 16 — PyTorch backend: per-iteration breakdown, "
              "ResNet-50\n\n");
  std::printf("%-16s %-14s %-26s %-10s\n", "System", "Computation",
              "Comm+Aggregation (piped)", "Total");
  const std::size_t d = model_spec("ResNet-50").parameters;
  const struct {
    const char* name;
    SimDeployment dep;
    bool native;
  } systems[] = {
      {"PyTorch", SimDeployment::kVanilla, true},
      {"Crash-tolerant", SimDeployment::kCrashTolerant, false},
      {"Garfield", SimDeployment::kMsmw, false},
  };
  for (const auto& sys : systems) {
    const IterationBreakdown b =
        simulate_iteration(setup(sys.dep, d, sys.native));
    std::printf("%-16s %-14.3f %-26.3f %-10.3f\n", sys.name, b.computation,
                b.communication + b.aggregation, b.total());
  }
  std::printf("\nPaper shapes: near-1x slowdown on small models; Garfield > "
              "crash-tolerant;\nfault-tolerant systems show less exposed "
              "computation than vanilla\n(pipelining hides it inside "
              "communication).\n");
  return 0;
}
