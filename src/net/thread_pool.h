// Fixed-size thread pool used by the simulated cluster to execute RPC
// handler invocations concurrently, the way a gRPC server's completion
// queues would. Pool threads only ever run handler compute: simulated link
// delay lives in the TimerWheel (timer_wheel.h), so the pool can be sized
// to hardware concurrency instead of over-provisioned to hide sleeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace garfield::net {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; never blocks. Returns false once shutdown has begun,
  /// leaving `task` untouched so the caller can still run or resolve it —
  /// Cluster::dispatch counts these as dropped_tasks and resolves the RPC
  /// callback so quorum accounting cannot hang; the TimerWheel runs the
  /// refused task inline.
  [[nodiscard]] bool submit(std::function<void()>&& task);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace garfield::net
