// Byzantine attacks (§3.2 "Main objects": ByzantineServer/ByzantineWorker
// "implement the popular attacks published in the Byzantine ML literature").
//
// An Attack turns the payload a correct node *would* send into the payload
// the adversary actually sends. Crafting receives an AttackContext carrying
// everything the adversary model grants: the training iteration, the
// attacker's node id, the declared cohort shape (n, f), a per-attacker Rng,
// and — for omniscient attacks (little-is-enough, fall-of-empires,
// adaptive_z) — the honest cohort's vectors, the strongest adversary model
// used in the papers they come from.
//
// craft() is non-const: attacks may carry state across iterations
// (alternating switches sub-attacks on a period; adaptive_z tunes its
// intensity against a probe GAR each round). One Attack instance belongs to
// one Byzantine node; callers serialize craft() calls per instance.
//
// Construction goes through the AttackRegistry (attacks/registry.h):
// make_attack accepts a bare name ("sign_flip") or a spec string with typed
// options ("little_is_enough:z=2.5").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/vecops.h"
#include "util/spec.h"

namespace garfield::gars {
class Gar;  // adaptive_z's cached probe rule (gars/gar.h)
}  // namespace garfield::gars

namespace garfield::net {
class NetworkConditions;  // window_striker's churn-schedule view
}  // namespace garfield::net

namespace garfield::attacks {

using tensor::FlatVector;
using tensor::Rng;

/// Everything an adversary is allowed to see when crafting a payload.
/// Rebuilt per craft() call by the owning Byzantine node (cheap: a few
/// words plus two non-owning views).
class AttackContext {
 public:
  explicit AttackContext(Rng& rng) : rng_(&rng) {}

  /// Training iteration the payload is for (drives time-varying attacks).
  std::uint64_t iteration = 0;
  /// Node id of the attacker crafting this payload.
  std::size_t attacker_id = 0;
  /// Declared cohort size the payload joins (nw for workers, nps for
  /// servers; 0 when unknown, e.g. in unit fixtures).
  std::size_t n = 0;
  /// Declared Byzantine budget of that cohort.
  std::size_t f = 0;
  /// Honest cohort view for omniscient attacks; empty for non-omniscient
  /// ones and in deployments where the adversary has no such channel.
  std::span<const FlatVector> honest{};
  /// GAR spec the deployment actually aggregates this cohort with (read
  /// from config by the owning Byzantine node: gradient_gar for worker
  /// payloads, model_gar for server payloads; "" when unknown, e.g. in
  /// unit fixtures). Adaptive attacks tune themselves against *this*
  /// defense instead of a separately configured guess.
  std::string gar;
  /// The deployment's parsed NetworkConditions (churn/fault schedules),
  /// shared from the owning node's Cluster; nullptr when the crafting node
  /// has no cluster view (unit fixtures). Schedule-aware adversaries
  /// (window_striker) read the same membership windows the cluster
  /// executes — a pure function of (spec, iteration), so every process of
  /// a multi-rank run resolves identical strike decisions.
  const net::NetworkConditions* conditions = nullptr;
  /// Node-id span [cohort_lo, cohort_hi) of the cohort this payload joins
  /// (workers [nps, nps+nw) in parameter-server deployments, peers [0, n)
  /// decentralized; both 0 when unknown) — what schedule-aware attacks
  /// count live members over.
  std::size_t cohort_lo = 0;
  std::size_t cohort_hi = 0;

  /// Per-attacker random stream (never shared across nodes).
  [[nodiscard]] Rng& rng() const { return *rng_; }

 private:
  Rng* rng_;  // non-null by construction
};

/// Interface of a Byzantine payload rewriter.
class Attack {
 public:
  virtual ~Attack() = default;

  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;
  Attack() = default;

  /// Produce the Byzantine vector. `honest` is what this node would have
  /// sent; `ctx` carries the adversary's view (see AttackContext). Returns
  /// std::nullopt to send nothing at all (the "dropped vector" attack — a
  /// silent node).
  [[nodiscard]] virtual std::optional<FlatVector> craft(
      const FlatVector& honest, AttackContext& ctx) = 0;

  /// True when this adversary corrupts Byzantine-recovery state transfer:
  /// a ByzantineServer mounting it serves checkpoint blobs damaged after
  /// the digest seal (core/server.h serve_checkpoint). Orthogonal to
  /// craft(), which such attacks leave honest to stay inconspicuous.
  [[nodiscard]] virtual bool tampers_state_transfer() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

// Thin queries over the AttackRegistry (attacks/registry.h), mirroring
// gars/gar.h's string API.

/// Names registered in the AttackRegistry, in registration order:
/// "random", "reversed", "dropped", "sign_flip", "zero",
/// "little_is_enough", "fall_of_empires", "nan_poison", "alternating",
/// "adaptive_z", "window_striker", "corrupt_recovery" — and anything
/// registered at runtime.
[[nodiscard]] std::vector<std::string> attack_names();

/// Factory. `spec` is either a bare registry name ("sign_flip") or a spec
/// string with typed options ("little_is_enough:z=2.5") — util/spec.h
/// grammar. Throws std::invalid_argument for unknown names and malformed
/// or unknown options.
[[nodiscard]] AttackPtr make_attack(const std::string& spec);

/// True when the named attack wants the honest cohort view in its
/// AttackContext (spec may carry options; only the name matters). Throws
/// for unknown names.
[[nodiscard]] bool attack_is_omniscient(const std::string& spec);

/// Replace the vector by i.i.d. N(0, scale) noise (Fig 5a).
/// Spec option: scale > 0 (default 10).
class RandomAttack final : public Attack {
 public:
  explicit RandomAttack(float scale = 10.0F) : scale_(scale) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  float scale_;
};

/// Reverse and amplify: multiply by -factor (paper uses -100, Fig 5b).
/// Spec option: factor > 0 (default 100).
class ReversedAttack final : public Attack {
 public:
  explicit ReversedAttack(float factor = 100.0F) : factor_(factor) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "reversed"; }

 private:
  float factor_;
};

/// Send nothing — models a mute/crashed Byzantine node.
class DroppedAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "dropped"; }
};

/// Plain sign flip (multiply by -1), the mildest directional attack.
class SignFlipAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "sign_flip"; }
};

/// All-zeros vector: stalls learning without looking like an outlier.
class ZeroAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "zero"; }
};

/// "A little is enough" [Baruch et al.]: mean(view) - z * stddev(view),
/// coordinate-wise, with z small enough to hide inside the honest variance.
/// Spec option: z >= 0 (default 1.5). Omniscient.
class LittleIsEnoughAttack final : public Attack {
 public:
  explicit LittleIsEnoughAttack(float z = 1.5F) : z_(z) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return "little_is_enough";
  }

 private:
  float z_;
};

/// Poison a fraction of coordinates with NaN/Inf. A single NaN survives
/// averaging and corrupts the whole model; robust systems must reject such
/// payloads at ingress (garfield's servers do) — coordinate-wise GARs like
/// Median would otherwise still let NaN coordinates through.
/// Spec option: fraction in (0, 1] (default 0.01).
class NanPoisonAttack final : public Attack {
 public:
  explicit NanPoisonAttack(double fraction = 0.01) : fraction_(fraction) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "nan_poison"; }

 private:
  double fraction_;
};

/// "Fall of empires" [Xie et al.]: send -epsilon * mean(view), the inner
/// product manipulation attack. Spec option: epsilon > 0 (default 1.1).
/// Omniscient.
class FallOfEmpiresAttack final : public Attack {
 public:
  explicit FallOfEmpiresAttack(float epsilon = 1.1F) : epsilon_(epsilon) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return "fall_of_empires";
  }

 private:
  float epsilon_;
};

/// Time-varying attack: alternates between two sub-attacks every `period`
/// iterations, defeating defenses that filter on time-averaged statistics
/// (a node that flips signs half the time and stalls the other half never
/// builds a stable outlier profile). Spec options: period >= 1 (default 1),
/// first / second (sub-attack specs, defaults sign_flip / zero — a bare
/// name or a nested *single-option* spec like "little_is_enough:z=3"; the
/// option grammar's ','/';' exclusions leave room for exactly one nested
/// option).
class AlternatingAttack final : public Attack {
 public:
  AlternatingAttack(AttackPtr first, AttackPtr second, std::size_t period);
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "alternating"; }

  /// Sub-attack a given iteration delegates to (exposed for tests).
  [[nodiscard]] const Attack& active_at(std::uint64_t iteration) const {
    return select(iteration);
  }

 private:
  /// Single source of the schedule; craft() and active_at() both use it.
  [[nodiscard]] Attack& select(std::uint64_t iteration) const {
    return (iteration / period_) % 2 == 0 ? *first_ : *second_;
  }

  AttackPtr first_;
  AttackPtr second_;
  std::size_t period_;
};

/// Adaptive little-is-enough: each round, binary-search the largest z whose
/// crafted vector still slips past a *probe* GAR the attacker runs locally
/// against the honest cohort view — the adversary tunes its intensity to
/// the defense instead of committing to a compiled-in z. Falls back to
/// plain little-is-enough (z = fallback_z) when the context carries no
/// honest view or too few vectors to run the probe. Spec options:
/// probe (default "deployment": probe whatever GAR the deployment's config
/// declares for this cohort — AttackContext::gar — falling back to "krum"
/// when the context does not carry one; any explicit GAR spec pins the
/// probe instead), z_max > 0 (default 8), steps >= 1 bisection rounds
/// (default 10), fallback_z (default 1.5). Omniscient, stateful: last_z()
/// exposes the intensity used last round, last_probe() the GAR actually
/// probed.
class AdaptiveZAttack final : public Attack {
 public:
  struct Options {
    std::string probe = "deployment";
    double z_max = 8.0;
    std::size_t steps = 10;
    double fallback_z = 1.5;
  };

  explicit AdaptiveZAttack(Options options);
  AdaptiveZAttack() : AdaptiveZAttack(Options{}) {}
  ~AdaptiveZAttack() override;  // out of line: Gar is incomplete here
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "adaptive_z"; }

  /// Intensity chosen by the most recent craft() (0 before the first call;
  /// fallback_z when the probe could not run).
  [[nodiscard]] double last_z() const { return last_z_; }

  /// GAR spec string probed by the most recent craft() ("" before the
  /// first call or when the probe could not run) — how tests pin that the
  /// "deployment" probe really tracked the configured GAR.
  [[nodiscard]] const std::string& last_probe() const { return last_probe_; }

 private:
  /// Parse (and cache) the probe spec for this craft call: the configured
  /// probe, or — in "deployment" mode — the GAR the context says the
  /// cohort is aggregated with.
  void resolve_probe(const AttackContext& ctx);

  Options options_;
  std::string probe_source_;     // spec string probe_spec_ was parsed from
  util::ParsedSpec probe_spec_;  // cached parse of probe_source_
  /// Probe rule cache: rebuilt only when the (spec, n, f) it was built for
  /// changes — constant in steady state, so per-iteration craft() calls
  /// skip spec parsing and rule construction entirely.
  std::unique_ptr<gars::Gar> probe_gar_;
  std::size_t probe_gar_n_ = 0;
  std::size_t probe_gar_f_ = 0;
  double last_z_ = 0.0;
  std::string last_probe_;
};

/// Churn-timed adversary: stays perfectly honest until the deployment's
/// churn schedule (AttackContext::conditions) has cohort members down AND
/// the live count grazes the cohort GAR's min_n(f) resilience floor —
/// live <= min_n + margin — then mounts its inner attack at full
/// intensity. Defenses that profile per-node statistics see an honest node
/// for the whole healthy phase; the strike lands exactly when the quorum
/// has the least slack to absorb it. The strike predicate is a pure
/// function of (schedule, iteration, gar, f), so every process of a
/// multi-rank run agrees on the strike windows. With no conditions view or
/// no churn scheduled the attack never strikes (it is *waiting* for a
/// reconfiguration window). Spec options: inner (sub-attack spec, default
/// "reversed"), margin >= 0 (slack above the floor that still triggers a
/// strike, default 0).
class WindowStrikerAttack final : public Attack {
 public:
  WindowStrikerAttack(AttackPtr inner, std::size_t margin);
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "window_striker"; }

  /// The strike predicate alone (exposed for tests; craft() consumes no
  /// randomness outside strike windows, so the schedule is replayable).
  [[nodiscard]] bool strikes(const AttackContext& ctx);

 private:
  AttackPtr inner_;
  std::size_t margin_;
  /// min_n floor cache, rebuilt only when the (gar, f) pair changes.
  std::string floor_gar_;
  std::size_t floor_f_ = std::size_t(-1);
  std::size_t floor_ = 0;
};

/// Byzantine *recovery* adversary: every regular channel (gradients,
/// models, gossip) is served honestly — craft() is the identity — but the
/// node declares tampers_state_transfer(), so a ByzantineServer mounting
/// it serves checkpoint blobs damaged after the digest seal to any
/// recovering peer. The verified state-transfer path detects the damage
/// (digest mismatch), rejects the blob before decoding a single float and
/// falls back to the remaining peers or the local checkpoint — leaving the
/// honest trajectory untouched.
class CorruptRecoveryAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  AttackContext& ctx) override;
  [[nodiscard]] bool tampers_state_transfer() const override { return true; }
  [[nodiscard]] std::string name() const override {
    return "corrupt_recovery";
  }
};

}  // namespace garfield::attacks
