#include "core/controller.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace garfield::core {

namespace {

std::size_t to_size(const std::string& key, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad integer for '" + key + "': " +
                                value);
  }
}

float to_float(const std::string& key, const std::string& value) {
  try {
    return std::stof(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad float for '" + key + "': " +
                                value);
  }
}

bool to_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument("config: bad bool for '" + key + "': " + value);
}

void apply(DeploymentConfig& cfg, const std::string& key,
           const std::string& value) {
  if (key == "deployment") cfg.deployment = deployment_from_string(value);
  else if (key == "model") cfg.model = value;
  else if (key == "dataset") cfg.dataset = value;
  else if (key == "dataset_noise") cfg.dataset_noise = to_float(key, value);
  else if (key == "train_size") cfg.train_size = to_size(key, value);
  else if (key == "test_size") cfg.test_size = to_size(key, value);
  else if (key == "batch_size") cfg.batch_size = to_size(key, value);
  else if (key == "lr") cfg.optimizer.lr.gamma0 = to_float(key, value);
  else if (key == "lr_decay_steps")
    cfg.optimizer.lr.decay_steps = to_float(key, value);
  else if (key == "momentum") cfg.optimizer.momentum = to_float(key, value);
  else if (key == "worker_momentum")
    cfg.worker_momentum = to_float(key, value);
  else if (key == "weight_decay")
    cfg.optimizer.weight_decay = to_float(key, value);
  else if (key == "nw") cfg.nw = to_size(key, value);
  else if (key == "fw") cfg.fw = to_size(key, value);
  else if (key == "nps") cfg.nps = to_size(key, value);
  else if (key == "fps") cfg.fps = to_size(key, value);
  else if (key == "gradient_gar") cfg.gradient_gar = value;
  else if (key == "model_gar") cfg.model_gar = value;
  else if (key == "asynchronous") cfg.asynchronous = to_bool(key, value);
  else if (key == "worker_attack") cfg.worker_attack = value;
  else if (key == "server_attack") cfg.server_attack = value;
  else if (key == "crash_primary_at")
    cfg.crash_primary_at = to_size(key, value);
  else if (key == "non_iid") cfg.non_iid = to_bool(key, value);
  else if (key == "contraction_steps")
    cfg.contraction_steps = to_size(key, value);
  else if (key == "iterations") cfg.iterations = to_size(key, value);
  else if (key == "eval_every") cfg.eval_every = to_size(key, value);
  else if (key == "alignment_every")
    cfg.alignment_every = to_size(key, value);
  else if (key == "seed") cfg.seed = to_size(key, value);
  else if (key == "checkpoint_path") cfg.checkpoint_path = value;
  else if (key == "checkpoint_every")
    cfg.checkpoint_every = to_size(key, value);
  else if (key == "resume_from") cfg.resume_from = value;
  else if (key == "network") cfg.network = value;
  else if (key == "pool_threads") cfg.pool_threads = to_size(key, value);
  else if (key == "transport") cfg.transport = value;
  else if (key == "codec") cfg.codec = value;
  else
    throw std::invalid_argument("config: unknown key '" + key + "'");
}

/// Emit a float so that parsing the text recovers the exact bits. The
/// default 6-significant-digit print is kept when it round-trips (it almost
/// always does for human-entered values); otherwise fall back to hexfloat,
/// which strtof/stof parse exactly. This matters beyond aesthetics: the
/// multi-process launcher ships the config to every node as formatted text,
/// and a float that re-parses one ulp off would silently break the
/// bitwise-parity guarantee between the transport backends.
std::string fmt_float(float v) {
  std::ostringstream out;
  out << v;
  try {
    if (std::stof(out.str()) == v) return out.str();
  } catch (const std::exception&) {
  }
  std::ostringstream hex;
  hex << std::hexfloat << v;
  return hex.str();
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

DeploymentConfig parse_config(const std::string& text) {
  DeploymentConfig cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Allow several assignments per line; tokenize on whitespace around '='.
    std::istringstream tokens(line);
    std::string token;
    std::string pending_key;
    while (tokens >> token) {
      if (!pending_key.empty()) {
        if (token == "=") continue;
        if (token.front() == '=') token = token.substr(1);  // "key =value"
        apply(cfg, pending_key, token);
        pending_key.clear();
        continue;
      }
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        pending_key = token;
      } else if (eq + 1 == token.size()) {
        pending_key = trim(token.substr(0, eq));
      } else {
        apply(cfg, trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
      }
    }
    if (!pending_key.empty()) {
      throw std::invalid_argument("config: dangling key '" + pending_key +
                                  "'");
    }
  }
  return cfg;
}

DeploymentConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

std::string format_config(const DeploymentConfig& cfg) {
  std::ostringstream out;
  out << "deployment = " << to_string(cfg.deployment) << '\n'
      << "model = " << cfg.model << '\n'
      << "dataset = " << cfg.dataset << '\n'
      << "dataset_noise = " << fmt_float(cfg.dataset_noise) << '\n'
      << "train_size = " << cfg.train_size << '\n'
      << "test_size = " << cfg.test_size << '\n'
      << "batch_size = " << cfg.batch_size << '\n'
      << "lr = " << fmt_float(cfg.optimizer.lr.gamma0) << '\n'
      << "lr_decay_steps = " << fmt_float(cfg.optimizer.lr.decay_steps)
      << '\n'
      << "momentum = " << fmt_float(cfg.optimizer.momentum) << '\n'
      << "worker_momentum = " << fmt_float(cfg.worker_momentum) << '\n'
      << "weight_decay = " << fmt_float(cfg.optimizer.weight_decay) << '\n'
      << "nw = " << cfg.nw << '\n'
      << "fw = " << cfg.fw << '\n'
      << "nps = " << cfg.nps << '\n'
      << "fps = " << cfg.fps << '\n'
      << "gradient_gar = " << cfg.gradient_gar << '\n'
      << "model_gar = " << cfg.model_gar << '\n'
      << "asynchronous = " << (cfg.asynchronous ? "true" : "false") << '\n';
  if (!cfg.worker_attack.empty())
    out << "worker_attack = " << cfg.worker_attack << '\n';
  if (!cfg.server_attack.empty())
    out << "server_attack = " << cfg.server_attack << '\n';
  if (!cfg.checkpoint_path.empty())
    out << "checkpoint_path = " << cfg.checkpoint_path << '\n'
        << "checkpoint_every = " << cfg.checkpoint_every << '\n';
  if (!cfg.resume_from.empty())
    out << "resume_from = " << cfg.resume_from << '\n';
  out << "crash_primary_at = " << cfg.crash_primary_at << '\n'
      << "non_iid = " << (cfg.non_iid ? "true" : "false") << '\n'
      << "contraction_steps = " << cfg.contraction_steps << '\n'
      << "iterations = " << cfg.iterations << '\n'
      << "eval_every = " << cfg.eval_every << '\n'
      << "alignment_every = " << cfg.alignment_every << '\n'
      << "seed = " << cfg.seed << '\n';
  if (!cfg.network.empty()) {
    out << "network = " << cfg.network << '\n';
  } else {
    // Advertise the knob in emitted templates; an empty value would not
    // re-parse, so document it as a comment instead.
    out << "# network = wan:latency=100us,jitter=50us"
           "   (net/conditions.h spec; \"\" = ideal;\n"
           "#           churn:crash=3,at_iter=100,recover_after=50 "
           "schedules elastic membership)\n";
  }
  out << "pool_threads = " << cfg.pool_threads << '\n'
      << "transport = " << cfg.transport << '\n'
      << "codec = " << cfg.codec << '\n';
  return out.str();
}

TrainResult run_experiment(const std::string& config_text) {
  DeploymentConfig cfg = parse_config(config_text);
  cfg.validate();
  return train(cfg);
}

}  // namespace garfield::core
