#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace garfield::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: values size " +
                                std::to_string(data_.size()) +
                                " does not match shape " +
                                shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  assert(rank() == 2);
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  assert(rank() == 2);
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape shape) const {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(shape));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& rhs) {
  assert(numel() == rhs.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  assert(numel() == rhs.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float alpha) {
  for (float& v : data_) v *= alpha;
  return *this;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const { return empty() ? 0.0 : sum() / double(numel()); }

float Tensor::max() const {
  assert(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  assert(!empty());
  return std::size_t(std::distance(
      data_.begin(), std::max_element(data_.begin(), data_.end())));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0));
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  // ikj loop order: streams through b row-wise, cache friendly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.data()[i * k + p];
      if (av == 0.0F) continue;
      const float* brow = b.data().data() + p * n;
      float* orow = out.data().data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data().data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data().data() + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += double(arow[p]) * brow[p];
      out.at(i, j) = float(acc);
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0));
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data().data() + p * m;
    const float* brow = b.data().data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;
      float* orow = out.data().data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  assert(a.rank() == 2);
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

}  // namespace garfield::tensor
