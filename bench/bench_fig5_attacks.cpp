// Figure 5 — Garfield's tolerance to two Byzantine attacks (§6.5).
//
// The paper trains CifarNet with 11 workers and 3 servers, 1 Byzantine
// node on each side, for 20 epochs, under (a) random-vector and
// (b) reversed-and-amplified (x -100) attacks. Vanilla and crash-tolerant
// deployments fail to learn; MSMW converges normally.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"

namespace {

using namespace garfield::core;

DeploymentConfig base(const std::string& attack) {
  DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  cfg.nw = 11;
  cfg.fw = 1;
  cfg.worker_attack = attack;
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.iterations = 240;
  cfg.eval_every = 24;
  cfg.seed = 33;
  return cfg;
}

void run_panel(const char* title, const std::string& attack) {
  std::vector<std::pair<std::string, TrainResult>> rs;
  {
    DeploymentConfig cfg = base(attack);
    cfg.deployment = Deployment::kVanilla;
    rs.emplace_back("vanilla", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = base(attack);
    cfg.deployment = Deployment::kCrashTolerant;
    cfg.nps = 3;
    rs.emplace_back("crash_tolerant", train(garfield::bench::smoke(cfg)));
  }
  {
    DeploymentConfig cfg = base(attack);
    cfg.deployment = Deployment::kMsmw;
    cfg.nps = 4;
    cfg.fps = 1;
    cfg.server_attack = attack;  // Byzantine server too, as in the paper
    cfg.gradient_gar = "multi_krum";
    cfg.model_gar = "median";
    rs.emplace_back("msmw", train(garfield::bench::smoke(cfg)));
  }
  std::printf("\n%s\n%-10s %-16s %-16s %-16s\n", title, "iteration",
              "vanilla", "crash_tolerant", "msmw");
  const auto& ref = rs.back().second.curve;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%-10zu", ref[i].iteration);
    for (const auto& [_, r] : rs) {
      std::printf("%-16.3f", i < r.curve.size() ? r.curve[i].accuracy : 0.0);
    }
    std::printf("\n");
  }
}

/// Extension of the paper's two fixed attacks: sweep the attack *intensity*
/// through spec strings (z for little-is-enough, epsilon for
/// fall-of-empires) against several GARs on the SSMW deployment, printing
/// final accuracy per (GAR, attack spec) cell. The paper's Fig 5 fixes both
/// attacks at one intensity; the interesting robustness story is the
/// transition as the attack turns the intensity knob.
void intensity_sweep() {
  const std::vector<std::string> gars = {"average", "multi_krum",
                                         "centered_clip"};
  std::vector<std::string> specs;
  for (const char* z : {"0.5", "1.5", "3"}) {
    specs.push_back(std::string("little_is_enough:z=") + z);
  }
  for (const char* eps : {"0.5", "1.1", "2"}) {
    specs.push_back(std::string("fall_of_empires:epsilon=") + eps);
  }

  std::printf("\nFig 5c (extension) — final accuracy vs attack intensity "
              "(SSMW, nw=11, fw=3)\n%-32s", "attack spec");
  for (const std::string& gar : gars) std::printf("%-16s", gar.c_str());
  std::printf("\n");
  for (const std::string& spec : specs) {
    std::printf("%-32s", spec.c_str());
    for (const std::string& gar : gars) {
      DeploymentConfig cfg = base(spec);
      cfg.deployment = Deployment::kSsmw;
      cfg.fw = 3;
      cfg.gradient_gar = gar;
      cfg.iterations = 120;
      cfg.eval_every = 0;  // final accuracy only
      const TrainResult r = train(garfield::bench::smoke(cfg));
      std::printf("%-16.3f", r.final_accuracy);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  run_panel("Fig 5a — random-vector attack (1 Byzantine worker + 1 server)",
            "random");
  run_panel("Fig 5b — reversed-vector attack (x -100)", "reversed");
  intensity_sweep();
  std::printf("\nPaper shape: vanilla and crash-tolerant fail to learn under "
              "both attacks; MSMW converges to normal accuracy. Extension "
              "shape:\nrobust GARs hold accuracy across the intensity sweep "
              "while the average\nbaseline degrades as z/epsilon grow.\n");
  return 0;
}
