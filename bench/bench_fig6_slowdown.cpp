// Figure 6 — slowdown of fault-tolerant systems normalized to the vanilla
// baseline, across the Table-1 models, on the CPU (a) and GPU (b) testbed
// profiles. Regenerated from the calibrated cost model (see DESIGN.md).
//
// Paper shapes: slowdown grows with model size then saturates; SSMW <
// crash-tolerant < MSMW < decentralized; CPU slowdowns exceed GPU ones.
#include <cstdio>

#include "sim/deployment_sim.h"

namespace {

using namespace garfield::sim;

void panel(const char* title, const DeviceProfile& device,
           const LinkProfile& link, std::size_t nw, std::size_t nps,
           std::size_t batch) {
  std::printf("\n%s\n%-12s %-16s %-10s %-10s %-16s\n", title, "Model",
              "Crash-tolerant", "SSMW", "MSMW", "Decentralized");
  for (const auto& m : table1_models()) {
    SimSetup s;
    s.d = m.parameters;
    s.batch_size = batch;
    s.nw = nw;
    s.fw = 3;
    s.nps = nps;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = device;
    s.link = link;

    s.deployment = SimDeployment::kCrashTolerant;
    const double crash = slowdown_vs_vanilla(s);
    s.deployment = SimDeployment::kSsmw;
    const double ssmw = slowdown_vs_vanilla(s);
    s.deployment = SimDeployment::kMsmw;
    const double msmw = slowdown_vs_vanilla(s);
    s.deployment = SimDeployment::kDecentralized;
    const double dec = slowdown_vs_vanilla(s);
    std::printf("%-12s %-16.2f %-10.2f %-10.2f %-16.2f\n", m.name.c_str(),
                crash, ssmw, msmw, dec);
  }
}

}  // namespace

int main() {
  panel("Fig 6a — slowdown vs vanilla, CPU cluster (nw=18, nps=6, b=32)",
        cpu_profile(), cpu_link(), 18, 6, 32);
  panel("Fig 6b — slowdown vs vanilla, GPU cluster (nw=10, nps=3, b=100)",
        gpu_profile(), gpu_link(), 10, 3, 100);
  std::printf("\nPaper shapes: SSMW < crash-tolerant < MSMW < decentralized; "
              "slowdown\ngrows with d then saturates; CPU slowdowns > GPU "
              "slowdowns.\n");
  return 0;
}
