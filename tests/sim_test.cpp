// Tests for garfield::sim — model specs (Table 1), the GAR cost model
// (Fig 3 shapes) and the deployment simulator (Fig 6-10 shapes). These
// tests pin down the *qualitative* claims of the paper's evaluation; the
// benches print the quantitative sweeps.
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace gs = garfield::sim;

// ---------------------------------------------------------------- Table 1

TEST(ModelSpec, Table1RowsPresent) {
  const auto& models = gs::table1_models();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_EQ(models.front().name, "MNIST_CNN");
  EXPECT_EQ(models.front().parameters, 79510u);
  EXPECT_EQ(models.back().name, "VGG");
  EXPECT_EQ(models.back().parameters, 128807306u);
}

TEST(ModelSpec, SizesConsistentWithFloat32) {
  for (const auto& m : gs::table1_models()) {
    // Table 1 reports MB; allow rounding slack.
    EXPECT_NEAR(m.size_mb, m.size_bytes() / 1e6, m.size_mb * 0.12) << m.name;
  }
}

TEST(ModelSpec, LookupAndUnknown) {
  EXPECT_EQ(gs::model_spec("ResNet-50").parameters, 23539850u);
  EXPECT_EQ(gs::model_spec("ResNet-152").parameters, 60192808u);
  EXPECT_THROW((void)gs::model_spec("GPT-7"), std::invalid_argument);
}

// ------------------------------------------------------------- cost model

TEST(CostModel, BinomialBasics) {
  EXPECT_DOUBLE_EQ(gs::binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(gs::binomial(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(gs::binomial(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(gs::binomial(20, 10), 184756.0);
}

TEST(CostModel, GarTimeLinearInDimension) {
  const gs::DeviceProfile gpu = gs::gpu_profile();
  for (const char* gar : {"average", "median", "multi_krum",
                          "bulyan", "mda"}) {
    const double t1 = gs::gar_time(gar, 17, 3, 1'000'000, gpu);
    const double t10 = gs::gar_time(gar, 17, 3, 10'000'000, gpu);
    EXPECT_GT(t10, 5.0 * t1) << gar;   // ~linear growth in d
    EXPECT_LT(t10, 15.0 * t1) << gar;
  }
}

TEST(CostModel, KrumQuadraticMedianLinearInN) {
  const gs::DeviceProfile gpu = gs::gpu_profile();
  const std::size_t d = 10'000'000;
  const double krum_7 = gs::gar_time("multi_krum", 7, 1, d, gpu);
  const double krum_21 = gs::gar_time("multi_krum", 21, 4, d, gpu);
  EXPECT_GT(krum_21 / krum_7, 6.0);  // ~(21/7)^2 = 9
  const double med_7 = gs::gar_time("median", 7, 1, d, gpu);
  const double med_21 = gs::gar_time("median", 21, 4, d, gpu);
  EXPECT_LT(med_21 / med_7, 4.0);    // ~3
}

TEST(CostModel, Fig3OrderingAtPaperPoint) {
  // At n = 17, d = 1e7 on GPU the paper's Fig 3 ordering is
  // Bulyan > MDA ~ Multi-Krum > Median > Average.
  const gs::DeviceProfile gpu = gs::gpu_profile();
  const std::size_t n = 17, f = 3, d = 10'000'000;
  const double avg = gs::gar_time("average", n, 0, d, gpu);
  const double med = gs::gar_time("median", n, f, d, gpu);
  const double krum = gs::gar_time("multi_krum", n, f, d, gpu);
  const double bul = gs::gar_time("bulyan", n, f, d, gpu);
  EXPECT_LT(avg, med);
  EXPECT_LT(med, krum);
  EXPECT_LT(krum, bul);
}

TEST(CostModel, MdaSubsetTermExplodesWithF) {
  const gs::DeviceProfile cpu = gs::cpu_profile();
  const double f1 = gs::gar_time("mda", 25, 1, 1000, cpu);
  const double f12 = gs::gar_time("mda", 25, 12, 1000, cpu);
  EXPECT_GT(f12, 100.0 * f1);  // exponential when f = Theta(n)
}

TEST(CostModel, GpuFasterThanCpu) {
  for (const char* gar : {"average", "median", "multi_krum"}) {
    EXPECT_LT(gs::gar_time(gar, 17, 3, 10'000'000, gs::gpu_profile()),
              gs::gar_time(gar, 17, 3, 10'000'000, gs::cpu_profile()));
  }
}

TEST(CostModel, UnknownGarThrows) {
  EXPECT_THROW((void)gs::gar_time("nope", 5, 1, 10, gs::cpu_profile()),
               std::invalid_argument);
}

// ------------------------------------------------------ deployment model

namespace {

gs::SimSetup paper_cpu_setup(gs::SimDeployment dep) {
  gs::SimSetup s;
  s.deployment = dep;
  s.d = gs::model_spec("ResNet-50").parameters;
  s.batch_size = 32;
  s.nw = 18;
  s.fw = 3;
  s.nps = 6;
  s.fps = 1;
  s.gradient_gar = "multi_krum";
  s.model_gar = "median";
  s.device = gs::cpu_profile();
  return s;
}

}  // namespace

TEST(DeploymentSim, BreakdownComponentsPositive) {
  for (gs::SimDeployment dep :
       {gs::SimDeployment::kVanilla, gs::SimDeployment::kCrashTolerant,
        gs::SimDeployment::kSsmw, gs::SimDeployment::kMsmw,
        gs::SimDeployment::kDecentralized}) {
    const auto b = gs::simulate_iteration(paper_cpu_setup(dep));
    EXPECT_GT(b.computation, 0.0) << gs::to_string(dep);
    EXPECT_GT(b.communication, 0.0) << gs::to_string(dep);
    EXPECT_GE(b.aggregation, 0.0) << gs::to_string(dep);
    EXPECT_NEAR(b.total(),
                b.computation + b.communication + b.aggregation, 1e-12);
  }
}

TEST(DeploymentSim, CommunicationDominatesOverhead) {
  // §6.6: "communication accounts for more than 75% of the overhead while
  // robust aggregation contributes to only 11%".
  const auto vanilla = gs::simulate_iteration([] {
    auto s = paper_cpu_setup(gs::SimDeployment::kVanilla);
    s.native_runtime = true;
    return s;
  }());
  const auto msmw = gs::simulate_iteration(paper_cpu_setup(gs::SimDeployment::kMsmw));
  const double overhead = msmw.total() - vanilla.total();
  const double comm_overhead = msmw.communication - vanilla.communication;
  const double agg_overhead = msmw.aggregation - vanilla.aggregation;
  EXPECT_GT(comm_overhead / overhead, 0.70);
  EXPECT_LT(agg_overhead / overhead, 0.15);
}

TEST(DeploymentSim, ServersCostMoreThanWorkers) {
  // Headline finding: tolerating Byzantine servers (MSMW) costs more than
  // tolerating Byzantine workers (SSMW), which costs less than crash
  // tolerance; decentralized is the most expensive.
  const double ssmw =
      gs::slowdown_vs_vanilla(paper_cpu_setup(gs::SimDeployment::kSsmw));
  const double crash = gs::slowdown_vs_vanilla(
      paper_cpu_setup(gs::SimDeployment::kCrashTolerant));
  const double msmw =
      gs::slowdown_vs_vanilla(paper_cpu_setup(gs::SimDeployment::kMsmw));
  const double dec = gs::slowdown_vs_vanilla(
      paper_cpu_setup(gs::SimDeployment::kDecentralized));
  EXPECT_GT(ssmw, 1.0);
  EXPECT_LT(ssmw, crash);
  EXPECT_LT(crash, msmw);
  EXPECT_LT(msmw, dec);
}

TEST(DeploymentSim, GpuAboutAnOrderOfMagnitudeFaster) {
  auto cpu = paper_cpu_setup(gs::SimDeployment::kMsmw);
  auto gpu = cpu;
  gpu.device = gs::gpu_profile();
  gpu.link = gs::gpu_link();
  const double speedup =
      gs::updates_per_sec(gpu) / gs::updates_per_sec(cpu);
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 40.0);
  // With the paper's GPU cluster shape (10 workers, 3 servers) and the
  // pipelined PyTorch backend, the gap reaches the reported "one order of
  // magnitude".
  gpu.pipelined = true;
  gpu.nw = 10;
  gpu.nps = 3;
  gpu.batch_size = 100;
  EXPECT_GT(gs::updates_per_sec(gpu) / gs::updates_per_sec(cpu), 8.0);
}

TEST(DeploymentSim, SlowdownGrowsThenSaturatesWithModelSize) {
  // §6.6: overhead grows with d only up to a point, then stays roughly
  // constant because everything is O(d).
  auto setup = paper_cpu_setup(gs::SimDeployment::kMsmw);
  setup.d = gs::model_spec("MNIST_CNN").parameters;
  const double small = gs::slowdown_vs_vanilla(setup);
  setup.d = gs::model_spec("ResNet-50").parameters;
  const double mid = gs::slowdown_vs_vanilla(setup);
  setup.d = gs::model_spec("VGG").parameters;
  const double big = gs::slowdown_vs_vanilla(setup);
  EXPECT_GT(mid, small * 0.9);
  EXPECT_NEAR(big / mid, 1.0, 0.35);  // saturation
}

TEST(DeploymentSim, ThroughputScalesWithWorkers) {
  // Fig 8: batches/sec grows with nw for parameter-server systems.
  auto setup = paper_cpu_setup(gs::SimDeployment::kSsmw);
  setup.d = gs::model_spec("CifarNet").parameters;
  setup.nw = 5;
  const double small = gs::batches_per_sec(setup);
  setup.nw = 20;
  setup.fw = 3;
  const double large = gs::batches_per_sec(setup);
  EXPECT_GT(large, 1.5 * small);
}

TEST(DeploymentSim, DecentralizedDoesNotScale) {
  // Fig 8/9: decentralized batches/sec flattens or degrades with n, and its
  // communication time grows super-linearly.
  auto setup = paper_cpu_setup(gs::SimDeployment::kDecentralized);
  setup.d = 10'000'000;  // transfer-bound regime, where the claim bites
  setup.fw = 0;
  setup.gradient_gar = "median";
  setup.nw = 2;
  const double comm2 = gs::communication_time(setup);
  setup.nw = 6;
  const double comm6 = gs::communication_time(setup);
  EXPECT_GT(comm6 / comm2, 4.0);  // super-linear (3x nodes -> >4x time)

  auto vanilla = setup;
  vanilla.deployment = gs::SimDeployment::kVanilla;
  vanilla.native_runtime = true;
  vanilla.nw = 2;
  const double v2 = gs::communication_time(vanilla);
  vanilla.nw = 6;
  const double v6 = gs::communication_time(vanilla);
  EXPECT_LT(v6 / v2, 4.0);  // ~linear for the parameter server
}

TEST(DeploymentSim, ThroughputFlatInFw) {
  // Fig 10a: with nw fixed, declaring more Byzantine workers barely moves
  // throughput (same links, same batch).
  auto setup = paper_cpu_setup(gs::SimDeployment::kMsmw);
  setup.fw = 0;
  const double t0 = gs::updates_per_sec(setup);
  setup.fw = 3;
  const double t3 = gs::updates_per_sec(setup);
  EXPECT_NEAR(t3 / t0, 1.0, 0.15);
}

TEST(DeploymentSim, ThroughputDropsWithFps) {
  // Fig 10b: more Byzantine servers force more replicas (nps = 3fps+1),
  // adding links and dropping throughput, but by less than ~50%.
  auto setup = paper_cpu_setup(gs::SimDeployment::kMsmw);
  setup.fps = 0;
  setup.nps = 1;
  const double t0 = gs::updates_per_sec(setup);
  setup.fps = 1;
  setup.nps = 4;
  const double t1 = gs::updates_per_sec(setup);
  setup.fps = 3;
  setup.nps = 10;
  const double t3 = gs::updates_per_sec(setup);
  EXPECT_LT(t1, t0);
  EXPECT_LT(t3, t1);
  EXPECT_GT(t3 / t0, 0.4);  // drop bounded (paper: < 50%)
}

TEST(DeploymentSim, PipeliningHelps) {
  // §4.2: the PyTorch backend overlaps communication with aggregation.
  auto setup = paper_cpu_setup(gs::SimDeployment::kMsmw);
  setup.device = gs::gpu_profile();
  const double plain = gs::updates_per_sec(setup);
  setup.pipelined = true;
  const double pipelined = gs::updates_per_sec(setup);
  EXPECT_GT(pipelined, plain);
}

TEST(DeploymentSim, ContractionRoundsCostCommunication) {
  auto setup = paper_cpu_setup(gs::SimDeployment::kDecentralized);
  setup.contraction_steps = 0;
  const double base = gs::communication_time(setup);
  setup.contraction_steps = 3;
  const double contracted = gs::communication_time(setup);
  EXPECT_GT(contracted, 1.5 * base);
}
