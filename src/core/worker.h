// Worker and ByzantineWorker (§3.2 "Main objects").
//
// The worker is passive: it owns a data shard and a private model replica,
// and answers get_gradient pulls from servers. The request carries the
// requesting server's current parameter vector (the pull-based equivalent
// of the server broadcasting its parameters), the reply is the gradient of
// the loss on the worker's next mini-batch at those parameters.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "attacks/attack.h"
#include "data/dataset.h"
#include "net/cluster.h"
#include "nn/model.h"

namespace garfield::core {

/// RPC method served by workers.
inline constexpr const char* kGetGradient = "get_gradient";

class Worker {
 public:
  /// momentum > 0 enables *worker-side* momentum (distributed momentum,
  /// [23] in the paper): the worker replies with its exponentially-averaged
  /// gradient v = m*v + g instead of the raw estimate. This reduces the
  /// variance the GAR sees, which §8 points at as the technique restoring
  /// GAR resilience guarantees when the variance condition is violated.
  Worker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
         data::Dataset shard, std::size_t batch_size, tensor::Rng rng,
         float momentum = 0.0F);
  virtual ~Worker() = default;

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  /// Mean training loss of the gradients served so far (diagnostics).
  [[nodiscard]] double mean_loss() const;
  [[nodiscard]] std::uint64_t gradients_served() const;

 protected:
  /// Compute the honest gradient for a request (thread-safe).
  [[nodiscard]] nn::GradientResult honest_gradient(const net::Request& req);

  /// k extra raw gradient estimates at the requested parameters, drawn from
  /// this node's own shard (no momentum, no loss accounting) — the local
  /// cohort estimate an omniscient-style attacker builds when it cannot see
  /// other nodes' payloads. Thread-safe; advances the batch sampler.
  [[nodiscard]] std::vector<net::Payload> local_gradient_cloud(
      const net::Request& req, std::size_t k);

  /// Handler body; ByzantineWorker overrides to corrupt the reply.
  [[nodiscard]] virtual std::optional<net::Payload> serve_gradient(
      const net::Request& req);

  tensor::Rng rng_;

 private:
  net::NodeId id_;
  nn::ModelPtr model_;
  data::Dataset shard_;
  data::BatchSampler sampler_;
  float momentum_;
  tensor::FlatVector velocity_;  // worker-side momentum state
  mutable std::mutex mutex_;
  double loss_sum_ = 0.0;
  std::uint64_t served_ = 0;
};

/// A worker under adversarial control: computes the honest gradient, then
/// rewrites it with the configured attack before replying. Each craft call
/// receives an AttackContext carrying the request's training iteration, the
/// attacker's node id and the declared cohort shape; when the attack is
/// omniscient, the context additionally carries a *local cohort estimate* —
/// a handful of extra raw gradients sampled from this node's own shard at
/// the requested parameters, the standard stand-in for full omniscience
/// when the live cluster gives the adversary no channel to other nodes'
/// payloads (Baruch et al. estimate mean/stddev exactly this way).
class ByzantineWorker final : public Worker {
 public:
  ByzantineWorker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
                  data::Dataset shard, std::size_t batch_size,
                  tensor::Rng rng, attacks::AttackPtr attack,
                  float momentum = 0.0F, bool omniscient = false,
                  std::size_t declared_n = 0, std::size_t declared_f = 0);

 protected:
  std::optional<net::Payload> serve_gradient(const net::Request& req) override;

 private:
  attacks::AttackPtr attack_;
  std::mutex attack_mutex_;
  bool omniscient_;
  std::size_t declared_n_;
  std::size_t declared_f_;
};

}  // namespace garfield::core
