// Decentralized collaborative learning (the paper's §5.3 / Listing 3).
//
// Nine peers, no parameter server, each holding a private non-iid shard
// (every peer sees only ~1-2 classes). Compares training with and without
// the multi-round contraction step that forces correct models together.
//
// Usage: ./examples/decentralized_collaboration [contraction_steps]
#include <cstdio>
#include <cstdlib>

#include "core/trainer.h"

int main(int argc, char** argv) {
  using namespace garfield::core;

  const std::size_t contraction =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;

  DeploymentConfig cfg;
  cfg.deployment = Deployment::kDecentralized;
  cfg.model = "tiny_mlp";
  cfg.nw = 9;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.non_iid = true;  // each peer's shard is class-concentrated
  cfg.batch_size = 16;
  cfg.train_size = 2304;
  cfg.test_size = 512;
  cfg.optimizer.lr.gamma0 = 0.08F;
  cfg.iterations = 200;
  cfg.eval_every = 25;
  cfg.seed = 11;

  std::printf("decentralized, non-iid shards, %zu peers (%zu Byzantine)\n\n",
              cfg.nw, cfg.fw);

  DeploymentConfig no_contract = cfg;
  no_contract.contraction_steps = 0;  // same non-iid shards, no contract()
  const TrainResult baseline = train(no_contract);

  cfg.contraction_steps = contraction;
  const TrainResult contracted = train(cfg);

  std::printf("%-10s %-22s %-22s\n", "iteration", "no-contraction",
              "with-contraction");
  for (std::size_t i = 0; i < contracted.curve.size(); ++i) {
    std::printf("%-10zu %-22.3f %-22.3f\n", contracted.curve[i].iteration,
                i < baseline.curve.size() ? baseline.curve[i].accuracy : 0.0,
                contracted.curve[i].accuracy);
  }
  std::printf("\nfinal: no-contraction=%.3f  with-contraction(%zu rounds)=%.3f\n",
              baseline.final_accuracy, contraction,
              contracted.final_accuracy);
  std::printf("messages: no-contraction=%llu  with-contraction=%llu "
              "(contract() costs extra gossip rounds)\n",
              static_cast<unsigned long long>(
                  baseline.net_stats.requests_sent),
              static_cast<unsigned long long>(
                  contracted.net_stats.requests_sent));
  return 0;
}
