#include "core/config.h"

#include <stdexcept>

#include "attacks/registry.h"
#include "gars/gar.h"
#include "net/codec.h"
#include "net/conditions.h"

namespace garfield::core {

std::string to_string(Deployment d) {
  switch (d) {
    case Deployment::kVanilla: return "vanilla";
    case Deployment::kCrashTolerant: return "crash_tolerant";
    case Deployment::kSsmw: return "ssmw";
    case Deployment::kMsmw: return "msmw";
    case Deployment::kDecentralized: return "decentralized";
  }
  return "unknown";
}

Deployment deployment_from_string(const std::string& s) {
  if (s == "vanilla") return Deployment::kVanilla;
  if (s == "crash_tolerant") return Deployment::kCrashTolerant;
  if (s == "ssmw") return Deployment::kSsmw;
  if (s == "msmw") return Deployment::kMsmw;
  if (s == "decentralized") return Deployment::kDecentralized;
  throw std::invalid_argument("unknown deployment '" + s + "'");
}

std::size_t DeploymentConfig::total_nodes() const {
  // Decentralized deployments have nw peers and no separate servers.
  if (deployment == Deployment::kDecentralized) return nw;
  return nps + nw;
}

void DeploymentConfig::validate() const {
  if (nw == 0) throw std::invalid_argument("config: nw must be >= 1");
  if (fw >= nw) throw std::invalid_argument("config: fw must be < nw");
  if (deployment != Deployment::kDecentralized) {
    if (nps == 0) throw std::invalid_argument("config: nps must be >= 1");
    if (fps >= nps) throw std::invalid_argument("config: fps must be < nps");
  }
  if (batch_size == 0) throw std::invalid_argument("config: batch_size >= 1");
  if (transport != "inproc" && transport != "tcp") {
    throw std::invalid_argument("config: unknown transport '" + transport +
                                "' (expected inproc or tcp)");
  }
  // Codec spec: unknown names, out-of-range k and stray options must fail
  // here, never run silently uncompressed (same contract as the network
  // spec below).
  (void)net::CodecSpec::parse(codec);
  if (transport == "tcp") {
    // These knobs read or mutate *other* replicas' in-memory state from the
    // reporting rank — impossible once every node is its own process. The
    // alignment probe walks every correct server's parameter vector, and
    // crash_primary_at imperatively crashes the primary in a cluster the
    // backups don't share (scheduled `churn:` crashes are fine: every
    // process derives the same schedule from the config).
    if (alignment_every != 0) {
      throw std::invalid_argument(
          "config: alignment_every requires transport=inproc (the probe "
          "reads every replica's parameters in one address space)");
    }
    if (crash_primary_at != 0) {
      throw std::invalid_argument(
          "config: crash_primary_at requires transport=inproc — use a "
          "churn: schedule for cross-process crash injection");
    }
  }
  // GAR existence (spec string parses, options are known and well-typed)
  // plus resilience inequalities at the effective input counts. Probing the
  // registry with a throwaway construction surfaces a bad spec at config
  // time instead of mid-training.
  switch (deployment) {
    case Deployment::kVanilla:
    case Deployment::kCrashTolerant:
      break;  // averaging only
    case Deployment::kSsmw: {
      const std::size_t q = asynchronous ? nw - fw : nw;
      if (q < gars::gar_min_n(gradient_gar, fw)) {
        throw std::invalid_argument("config: " + gradient_gar +
                                    " cannot tolerate fw with this nw");
      }
      (void)gars::make_gar(gradient_gar, q, fw);
      break;
    }
    case Deployment::kMsmw: {
      const std::size_t qw = nw - fw;
      if (qw < gars::gar_min_n(gradient_gar, fw)) {
        throw std::invalid_argument("config: gradient GAR precondition "
                                    "violated (qw too small)");
      }
      (void)gars::make_gar(gradient_gar, qw, fw);
      // Model aggregation sees (peers pulled + own state) inputs.
      const std::size_t qps = asynchronous ? nps - fps : nps;
      if (qps < gars::gar_min_n(model_gar, fps)) {
        throw std::invalid_argument("config: model GAR precondition violated "
                                    "(qps too small)");
      }
      (void)gars::make_gar(model_gar, qps, fps);
      break;
    }
    case Deployment::kDecentralized: {
      const std::size_t q = nw - fw;
      if (q < gars::gar_min_n(gradient_gar, fw) ||
          q < gars::gar_min_n(model_gar, fw)) {
        throw std::invalid_argument(
            "config: decentralized GAR precondition violated");
      }
      (void)gars::make_gar(gradient_gar, q, fw);
      (void)gars::make_gar(model_gar, q, fw);
      break;
    }
  }
  // Adversary plans: grammar, attack existence, option types and plan shape
  // against the declared Byzantine cohorts — a typo'd attack spec must fail
  // here with a pointed message, not as an unknown-name throw when the
  // trainer builds the Byzantine cohort mid-run. Decentralized deployments
  // have no separate server cohort: both plans cover the fw peers (the
  // trainer falls back to the worker plan when server_attack is empty).
  const std::size_t server_cohort_f =
      deployment == Deployment::kDecentralized ? fw : fps;
  (void)attacks::validate_attack_plan(worker_attack, fw, "worker_attack");
  (void)attacks::validate_attack_plan(server_attack, server_cohort_f,
                                      "server_attack");
  // Network conditions: grammar, clause/option existence, duration sanity
  // (negative or unit-less garbage is rejected by the parser) and node
  // references against the deployment's actual node count — a scenario
  // naming nodes that don't exist must fail here, not run quietly ideal.
  const net::NetworkConditions conditions =
      net::NetworkConditions::parse(network);
  conditions.validate(total_nodes());
  // A churn schedule that recovers a server replica needs a checkpoint to
  // state-transfer from — without one the replica would rejoin with its
  // stale pre-crash parameters and quietly drag the cohort backwards.
  // Decentralized peers are exempt: they re-sync through the step-tagged
  // model exchange instead.
  if (deployment != Deployment::kDecentralized) {
    for (const net::NetworkConditions::ChurnEvent& e : conditions.churn()) {
      const bool recovers = e.join || e.recover_after > 0;
      if (!recovers || e.nodes.lo >= nps) continue;
      if (checkpoint_path.empty() || checkpoint_every == 0) {
        throw std::invalid_argument(
            "config: churn schedule recovers server replica " +
            std::to_string(e.nodes.lo) +
            " but checkpointing is off — set checkpoint_path and "
            "checkpoint_every so the recovering replica has state to "
            "transfer");
      }
    }
  }
}

}  // namespace garfield::core
