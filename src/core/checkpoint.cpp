#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "net/wire.h"

namespace garfield::core {

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> blob =
      net::encode(checkpoint.iteration, checkpoint.parameters);
  if (!checkpoint.velocity.empty()) {
    const std::vector<std::uint8_t> tail =
        net::encode(checkpoint.iteration, checkpoint.velocity);
    blob.insert(blob.end(), tail.begin(), tail.end());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic on POSIX
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size), 0);
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed for " + path);
  const std::span<const std::uint8_t> bytes(blob);
  const std::size_t head = net::encoded_size(bytes);
  net::WireMessage msg = net::decode(bytes.first(head));
  Checkpoint checkpoint{msg.iteration, std::move(msg.payload), {}};
  if (head < bytes.size()) {
    net::WireMessage tail = net::decode(bytes.subspan(head));
    if (tail.iteration != checkpoint.iteration) {
      throw net::WireError(
          "checkpoint: velocity iteration tag mismatch (parameters at " +
          std::to_string(checkpoint.iteration) + ", velocity at " +
          std::to_string(tail.iteration) + ")");
    }
    // A mismatched velocity would be silently discarded by the optimizer's
    // first step — fail loudly here instead, like every other corruption.
    if (tail.payload.size() != checkpoint.parameters.size()) {
      throw net::WireError(
          "checkpoint: velocity dimension mismatch (" +
          std::to_string(tail.payload.size()) + " vs " +
          std::to_string(checkpoint.parameters.size()) + " parameters)");
    }
    checkpoint.velocity = std::move(tail.payload);
  }
  return checkpoint;
}

}  // namespace garfield::core
