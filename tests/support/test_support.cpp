#include "support/test_support.h"

#include <cmath>
#include <set>
#include <stdexcept>

#include "attacks/attack.h"
#include "attacks/registry.h"
#include "gars/gar.h"
#include "gars/registry.h"

namespace garfield::testsupport {

std::vector<FlatVector> honest_cloud(const CloudSpec& spec, Rng& rng) {
  std::vector<FlatVector> out(spec.n, FlatVector(spec.d));
  for (auto& v : out) {
    for (float& x : v) x = spec.center + rng.normal(0.0F, spec.spread);
  }
  return out;
}

FlatVector mean_of(std::span<const FlatVector> inputs) {
  return tensor::mean(inputs);
}

double rms_diff(const FlatVector& a, const FlatVector& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("rms_diff: size mismatch or empty");
  }
  return std::sqrt(tensor::squared_distance(a, b) / double(a.size()));
}

double max_abs_diff(const FlatVector& a, const FlatVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(double(a[i]) - double(b[i])));
  }
  return worst;
}

namespace {

/// The live sender's bounded retry budget (net/cluster.cpp
/// kMaxSendAttempts): a faulted exchange is retried up to this many
/// attempts before the caller books a give-up and treats the peer as
/// silent. The ingress model replays the same per-attempt verdicts.
constexpr std::uint32_t kMaxSendAttempts = 8;

}  // namespace

ScenarioResult run_scenario(const Scenario& scenario) {
  if (scenario.n <= scenario.f) {
    throw std::invalid_argument("run_scenario: need n > f");
  }
  Rng root(scenario.seed);
  Rng data_rng = root.fork(1);
  Rng attack_rng = root.fork(2);

  // Network conditions silence input nodes wholesale: a straggling or
  // cut-off node's payload arrives after the quorum closes, exactly as a
  // silent node on the live transport. Honest nodes occupy ids
  // [0, n - f), Byzantine nodes [n - f, n); the aggregator sits with
  // partition group `a`, so group-`b` members miss the window.
  std::string spec = scenario.network;
  if (!scenario.fault.empty()) {
    if (!spec.empty()) spec += ';';
    spec += scenario.fault;
  }
  const net::NetworkConditions conditions =
      net::NetworkConditions::parse(spec);
  // The aggregator sits one past the input span; the fault clause's edge
  // restriction keys on the *input* node, so the aggregator's synthetic
  // id never changes which edges a spec targets.
  const std::size_t aggregator = scenario.n;
  const auto reaches_quorum = [&](std::size_t node) {
    if (conditions.is_straggling(node, scenario.iteration)) return false;
    const auto* partition = conditions.active_partition(scenario.iteration);
    if (partition != nullptr && partition->b.contains(node)) {
      return false;
    }
    if (conditions.has_fault()) {
      // Bounded-retry mirror: the sender re-sends every lost attempt, so
      // the payload misses the quorum only when the whole attempt budget
      // draws losing verdicts — exactly the live cluster's give-up.
      bool all_lost = true;
      for (std::uint32_t attempt = 0; attempt < kMaxSendAttempts;
           ++attempt) {
        if (!conditions
                 .fault_verdict(aggregator, node, "get_gradient",
                                scenario.iteration, scenario.seed, attempt)
                 .lost()) {
          all_lost = false;
          break;
        }
      }
      if (all_lost) return false;
    }
    return true;
  };

  const CloudSpec honest_spec{scenario.n - scenario.f, scenario.d,
                              scenario.center, scenario.spread};
  const std::vector<FlatVector> honest = honest_cloud(honest_spec, data_rng);

  // Each Byzantine node starts from a would-have-been-honest payload and
  // rewrites it with the attack its plan rank assigns; omniscient attacks
  // additionally see the honest cloud through their AttackContext.
  const std::vector<attacks::AttackSpec> specs =
      attacks::parse_attack_plan(scenario.attack).expand(scenario.f);
  std::vector<FlatVector> received;
  received.reserve(scenario.n);
  for (std::size_t h = 0; h < honest.size(); ++h) {
    if (reaches_quorum(h)) received.push_back(honest[h]);
  }
  for (std::size_t b = 0; b < scenario.f; ++b) {
    const attacks::AttackPtr attack = attacks::make_attack(specs[b]);
    FlatVector would_send(scenario.d);
    for (float& x : would_send) {
      x = scenario.center + attack_rng.normal(0.0F, scenario.spread);
    }
    attacks::AttackContext ctx(attack_rng);
    ctx.iteration = scenario.iteration;
    ctx.attacker_id = scenario.n - scenario.f + b;
    ctx.n = scenario.n;
    ctx.f = scenario.f;
    ctx.honest = honest;
    ctx.gar = scenario.gar;  // adaptive attacks probe the cell's own GAR
    std::optional<FlatVector> payload = attack->craft(would_send, ctx);
    // Server ingress: silent nodes send nothing, non-finite payloads are
    // rejected before they can reach a GAR.
    if (payload && tensor::all_finite(*payload) &&
        reaches_quorum(ctx.attacker_id)) {
      received.push_back(std::move(*payload));
    }
  }

  const gars::GarPtr gar =
      gars::make_gar(scenario.gar, received.size(), scenario.f);
  ScenarioResult result;
  result.aggregate = gar->aggregate(received);
  result.honest_mean = mean_of(honest);
  result.rms_deviation = rms_diff(result.aggregate, result.honest_mean);
  result.received = received.size();
  return result;
}

double robustness_tolerance(const Scenario& scenario) {
  // CGE filters on norms alone, so payloads that shrink the norm (zero),
  // preserve it exactly (sign_flip) or mimic it (little_is_enough,
  // fall_of_empires near 1.1x, adaptive_z which tunes itself into the
  // honest variance, alternating whose defaults are sign_flip/zero) can
  // enter the averaged set and drag the aggregate toward them — bounded,
  // not tight. extended_gars_test pins the sign_flip blind spot explicitly.
  // Both fields are spec/plan strings now; weakness is per attack *name*,
  // so match any entry of the plan.
  const bool cge = gars::parse_gar_spec(scenario.gar).name == "cge";
  if (cge) {
    static const std::set<std::string> norm_camouflage = {
        "zero",          "sign_flip",  "fall_of_empires",
        "little_is_enough", "adaptive_z", "alternating"};
    const attacks::AttackPlan plan =
        attacks::parse_attack_plan(scenario.attack);
    for (const attacks::AttackPlan::Entry& entry : plan.entries) {
      if (norm_camouflage.contains(entry.spec.name)) {
        return double(scenario.center);
      }
    }
  }
  // Resilient cells: the aggregate must sit inside the honest cloud, whose
  // per-coordinate scatter is `spread`.
  return 4.0 * double(scenario.spread);
}

std::size_t ScenarioMatrix::for_each(
    const std::function<void(const Scenario&)>& fn) const {
  const std::vector<std::string> gar_list =
      gars.empty() ? gars::gar_names() : gars;
  const std::vector<std::string> attack_list =
      attacks.empty() ? attacks::attack_names() : attacks;

  std::size_t cells = 0;
  std::size_t seeded_cells = 0;  // transport twins share one seed
  for (const std::string& gar : gar_list) {
    // The vanilla mean tolerates no Byzantine input; sweep it at f = 0 so
    // the matrix still covers it as a no-adversary sanity row.
    const std::vector<std::size_t> fs =
        gar == "average" ? std::vector<std::size_t>{0} : byzantine_fs;
    for (std::size_t f : fs) {
      for (std::size_t slack : quorum_slacks) {
        const std::size_t min_n = gars::gar_min_n(gar, f);
        const std::size_t n = std::max<std::size_t>(min_n + f + slack, 3);
        for (const std::string& attack : attack_list) {
          for (const std::string& network : networks) {
            for (const std::string& fault : faults) {
              // Transport twins are the SAME cell on different backends —
              // they share one seed so a parity consumer can compare their
              // results bit for bit. With the default single-transport and
              // single-fault axes this degenerates to the historical
              // seed-per-cell sequence.
              const std::uint64_t cell_seed = seed + seeded_cells;
              ++seeded_cells;
              for (const std::string& transport : transports) {
                Scenario cell;
                cell.gar = gar;
                cell.attack = attack;
                cell.n = n;
                cell.f = f;
                cell.d = d;
                cell.seed = cell_seed;  // decorrelate cells, reproducible
                cell.network = network;
                cell.fault = fault;
                cell.transport = transport;
                fn(cell);
                ++cells;
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace garfield::testsupport
