#include "net/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace garfield::net {

namespace {

/// First redelivery delay for a not-ready handler; doubles per attempt.
/// The floor is deliberately tight: in the replicated deployments peers
/// run in near-lockstep, so the answer is typically published within tens
/// of microseconds of the first delivery — a loose floor would serialize
/// the model-exchange round behind timer waits.
constexpr Duration kRetryBackoffFloor{20};
/// Redelivery backoff ceiling — keeps a long-lagging callee from being
/// polled hot, without adding seconds of artificial latency.
constexpr Duration kRetryBackoffCeiling{2000};

}  // namespace

Cluster::Cluster(const Options& options)
    : nodes_(options.nodes), options_(options) {
  if (nodes_ == 0) throw std::invalid_argument("Cluster: needs >= 1 node");
  // A scenario referencing nodes outside the deployment is a bug in the
  // scenario, not a quietly-ideal network.
  options_.conditions.validate(nodes_);
  states_.reserve(nodes_);
  for (std::size_t i = 0; i < nodes_; ++i)
    states_.push_back(std::make_unique<NodeState>());
  // Pool threads only run handler compute (delays live on the timer
  // wheel), so hardware concurrency is the right default — more threads
  // would just contend for the same cores.
  std::size_t threads = options.pool_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  timer_ = std::make_unique<TimerWheel>(*pool_);
  // Churn schedule bootstrap: joins (and at_iter=0 crashes) are down
  // before anyone drives an iteration. Their one-shot down-edges are
  // marked applied so advance_lifecycle() cannot re-crash them later.
  const auto& churn = options_.conditions.churn();
  churn_state_.resize(churn.size());
  recovery_handlers_.resize(nodes_);
  recovered_at_.resize(nodes_, 0);
  for (std::size_t i = 0; i < churn.size(); ++i) {
    if (!churn[i].join && churn[i].at_iter == 0) {
      churn_state_[i].crashed_applied = true;
    }
  }
  for (std::size_t node = 0; node < nodes_; ++node) {
    if (options_.conditions.churn_down(node, 0)) {
      states_[node]->lifecycle.store(NodeLifecycle::kCrashed);
    }
  }
}

Cluster::~Cluster() {
  // Teardown order matters. First stop the wheel and run its backlog
  // inline: from here on schedule_after() refuses new entries, so a
  // flushed or in-flight not-ready retry resolves its callback (counted as
  // dropped) instead of re-arming a dying timer. The pool is still alive
  // for any zero-delay dispatch a flushed task issues. Then the pool
  // drains and joins — draining tasks that try to re-arm still see the
  // stopped-but-alive wheel. The unique_ptrs are destroyed afterwards with
  // nothing in flight.
  timer_->stop_and_flush();
  pool_.reset();
  timer_.reset();
}

void Cluster::register_handler(NodeId node, const std::string& method,
                               Handler handler) {
  assert(node < nodes_);
  util::MutexLock lock(states_[node]->mutex);
  states_[node]->handlers[method] = std::move(handler);
}

void Cluster::crash_locked(NodeId node) {
  states_[node]->lifecycle.store(NodeLifecycle::kCrashed);
  // A crashed process loses its registered handlers: recovery must
  // re-register them (Server/Worker::rejoin), not just flip the state.
  // Lock order: lifecycle_mutex_ (held by our caller) before the node
  // mutex — dispatch only ever takes the node mutex, so no cycle.
  util::MutexLock node_lock(states_[node]->mutex);
  states_[node]->handlers.clear();
}

void Cluster::crash(NodeId node) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  crash_locked(node);
}

void Cluster::begin_recovery(NodeId node) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  if (states_[node]->lifecycle.load() != NodeLifecycle::kCrashed) {
    throw std::logic_error("Cluster::begin_recovery: node " +
                           std::to_string(node) + " is not CRASHED");
  }
  states_[node]->lifecycle.store(NodeLifecycle::kRecovering);
}

void Cluster::complete_recovery(NodeId node) {
  assert(node < nodes_);
  {
    util::MutexLock lock(lifecycle_mutex_);
    if (states_[node]->lifecycle.load() != NodeLifecycle::kRecovering) {
      throw std::logic_error("Cluster::complete_recovery: node " +
                             std::to_string(node) + " is not RECOVERING");
    }
    states_[node]->lifecycle.store(NodeLifecycle::kRunning);
  }
  lifecycle_cv_.notify_all();
}

NodeLifecycle Cluster::lifecycle(NodeId node) const {
  assert(node < nodes_);
  return states_[node]->lifecycle.load();
}

bool Cluster::is_crashed(NodeId node) const {
  assert(node < nodes_);
  return states_[node]->lifecycle.load() != NodeLifecycle::kRunning;
}

void Cluster::set_recovery_handler(
    NodeId node, std::function<void(std::uint64_t)> handler) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  recovery_handlers_[node] = std::move(handler);
}

void Cluster::advance_lifecycle(std::uint64_t iteration) {
  const auto& churn = options_.conditions.churn();
  if (churn.empty()) return;
  {
    util::MutexLock lock(lifecycle_mutex_);
    lifecycle_horizon_ = std::max(lifecycle_horizon_, iteration);
    // Down-edges first: a horizon jump spanning a whole crash window must
    // kill before it resurrects, or the recovery hook would run against a
    // node that was never torn down.
    for (std::size_t i = 0; i < churn.size(); ++i) {
      const NetworkConditions::ChurnEvent& e = churn[i];
      if (e.join || churn_state_[i].crashed_applied ||
          e.at_iter > lifecycle_horizon_) {
        continue;
      }
      churn_state_[i].crashed_applied = true;
      for (std::size_t node = e.nodes.lo; node <= e.nodes.hi; ++node) {
        crash_locked(node);
      }
    }
    for (std::size_t i = 0; i < churn.size(); ++i) {
      const NetworkConditions::ChurnEvent& e = churn[i];
      if (churn_state_[i].recovered_applied) continue;
      if (!e.join && e.recover_after == 0) continue;  // permanent crash
      const std::uint64_t up =
          e.join ? e.at_iter : e.at_iter + e.recover_after;
      if (up > lifecycle_horizon_) continue;
      churn_state_[i].recovered_applied = true;
      for (std::size_t node = e.nodes.lo; node <= e.nodes.hi; ++node) {
        // Another event may still hold the node down at its up-edge, and a
        // manual crash()/recovery may already have moved it on.
        if (options_.conditions.churn_down(node, up)) continue;
        if (states_[node]->lifecycle.load() != NodeLifecycle::kCrashed) {
          continue;
        }
        states_[node]->lifecycle.store(NodeLifecycle::kRecovering);
        // The hook runs under the lifecycle mutex: transitions stay
        // serialized, and dispatch never takes this mutex so delivery is
        // not blocked while the node state-transfers.
        if (recovery_handlers_[node]) recovery_handlers_[node](up);
        states_[node]->lifecycle.store(NodeLifecycle::kRunning);
        recovered_at_[node] = up;
      }
    }
  }
  lifecycle_cv_.notify_all();
}

std::optional<std::uint64_t> Cluster::wait_until_running(NodeId node,
                                                         Duration timeout) {
  assert(node < nodes_);
  util::MutexLock lock(lifecycle_mutex_);
  const bool up = lifecycle_cv_.wait_for(lifecycle_mutex_, timeout, [&] {
    return states_[node]->lifecycle.load() == NodeLifecycle::kRunning;
  });
  if (!up) return std::nullopt;
  return recovered_at_[node];
}

Duration Cluster::jitter_for(NodeId from, NodeId to,
                             const std::string& method,
                             std::uint64_t iteration) const {
  return options_.conditions.jitter_for(from, to, method, iteration,
                                        options_.seed);
}

Duration Cluster::delay_for(
    NodeId from, NodeId to, const std::string& method,
    std::uint64_t iteration,
    std::optional<std::uint64_t> window_iteration) const {
  return options_.conditions.delay(from, to, method, iteration,
                                   options_.seed, window_iteration);
}

void Cluster::dispatch(Request request, CallbackPtr on_done, Duration delay,
                       Clock::time_point retry_deadline,
                       Duration retry_backoff) {
  auto task = [this, request = std::move(request), on_done, retry_deadline,
               retry_backoff]() mutable {
    NodeState& callee = *states_[request.to];
    // A crashed callee is fail-silent: the caller never hears back. We
    // deliver nullptr so single-call users don't hang; Collector users see
    // it as a missing reply, preserving quorum semantics.
    if (callee.lifecycle.load() != NodeLifecycle::kRunning) {
      (*on_done)(nullptr);
      return;
    }
    Handler handler;
    {
      util::MutexLock lock(callee.mutex);
      auto it = callee.handlers.find(request.method);
      if (it != callee.handlers.end()) handler = it->second;
    }
    if (!handler) {
      (*on_done)(nullptr);
      return;
    }
    HandlerResult result = handler(request);
    if (result.retry) {
      // Not ready yet: redeliver after a backoff instead of blocking a
      // pool thread. Give up past the caller's deadline so an abandoned
      // request cannot poll a dead-ended callee forever — a retry landing
      // exactly AT the deadline is still a legitimate attempt.
      if (retry_gives_up(Clock::now() + retry_backoff, retry_deadline)) {
        (*on_done)(nullptr);
        return;
      }
      dispatch(std::move(request), std::move(on_done), retry_backoff,
               retry_deadline,
               std::min(retry_backoff * 2, kRetryBackoffCeiling));
      return;
    }
    if (result.payload) {
      // Floats first, then the release bump of replies_received_: the
      // snapshot's acquire load of replies_received_ (stats()) then also
      // covers this reply's float accounting.
      floats_transferred_.fetch_add(result.payload->size(),
                                    std::memory_order_relaxed);
      replies_received_.fetch_add(1, std::memory_order_release);
    }
    (*on_done)(std::move(result.payload));
  };
  const bool scheduled =
      delay.count() <= 0 ? pool_->submit(std::move(task))
                         : timer_->schedule_after(delay, std::move(task));
  if (!scheduled) {
    // Shutdown already began: count the drop and resolve the callback so
    // a concurrent collect() sees a response instead of hanging into its
    // deadline.
    dropped_tasks_.fetch_add(1, std::memory_order_relaxed);
    (*on_done)(nullptr);
  }
}

void Cluster::call(NodeId from, NodeId to, const std::string& method,
                   std::uint64_t iteration, PayloadPtr argument,
                   std::function<void(PayloadPtr)> on_done,
                   Duration timeout,
                   std::optional<std::uint64_t> window_iteration) {
  assert(from < nodes_ && to < nodes_);
  const Duration delay =
      delay_for(from, to, method, iteration, window_iteration);
  requests_sent_.fetch_add(1, std::memory_order_relaxed);
  if (argument) {
    floats_transferred_.fetch_add(argument->size(),
                                  std::memory_order_relaxed);
  }
  Request request{from, to, method, iteration, std::move(argument)};
  dispatch(std::move(request),
           std::make_shared<Callback>(std::move(on_done)), delay,
           Clock::now() + timeout, kRetryBackoffFloor);
}

std::vector<Reply> Cluster::collect(
    NodeId from, std::span<const NodeId> peers, const std::string& method,
    std::uint64_t iteration, PayloadPtr argument, std::size_t q,
    Duration timeout, std::optional<std::uint64_t> window_iteration) {
  if (q > peers.size()) {
    throw std::invalid_argument("Cluster::collect: q=" + std::to_string(q) +
                                " > peers=" + std::to_string(peers.size()));
  }
  struct State {
    util::Mutex mutex;
    util::CondVar cv;
    std::vector<Reply> replies GARFIELD_GUARDED_BY(mutex);
    /// Responses seen, including declined/crashed callbacks.
    std::size_t responses GARFIELD_GUARDED_BY(mutex) = 0;
    /// Caller harvested; late replies are wasted.
    bool closed GARFIELD_GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<State>();
  const std::size_t total = peers.size();
  for (NodeId peer : peers) {
    call(
        from, peer, method, iteration, argument,
        [this, state, peer, q, total](PayloadPtr payload) {
          util::MutexLock lock(state->mutex);
          ++state->responses;
          if (payload) {
            if (!state->closed && state->replies.size() < q) {
              // Refcount bump only — the payload stays wherever the callee
              // keeps it.
              state->replies.push_back(Reply{peer, std::move(payload)});
            } else {
              // Crafted, transferred, and already useless: the quorum was
              // met by faster peers (or the caller gave up at its
              // deadline).
              wasted_replies_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          // Wake the collector only when its wait predicate can pass —
          // notifying on every response would context-switch it q times
          // per pull for nothing.
          if (state->replies.size() >= q || state->responses == total) {
            state->cv.notify_all();
          }
        },
        timeout, window_iteration);
  }
  std::vector<Reply> replies;
  {
    util::MutexLock lock(state->mutex);
    const auto deadline = Clock::now() + timeout;
    (void)state->cv.wait_until(
        state->mutex, deadline, [&]() GARFIELD_REQUIRES(state->mutex) {
          return state->replies.size() >= q || state->responses == total;
        });
    state->closed = true;
    // Deadline expired short of quorum (or every responder resolved
    // silent): record it, so churn/straggler scenarios are distinguishable
    // from runs that genuinely met q, instead of just looking slow.
    if (state->replies.size() < q) {
      quorum_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    replies = std::move(state->replies);
  }
  // Fastest-q decides *membership*; normalize the order by origin id so
  // downstream floating-point reductions (e.g. averaging) are
  // bit-reproducible whenever the membership is.
  std::sort(replies.begin(), replies.end(),
            [](const Reply& a, const Reply& b) { return a.from < b.from; });
  return replies;
}

NetStats Cluster::stats() const {
  NetStats s;
  // Single acquire point for the whole snapshot: pairs with the release
  // increment in dispatch(). Every write that happened-before an observed
  // reply bump — its request's requests_sent_/floats_transferred_
  // accounting, the reply's own float count — is therefore visible to the
  // relaxed loads below, so replies_received <= requests_sent holds in
  // every snapshot, even taken mid-flight. Beyond that pairing the
  // counters are independent relaxed monotone counts (nothing is published
  // through them), so no stronger ordering is required; exact cross-field
  // equalities (e.g. floats vs replies) are only asserted at quiescence.
  s.replies_received = replies_received_.load(std::memory_order_acquire);
  s.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  s.floats_transferred = floats_transferred_.load(std::memory_order_relaxed);
  s.wasted_replies = wasted_replies_.load(std::memory_order_relaxed);
  s.quorum_misses = quorum_misses_.load(std::memory_order_relaxed);
  s.dropped_tasks = dropped_tasks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace garfield::net
