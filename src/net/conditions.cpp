#include "net/conditions.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/rng.h"
#include "util/spec.h"

namespace garfield::net {

namespace {

std::uint64_t splitmix(std::uint64_t z) {
  return tensor::splitmix64_mix(z + 0x9e3779b97f4a7c15ULL);
}

/// Overlap of the inclusive range [lo, hi] with the half-open [a, b).
std::size_t overlap(std::size_t lo, std::size_t hi, std::size_t a,
                    std::size_t b) {
  if (b == 0) return 0;
  const std::size_t left = std::max(lo, a);
  const std::size_t right = std::min(hi, b - 1);
  return right >= left ? right - left + 1 : 0;
}

/// Window predicate shared by every windowed clause: active from
/// from_iter for len iterations (len = 0 => open-ended).
bool window_active(std::uint64_t from_iter, std::uint64_t len,
                   std::uint64_t iteration) {
  if (iteration < from_iter) return false;
  return len == 0 || iteration - from_iter < len;
}

/// Last clause in spec order whose window covers `iteration` (the shared
/// multi-window resolution rule), or nullptr.
template <typename Clause>
const Clause* last_active(const std::vector<Clause>& clauses,
                          std::uint64_t iteration) {
  const Clause* found = nullptr;
  for (const Clause& c : clauses) {
    if (window_active(c.from_iter, c.len, iteration)) found = &c;
  }
  return found;
}

NodeRange range_option(const util::SpecOptions& options,
                       const std::string& key, const std::string& clause) {
  const std::string raw = options.get_string(key, "");
  if (raw.empty()) {
    throw std::invalid_argument("network spec: clause '" + clause +
                                "' requires option '" + key + "'");
  }
  return parse_node_range(raw, "network spec: " + clause + ":" + key);
}

double probability_option(const util::SpecOptions& options,
                          const std::string& key) {
  const double p = options.get_double(key, 0.0);
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("network spec: fault " + key +
                                " must be a probability in [0, 1), got " +
                                std::to_string(p));
  }
  return p;
}

/// FNV-1a over the method bytes (std::hash is implementation-defined,
/// which would make "deterministic" verdicts vary across stdlibs).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h = (h ^ std::uint64_t(std::uint8_t(c))) * 0x100000001b3ULL;
  }
  return h;
}

/// One uniform draw in [0, 1) from the (seed, edge, method, iteration,
/// attempt, salt) tuple — the fault plane's entire source of randomness,
/// replayable by construction.
double fault_uniform(std::uint64_t seed, std::size_t from, std::size_t to,
                     std::uint64_t method_hash, std::uint64_t iteration,
                     std::uint32_t attempt, std::uint64_t salt) {
  std::uint64_t h = splitmix(seed ^ salt);
  h = splitmix(h ^ (std::uint64_t(from) << 32) ^ std::uint64_t(to));
  h = splitmix(h ^ method_hash);
  h = splitmix(h ^ iteration);
  h = splitmix(h ^ std::uint64_t(attempt));
  // 53 mantissa bits -> uniform in [0, 1).
  return double(h >> 11) * 0x1.0p-53;
}

/// Salts decorrelating the fault draw from the spike draw (and both from
/// the jitter hash, which mixes no salt at all).
constexpr std::uint64_t kFaultSalt = 0xf417'1d0e'5eed'0001ULL;
constexpr std::uint64_t kSpikeSalt = 0xf417'1d0e'5eed'0002ULL;

}  // namespace

std::size_t NodeRange::count_in(std::size_t span_lo,
                                std::size_t span_hi) const {
  return overlap(lo, hi, span_lo, span_hi);
}

NodeRange parse_node_range(const std::string& text,
                           const std::string& context) {
  const auto parse_id = [&](const std::string& part) -> std::size_t {
    try {
      if (part.empty() || part.front() == '-' || part.front() == '+') {
        throw std::invalid_argument(part);
      }
      std::size_t pos = 0;
      const unsigned long long v = std::stoull(part, &pos);
      if (pos != part.size()) throw std::invalid_argument(part);
      return std::size_t(v);
    } catch (const std::exception&) {
      throw std::invalid_argument(context + ": expected a node id or "
                                  "lo-hi range, got '" + text + "'");
    }
  };
  NodeRange range;
  const auto dash = text.find('-');
  if (dash == std::string::npos) {
    range.lo = range.hi = parse_id(text);
  } else {
    range.lo = parse_id(text.substr(0, dash));
    range.hi = parse_id(text.substr(dash + 1));
  }
  if (range.lo > range.hi) {
    throw std::invalid_argument(context + ": inverted range '" + text + "'");
  }
  return range;
}

NetworkConditions NetworkConditions::parse(const std::string& spec) {
  NetworkConditions out;
  out.spec_ = spec;
  if (spec.empty()) return out;

  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const auto semi = spec.find(';', begin);
    const std::string clause_text =
        spec.substr(begin, semi == std::string::npos ? std::string::npos
                                                     : semi - begin);
    if (clause_text.empty()) {
      throw std::invalid_argument("network spec: empty clause in '" + spec +
                                  "'");
    }
    util::ParsedSpec clause = util::parse_spec(clause_text, "network spec");
    const util::SpecOptions& opt = clause.options;
    if (clause.name == "wan") {
      // Repeatable: each occurrence is one windowed phase; the last
      // active phase in spec order binds (base + windowed overrides).
      Wan wan;
      wan.latency = opt.get_duration("latency", Duration{0});
      wan.jitter = opt.get_duration("jitter", Duration{0});
      wan.byte_rate = opt.get_byte_rate("bw", 0.0);
      wan.from_iter = opt.get_size("from_iter", 0);
      wan.len = opt.get_size("len", 0);
      out.wan_.push_back(wan);
    } else if (clause.name == "hetero") {
      if (out.hetero_) {
        throw std::invalid_argument(
            "network spec: duplicate 'hetero' clause");
      }
      Hetero hetero;
      hetero.slow_links = range_option(opt, "slow_links", "hetero");
      hetero.factor = opt.get_double("factor", hetero.factor);
      if (hetero.factor < 1.0) {
        throw std::invalid_argument(
            "network spec: hetero factor must be >= 1");
      }
      out.hetero_ = hetero;
    } else if (clause.name == "link") {
      // Repeatable: each occurrence overrides the edges touching its node
      // set; where overrides overlap, the slowest rate wins at query time.
      LinkOverride link;
      link.nodes = range_option(opt, "nodes", "link");
      if (!opt.contains("bw")) {
        throw std::invalid_argument(
            "network spec: link clause requires 'bw=' (e.g. "
            "link:nodes=0-1,bw=200Mbps)");
      }
      link.byte_rate = opt.get_byte_rate("bw", 0.0);
      out.links_.push_back(link);
    } else if (clause.name == "straggler") {
      // Repeatable: each occurrence is one windowed phase.
      Straggler straggler;
      straggler.nodes = range_option(opt, "nodes", "straggler");
      straggler.lag = opt.get_duration("lag", Duration{50'000});
      straggler.from_iter = opt.get_size("from_iter", 0);
      straggler.len = opt.get_size("len", 0);
      out.stragglers_.push_back(straggler);
    } else if (clause.name == "partition") {
      // Repeatable: each occurrence is one windowed cut.
      Partition partition;
      partition.a = range_option(opt, "a", "partition");
      partition.b = range_option(opt, "b", "partition");
      partition.from_iter = opt.get_size("from_iter", 0);
      partition.len = opt.get_size("len", 0);
      partition.lag = opt.get_duration("lag", partition.lag);
      if (partition.a.hi >= partition.b.lo && partition.b.hi >= partition.a.lo) {
        throw std::invalid_argument(
            "network spec: partition groups overlap");
      }
      out.partitions_.push_back(partition);
    } else if (clause.name == "churn") {
      // Repeatable: each occurrence is one scheduled membership event (a
      // crash window or a join).
      ChurnEvent event;
      const bool has_crash = opt.contains("crash");
      const bool has_join = opt.contains("join");
      if (has_crash == has_join) {
        throw std::invalid_argument(
            "network spec: churn clause needs exactly one of 'crash=' or "
            "'join='");
      }
      event.join = has_join;
      event.nodes = range_option(opt, has_join ? "join" : "crash", "churn");
      event.at_iter = opt.get_size("at_iter", 0);
      if (has_join && opt.contains("recover_after")) {
        throw std::invalid_argument(
            "network spec: churn join has no 'recover_after' (a join IS "
            "the recovery)");
      }
      event.recover_after = opt.get_size("recover_after", 0);
      out.churn_.push_back(event);
    } else if (clause.name == "fault") {
      if (out.fault_) {
        throw std::invalid_argument("network spec: duplicate 'fault' clause");
      }
      Fault fault;
      fault.drop = probability_option(opt, "drop");
      fault.corrupt = probability_option(opt, "corrupt");
      fault.dup = probability_option(opt, "dup");
      fault.spike = probability_option(opt, "spike");
      fault.delay_spike = opt.get_duration("delay_spike", Duration{0});
      if (fault.drop + fault.corrupt + fault.dup >= 1.0) {
        throw std::invalid_argument(
            "network spec: fault drop+corrupt+dup must stay below 1 (the "
            "verdicts are mutually exclusive per attempt)");
      }
      if ((fault.spike > 0.0) != (fault.delay_spike.count() > 0)) {
        throw std::invalid_argument(
            "network spec: fault delay spikes need both 'spike=' "
            "(probability) and 'delay_spike=' (duration)");
      }
      if (fault.drop == 0.0 && fault.corrupt == 0.0 && fault.dup == 0.0 &&
          fault.spike == 0.0) {
        throw std::invalid_argument(
            "network spec: fault clause injects nothing — set at least one "
            "of drop/corrupt/dup/spike");
      }
      if (opt.contains("edges")) {
        fault.edges = range_option(opt, "edges", "fault");
      }
      fault.from_iter = opt.get_size("from_iter", 0);
      fault.len = opt.get_size("len", 0);
      out.fault_ = fault;
    } else {
      throw std::invalid_argument("network spec: unknown clause '" +
                                  clause.name + "' in '" + spec + "'");
    }
    const std::vector<std::string> stray = opt.unconsumed();
    if (!stray.empty()) {
      throw std::invalid_argument("network spec: clause '" + clause.name +
                                  "' has unknown option '" + stray.front() +
                                  "'");
    }
    if (semi == std::string::npos) break;
    begin = semi + 1;
  }
  return out;
}

void NetworkConditions::validate(std::size_t nodes) const {
  const auto check = [&](const NodeRange& range, const char* what) {
    if (range.hi >= nodes) {
      throw std::invalid_argument(
          "network spec: " + std::string(what) + " references node " +
          std::to_string(range.hi) + " but the deployment has only " +
          std::to_string(nodes) + " nodes");
    }
  };
  if (hetero_) check(hetero_->slow_links, "hetero slow_links");
  for (const LinkOverride& l : links_) check(l.nodes, "link nodes");
  for (const Straggler& s : stragglers_) check(s.nodes, "straggler nodes");
  for (const Partition& p : partitions_) {
    check(p.a, "partition group a");
    check(p.b, "partition group b");
  }
  for (const ChurnEvent& e : churn_) {
    check(e.nodes, e.join ? "churn join" : "churn crash");
  }
  if (fault_ && fault_->edges) check(*fault_->edges, "fault edges");
}

const NetworkConditions::Wan* NetworkConditions::active_wan(
    std::uint64_t iteration) const {
  return last_active(wan_, iteration);
}

const NetworkConditions::Straggler* NetworkConditions::active_straggler(
    std::uint64_t iteration) const {
  return last_active(stragglers_, iteration);
}

const NetworkConditions::Partition* NetworkConditions::active_partition(
    std::uint64_t iteration) const {
  return last_active(partitions_, iteration);
}

bool NetworkConditions::partitioned(std::size_t x, std::size_t y,
                                    std::uint64_t iteration) const {
  const Partition* p = active_partition(iteration);
  if (p == nullptr) return false;
  return (p->a.contains(x) && p->b.contains(y)) ||
         (p->b.contains(x) && p->a.contains(y));
}

double NetworkConditions::wan_byte_rate(std::uint64_t iteration) const {
  const Wan* w = active_wan(iteration);
  return w ? w->byte_rate : 0.0;
}

double NetworkConditions::link_rate_touching(std::size_t node) const {
  double rate = 0.0;
  for (const LinkOverride& l : links_) {
    if (!l.nodes.contains(node)) continue;
    rate = rate > 0.0 ? std::min(rate, l.byte_rate) : l.byte_rate;
  }
  return rate;
}

std::size_t NetworkConditions::count_link_limited(std::size_t lo,
                                                  std::size_t hi) const {
  if (links_.empty() || hi <= lo) return 0;
  std::size_t count = 0;
  for (std::size_t node = lo; node < hi; ++node) {
    for (const LinkOverride& l : links_) {
      if (l.nodes.contains(node)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

double NetworkConditions::min_link_rate(std::size_t lo,
                                        std::size_t hi) const {
  double rate = 0.0;
  for (const LinkOverride& l : links_) {
    if (l.nodes.count_in(lo, hi) == 0) continue;
    rate = rate > 0.0 ? std::min(rate, l.byte_rate) : l.byte_rate;
  }
  return rate;
}

double NetworkConditions::byte_rate(std::size_t from, std::size_t to,
                                    std::uint64_t iteration) const {
  double rate = wan_byte_rate(iteration);
  for (const LinkOverride& l : links_) {
    if (!l.nodes.contains(from) && !l.nodes.contains(to)) continue;
    rate = rate > 0.0 ? std::min(rate, l.byte_rate) : l.byte_rate;
  }
  if (rate > 0.0 && hetero_ && (is_slow(from) || is_slow(to))) {
    rate /= hetero_->factor;
  }
  return rate;
}

std::size_t NetworkConditions::count_slow(std::size_t lo,
                                          std::size_t hi) const {
  return hetero_ ? hetero_->slow_links.count_in(lo, hi) : 0;
}

std::size_t NetworkConditions::count_straggling(
    std::size_t lo, std::size_t hi, std::uint64_t iteration) const {
  const Straggler* s = active_straggler(iteration);
  return s ? s->nodes.count_in(lo, hi) : 0;
}

bool NetworkConditions::fault_active(std::size_t from, std::size_t to,
                                     std::uint64_t iteration) const {
  if (!fault_) return false;
  if (!window_active(fault_->from_iter, fault_->len, iteration)) return false;
  if (fault_->edges &&
      !(fault_->edges->contains(from) || fault_->edges->contains(to))) {
    return false;
  }
  return true;
}

NetworkConditions::FaultVerdict NetworkConditions::fault_verdict(
    std::size_t from, std::size_t to, const std::string& method,
    std::uint64_t iteration, std::uint64_t seed, std::uint32_t attempt,
    std::optional<std::uint64_t> window_iteration) const {
  FaultVerdict verdict;
  const std::uint64_t window = window_iteration.value_or(iteration);
  if (!fault_active(from, to, window)) return verdict;
  const std::uint64_t method_hash = fnv1a(method);
  // One draw decides drop/corrupt/dup (mutually exclusive, drop >
  // corrupt > dup precedence); an independent salted draw decides the
  // delay spike. `iteration` (not `window`) keys the draws so gossip
  // rounds sharing one training iteration still fault independently.
  const double u = fault_uniform(seed, from, to, method_hash, iteration,
                                 attempt, kFaultSalt);
  if (u < fault_->drop) {
    verdict.drop = true;
  } else if (u < fault_->drop + fault_->corrupt) {
    verdict.corrupt = true;
  } else if (u < fault_->drop + fault_->corrupt + fault_->dup) {
    verdict.dup = true;
  }
  if (fault_->spike > 0.0) {
    const double s = fault_uniform(seed, from, to, method_hash, iteration,
                                   attempt, kSpikeSalt);
    if (s < fault_->spike) verdict.spike_delay = fault_->delay_spike;
  }
  return verdict;
}

std::size_t NetworkConditions::count_faulty(std::size_t lo, std::size_t hi,
                                            std::uint64_t iteration) const {
  if (!fault_) return 0;
  if (!window_active(fault_->from_iter, fault_->len, iteration)) return 0;
  if (hi <= lo) return 0;
  return fault_->edges ? fault_->edges->count_in(lo, hi) : hi - lo;
}

bool NetworkConditions::churn_down(std::size_t node,
                                   std::uint64_t iteration) const {
  for (const ChurnEvent& e : churn_) {
    if (!e.nodes.contains(node)) continue;
    if (e.join) {
      if (iteration < e.at_iter) return true;
    } else if (iteration >= e.at_iter &&
               (e.recover_after == 0 ||
                iteration - e.at_iter < e.recover_after)) {
      return true;
    }
  }
  return false;
}

std::optional<std::uint64_t> NetworkConditions::next_up_iteration(
    std::size_t node, std::uint64_t iteration) const {
  if (!churn_down(node, iteration)) return iteration;
  // No transition can lift the node past the last scheduled up-edge that
  // covers it; scanning to that horizon is exact even when several down
  // windows overlap.
  std::uint64_t horizon = iteration;
  for (const ChurnEvent& e : churn_) {
    if (!e.nodes.contains(node)) continue;
    const std::uint64_t up = e.join ? e.at_iter
                             : e.recover_after == 0
                                 ? 0
                                 : e.at_iter + e.recover_after;
    horizon = std::max(horizon, up);
  }
  for (std::uint64_t t = iteration + 1; t <= horizon; ++t) {
    if (!churn_down(node, t)) return t;
  }
  return std::nullopt;
}

std::size_t NetworkConditions::count_down(std::size_t lo, std::size_t hi,
                                          std::uint64_t iteration) const {
  if (churn_.empty()) return 0;
  std::size_t down = 0;
  for (std::size_t node = lo; node < hi; ++node) {
    if (churn_down(node, iteration)) ++down;
  }
  return down;
}

std::size_t NetworkConditions::count_cross(std::size_t from, std::size_t lo,
                                           std::size_t hi,
                                           std::uint64_t iteration) const {
  const Partition* p = active_partition(iteration);
  if (p == nullptr) return 0;
  // A node in neither group sees both sides; only membership cuts.
  if (p->a.contains(from)) return p->b.count_in(lo, hi);
  if (p->b.contains(from)) return p->a.count_in(lo, hi);
  return 0;
}

NetworkConditions::Duration NetworkConditions::jitter_for(
    std::size_t from, std::size_t to, const std::string& method,
    std::uint64_t iteration, std::uint64_t seed,
    std::optional<std::uint64_t> window_iteration) const {
  const Duration magnitude = jitter(window_iteration.value_or(iteration));
  if (magnitude.count() <= 0) return Duration{0};
  const std::uint64_t method_hash = fnv1a(method);
  std::uint64_t h = splitmix(seed);
  h = splitmix(h ^ (std::uint64_t(from) << 32) ^ std::uint64_t(to));
  h = splitmix(h ^ method_hash);
  h = splitmix(h ^ iteration);
  // 53 mantissa bits -> uniform in [0, 1).
  const double u = double(h >> 11) * 0x1.0p-53;
  return Duration{std::int64_t(u * double(magnitude.count()))};
}

NetworkConditions::Duration NetworkConditions::delay(
    std::size_t from, std::size_t to, const std::string& method,
    std::uint64_t iteration, std::uint64_t seed,
    std::optional<std::uint64_t> window_iteration) const {
  const std::uint64_t window = window_iteration.value_or(iteration);
  std::int64_t us =
      latency(window).count() +
      jitter_for(from, to, method, iteration, seed, window).count();
  if (hetero_ && (is_slow(from) || is_slow(to))) {
    us = std::int64_t(double(us) * hetero_->factor);
  }
  // The *serving* node straggles: every reply it crafts leaves late —
  // the live twin of a per-callee service delay.
  const Straggler* straggler = active_straggler(window);
  if (straggler != nullptr && straggler->nodes.contains(to)) {
    us += straggler->lag.count();
  }
  const Partition* partition = active_partition(window);
  if (partition != nullptr &&
      ((partition->a.contains(from) && partition->b.contains(to)) ||
       (partition->b.contains(from) && partition->a.contains(to)))) {
    us += partition->lag.count();
  }
  return Duration{us};
}

}  // namespace garfield::net
