// Neural-network module interface.
//
// garfield::nn is the stand-in for the TensorFlow/PyTorch compute substrate:
// enough of a deep-learning stack (layers, backprop, optimizer) to train the
// convergence experiments, with models exposed as flat parameter/gradient
// vectors — the representation Garfield's servers and workers exchange.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace garfield::nn {

using tensor::Tensor;

/// A learnable parameter: value plus its accumulated gradient.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for differentiable layers.
///
/// Calling convention: forward() caches whatever it needs, then a single
/// backward() with dL/d(output) returns dL/d(input) and accumulates dL/dW
/// into each Param::grad. Layers are stateful and not reentrant, matching
/// the one-batch-at-a-time training loop of the paper's workers.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor forward(const Tensor& input, bool train) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters in a fixed, deterministic order.
  virtual std::vector<Param> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace garfield::nn
