// Table 2 (appendix) — parameter-vector alignment across correct server
// replicas during MSMW training.
//
// Methodology (§"Parameter Vectors Alignment"): every 20 steps, compute
// the pairwise differences between the correct replicas' parameter
// vectors, keep the two with the largest norms, and report cos(phi)
// between those difference vectors plus both norms.
//
// Paper shape: after enough steps, cos(phi) stays close to 1 (angles near
// 0 degrees) — the replicas' disagreement is low-dimensional and aligned,
// which is what the contraction argument of ByzSGD needs.
#include <cstdio>

#include "bench_support.h"
#include "core/trainer.h"

int main() {
  using namespace garfield::core;

  DeploymentConfig cfg;
  cfg.deployment = Deployment::kMsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 8;
  cfg.fw = 1;
  cfg.nps = 4;
  cfg.fps = 0;  // all replicas correct; we probe all of them
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 256;
  cfg.optimizer.lr.gamma0 = 0.08F;
  cfg.iterations = 400;
  cfg.eval_every = 0;
  cfg.alignment_every = 20;  // the paper samples every 20 steps
  cfg.seed = 77;

  std::printf("Table 2 — alignment of parameter vectors across %zu correct "
              "server replicas (sampled every %zu steps)\n\n",
              cfg.nps, cfg.alignment_every);

  const TrainResult result = train(garfield::bench::smoke(cfg));

  std::printf("%-8s %-22s %-14s %-14s\n", "Step", "cos(phi)", "max diff1",
              "max diff2");
  // The paper reports samples "after some large step number": print the
  // second half of the trajectory.
  for (const AlignmentSample& s : result.alignment) {
    if (s.iteration < cfg.iterations / 2) continue;
    std::printf("%-8zu %-22.6f %-14.4f %-14.4f\n", s.iteration, s.cos_phi,
                s.max_diff1, s.max_diff2);
  }
  std::printf("\nPaper shape: cos(phi) close to 1 (angle near 0 degrees) at "
              "every sampled step.\n");
  return 0;
}
