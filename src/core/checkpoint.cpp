#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "net/wire.h"

namespace garfield::core {

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  const std::vector<std::uint8_t> blob =
      net::encode(checkpoint.iteration, checkpoint.parameters);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic on POSIX
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size), 0);
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed for " + path);
  net::WireMessage msg = net::decode(blob);
  return Checkpoint{msg.iteration, std::move(msg.payload)};
}

}  // namespace garfield::core
