// Integration sweep of the paper's central robustness claim: for every GAR
// in gar_names(), every published attack, and several (n, f) quorum points,
// the aggregate of a mostly-honest gradient cloud must stay near the honest
// mean — and the resilience preconditions of gar_min_n must be exactly the
// boundary the factory enforces. Built on the ScenarioMatrix runner in
// tests/support, which models garfield's server ingress (silent nodes and
// non-finite payloads never reach a rule).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "attacks/attack.h"
#include "gars/gar.h"
#include "support/test_support.h"
#include "tensor/vecops.h"

namespace ts = garfield::testsupport;
namespace gg = garfield::gars;
namespace ga = garfield::attacks;
namespace gt = garfield::tensor;

TEST(ScenarioMatrix, CoversEveryGarAndEveryAttack) {
  ts::ScenarioMatrix matrix;
  std::set<std::string> gars_seen;
  std::set<std::string> attacks_seen;
  const std::size_t cells = matrix.for_each([&](const ts::Scenario& s) {
    gars_seen.insert(s.gar);
    attacks_seen.insert(s.attack);
  });
  for (const std::string& name : gg::gar_names()) {
    EXPECT_TRUE(gars_seen.contains(name)) << name << " missing from matrix";
  }
  for (const std::string& name : ga::attack_names()) {
    EXPECT_TRUE(attacks_seen.contains(name)) << name << " missing from matrix";
  }
  EXPECT_GE(cells, gg::gar_names().size() * ga::attack_names().size());
}

TEST(ScenarioMatrix, EveryCellSurvivesAFullySilentAdversary) {
  // The matrix promises n - f >= gar_min_n(gar, f): even if the whole
  // Byzantine cohort sends nothing, the received quorum still constructs.
  ts::ScenarioMatrix matrix;
  matrix.for_each([&](const ts::Scenario& s) {
    ASSERT_GT(s.n, s.f);
    EXPECT_GE(s.n - s.f, gg::gar_min_n(s.gar, s.f))
        << s.gar << " n=" << s.n << " f=" << s.f;
  });
}

TEST(ScenarioMatrix, FactoryEnforcesResiliencePreconditionBoundary) {
  for (const std::string& name : gg::gar_names()) {
    for (std::size_t f = 1; f <= 3; ++f) {
      const std::size_t min_n = gg::gar_min_n(name, f);
      EXPECT_NO_THROW(gg::make_gar(name, min_n, f)) << name << " f=" << f;
      if (min_n > 1) {
        EXPECT_THROW(gg::make_gar(name, min_n - 1, f), std::invalid_argument)
            << name << " f=" << f;
      }
    }
  }
}

TEST(ScenarioMatrix, AggregateStaysNearHonestMeanUnderEveryAttack) {
  ts::ScenarioMatrix matrix;
  std::size_t checked = 0;
  matrix.for_each([&](const ts::Scenario& s) {
    const ts::ScenarioResult r = ts::run_scenario(s);
    EXPECT_TRUE(gt::all_finite(r.aggregate))
        << s.gar << " x " << s.attack << " produced non-finite output";
    EXPECT_LE(r.rms_deviation, ts::robustness_tolerance(s))
        << s.gar << " x " << s.attack << " n=" << s.n << " f=" << s.f
        << " seed=" << s.seed;
    ++checked;
  });
  EXPECT_GE(checked, 250u);  // 10 GARs x 8 attacks x several quorum points
}

TEST(ScenarioMatrix, SilentAndCorruptPayloadsNeverReachTheRule) {
  // "dropped" sends nothing; "nan_poison" is rejected by the ingress
  // finite-check. Both shrink the received quorum to exactly the honest set.
  for (const std::string attack : {"dropped", "nan_poison"}) {
    ts::Scenario s;
    s.gar = "krum";
    s.attack = attack;
    s.f = 2;
    s.n = gg::gar_min_n("krum", s.f) + s.f;
    const ts::ScenarioResult r = ts::run_scenario(s);
    EXPECT_EQ(r.received, s.n - s.f) << attack;
    EXPECT_TRUE(gt::all_finite(r.aggregate)) << attack;
  }
}

TEST(ScenarioMatrix, ScenariosAreReproducible) {
  ts::Scenario s;
  s.gar = "bulyan";
  s.attack = "little_is_enough";
  s.f = 1;
  s.n = gg::gar_min_n("bulyan", s.f) + s.f;
  const ts::ScenarioResult a = ts::run_scenario(s);
  const ts::ScenarioResult b = ts::run_scenario(s);
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.honest_mean, b.honest_mean);

  s.seed += 1;
  const ts::ScenarioResult c = ts::run_scenario(s);
  EXPECT_NE(a.aggregate, c.aggregate) << "seed must matter";
}
