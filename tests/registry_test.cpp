// GarRegistry / spec-string tests: the drift guard the ISSUE asks for
// (every advertised rule constructible through the registry exactly at its
// resilience floor, rejected below it), the spec grammar, typed options,
// unknown-option rejection, the universal pre_clip decorator, and runtime
// extensibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>

#include "gars/gar.h"
#include "gars/registry.h"
#include "support/test_support.h"
#include "tensor/rng.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;
namespace ts = garfield::testsupport;

using gt::FlatVector;

namespace {

std::vector<FlatVector> cloud(std::size_t n, std::size_t d,
                              std::uint64_t seed, float center = 1.0F,
                              float spread = 0.1F) {
  gt::Rng rng(seed);
  return ts::honest_cloud({n, d, center, spread}, rng);
}

}  // namespace

// ------------------------------------------------------------ drift guard

TEST(GarRegistry, EveryAdvertisedRuleIsConstructibleAtItsFloor) {
  // gar_names() and the registry can no longer drift apart (both are the
  // same list), but min_n and the factories still can: every advertised
  // rule must construct at exactly gar_min_n(name, f) and reject n below
  // it, for every small f.
  for (const std::string& name : gg::gar_names()) {
    for (std::size_t f : {0u, 1u, 2u}) {
      const std::size_t min_n = gg::gar_min_n(name, f);
      ASSERT_GE(min_n, 1u) << name;
      EXPECT_NO_THROW((void)gg::make_gar(name, min_n, f))
          << name << " f=" << f << " n=" << min_n;
      if (min_n > 1) {
        EXPECT_THROW((void)gg::make_gar(name, min_n - 1, f),
                     std::invalid_argument)
            << name << " f=" << f << " n=" << min_n - 1;
      }
    }
  }
}

TEST(GarRegistry, EveryRuleAcceptsANonDefaultOptionSpec) {
  // The ISSUE's acceptance bar: every rule selectable AND tunable through a
  // spec string. Rules without a natural knob take the universal pre_clip.
  const std::map<std::string, std::string> specs = {
      {"average", "average:pre_clip=100"},
      {"median", "median:pre_clip=100"},
      {"trimmed_mean", "trimmed_mean:trim=2"},
      {"krum", "krum:pre_clip=100"},
      {"multi_krum", "multi_krum:m=2"},
      {"mda", "mda:pre_clip=100"},
      {"bulyan", "bulyan:pre_clip=100"},
      {"geometric_median", "geometric_median:max_iterations=64"},
      {"centered_clip", "centered_clip:tau=0.5,iterations=20"},
      {"cge", "cge:keep=3"},
  };
  for (const std::string& name : gg::gar_names()) {
    const auto it = specs.find(name);
    // Runtime-registered extras (other suites may add rules) default to the
    // universal option; the built-in list stays exhaustive.
    const std::string spec =
        it != specs.end() ? it->second : name + ":pre_clip=100";
    const std::size_t f = 1;
    const std::size_t n = gg::gar_min_n(name, f) + 2;
    gg::GarPtr gar;
    ASSERT_NO_THROW(gar = gg::make_gar(spec, n, f)) << spec;
    ASSERT_NE(gar, nullptr);
    EXPECT_EQ(gar->name(), name);
    const auto inputs = cloud(n, 16, 7 + n);
    gg::AggregationContext ctx;
    FlatVector out;
    EXPECT_NO_THROW(gar->aggregate_into(inputs, ctx, out)) << spec;
    EXPECT_EQ(out.size(), 16u);
  }
}

// ------------------------------------------------------------ spec parsing

TEST(GarSpec, ParsesBareNamesAndOptionLists) {
  const gg::GarSpec bare = gg::parse_gar_spec("krum");
  EXPECT_EQ(bare.name, "krum");
  EXPECT_TRUE(bare.options.empty());

  const gg::GarSpec rich =
      gg::parse_gar_spec("centered_clip:tau=0.5,iterations=20");
  EXPECT_EQ(rich.name, "centered_clip");
  EXPECT_TRUE(rich.options.contains("tau"));
  EXPECT_TRUE(rich.options.contains("iterations"));
  EXPECT_DOUBLE_EQ(rich.options.get_double("tau", -1.0), 0.5);
  EXPECT_EQ(rich.options.get_size("iterations", 0), 20u);
}

TEST(GarSpec, RejectsGrammarViolations) {
  EXPECT_THROW((void)gg::parse_gar_spec(""), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec(":tau=1"), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec("krum:"), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec("krum:tau"), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec("krum:tau="), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec("krum:=1"), std::invalid_argument);
  EXPECT_THROW((void)gg::parse_gar_spec("krum:a=1,a=2"),
               std::invalid_argument);  // duplicate key
  EXPECT_THROW((void)gg::parse_gar_spec("bad name:a=1"),
               std::invalid_argument);
}

TEST(GarSpec, TypedGettersRejectMalformedValues) {
  const gg::GarSpec spec = gg::parse_gar_spec("x:count=ten,rate=fast,neg=-3");
  EXPECT_THROW((void)spec.options.get_size("count", 0),
               std::invalid_argument);
  EXPECT_THROW((void)spec.options.get_double("rate", 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)spec.options.get_size("neg", 0), std::invalid_argument);
  // Absent keys fall back.
  EXPECT_EQ(spec.options.get_size("missing", 17), 17u);
  EXPECT_DOUBLE_EQ(spec.options.get_double("missing", 2.5), 2.5);
}

// -------------------------------------------------------- option semantics

TEST(GarRegistry, UnknownRuleAndUnknownOptionAreRejected) {
  EXPECT_THROW((void)gg::make_gar("resilient_mean_9000", 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::gar_min_n("nope", 1), std::invalid_argument);
  // A typo'd option must fail loudly, not be silently ignored.
  EXPECT_THROW((void)gg::make_gar("median:tua=0.5", 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("krum:iterations=5", 5, 1),
               std::invalid_argument);
}

TEST(GarRegistry, OptionRangesAreValidated) {
  // trimmed_mean: trim must leave at least one survivor.
  EXPECT_NO_THROW((void)gg::make_gar("trimmed_mean:trim=2", 5, 1));
  EXPECT_THROW((void)gg::make_gar("trimmed_mean:trim=3", 5, 1),
               std::invalid_argument);
  // multi_krum: m in [1, n-f-2].
  EXPECT_NO_THROW((void)gg::make_gar("multi_krum:m=1", 9, 2));
  EXPECT_NO_THROW((void)gg::make_gar("multi_krum:m=5", 9, 2));
  EXPECT_THROW((void)gg::make_gar("multi_krum:m=0", 9, 2),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("multi_krum:m=6", 9, 2),
               std::invalid_argument);
  // cge: keep in [1, n].
  EXPECT_THROW((void)gg::make_gar("cge:keep=0", 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("cge:keep=6", 5, 1),
               std::invalid_argument);
  // pre_clip must be a positive radius.
  EXPECT_THROW((void)gg::make_gar("median:pre_clip=0", 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("median:pre_clip=-1", 3, 1),
               std::invalid_argument);
  // centered_clip / geometric_median option sanity.
  EXPECT_THROW((void)gg::make_gar("centered_clip:iterations=0", 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("geometric_median:max_iterations=0", 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("geometric_median:smoothing=0", 3, 1),
               std::invalid_argument);
}

TEST(GarRegistry, OptionsChangeBehavior) {
  // trimmed_mean with trim=0 is the plain mean; with trim=2 it sheds the
  // two extremes per side — materially different on a cloud with outliers.
  auto inputs = cloud(7, 8, 99);
  for (float& x : inputs[0]) x = 1000.0F;  // magnitude outlier
  const FlatVector trim0 =
      gg::make_gar("trimmed_mean:trim=0", 7, 1)->aggregate(inputs);
  const FlatVector trim2 =
      gg::make_gar("trimmed_mean:trim=2", 7, 1)->aggregate(inputs);
  EXPECT_GT(trim0[0], 100.0F);  // mean dragged by the outlier
  EXPECT_LT(trim2[0], 5.0F);    // trimmed mean sheds it

  // multi_krum:m=n-f-2 equals the default construction.
  const auto mk_inputs = cloud(9, 8, 100);
  const FlatVector def = gg::make_gar("multi_krum", 9, 2)->aggregate(mk_inputs);
  const FlatVector m5 =
      gg::make_gar("multi_krum:m=5", 9, 2)->aggregate(mk_inputs);
  EXPECT_EQ(def, m5);
  const FlatVector m1 =
      gg::make_gar("multi_krum:m=1", 9, 2)->aggregate(mk_inputs);
  EXPECT_NE(def, m1);  // m=1 degenerates to plain Krum's single pick
}

TEST(GarRegistry, PreClipCapsMagnitudeOutliers) {
  // Un-clipped average is dragged arbitrarily far by one huge vector;
  // pre_clip bounds every input's leverage to radius/n.
  auto inputs = cloud(5, 4, 101, 0.0F, 0.01F);
  for (float& x : inputs[4]) x = 1e6F;
  const FlatVector plain = gg::make_gar("average", 5, 0)->aggregate(inputs);
  const FlatVector clipped =
      gg::make_gar("average:pre_clip=1", 5, 0)->aggregate(inputs);
  EXPECT_GT(gt::norm(plain), 1e4);
  EXPECT_LE(gt::norm(clipped), 1.0 + 1e-3);
  // Inputs inside the radius pass through untouched: all-honest clouds
  // aggregate identically with a generous radius.
  const auto tame = cloud(5, 4, 102);
  EXPECT_EQ(gg::make_gar("average", 5, 0)->aggregate(tame),
            gg::make_gar("average:pre_clip=1000", 5, 0)->aggregate(tame));
}

// -------------------------------------------------------------- extension

TEST(GarRegistry, RuntimeRegistrationExtendsTheStringApi) {
  // A rule registered at runtime is immediately reachable through
  // gar_names / gar_min_n / make_gar — the registry is the single source
  // of truth. Registered once per process; idempotent across gtest
  // repeats via the duplicate check.
  const std::string name = "registry_test_mean";
  if (gg::GarRegistry::instance().find(name) == nullptr) {
    gg::GarRegistry::instance().add(
        {.name = name,
         .min_n = [](std::size_t f) { return f + 1; },
         .option_floor = {},
       .factory = [](std::size_t n, std::size_t f, const gg::GarOptions&)
             -> gg::GarPtr { return std::make_unique<gg::Average>(n, f); }});
  }
  const auto names = gg::gar_names();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  EXPECT_EQ(gg::gar_min_n(name, 2), 3u);
  const auto inputs = cloud(4, 8, 103);
  const FlatVector out = gg::make_gar(name, 4, 0)->aggregate(inputs);
  EXPECT_EQ(out.size(), 8u);

  // Duplicate registration is a hard error.
  EXPECT_THROW(
      gg::GarRegistry::instance().add(
          {.name = name,
           .min_n = [](std::size_t) { return std::size_t(1); },
           .option_floor = {},
       .factory = [](std::size_t, std::size_t, const gg::GarOptions&)
               -> gg::GarPtr { return nullptr; }}),
      std::invalid_argument);
}

TEST(GarRegistry, OptionsRaiseTheResilienceFloor) {
  // An option implying a larger quorum must raise gar_min_n for the spec,
  // and make_gar must reject below that raised floor — otherwise a legally
  // degraded quorum passes the trainer's min-quorum gate and the factory
  // throws mid-training (attacker-triggerable via dropped replies).
  EXPECT_EQ(gg::gar_min_n("multi_krum", 1), 5u);
  EXPECT_EQ(gg::gar_min_n("multi_krum:m=8", 1), 11u);
  EXPECT_THROW((void)gg::make_gar("multi_krum:m=8", 10, 1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("multi_krum:m=8", 11, 1));

  EXPECT_EQ(gg::gar_min_n("trimmed_mean", 1), 3u);
  EXPECT_EQ(gg::gar_min_n("trimmed_mean:trim=3", 1), 7u);
  EXPECT_THROW((void)gg::make_gar("trimmed_mean:trim=3", 6, 1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("trimmed_mean:trim=3", 7, 1));

  EXPECT_EQ(gg::gar_min_n("cge:keep=6", 1), 6u);
  EXPECT_THROW((void)gg::make_gar("cge:keep=6", 5, 1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("cge:keep=6", 6, 1));
}
