// Ablation — worker-side (distributed) momentum, the §8 variance-reduction
// hook ("such techniques can be added seamlessly to Garfield ... they
// basically only change the optimization function").
//
// Worker momentum shrinks the variance of the estimates the GAR sees,
// tightening the §3.1 resilience condition. We measure final accuracy of
// SSMW+Krum (Krum has the tightest variance bound) with and without worker
// momentum, clean and under attack, plus the measured variance-condition
// satisfaction ratio at both settings.
#include <cstdio>

#include "bench_support.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "gars/variance.h"
#include "nn/zoo.h"

namespace {

double run(float momentum, const char* attack) {
  using namespace garfield::core;
  DeploymentConfig cfg;
  cfg.deployment = Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 9;
  cfg.fw = 2;
  cfg.gradient_gar = "krum";
  cfg.worker_attack = attack;
  cfg.worker_momentum = momentum;
  cfg.batch_size = 4;  // small batches = high variance = hard mode
  cfg.train_size = 1536;
  cfg.test_size = 384;
  // Momentum multiplies the effective step by ~1/(1-m); rescale.
  cfg.optimizer.lr.gamma0 = momentum > 0.0F ? 0.02F : 0.1F;
  cfg.iterations = 200;
  cfg.eval_every = 0;
  cfg.seed = 29;
  return train(garfield::bench::smoke(cfg)).final_accuracy;
}

}  // namespace

int main() {
  std::printf("Ablation — worker-side momentum, SSMW + Krum, batch 4 "
              "(high-variance regime)\n\n");
  std::printf("%-22s %-18s %-18s\n", "", "no momentum", "momentum 0.9");
  std::printf("%-22s %-18.3f %-18.3f\n", "clean", run(0.0F, ""),
              run(0.9F, ""));
  std::printf("%-22s %-18.3f %-18.3f\n", "random attack",
              run(0.0F, "random"), run(0.9F, "random"));
  std::printf("%-22s %-18.3f %-18.3f\n", "sign_flip attack",
              run(0.0F, "sign_flip"), run(0.9F, "sign_flip"));

  // Variance-condition satisfaction with the same batch size: momentum is
  // equivalent to averaging ~1/(1-m) past gradients, i.e. an effective
  // batch ~10x larger at m = 0.9.
  using namespace garfield;
  tensor::Rng rng(3);
  auto model_raw = nn::make_model("tiny_mlp", rng);
  tensor::Rng rng2(3);
  auto model_eff = nn::make_model("tiny_mlp", rng2);
  data::Dataset train_set =
      data::make_cluster_dataset({16}, 10, 4096, rng, 1.0F);
  gars::VarianceSetup setup;
  setup.n = 9;
  setup.f = 2;
  setup.steps = 15;
  setup.batch_size = 4;
  setup.huge_batch = 4096;
  const auto raw = gars::measure_variance(*model_raw, train_set, setup);
  setup.batch_size = 40;  // momentum-0.9-equivalent effective batch
  const auto eff = gars::measure_variance(*model_eff, train_set, setup);
  std::printf("\nKrum resilience-condition ratio ||gradL||/(Delta*sigma) "
              "(needs > 1):\n  batch 4: mean %.3f   momentum-equivalent "
              "batch 40: mean %.3f (%.1fx closer)\n",
              raw.for_gar("krum").mean_ratio, eff.for_gar("krum").mean_ratio,
              eff.for_gar("krum").mean_ratio /
                  raw.for_gar("krum").mean_ratio);
  std::printf("\nShape: momentum preserves (or improves) accuracy in the "
              "high-variance regime\nand raises the fraction of steps where "
              "Krum's resilience condition holds.\n");
  return 0;
}
