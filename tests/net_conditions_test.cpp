// NetworkConditions unit suite: spec grammar (clauses, durations, node
// ranges), config-time validation, and per-edge delay resolution — the
// live half of the one-spec-two-planes contract that
// netcond_crossval_test.cpp checks end to end.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.h"
#include "core/controller.h"
#include "net/cluster.h"
#include "net/conditions.h"
#include "util/spec.h"

namespace gn = garfield::net;
namespace gc = garfield::core;
namespace gu = garfield::util;
using Duration = gn::NetworkConditions::Duration;

// ------------------------------------------------------------- durations

TEST(SpecDuration, ParsesUnitsAndDefaultsToMicroseconds) {
  gu::SpecOptions opts;
  opts.set("a", "50us");
  opts.set("b", "5ms");
  opts.set("c", "2s");
  opts.set("d", "250");
  EXPECT_EQ(opts.get_duration("a", Duration{0}), Duration{50});
  EXPECT_EQ(opts.get_duration("b", Duration{0}), Duration{5000});
  EXPECT_EQ(opts.get_duration("c", Duration{0}), Duration{2'000'000});
  EXPECT_EQ(opts.get_duration("d", Duration{0}), Duration{250});
  EXPECT_EQ(opts.get_duration("absent", Duration{7}), Duration{7});
}

TEST(SpecDuration, RejectsNegativeAndNonsense) {
  for (const char* bad : {"-5ms", "5m", "ms", "1.5ms", "5 ms", "", "nan"}) {
    gu::SpecOptions opts;
    opts.set("lag", bad);
    EXPECT_THROW((void)opts.get_duration("lag", Duration{0}),
                 std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

// ------------------------------------------------------------ node ranges

TEST(NodeRange, ParsesSinglesAndRanges) {
  const gn::NodeRange single = gn::parse_node_range("2", "test");
  EXPECT_EQ(single.lo, 2u);
  EXPECT_EQ(single.hi, 2u);
  EXPECT_TRUE(single.contains(2));
  EXPECT_FALSE(single.contains(3));
  const gn::NodeRange range = gn::parse_node_range("0-3", "test");
  EXPECT_EQ(range.size(), 4u);
  EXPECT_EQ(range.count_in(2, 10), 2u);  // {2, 3}
  EXPECT_EQ(range.count_in(4, 10), 0u);
}

TEST(NodeRange, RejectsMalformedAndInverted) {
  for (const char* bad : {"", "a", "3-1", "-1", "1-", "-", "1.5"}) {
    EXPECT_THROW((void)gn::parse_node_range(bad, "test"),
                 std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

// ---------------------------------------------------------------- grammar

TEST(NetworkConditions, EmptySpecIsIdeal) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse("");
  EXPECT_TRUE(c.ideal());
  EXPECT_EQ(c.delay(0, 1, "m", 0, 42), Duration{0});
}

TEST(NetworkConditions, ParsesEveryClause) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "wan:latency=5ms,jitter=2ms,bw=1Gbps;"
      "hetero:slow_links=0-3,factor=10;"
      "link:nodes=7,bw=200Mbps;"
      "straggler:nodes=2,lag=50ms,from_iter=100;"
      "partition:a=0-2,b=3-8,from_iter=50,len=20");
  EXPECT_FALSE(c.ideal());
  EXPECT_EQ(c.latency(), Duration{5000});
  EXPECT_EQ(c.jitter(), Duration{2000});
  ASSERT_EQ(c.wan().size(), 1u);
  EXPECT_DOUBLE_EQ(c.wan().front().byte_rate, 1e9 / 8.0);
  ASSERT_TRUE(c.hetero().has_value());
  EXPECT_DOUBLE_EQ(c.hetero()->factor, 10.0);
  ASSERT_EQ(c.links().size(), 1u);
  EXPECT_DOUBLE_EQ(c.links().front().byte_rate, 200e6 / 8.0);
  EXPECT_TRUE(c.links().front().nodes.contains(7));
  ASSERT_EQ(c.stragglers().size(), 1u);
  EXPECT_EQ(c.stragglers().front().lag, Duration{50'000});
  EXPECT_EQ(c.stragglers().front().from_iter, 100u);
  EXPECT_EQ(c.stragglers().front().len, 0u);  // open-ended
  ASSERT_EQ(c.partitions().size(), 1u);
  EXPECT_EQ(c.partitions().front().from_iter, 50u);
  EXPECT_EQ(c.partitions().front().len, 20u);
}

TEST(NetworkConditions, RejectsUnknownClausesAndOptions) {
  EXPECT_THROW((void)gn::NetworkConditions::parse("lan:latency=1ms"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("wan:latncy=1ms"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)gn::NetworkConditions::parse("straggler:nodes=1,lga=5ms"),
      std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("wan:latency=1ms;;"),
               std::invalid_argument);
}

TEST(NetworkConditions, RejectsBadClauseShapes) {
  // factor < 1, missing required ranges/rates, overlapping partition
  // groups, repeated singleton clauses (hetero/fault — the windowed
  // clauses repeat freely, see the MultiWindow tests).
  EXPECT_THROW(
      (void)gn::NetworkConditions::parse("hetero:slow_links=0,factor=0.5"),
      std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("hetero:factor=2"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse(
                   "hetero:slow_links=0,factor=2;hetero:slow_links=1,factor=3"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("straggler:lag=5ms"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("partition:a=0-3,b=3-6"),
               std::invalid_argument);
  // link: requires both its nodes and its rate.
  EXPECT_THROW((void)gn::NetworkConditions::parse("link:nodes=0-1"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::NetworkConditions::parse("link:bw=1Gbps"),
               std::invalid_argument);
}

// ---------------------------------------------------------- multi-window

TEST(NetworkConditions, RepeatedWanClausesBindLastActive) {
  // Two overlapping phases: the later clause in spec order wins while
  // both windows are open; outside every window the network is ideal.
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "wan:latency=1ms,len=100;"
      "wan:latency=9ms,from_iter=50,len=10");
  EXPECT_EQ(c.latency(0), Duration{1000});
  EXPECT_EQ(c.latency(50), Duration{9000});
  EXPECT_EQ(c.latency(59), Duration{9000});
  EXPECT_EQ(c.latency(60), Duration{1000});
  EXPECT_EQ(c.latency(100), Duration{0});  // every window closed
  EXPECT_EQ(c.delay(0, 1, "m", 55, 1), Duration{9000});
  EXPECT_EQ(c.delay(0, 1, "m", 60, 1), Duration{1000});
  EXPECT_EQ(c.delay(0, 1, "m", 100, 1), Duration{0});
}

TEST(NetworkConditions, RepeatedStragglerAndPartitionWindows) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "straggler:nodes=2,lag=10ms,from_iter=0,len=5;"
      "straggler:nodes=3,lag=20ms,from_iter=10,len=5;"
      "partition:a=0,b=1,from_iter=0,len=5;"
      "partition:a=0,b=2,from_iter=10,len=5,lag=40ms");
  // First window: node 2 straggles, node 3 does not.
  EXPECT_TRUE(c.is_straggling(2, 0));
  EXPECT_FALSE(c.is_straggling(3, 0));
  // Gap between windows: nobody straggles.
  EXPECT_FALSE(c.is_straggling(2, 7));
  // Second window: the roles flip.
  EXPECT_FALSE(c.is_straggling(2, 12));
  EXPECT_TRUE(c.is_straggling(3, 12));
  EXPECT_EQ(c.delay(0, 3, "m", 12, 1), Duration{20'000});
  // Partitions re-cut along a different boundary per window.
  EXPECT_TRUE(c.partitioned(0, 1, 0));
  EXPECT_FALSE(c.partitioned(0, 2, 0));
  EXPECT_FALSE(c.partitioned(0, 1, 12));
  EXPECT_TRUE(c.partitioned(0, 2, 12));
  EXPECT_EQ(c.delay(0, 2, "m", 12, 1), Duration{40'000});
  // Overlap *within one clause* is still rejected; re-cutting the same
  // nodes across separate windows is the whole point.
  EXPECT_THROW((void)gn::NetworkConditions::parse("partition:a=0-3,b=3-6"),
               std::invalid_argument);
}

// ---------------------------------------------------------- byte rates

TEST(SpecByteRate, ParsesUnitsAndRejectsNonsense) {
  gu::SpecOptions opts;
  opts.set("a", "1Gbps");
  opts.set("b", "200Mbps");
  opts.set("c", "25MBps");
  EXPECT_DOUBLE_EQ(opts.get_byte_rate("a", 0.0), 1e9 / 8.0);
  EXPECT_DOUBLE_EQ(opts.get_byte_rate("b", 0.0), 200e6 / 8.0);
  EXPECT_DOUBLE_EQ(opts.get_byte_rate("c", 0.0), 25e6);
  EXPECT_DOUBLE_EQ(opts.get_byte_rate("absent", 7.0), 7.0);
  for (const char* bad : {"1", "Gbps", "-1Gbps", "0Gbps", "1gbit", "",
                          "1.5.2Mbps", "infGbps"}) {
    gu::SpecOptions o;
    o.set("bw", bad);
    EXPECT_THROW((void)o.get_byte_rate("bw", 0.0), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(NetworkConditions, ByteRateComposesWanLinksAndHetero) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "wan:latency=1ms,bw=1Gbps;"
      "link:nodes=3,bw=100Mbps;"
      "hetero:slow_links=5,factor=10");
  EXPECT_TRUE(c.has_bandwidth());
  const double wan = 1e9 / 8.0;
  const double link = 100e6 / 8.0;
  // Plain edge: the wan rate. Edge touching node 3 (either direction):
  // the slower link override. Edge touching slow node 5: wan derated.
  EXPECT_DOUBLE_EQ(c.byte_rate(0, 1, 0), wan);
  EXPECT_DOUBLE_EQ(c.byte_rate(0, 3, 0), link);
  EXPECT_DOUBLE_EQ(c.byte_rate(3, 0, 0), link);
  EXPECT_DOUBLE_EQ(c.byte_rate(5, 0, 0), wan / 10.0);
  // Sim-plane helpers agree with the per-edge resolution.
  EXPECT_DOUBLE_EQ(c.wan_byte_rate(0), wan);
  EXPECT_DOUBLE_EQ(c.link_rate_touching(3), link);
  EXPECT_DOUBLE_EQ(c.link_rate_touching(4), 0.0);
  EXPECT_EQ(c.count_link_limited(0, 8), 1u);
  EXPECT_DOUBLE_EQ(c.min_link_rate(0, 8), link);
}

TEST(NetworkConditions, LinkOverrideWithoutWanStillLimits) {
  // A link override alone (no wan bw=) must gate has_bandwidth() and bind
  // on edges touching its nodes while leaving the rest unlimited.
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("link:nodes=0-1,bw=80Mbps");
  EXPECT_TRUE(c.has_bandwidth());
  EXPECT_DOUBLE_EQ(c.byte_rate(0, 2, 0), 80e6 / 8.0);
  EXPECT_DOUBLE_EQ(c.byte_rate(2, 3, 0), 0.0);  // unlimited
}

TEST(NetworkConditions, WindowedBandwidthFollowsTheActiveWanPhase) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "wan:bw=1Gbps,len=10;wan:bw=100Mbps,from_iter=10");
  EXPECT_DOUBLE_EQ(c.byte_rate(0, 1, 5), 1e9 / 8.0);
  EXPECT_DOUBLE_EQ(c.byte_rate(0, 1, 10), 100e6 / 8.0);
  EXPECT_THROW((void)gn::NetworkConditions::parse("wan:bw=fast"),
               std::invalid_argument);
}

TEST(NetworkConditions, ValidateChecksNodeReferences) {
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("straggler:nodes=9,lag=1ms");
  EXPECT_NO_THROW(c.validate(10));
  EXPECT_THROW(c.validate(9), std::invalid_argument);
  gn::Cluster::Options opts;
  opts.nodes = 4;
  opts.conditions = c;
  EXPECT_THROW(gn::Cluster cluster(opts), std::invalid_argument);
}

// --------------------------------------------------------- delay semantics

TEST(NetworkConditions, HeteroScalesEdgesTouchingSlowNodes) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "wan:latency=100us;hetero:slow_links=0-1,factor=10");
  EXPECT_EQ(c.delay(0, 2, "m", 0, 1), Duration{1000});  // slow caller
  EXPECT_EQ(c.delay(2, 1, "m", 0, 1), Duration{1000});  // slow callee
  EXPECT_EQ(c.delay(2, 3, "m", 0, 1), Duration{100});   // fast edge
}

TEST(NetworkConditions, StragglerWindowDelaysTheServingNode) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "straggler:nodes=2,lag=50ms,from_iter=100,len=10");
  // Before the window, inside it, and after it closes.
  EXPECT_EQ(c.delay(0, 2, "m", 99, 1), Duration{0});
  EXPECT_EQ(c.delay(0, 2, "m", 100, 1), Duration{50'000});
  EXPECT_EQ(c.delay(0, 2, "m", 109, 1), Duration{50'000});
  EXPECT_EQ(c.delay(0, 2, "m", 110, 1), Duration{0});
  // The straggler lags serving, not its own pulls.
  EXPECT_EQ(c.delay(2, 0, "m", 100, 1), Duration{0});
  EXPECT_TRUE(c.is_straggling(2, 105));
  EXPECT_FALSE(c.is_straggling(1, 105));
}

TEST(NetworkConditions, PartitionDelaysOnlyCrossCutMessages) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "partition:a=0-2,b=3-8,from_iter=50,len=20,lag=30ms");
  // Inside the window: cross-cut pays, same-side does not, and a node in
  // neither group reaches both sides.
  EXPECT_EQ(c.delay(0, 5, "m", 50, 1), Duration{30'000});
  EXPECT_EQ(c.delay(5, 0, "m", 69, 1), Duration{30'000});
  EXPECT_EQ(c.delay(0, 1, "m", 60, 1), Duration{0});
  EXPECT_EQ(c.delay(3, 8, "m", 60, 1), Duration{0});
  EXPECT_EQ(c.delay(9, 0, "m", 60, 1), Duration{0});
  EXPECT_EQ(c.delay(9, 5, "m", 60, 1), Duration{0});
  // Outside the window the cut heals (GST): messages flow undelayed.
  EXPECT_EQ(c.delay(0, 5, "m", 49, 1), Duration{0});
  EXPECT_EQ(c.delay(0, 5, "m", 70, 1), Duration{0});
  EXPECT_TRUE(c.partitioned(0, 5, 60));
  EXPECT_FALSE(c.partitioned(0, 1, 60));
}

TEST(NetworkConditions, WindowIterationOverridesTheScheduleKey) {
  // The decentralized contraction gossip tags calls with
  // it * rounds + round, which races ahead of the training iteration;
  // delay() keys its straggler/partition schedules on the explicit
  // window_iteration when one is provided (the tag still keys jitter).
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "straggler:nodes=1,lag=5ms,from_iter=10");
  // Gossip tag 25 = training iteration 5 at 5 rounds/iteration: outside
  // the window with the override, inside it without.
  EXPECT_EQ(c.delay(0, 1, "gossip", 25, 1, 5), Duration{0});
  EXPECT_EQ(c.delay(0, 1, "gossip", 25, 1), Duration{5000});
}

TEST(NetworkConditions, SimPlaneCountsMatchTheEdgePredicates) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "hetero:slow_links=3-4,factor=10;"
      "straggler:nodes=10,lag=2ms,from_iter=1;"
      "partition:a=0-2,b=9-10,from_iter=2,len=1");
  // Worker span [3, 11) of a nps=3, nw=8 deployment.
  EXPECT_EQ(c.count_slow(3, 11), 2u);
  EXPECT_EQ(c.count_straggling(3, 11, 0), 0u);
  EXPECT_EQ(c.count_straggling(3, 11, 1), 1u);
  EXPECT_EQ(c.count_cross(0, 3, 11, 2), 2u);  // server 0 loses workers 9-10
  EXPECT_EQ(c.count_cross(0, 3, 11, 3), 0u);  // window closed
  EXPECT_EQ(c.count_cross(5, 3, 11, 2), 0u);  // ungrouped node keeps all
}

// --------------------------------------------------------- fault injection

TEST(NetworkConditions, ParsesTheFaultClause) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "fault:drop=0.01,dup=0.001,corrupt=0.005,delay_spike=5ms,spike=0.02,"
      "edges=0-3,from_iter=50,len=20");
  EXPECT_FALSE(c.ideal());
  ASSERT_TRUE(c.has_fault());
  ASSERT_TRUE(c.fault().has_value());
  EXPECT_DOUBLE_EQ(c.fault()->drop, 0.01);
  EXPECT_DOUBLE_EQ(c.fault()->corrupt, 0.005);
  EXPECT_DOUBLE_EQ(c.fault()->dup, 0.001);
  EXPECT_DOUBLE_EQ(c.fault()->spike, 0.02);
  EXPECT_EQ(c.fault()->delay_spike, Duration{5000});
  ASSERT_TRUE(c.fault()->edges.has_value());
  EXPECT_TRUE(c.fault()->edges->contains(3));
  EXPECT_FALSE(c.fault()->edges->contains(4));
  EXPECT_EQ(c.fault()->from_iter, 50u);
  EXPECT_EQ(c.fault()->len, 20u);
  EXPECT_DOUBLE_EQ(c.fault_loss_rate(), 0.015);
  EXPECT_NEAR(c.fault_spike_seconds(), 0.02 * 0.005, 1e-12);
}

TEST(NetworkConditions, RejectsMalformedFaultClauses) {
  // Probabilities outside [0, 1), a verdict budget reaching 1, spike
  // without its duration (and vice versa), an empty clause, duplicates,
  // and misspelled options.
  for (const char* bad : {
           "fault:drop=-0.1",                     // spec-lint: ignore
           "fault:drop=1.0",                      // spec-lint: ignore
           "fault:drop=0.6,corrupt=0.3,dup=0.2",  // spec-lint: ignore
           "fault:spike=0.1",                     // spec-lint: ignore
           "fault:delay_spike=5ms",               // spec-lint: ignore
           "fault:",                              // spec-lint: ignore
           "fault:drop=0.1;fault:drop=0.2",       // spec-lint: ignore
           "fault:dorp=0.1",                      // spec-lint: ignore
           "fault:drop=0.1,edges=3-1",            // spec-lint: ignore
       }) {
    EXPECT_THROW((void)gn::NetworkConditions::parse(bad),
                 std::invalid_argument)
        << "accepted '" << bad << "'";
  }
  // validate() rejects edge references beyond the deployment.
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("fault:drop=0.1,edges=6");
  EXPECT_NO_THROW(c.validate(7));
  EXPECT_THROW(c.validate(6), std::invalid_argument);
}

TEST(NetworkConditions, FaultWindowAndEdgeSetGateTheVerdicts) {
  const gn::NetworkConditions c = gn::NetworkConditions::parse(
      "fault:drop=0.5,edges=2-3,from_iter=10,len=5");
  // Outside the window, or off the edge set, every verdict is clean.
  EXPECT_FALSE(c.fault_active(0, 2, 9));
  EXPECT_TRUE(c.fault_active(0, 2, 10));
  EXPECT_TRUE(c.fault_active(3, 0, 14));
  EXPECT_FALSE(c.fault_active(3, 0, 15));
  EXPECT_FALSE(c.fault_active(0, 1, 12));  // edge touches neither of 2-3
  EXPECT_FALSE(
      c.fault_verdict(0, 1, "m", 12, /*seed=*/1, /*attempt=*/0).any());
  EXPECT_FALSE(
      c.fault_verdict(0, 2, "m", 9, /*seed=*/1, /*attempt=*/0).any());
  // count_faulty mirrors the same gate for the analytic plane.
  EXPECT_EQ(c.count_faulty(0, 6, 9), 0u);
  EXPECT_EQ(c.count_faulty(0, 6, 12), 2u);
  EXPECT_EQ(c.count_faulty(4, 6, 12), 0u);
}

TEST(NetworkConditions, FaultVerdictsAreDeterministicAndExclusive) {
  const gn::NetworkConditions c =
      gn::NetworkConditions::parse("fault:drop=0.3,corrupt=0.2,dup=0.1");
  std::size_t drops = 0, corrupts = 0, dups = 0, clean = 0;
  for (std::uint64_t it = 0; it < 400; ++it) {
    const auto v = c.fault_verdict(0, 1, "get_gradient", it, 42, 0);
    // Replay: the verdict is a pure function of its arguments.
    const auto replay = c.fault_verdict(0, 1, "get_gradient", it, 42, 0);
    EXPECT_EQ(v.drop, replay.drop);
    EXPECT_EQ(v.corrupt, replay.corrupt);
    EXPECT_EQ(v.dup, replay.dup);
    // Mutual exclusion: at most one of drop/corrupt/dup per attempt.
    EXPECT_LE(int(v.drop) + int(v.corrupt) + int(v.dup), 1);
    drops += v.drop;
    corrupts += v.corrupt;
    dups += v.dup;
    clean += !v.drop && !v.corrupt && !v.dup;
  }
  // The empirical rates sit near the configured ones (wide margins — this
  // is a sanity band, not a statistical test).
  EXPECT_GT(drops, 60u);
  EXPECT_GT(corrupts, 30u);
  EXPECT_GT(dups, 10u);
  EXPECT_GT(clean, 100u);
  // A different seed, attempt, or edge decorrelates the draw.
  bool seed_differs = false, attempt_differs = false;
  for (std::uint64_t it = 0; it < 64 && !(seed_differs && attempt_differs);
       ++it) {
    const auto v = c.fault_verdict(0, 1, "m", it, 42, 0);
    seed_differs |= v.drop != c.fault_verdict(0, 1, "m", it, 43, 0).drop;
    attempt_differs |= v.drop != c.fault_verdict(0, 1, "m", it, 42, 1).drop;
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(attempt_differs);
}

// -------------------------------------------------- config-level plumbing

TEST(NetworkConditions, ConfigValidateRejectsBadSpecs) {
  gc::DeploymentConfig cfg;
  cfg.nw = 5;
  cfg.nps = 1;
  cfg.network = "wan:latency=1ms";
  EXPECT_NO_THROW(cfg.validate());
  cfg.network = "wan:latency=-1ms";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.network = "wan:latency=1fortnight";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.network = "stragler:nodes=1";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Node references beyond total_nodes() (= 6 here).
  cfg.network = "straggler:nodes=6,lag=1ms";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.network = "straggler:nodes=5,lag=1ms";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(NetworkConditions, ConfigRoundTripsThroughTheController) {
  gc::DeploymentConfig cfg;
  cfg.network = "wan:latency=5ms,jitter=2ms;straggler:nodes=2,lag=50ms";
  const gc::DeploymentConfig parsed =
      gc::parse_config(gc::format_config(cfg));
  EXPECT_EQ(parsed.network, cfg.network);
  EXPECT_NO_THROW(parsed.validate());
}
