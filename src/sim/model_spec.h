// Table 1 of the paper: the models used to evaluate Garfield, carried as
// dimension descriptors for the throughput experiments (which depend only
// on d, the number of parameters).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace garfield::sim {

struct ModelSpec {
  std::string name;
  std::size_t parameters = 0;  ///< d
  double size_mb = 0.0;        ///< 4 bytes per float32 parameter

  [[nodiscard]] double size_bytes() const { return double(parameters) * 4.0; }
};

/// The six rows of Table 1 (MNIST_CNN ... VGG).
[[nodiscard]] const std::vector<ModelSpec>& table1_models();

/// Lookup by name; throws std::invalid_argument when absent.
[[nodiscard]] const ModelSpec& model_spec(const std::string& name);

}  // namespace garfield::sim
