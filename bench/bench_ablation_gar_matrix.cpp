// Ablation — GAR x attack robustness matrix, measured end-to-end.
//
// Extends Fig 5 from two attacks on one deployment to the full cross
// product: final accuracy of live SSMW training (7 honest + 2 Byzantine
// workers) for every GAR in the library against every worker attack.
// Averaging is included as the fragile control row.
//
// Expected shape: the "none" column is high everywhere; averaging collapses
// under directional attacks; every Byzantine-resilient GAR stays close to
// its clean accuracy; CGE's norm-blind spot shows against sign_flip.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"

int main() {
  using namespace garfield::core;

  const std::vector<std::string> gars = {
      "average",       "median",        "trimmed_mean",
      "multi_krum",    "mda",           "geometric_median",
      "centered_clip", "cge"};
  const std::vector<std::string> attacks = {"none", "random", "reversed",
                                            "sign_flip", "zero"};

  std::printf("Ablation — final accuracy, SSMW (nw=9, fw=2), live training, "
              "150 iterations\n\n%-18s", "GAR \\ attack");
  for (const auto& a : attacks) std::printf("%-12s", a.c_str());
  std::printf("\n");

  for (const auto& gar : gars) {
    std::printf("%-18s", gar.c_str());
    for (const auto& attack : attacks) {
      DeploymentConfig cfg;
      cfg.deployment = Deployment::kSsmw;
      cfg.model = "tiny_mlp";
      cfg.nw = 9;
      cfg.fw = 2;
      cfg.gradient_gar = gar;
      cfg.worker_attack = attack == "none" ? "" : attack;
      cfg.batch_size = 16;
      cfg.train_size = 1536;
      cfg.test_size = 384;
      cfg.optimizer.lr.gamma0 = 0.1F;
      cfg.iterations = 150;
      cfg.eval_every = 0;
      cfg.seed = 13;
      try {
        cfg.validate();
        std::printf("%-12.3f", train(garfield::bench::smoke(cfg)).final_accuracy);
      } catch (const std::exception&) {
        std::printf("%-12s", "n/a");
      }
    }
    std::printf("\n");
  }
  std::printf("\nShape: the 'average' row collapses under reversed and "
              "degrades under random;\nevery resilient GAR stays near its "
              "clean accuracy in all columns. (CGE's\nsame-norm blind spot "
              "needs an omniscient attacker — see the\nCge.DocumentedBlindSpot"
              "SameNormFlip unit test.)\n");
  return 0;
}
