#include "attacks/registry.h"

#include <stdexcept>

namespace garfield::attacks {

// -------------------------------------------------------- parse_attack_spec

AttackSpec parse_attack_spec(const std::string& spec) {
  return util::parse_spec(spec, "attack spec");
}

// ---------------------------------------------------------- AttackRegistry

AttackRegistry::AttackRegistry() { detail::register_core_attacks(*this); }

AttackRegistry& AttackRegistry::instance() {
  static AttackRegistry registry;
  return registry;
}

void AttackRegistry::add(AttackDescriptor descriptor) {
  if (!util::valid_identifier(descriptor.name)) {
    throw std::invalid_argument("attack registry: bad attack name '" +
                                descriptor.name + "'");
  }
  if (!descriptor.factory) {
    throw std::invalid_argument("attack registry: attack '" +
                                descriptor.name + "' is missing a factory");
  }
  if (find(descriptor.name) != nullptr) {
    throw std::invalid_argument("attack registry: attack '" +
                                descriptor.name + "' is already registered");
  }
  descriptors_.push_back(std::move(descriptor));
}

const AttackDescriptor* AttackRegistry::find(const std::string& name) const {
  for (const AttackDescriptor& d : descriptors_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const AttackDescriptor& AttackRegistry::at(const std::string& name) const {
  const AttackDescriptor* d = find(name);
  if (d == nullptr) {
    throw std::invalid_argument("attack registry: unknown attack '" + name +
                                "'");
  }
  return *d;
}

std::vector<std::string> AttackRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(descriptors_.size());
  for (const AttackDescriptor& d : descriptors_) out.push_back(d.name);
  return out;
}

// ---------------------------------------------- registry-backed make_attack

AttackPtr make_attack(const AttackSpec& spec) {
  const AttackDescriptor& desc = AttackRegistry::instance().at(spec.name);
  AttackPtr attack = desc.factory(spec.options);

  const std::vector<std::string> leftover = spec.options.unconsumed();
  if (!leftover.empty()) {
    std::string what =
        "make_attack: unknown option(s) for attack '" + spec.name + "':";
    for (const std::string& key : leftover) what += " '" + key + "'";
    throw std::invalid_argument(what);
  }
  return attack;
}

// ------------------------------------------------------------ attack plans

std::size_t AttackPlan::declared_attackers() const {
  std::size_t total = 0;
  for (const Entry& e : entries) total += e.count;
  return total;
}

std::vector<AttackSpec> AttackPlan::expand(std::size_t f) const {
  std::vector<AttackSpec> out;
  if (empty()) {
    if (f != 0) {
      throw std::invalid_argument(
          "attack plan: empty plan cannot cover " + std::to_string(f) +
          " attacker(s)");
    }
    return out;
  }
  if (uniform()) {
    out.assign(f, entries.front().spec);
    return out;
  }
  const std::size_t declared = declared_attackers();
  if (declared != f) {
    throw std::invalid_argument(
        "attack plan: plan assigns " + std::to_string(declared) +
        " attacker(s) but the cohort declares f=" + std::to_string(f));
  }
  out.reserve(f);
  for (const Entry& e : entries) {
    for (std::size_t k = 0; k < e.count; ++k) out.push_back(e.spec);
  }
  return out;
}

AttackPlan parse_attack_plan(const std::string& plan) {
  AttackPlan out;
  if (plan.empty()) return out;

  std::size_t begin = 0;
  while (begin <= plan.size()) {
    const auto semi = plan.find(';', begin);
    const std::string item =
        plan.substr(begin, semi == std::string::npos ? std::string::npos
                                                     : semi - begin);
    if (item.empty()) {
      throw std::invalid_argument("attack plan: empty entry in '" + plan +
                                  "'");
    }
    AttackPlan::Entry entry;
    std::string spec_text = item;
    const auto star = item.find('*');
    if (star != std::string::npos) {
      const std::string count_text = item.substr(0, star);
      try {
        std::size_t pos = 0;
        if (count_text.empty() || count_text.front() == '-') {
          throw std::invalid_argument(count_text);
        }
        entry.count = std::stoull(count_text, &pos);
        if (pos != count_text.size()) throw std::invalid_argument(count_text);
      } catch (const std::exception&) {
        throw std::invalid_argument(
            "attack plan: expected a positive count before '*' in '" + item +
            "'");
      }
      if (entry.count == 0) {
        throw std::invalid_argument("attack plan: zero count in '" + item +
                                    "'");
      }
      entry.explicit_count = true;
      spec_text = item.substr(star + 1);
    }
    entry.spec = parse_attack_spec(spec_text);
    out.entries.push_back(std::move(entry));
    if (semi == std::string::npos) break;
    begin = semi + 1;
  }
  return out;
}

AttackPlan validate_attack_plan(const std::string& plan, std::size_t f,
                                const std::string& role) {
  AttackPlan parsed;
  try {
    parsed = parse_attack_plan(plan);
    // Throwaway constructions surface unknown attacks and unknown or
    // malformed options now, instead of exploding mid-training when the
    // trainer builds the Byzantine cohort.
    for (const AttackPlan::Entry& entry : parsed.entries) {
      (void)make_attack(entry.spec);
    }
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("config: " + role + ": " + e.what());
  }
  if (!parsed.empty() && !parsed.uniform() &&
      parsed.declared_attackers() != f) {
    throw std::invalid_argument(
        "config: " + role + " plan '" + plan + "' assigns " +
        std::to_string(parsed.declared_attackers()) +
        " attacker(s) but the cohort declares f=" + std::to_string(f));
  }
  return parsed;
}

// -------------------------------------- string API (thin registry queries)

std::vector<std::string> attack_names() {
  return AttackRegistry::instance().names();
}

AttackPtr make_attack(const std::string& spec) {
  return make_attack(parse_attack_spec(spec));
}

bool attack_is_omniscient(const std::string& spec) {
  return AttackRegistry::instance().at(parse_attack_spec(spec).name)
      .omniscient;
}

}  // namespace garfield::attacks
