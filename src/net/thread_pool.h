// Fixed-size thread pool used by the simulated cluster to execute RPC
// handler invocations concurrently, the way a gRPC server's completion
// queues would. Pool threads only ever run handler compute: simulated link
// delay lives in the TimerWheel (timer_wheel.h), so the pool can be sized
// to hardware concurrency instead of over-provisioned to hide sleeps.
//
// Locking discipline (compile-checked under the clang-analyze preset):
// `mutex_` guards the task queue and the stop flag; workers hold it only
// while dequeuing, never while running a task.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::net {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; never blocks. Returns false once shutdown has begun,
  /// leaving `task` untouched so the caller can still run or resolve it —
  /// Cluster::dispatch counts these as dropped_tasks and resolves the RPC
  /// callback so quorum accounting cannot hang; the TimerWheel runs the
  /// refused task inline.
  [[nodiscard]] bool submit(std::function<void()>&& task)
      GARFIELD_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() GARFIELD_EXCLUDES(mutex_);

  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ GARFIELD_GUARDED_BY(mutex_);
  bool stop_ GARFIELD_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace garfield::net
