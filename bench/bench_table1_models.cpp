// Table 1 — models used to evaluate Garfield.
//
// Prints (a) the paper's model specs carried by the simulator (exact
// parameter counts from Table 1, used by every throughput figure) and
// (b) the trainable scaled-down zoo used by the convergence experiments.
#include <cstdio>

#include "nn/zoo.h"
#include "sim/model_spec.h"
#include "tensor/rng.h"

int main() {
  std::printf("Table 1 (paper specs, used by the throughput simulator)\n");
  std::printf("%-12s %-14s %-10s\n", "Model", "# parameters", "Size (MB)");
  for (const auto& m : garfield::sim::table1_models()) {
    std::printf("%-12s %-14zu %-10.1f\n", m.name.c_str(), m.parameters,
                m.size_mb);
  }

  std::printf("\nTrainable zoo (architecture-faithful, scaled for the "
              "convergence experiments)\n");
  std::printf("%-12s %-14s %-16s\n", "Model", "# parameters", "input shape");
  for (const auto& name : garfield::nn::model_names()) {
    garfield::tensor::Rng rng(1);
    const auto model = garfield::nn::make_model(name, rng);
    std::string shape = "{";
    for (std::size_t i = 0; i < model->input_shape().size(); ++i) {
      if (i) shape += ",";
      shape += std::to_string(model->input_shape()[i]);
    }
    shape += "}";
    std::printf("%-12s %-14zu %-16s\n", name.c_str(), model->dimension(),
                shape.c_str());
  }
  return 0;
}
