// Variance-condition checker — the C++ equivalent of the paper's
// measure_variance.py tool (§3.1).
//
// Each GAR is provably resilient only while the gradient-estimate noise is
// small relative to the true gradient:
//     exists kappa > 1:  kappa * Delta(GAR, n, f) * sqrt(E||g - Eg||^2)
//                          <= ||grad L(theta)||
// The tool runs a few training steps, estimates the true gradient with a
// huge batch, the per-worker variance with the experiment's batch size, and
// reports how often each GAR's condition holds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace garfield::gars {

/// Experiment description, mirroring the script's inputs.
struct VarianceSetup {
  std::size_t n = 10;          ///< total number of workers
  std::size_t f = 2;           ///< declared Byzantine workers
  std::size_t batch_size = 32; ///< per-worker mini-batch size
  std::size_t steps = 20;      ///< training steps to sample
  std::size_t huge_batch = 2048;  ///< batch used to estimate the true gradient
  float lr = 0.05F;            ///< SGD rate used to advance theta between samples
  std::uint64_t seed = 1;
};

/// Per-GAR outcome over the sampled steps.
struct VarianceStat {
  std::string gar;
  double delta = 0.0;           ///< the Delta(GAR, n, f) coefficient
  double fraction_satisfied = 0.0;  ///< steps where ratio > 1
  double mean_ratio = 0.0;      ///< mean of ||gradL|| / (Delta * sigma)
  double min_ratio = 0.0;
};

struct VarianceReport {
  std::vector<VarianceStat> stats;
  std::size_t steps = 0;

  [[nodiscard]] const VarianceStat& for_gar(const std::string& name) const;
};

/// Delta coefficient of the resilience condition, as given in §3.1.
/// Supported names: "mda", "krum" (also used for multi_krum), "median".
[[nodiscard]] double variance_delta(const std::string& gar, std::size_t n,
                                    std::size_t f);

/// Run the measurement: advances `model` with plain SGD on `train` for
/// setup.steps steps, sampling the condition at every step.
[[nodiscard]] VarianceReport measure_variance(nn::Model& model,
                                              const data::Dataset& train,
                                              const VarianceSetup& setup);

}  // namespace garfield::gars
