// Determinism and efficacy of the adaptive/mixed adversaries the Adversary
// API v2 adds: seeded bitwise reproducibility of `alternating` and
// `adaptive_z` (the CTest harness reruns this binary with
// GARFIELD_THREADS=1 as the *_serial variant, pinning serial equivalence),
// and the mixed-cohort ScenarioMatrix cell the ISSUE names: a
// LIE + sign_flip cohort degrades plain averaging but not centered_clip.
#include <gtest/gtest.h>

#include <cstring>

#include "attacks/attack.h"
#include "attacks/registry.h"
#include "support/test_support.h"
#include "tensor/vecops.h"

namespace ga = garfield::attacks;
namespace gt = garfield::tensor;
namespace ts = garfield::testsupport;

using gt::FlatVector;

namespace {

constexpr std::uint64_t kSeed = 20260728;

/// Bitwise vector equality (determinism tests compare representations).
bool bit_equal(const FlatVector& a, const FlatVector& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(float)) == 0);
}

}  // namespace

// ------------------------------------------------------------- determinism

TEST(AdaptiveDeterminism, AlternatingIsBitwiseReproducible) {
  // Two attackers built from the same spec, fed the same context stream,
  // must emit identical bits at every iteration — including across the
  // period boundary where the active sub-attack switches.
  const std::string spec = "alternating:period=3,first=reversed,second=zero";
  std::vector<FlatVector> first_run;
  for (int run = 0; run < 2; ++run) {
    ga::AttackPtr attack = ga::make_attack(spec);
    gt::Rng rng(kSeed);
    std::vector<FlatVector> outputs;
    for (std::uint64_t it = 0; it < 8; ++it) {
      FlatVector honest(16);
      for (float& x : honest) x = rng.normal(1.0F, 0.1F);
      ga::AttackContext ctx(rng);
      ctx.iteration = it;
      auto out = attack->craft(honest, ctx);
      ASSERT_TRUE(out.has_value());
      outputs.push_back(std::move(*out));
    }
    if (run == 0) {
      first_run = std::move(outputs);
    } else {
      for (std::size_t i = 0; i < first_run.size(); ++i) {
        EXPECT_TRUE(bit_equal(first_run[i], outputs[i])) << "iteration " << i;
      }
    }
  }
}

TEST(AdaptiveDeterminism, AdaptiveZIsBitwiseReproducibleAndSeedSensitive) {
  ts::Scenario s;
  s.gar = "krum";
  s.attack = "adaptive_z";
  s.f = 2;
  s.n = 11;
  s.seed = kSeed;
  const ts::ScenarioResult a = ts::run_scenario(s);
  const ts::ScenarioResult b = ts::run_scenario(s);
  EXPECT_TRUE(bit_equal(a.aggregate, b.aggregate));
  EXPECT_TRUE(bit_equal(a.honest_mean, b.honest_mean));

  s.seed += 1;
  const ts::ScenarioResult c = ts::run_scenario(s);
  EXPECT_FALSE(bit_equal(a.aggregate, c.aggregate)) << "seed must matter";
}

TEST(AdaptiveDeterminism, AdaptiveZSearchIsDeterministicOnAFixedView) {
  // The bisection itself uses no randomness: identical views produce the
  // identical intensity and payload, twice from the same instance (the
  // stateful last_z must not feed back into the search).
  gt::Rng rng(kSeed);
  std::vector<FlatVector> view(9, FlatVector(32));
  for (auto& v : view) {
    for (float& x : v) x = rng.normal(1.0F, 0.1F);
  }
  ga::AdaptiveZAttack attack;
  FlatVector honest = view[0];
  ga::AttackContext ctx(rng);
  ctx.f = 2;
  ctx.honest = view;
  auto first = attack.craft(honest, ctx);
  const double z1 = attack.last_z();
  auto second = attack.craft(honest, ctx);
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(bit_equal(*first, *second));
  EXPECT_DOUBLE_EQ(z1, attack.last_z());
}

// ------------------------------------------------------ mixed-cohort cell

TEST(MixedCohort, ScenarioMatrixDrivesALiePlusSignFlipCellDeterministically) {
  // A shaped plan rides through the ScenarioMatrix runner end to end: the
  // matrix emits the (centered_clip, f=3) cell sized for the plan, and the
  // cell is bitwise reproducible (the *_serial rerun pins this under
  // GARFIELD_THREADS=1).
  ts::ScenarioMatrix matrix;
  matrix.gars = {"centered_clip"};
  matrix.attacks = {"little_is_enough:z=3;2*sign_flip"};
  matrix.byzantine_fs = {3};
  matrix.quorum_slacks = {0};
  std::size_t cells = 0;
  FlatVector first;
  matrix.for_each([&](const ts::Scenario& cell) {
    const ts::ScenarioResult once = ts::run_scenario(cell);
    const ts::ScenarioResult again = ts::run_scenario(cell);
    EXPECT_TRUE(bit_equal(once.aggregate, again.aggregate));
    EXPECT_TRUE(gt::all_finite(once.aggregate));
    EXPECT_LE(once.rms_deviation, ts::robustness_tolerance(cell));
    ++cells;
  });
  EXPECT_EQ(cells, 1u);
}

TEST(MixedCohort, LiePlusSignFlipDegradesAverageButNotCenteredClip) {
  // Same cloud, same mixed cohort, two rules: plain averaging absorbs all
  // three Byzantine payloads and is dragged well outside the honest
  // scatter; centered_clip clips their leverage and stays inside it.
  ts::Scenario cell;
  cell.attack = "little_is_enough:z=3;2*sign_flip";
  cell.n = 10;
  cell.f = 3;
  cell.seed = kSeed;

  cell.gar = "average";
  const ts::ScenarioResult averaged = ts::run_scenario(cell);
  cell.gar = "centered_clip";
  const ts::ScenarioResult clipped = ts::run_scenario(cell);

  // Both saw the full cohort (no payload was dropped or non-finite).
  EXPECT_EQ(averaged.received, cell.n);
  EXPECT_EQ(clipped.received, cell.n);
  // centered_clip stays within the resilient tolerance; average does not.
  EXPECT_LE(clipped.rms_deviation, ts::robustness_tolerance(cell));
  EXPECT_GT(averaged.rms_deviation, 2.0 * double(cell.spread));
  EXPECT_GT(averaged.rms_deviation, 4.0 * clipped.rms_deviation);
}
