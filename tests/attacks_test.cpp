// Unit tests for garfield::attacks plus the GAR-vs-attack robustness
// matrix: every Byzantine-resilient GAR against every implemented attack,
// including the omniscient ones (little-is-enough, fall-of-empires,
// adaptive_z). Registry/spec/plan behaviour lives in attack_registry_test;
// adaptive-attack determinism in adaptive_attacks_test.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attack.h"
#include "gars/gar.h"
#include "tensor/vecops.h"

namespace ga = garfield::attacks;
namespace gg = garfield::gars;
namespace gt = garfield::tensor;

using gt::FlatVector;

namespace {

std::vector<FlatVector> honest_gradients(std::size_t n, std::size_t d,
                                         gt::Rng& rng) {
  std::vector<FlatVector> out(n, FlatVector(d));
  for (auto& g : out) {
    for (std::size_t j = 0; j < d; ++j)
      g[j] = 1.0F + 0.1F * float(j % 3) + rng.normal(0.0F, 0.15F);
  }
  return out;
}

/// Context for a lone attacker with no cohort view.
ga::AttackContext blind_context(gt::Rng& rng) {
  return ga::AttackContext(rng);
}

/// Context for an omniscient attacker seeing `view`.
ga::AttackContext seeing_context(gt::Rng& rng,
                                 std::span<const FlatVector> view) {
  ga::AttackContext ctx(rng);
  ctx.honest = view;
  ctx.n = view.size() + 1;
  ctx.f = 1;
  return ctx;
}

}  // namespace

TEST(AttackFactory, KnowsAllNames) {
  for (const std::string& name : ga::attack_names()) {
    ga::AttackPtr attack = ga::make_attack(name);
    EXPECT_EQ(attack->name(), name);
  }
}

TEST(AttackFactory, UnknownNameThrows) {
  EXPECT_THROW((void)ga::make_attack("nuke"), std::invalid_argument);
}

TEST(RandomAttack, ReplacesWithNoiseOfRightSize) {
  gt::Rng rng(1);
  ga::RandomAttack attack(2.0F);
  FlatVector honest(100, 1.0F);
  ga::AttackContext ctx = blind_context(rng);
  auto out = attack.craft(honest, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), honest.size());
  // The crafted vector should look nothing like the honest one.
  EXPECT_GT(gt::squared_distance(*out, honest), 10.0);
}

TEST(ReversedAttack, MultipliesByMinusFactor) {
  gt::Rng rng(2);
  ga::ReversedAttack attack(100.0F);
  FlatVector honest{1.0F, -2.0F};
  ga::AttackContext ctx = blind_context(rng);
  auto out = attack.craft(honest, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_FLOAT_EQ((*out)[0], -100.0F);
  EXPECT_FLOAT_EQ((*out)[1], 200.0F);
}

TEST(DroppedAttack, SendsNothing) {
  gt::Rng rng(3);
  ga::DroppedAttack attack;
  FlatVector honest{1.0F};
  ga::AttackContext ctx = blind_context(rng);
  EXPECT_FALSE(attack.craft(honest, ctx).has_value());
}

TEST(SignFlipAttack, NegatesVector) {
  gt::Rng rng(4);
  ga::SignFlipAttack attack;
  FlatVector honest{3.0F, -4.0F};
  ga::AttackContext ctx = blind_context(rng);
  auto out = attack.craft(honest, ctx);
  EXPECT_FLOAT_EQ((*out)[0], -3.0F);
  EXPECT_FLOAT_EQ((*out)[1], 4.0F);
}

TEST(ZeroAttack, AllZeros) {
  gt::Rng rng(5);
  ga::ZeroAttack attack;
  FlatVector honest{3.0F, -4.0F};
  ga::AttackContext ctx = blind_context(rng);
  auto out = attack.craft(honest, ctx);
  EXPECT_FLOAT_EQ((*out)[0], 0.0F);
  EXPECT_FLOAT_EQ((*out)[1], 0.0F);
}

TEST(LittleIsEnough, StaysWithinFewSigmaOfMean) {
  gt::Rng rng(6);
  auto others = honest_gradients(8, 16, rng);
  ga::LittleIsEnoughAttack attack(1.5F);
  ga::AttackContext ctx = seeing_context(rng, others);
  auto out = attack.craft(others[0], ctx);
  ASSERT_TRUE(out.has_value());
  const FlatVector mu = gt::mean(others);
  // Crafted vector deviates from the mean but by a bounded amount
  // (that is the point: hide inside the variance).
  const double dist = std::sqrt(gt::squared_distance(*out, mu));
  EXPECT_GT(dist, 0.0);
  EXPECT_LT(dist, 8.0);
}

TEST(LittleIsEnough, DegradesGracefullyWithoutOthers) {
  gt::Rng rng(7);
  ga::LittleIsEnoughAttack attack;
  FlatVector honest{1.0F, 2.0F};
  ga::AttackContext ctx = blind_context(rng);
  auto out = attack.craft(honest, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, honest);
}

TEST(LittleIsEnough, IntensityScalesTheDeviation) {
  gt::Rng rng(9);
  auto others = honest_gradients(8, 16, rng);
  const FlatVector mu = gt::mean(others);
  double previous = 0.0;
  for (float z : {0.5F, 1.5F, 3.0F}) {
    ga::LittleIsEnoughAttack attack(z);
    ga::AttackContext ctx = seeing_context(rng, others);
    auto out = attack.craft(others[0], ctx);
    ASSERT_TRUE(out.has_value());
    const double dist = std::sqrt(gt::squared_distance(*out, mu));
    EXPECT_GT(dist, previous) << "z=" << z;
    previous = dist;
  }
}

TEST(FallOfEmpires, OpposesHonestMean) {
  gt::Rng rng(8);
  auto others = honest_gradients(8, 16, rng);
  ga::FallOfEmpiresAttack attack(1.1F);
  ga::AttackContext ctx = seeing_context(rng, others);
  auto out = attack.craft(others[0], ctx);
  ASSERT_TRUE(out.has_value());
  const FlatVector mu = gt::mean(others);
  EXPECT_LT(gt::cosine(*out, mu), -0.99);
}

TEST(Alternating, SwitchesSubAttackOnThePeriod) {
  gt::Rng rng(10);
  ga::AttackPtr attack = ga::make_attack("alternating:period=2");
  FlatVector honest{3.0F, -4.0F};
  // period=2 with defaults: iterations 0,1 sign_flip; 2,3 zero; 4 flips
  // back.
  for (std::uint64_t it : {0u, 1u, 4u, 5u}) {
    ga::AttackContext ctx = blind_context(rng);
    ctx.iteration = it;
    auto out = attack->craft(honest, ctx);
    ASSERT_TRUE(out.has_value());
    EXPECT_FLOAT_EQ((*out)[0], -3.0F) << "iteration " << it;
  }
  for (std::uint64_t it : {2u, 3u, 6u, 7u}) {
    ga::AttackContext ctx = blind_context(rng);
    ctx.iteration = it;
    auto out = attack->craft(honest, ctx);
    ASSERT_TRUE(out.has_value());
    EXPECT_FLOAT_EQ((*out)[0], 0.0F) << "iteration " << it;
  }
}

TEST(AdaptiveZ, TunesIntensityAgainstTheProbe) {
  gt::Rng rng(11);
  auto others = honest_gradients(9, 32, rng);
  ga::AdaptiveZAttack attack;  // probe=krum, z_max=8
  ga::AttackContext ctx = seeing_context(rng, others);
  ctx.f = 2;
  auto out = attack.craft(others[0], ctx);
  ASSERT_TRUE(out.has_value());
  // The attack found a strictly positive intensity that still hides from
  // Krum — but well below the unconstrained maximum (Krum filters z_max).
  EXPECT_GT(attack.last_z(), 0.0);
  EXPECT_LT(attack.last_z(), 8.0);
  // Against a defenseless probe the same attacker goes full throttle.
  ga::AdaptiveZAttack::Options greedy;
  greedy.probe = "average";
  ga::AdaptiveZAttack unopposed(greedy);
  ga::AttackContext ctx2 = seeing_context(rng, others);
  ctx2.f = 2;
  ASSERT_TRUE(unopposed.craft(others[0], ctx2).has_value());
  EXPECT_DOUBLE_EQ(unopposed.last_z(), greedy.z_max);
  EXPECT_GT(unopposed.last_z(), attack.last_z());
}

// --------------------------------------------------- robustness matrix

struct MatrixCase {
  std::string gar;
  std::string attack;
};

class GarVsAttack : public ::testing::TestWithParam<MatrixCase> {};

/// For each (GAR, attack) pair: n = 11, f = 2 omniscient attackers. The
/// aggregated output must stay positively aligned with the honest mean —
/// the defining property of Byzantine resilience (the aggregate never
/// points away from the descent direction).
TEST_P(GarVsAttack, AggregateStaysAlignedWithHonestMean) {
  const MatrixCase& c = GetParam();
  gt::Rng rng(42);
  const std::size_t n = 11, f = 2, d = 32;
  auto inputs = honest_gradients(n, d, rng);
  std::vector<FlatVector> honest(inputs.begin(), inputs.end() - f);
  const FlatVector honest_mean = gt::mean(honest);

  ga::AttackPtr attack = ga::make_attack(c.attack);
  std::size_t byzantine_count = 0;
  std::vector<FlatVector> delivered = honest;
  for (std::size_t k = 0; k < f; ++k) {
    ga::AttackContext ctx(rng);
    ctx.attacker_id = n - 1 - k;
    ctx.n = n;
    ctx.f = f;
    ctx.honest = honest;
    auto crafted = attack->craft(inputs[n - 1 - k], ctx);
    if (crafted) {
      delivered.push_back(std::move(*crafted));
      ++byzantine_count;
    }
  }
  // Dropped vectors never reach the GAR (fastest-q semantics); aggregate
  // whatever arrived.
  gg::GarPtr gar = gg::make_gar(c.gar, delivered.size(), byzantine_count);
  const FlatVector out = gar->aggregate(delivered);

  EXPECT_TRUE(gt::all_finite(out)) << c.gar << " vs " << c.attack;
  EXPECT_GT(gt::cosine(out, honest_mean), 0.5)
      << c.gar << " vs " << c.attack;
  // And the magnitude stays commensurate with honest gradients.
  EXPECT_LT(gt::norm(out), 3.0 * gt::norm(honest_mean))
      << c.gar << " vs " << c.attack;
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const char* gar :
       {"median", "trimmed_mean", "krum", "multi_krum", "mda", "bulyan"}) {
    for (const char* attack :
         {"random", "reversed", "dropped", "sign_flip", "zero",
          "little_is_enough", "fall_of_empires", "alternating",
          "adaptive_z"}) {
      cases.push_back({gar, attack});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GarVsAttack, ::testing::ValuesIn(matrix_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.gar + "_vs_" + info.param.attack;
    });

/// Negative control: plain averaging is NOT resilient — the same attacks
/// must break it (otherwise the matrix above proves nothing).
TEST(AverageIsFragile, ReversedAttackFlipsTheMean) {
  gt::Rng rng(43);
  const std::size_t n = 11, f = 2, d = 32;
  auto inputs = honest_gradients(n, d, rng);
  std::vector<FlatVector> honest(inputs.begin(), inputs.end() - f);
  const FlatVector honest_mean = gt::mean(honest);
  ga::ReversedAttack attack(100.0F);
  std::vector<FlatVector> delivered = honest;
  for (std::size_t k = 0; k < f; ++k) {
    ga::AttackContext ctx(rng);
    ctx.honest = honest;
    delivered.push_back(*attack.craft(inputs[n - 1 - k], ctx));
  }
  gg::GarPtr avg = gg::make_gar("average", delivered.size(), 0);
  EXPECT_LT(gt::cosine(avg->aggregate(delivered), honest_mean), 0.0);
}
