// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These wrap Clang's capability analysis attributes so the locking
// discipline of every concurrent subsystem is *stated in the types* and
// proven at compile time: a field tagged GARFIELD_GUARDED_BY(mu) can only
// be touched while `mu` is held, a function tagged GARFIELD_REQUIRES(mu)
// can only be called with `mu` held, and violations are -Wthread-safety
// diagnostics — promoted to errors by the `clang-analyze` preset
// (GARFIELD_THREAD_SAFETY=ON, -Wthread-safety -Werror).
//
// Under GCC (the default local toolchain) every macro expands to nothing;
// tests/thread_annotations_test.cpp compile-tests that no-op path, and the
// CI matrix builds both toolchains so neither can rot.
//
// Conventions (new concurrent code must follow them — see README
// "Correctness tooling"):
//   - use util::Mutex / util::MutexLock / util::CondVar (util/mutex.h)
//     instead of raw std::mutex / std::lock_guard / std::condition_variable
//     wherever a field is shared across threads;
//   - annotate every guarded field with GARFIELD_GUARDED_BY(mu);
//   - annotate helpers that expect the lock held with
//     GARFIELD_REQUIRES(mu) instead of documenting it in a comment;
//   - GARFIELD_NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a
//     comment explaining why the analysis cannot see the invariant.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define GARFIELD_CAPABILITY(x) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define GARFIELD_SCOPED_CAPABILITY \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read/written while `x` is held.
#define GARFIELD_GUARDED_BY(x) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointed-to data may only be touched while `x` is held.
#define GARFIELD_PT_GUARDED_BY(x) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively).
#define GARFIELD_REQUIRES(...) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard).
#define GARFIELD_EXCLUDES(...) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and holds it on return).
#define GARFIELD_ACQUIRE(...) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define GARFIELD_RELEASE(...) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define GARFIELD_TRY_ACQUIRE(b, ...) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Returns a reference to the capability guarding the annotated object.
#define GARFIELD_RETURN_CAPABILITY(x) \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is correct but inexpressible.
#define GARFIELD_NO_THREAD_SAFETY_ANALYSIS \
  GARFIELD_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
