// util/thread_annotations.h + util/mutex.h coverage.
//
// Two jobs. First, the portable no-op path: this suite compiles the whole
// annotation macro surface under whatever compiler builds the tests — on
// GCC every GARFIELD_* capability macro must expand to nothing (the
// attributes are Clang-only), so merely building this file under the GCC
// half of the CI matrix proves the tree does not depend on Clang to parse.
// Second, behaviour: util::Mutex / MutexLock / CondVar are thin wrappers,
// but they are the only lock primitives the annotated subsystems use, so
// mutual exclusion, scoped release, try-lock semantics and every CondVar
// wait overload get pinned here once instead of implicitly in every
// transport test.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace util = garfield::util;

namespace {

// The full macro surface on one annotated type — the compile test. Under
// Clang this also gives -Wthread-safety a self-contained fixture; under
// GCC every macro must vanish.
class GARFIELD_CAPABILITY("mutex") FakeCap {};

struct AnnotatedCounter {
  util::Mutex mu;
  int value GARFIELD_GUARDED_BY(mu) = 0;
  int* slot GARFIELD_PT_GUARDED_BY(mu) = nullptr;

  void bump() GARFIELD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    bump_locked();
  }
  void bump_locked() GARFIELD_REQUIRES(mu) { ++value; }
  int read() GARFIELD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    return value;
  }
  int racy_read() GARFIELD_NO_THREAD_SAFETY_ANALYSIS { return value; }
};

}  // namespace

TEST(ThreadAnnotations, MacrosCompileToNoOpsOutsideClang) {
#if defined(__clang__)
  SUCCEED() << "clang: attributes active, -Wthread-safety enforced by the "
               "clang-analyze preset";
#else
  // The macros must not merely compile — they must expand to *nothing*
  // (GCC never sees the Clang-only attributes, so it cannot warn on or
  // misparse them). Stringizing the expansion pins that down.
#define GARFIELD_TEST_STR2(x) #x
#define GARFIELD_TEST_STR(x) GARFIELD_TEST_STR2(x)
  EXPECT_STREQ(GARFIELD_TEST_STR(GARFIELD_GUARDED_BY(mu)), "");
  EXPECT_STREQ(GARFIELD_TEST_STR(GARFIELD_REQUIRES(mu)), "");
  EXPECT_STREQ(GARFIELD_TEST_STR(GARFIELD_SCOPED_CAPABILITY), "");
  EXPECT_STREQ(GARFIELD_TEST_STR(GARFIELD_NO_THREAD_SAFETY_ANALYSIS), "");
#undef GARFIELD_TEST_STR
#undef GARFIELD_TEST_STR2
#endif
  AnnotatedCounter counter;
  counter.bump();
  EXPECT_EQ(counter.read(), 1);
  EXPECT_EQ(counter.racy_read(), 1);
  (void)FakeCap{};
}

TEST(ThreadAnnotations, MutexProvidesMutualExclusion) {
  AnnotatedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kBumps = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kBumps; ++i) counter.bump();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.read(), kThreads * kBumps);
}

TEST(ThreadAnnotations, TryLockObservesAndTakesTheCapability) {
  util::Mutex mu;
  mu.lock();
  // try_lock on the owning thread is UB for std::mutex; probe from another
  // thread, which is also the only caller that can meaningfully fail.
  bool acquired_while_held = true;
  std::thread([&] {
    acquired_while_held = mu.try_lock();
    // Unreachable at runtime; branches on the try result so the analysis
    // sees the capability released on every path.
    if (acquired_while_held) mu.unlock();
  }).join();
  EXPECT_FALSE(acquired_while_held);
  mu.unlock();
  bool acquired_after_release = false;
  std::thread([&] {
    acquired_after_release = mu.try_lock();
    if (acquired_after_release) mu.unlock();
  }).join();
  EXPECT_TRUE(acquired_after_release);
}

TEST(ThreadAnnotations, MutexLockReleasesAtScopeExit) {
  util::Mutex mu;
  {
    util::MutexLock lock(mu);
  }
  bool acquired = false;
  std::thread([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  }).join();
  EXPECT_TRUE(acquired);
}

TEST(ThreadAnnotations, CondVarPredicateWaitWakesOnNotify) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    util::MutexLock lock(mu);
    cv.wait(mu, [&]() GARFIELD_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(ThreadAnnotations, CondVarWaitForTimesOutWhenNeverSignalled) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  const bool signalled = cv.wait_for(
      mu, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(signalled);
}

TEST(ThreadAnnotations, CondVarWaitUntilReportsTimeout) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.wait_until(mu, deadline), std::cv_status::timeout);
  EXPECT_FALSE(cv.wait_until(mu, deadline, [] { return false; }));
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter) {
  util::Mutex mu;
  util::CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      util::MutexLock lock(mu);
      cv.wait(mu, [&]() GARFIELD_REQUIRES(mu) { return go; });
      ++awake;
    });
  }
  {
    util::MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) t.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}
