// NetworkConditions — the single spec-driven description of everything the
// network does to a deployment, shared by BOTH execution planes (see
// ROADMAP "Deployment-sim scenarios"):
//
//  - the live in-process Cluster resolves every edge's delivery delay from
//    it (per-edge latency + deterministic hash jitter + heterogeneous slow
//    links + iteration-scheduled straggler lag + partition windows +
//    payload-proportional serialization at the edge's byte rate), and
//  - the analytic simulator (sim/deployment_sim.h) derives its
//    communication/wait terms from the *same parsed object*,
//
// so one spec string can be written once and cross-validated against both
// planes (tests/netcond_crossval_test.cpp).
//
// Spec grammar (util/spec.h clauses joined with ';'):
//
//   conditions := clause (";" clause)*            |  "" (ideal network)
//   clause     := name [ ":" key "=" value ("," key "=" value)* ]
//
// Clauses. `wan`, `straggler`, `partition`, `link` and `churn` may repeat;
// `hetero` and `fault` may appear at most once. Repeating a windowed
// clause is how a condition gets several time windows
// ("wan:latency=1ms;wan:latency=9ms,from_iter=50,len=20"); when several
// occurrences of one clause are active at the same iteration, the LAST
// one in spec order binds — a base clause followed by windowed overrides.
//
//   wan:latency=5ms,jitter=2ms,bw=1Gbps,from_iter=0,len=0
//       Base per-message latency plus a deterministic per-edge jitter in
//       [0, jitter) hashed from (seed, from, to, method, iteration).
//       `bw` (optional; Gbps/Mbps/MBps) makes bytes cost time: every
//       message additionally pays a serialization delay of
//       frame_bytes / bw, and a message departing while the link is still
//       draining a prior one queues behind it (live plane only — the
//       queue term is wall-clock contention, never part of the model
//       trajectory). from_iter/len window the clause (len=0 =>
//       open-ended; both default to the whole run).
//   hetero:slow_links=0-3,factor=10
//       Heterogeneous links: any edge touching a node in `slow_links` is
//       `factor` x slower (latency and jitter scale, and any configured
//       byte rate is derated to bw / factor — the live twin of
//       cost_model's degraded link class).
//   link:nodes=0-1,bw=200Mbps
//       Per-edge bandwidth override: edges touching a node in `nodes` run
//       at `bw`. Where several link clauses (or a wan bw) cover the same
//       edge, the slowest rate wins; hetero derating applies on top.
//   straggler:nodes=2,lag=50ms,from_iter=100,len=0
//       Iteration-scheduled straggler phase: replies *served by* nodes in
//       `nodes` are delayed by `lag` while the window
//       [from_iter, from_iter+len) is active (len=0 => open-ended).
//   partition:a=0-2,b=3-8,from_iter=50,len=20,lag=10ms
//       Partial synchrony: while the window is active, messages crossing
//       the a|b cut are DELAYED by `lag` — never dropped — modelling the
//       pre-GST regime where delivery is guaranteed but unbounded-ish.
//       Nodes in neither group are reachable from both sides.
//   churn:crash=3,at_iter=100,recover_after=50
//   churn:join=9,at_iter=200
//       Elastic membership: `crash` fail-stops the nodes at `at_iter`;
//       with `recover_after=m` they come back up at `at_iter + m`
//       (omitted or 0 => permanent). `join` nodes are absent from
//       iteration 0 and come up at `at_iter` — a join is a recovery of a
//       node that was never alive, and rides the same state-transfer
//       path. While a node is down, the live Cluster refuses delivery to
//       it (lifecycle FSM, net/cluster.h) and the analytic simulator
//       removes it from every stage's candidate pool.
//   fault:drop=0.01,dup=0.001,corrupt=0.005,delay_spike=5ms,spike=0.02,
//         edges=0-3,from_iter=50,len=20
//       Seeded message-fault injection. Every RPC attempt on an affected
//       edge draws one deterministic fault verdict hashed from
//       (seed, from, to, method, iteration, attempt): with probability
//       `drop` the message is silently lost, `corrupt` it is damaged in
//       flight (on tcp a real flipped byte the frame CRC catches; on
//       inproc an equivalent discard), `dup` a second copy arrives and is
//       discarded as a wasted duplicate. Verdicts are mutually exclusive
//       per attempt (drop > corrupt > dup precedence, so the clause
//       requires drop + corrupt + dup <= 1). Independently, with
//       probability `spike` the delivery delay gains `delay_spike`.
//       `edges` restricts injection to edges touching those nodes
//       (default: all edges); from_iter/len window the clause like
//       straggler phases (len=0 => open-ended). Because the verdict is a
//       pure hash, the same seed + spec replays the identical fault
//       schedule on both transport backends and in the analytic plane —
//       lost attempts surface as sender-side retries (net/cluster.h),
//       never as hangs. The fault clause does not repeat (multi-window
//       fault schedules are a recorded ROADMAP leftover).
//
// Durations accept us/ms/s suffixes (bare integers are microseconds) and
// reject negative or malformed values at parse time. Byte rates require a
// unit ("1Gbps", "200Mbps", "50MBps") and reject zero or malformed values.
// Node sets are single ids ("2") or inclusive ranges ("0-3"). Unknown
// clauses and unknown or unconsumed options are hard errors — a typo'd
// scenario must fail at DeploymentConfig::validate(), never run silently
// ideal.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace garfield::net {

/// Inclusive id range [lo, hi] parsed from "2" or "0-3".
struct NodeRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  [[nodiscard]] bool contains(std::size_t node) const {
    return node >= lo && node <= hi;
  }
  [[nodiscard]] std::size_t size() const { return hi - lo + 1; }
  /// Members of this range that fall inside the half-open id span
  /// [span_lo, span_hi) — the sim plane's per-cohort counting primitive.
  [[nodiscard]] std::size_t count_in(std::size_t span_lo,
                                     std::size_t span_hi) const;
};

/// Parse "2" or "0-3" (inclusive, lo <= hi); throws std::invalid_argument
/// on malformed input. `context` prefixes error messages.
[[nodiscard]] NodeRange parse_node_range(const std::string& text,
                                         const std::string& context);

class NetworkConditions {
 public:
  using Duration = std::chrono::microseconds;

  /// One windowed wan phase (latency/jitter/bandwidth). The last active
  /// phase in spec order binds at any iteration.
  struct Wan {
    Duration latency{0};
    Duration jitter{0};
    double byte_rate = 0.0;  ///< bytes/second; 0 => unlimited
    std::uint64_t from_iter = 0;
    std::uint64_t len = 0;  ///< 0 => open-ended
  };
  struct Hetero {
    NodeRange slow_links;
    double factor = 10.0;  ///< >= 1
  };
  /// Per-edge bandwidth override: edges touching `nodes` run at
  /// `byte_rate`; the slowest matching rate wins.
  struct LinkOverride {
    NodeRange nodes;
    double byte_rate = 0.0;  ///< bytes/second; always > 0 once parsed
  };
  struct Straggler {
    NodeRange nodes;
    Duration lag{0};
    std::uint64_t from_iter = 0;
    std::uint64_t len = 0;  ///< 0 => open-ended
  };
  struct Partition {
    NodeRange a;
    NodeRange b;
    std::uint64_t from_iter = 0;
    std::uint64_t len = 0;  ///< 0 => open-ended (no GST)
    Duration lag{10'000};   ///< cross-cut delivery delay while active
  };
  /// One scheduled membership event. A crash event downs `nodes` during
  /// [at_iter, at_iter + recover_after) (recover_after = 0 => forever); a
  /// join event downs them during [0, at_iter). Events are independent: a
  /// node covered by several is down whenever any of them says so.
  struct ChurnEvent {
    NodeRange nodes;
    std::uint64_t at_iter = 0;
    std::uint64_t recover_after = 0;  ///< crash events only; 0 => permanent
    bool join = false;
  };
  /// Seeded message-fault injection (see the grammar block above).
  struct Fault {
    double drop = 0.0;     ///< P(message silently lost) per attempt
    double corrupt = 0.0;  ///< P(message damaged in flight) per attempt
    double dup = 0.0;      ///< P(a duplicate copy arrives) per attempt
    double spike = 0.0;    ///< P(delivery delay gains delay_spike)
    Duration delay_spike{0};
    /// Edges touching these nodes are affected; nullopt = every edge.
    std::optional<NodeRange> edges;
    std::uint64_t from_iter = 0;
    std::uint64_t len = 0;  ///< 0 => open-ended
  };
  /// The deterministic outcome of one send attempt under the fault
  /// clause. At most one of drop/corrupt/dup is set; spike_delay is
  /// resolved independently and composes with the edge's base delay.
  struct FaultVerdict {
    bool drop = false;
    bool corrupt = false;
    bool dup = false;
    Duration spike_delay{0};
    [[nodiscard]] bool lost() const { return drop || corrupt; }
    [[nodiscard]] bool any() const {
      return drop || corrupt || dup || spike_delay.count() > 0;
    }
  };

  NetworkConditions() = default;

  /// Parse a conditions spec ("" => ideal network). Throws
  /// std::invalid_argument on grammar violations, unknown clauses/options,
  /// negative or malformed durations, zero or unit-less byte rates, and
  /// inverted ranges.
  [[nodiscard]] static NetworkConditions parse(const std::string& spec);

  /// Structural validation against a concrete cluster size: every node
  /// reference must fall inside [0, nodes) and the partition groups must be
  /// disjoint. Throws std::invalid_argument naming the offending clause.
  void validate(std::size_t nodes) const;

  /// The spec string this object was parsed from ("" for defaults).
  [[nodiscard]] const std::string& spec() const { return spec_; }

  [[nodiscard]] bool ideal() const {
    for (const Wan& w : wan_) {
      if (w.latency.count() > 0 || w.jitter.count() > 0 || w.byte_rate > 0.0)
        return false;
    }
    return !hetero_ && stragglers_.empty() && partitions_.empty() &&
           links_.empty() && churn_.empty() && !fault_;
  }

  // ----------------------------------------------------- live-plane queries

  /// Full delivery delay of one message on the live plane: scaled base
  /// latency + deterministic per-edge hash jitter + straggler lag at the
  /// serving callee + partition lag across the cut. Pure in its arguments —
  /// two runs of the same scenario see identical simulated latencies.
  /// `iteration` keys the jitter hash (for gossip it is the round tag, so
  /// every round draws fresh jitter); `window_iteration` drives the
  /// straggler/partition/wan schedules and defaults to `iteration` — pass
  /// the true training iteration when the method tag encodes more than it
  /// (the decentralized contraction gossip). The serialization component
  /// (frame bytes / byte_rate) is NOT included — the cluster composes it
  /// per message because only the sender knows the payload size.
  [[nodiscard]] Duration delay(
      std::size_t from, std::size_t to, const std::string& method,
      std::uint64_t iteration, std::uint64_t seed,
      std::optional<std::uint64_t> window_iteration = std::nullopt) const;

  /// The jitter component alone (hash of (seed, from, to, method,
  /// iteration) mapped to [0, jitter), before heterogeneous scaling).
  /// `window_iteration` picks the wan phase whose jitter magnitude applies
  /// (defaults to `iteration`).
  [[nodiscard]] Duration jitter_for(
      std::size_t from, std::size_t to, const std::string& method,
      std::uint64_t iteration, std::uint64_t seed,
      std::optional<std::uint64_t> window_iteration = std::nullopt) const;

  // ------------------------------------------------------------- bandwidth

  /// True when any wan phase carries a byte rate or any link override
  /// exists — the gate for the cluster's serialization/queue machinery.
  [[nodiscard]] bool has_bandwidth() const {
    if (!links_.empty()) return true;
    for (const Wan& w : wan_) {
      if (w.byte_rate > 0.0) return true;
    }
    return false;
  }
  /// Effective byte rate (bytes/second) of the directed edge (from, to) at
  /// `iteration`: the active wan rate, clamped down by every link override
  /// touching either endpoint, derated by the hetero factor on slow edges.
  /// 0 = unlimited (no serialization delay).
  [[nodiscard]] double byte_rate(std::size_t from, std::size_t to,
                                 std::uint64_t iteration) const;
  /// The active wan phase's byte rate alone (0 = none) — the sim plane's
  /// base rate before link-override and hetero resolution.
  [[nodiscard]] double wan_byte_rate(std::uint64_t iteration) const;
  /// Slowest link-override rate touching `node` (0 = none).
  [[nodiscard]] double link_rate_touching(std::size_t node) const;
  /// Nodes inside [lo, hi) touched by any link override — the sim plane's
  /// fastest-q dodge primitive for overridden edges.
  [[nodiscard]] std::size_t count_link_limited(std::size_t lo,
                                               std::size_t hi) const;
  /// Slowest link-override rate intersecting [lo, hi) (0 = none).
  [[nodiscard]] double min_link_rate(std::size_t lo, std::size_t hi) const;

  // ---------------------------------------------- plane-agnostic predicates

  [[nodiscard]] bool is_slow(std::size_t node) const {
    return hetero_ && hetero_->slow_links.contains(node);
  }
  /// Last active clause in spec order, or nullptr when no window covers
  /// `iteration` — the shared multi-window resolution rule.
  [[nodiscard]] const Wan* active_wan(std::uint64_t iteration) const;
  [[nodiscard]] const Straggler* active_straggler(
      std::uint64_t iteration) const;
  [[nodiscard]] const Partition* active_partition(
      std::uint64_t iteration) const;

  [[nodiscard]] bool straggler_window_active(std::uint64_t iteration) const {
    return active_straggler(iteration) != nullptr;
  }
  [[nodiscard]] bool is_straggling(std::size_t node,
                                   std::uint64_t iteration) const {
    const Straggler* s = active_straggler(iteration);
    return s != nullptr && s->nodes.contains(node);
  }
  [[nodiscard]] bool partition_window_active(std::uint64_t iteration) const {
    return active_partition(iteration) != nullptr;
  }
  /// True when `x` and `y` sit on opposite sides of an active cut.
  [[nodiscard]] bool partitioned(std::size_t x, std::size_t y,
                                 std::uint64_t iteration) const;

  // ------------------------------------------------------- fault injection

  [[nodiscard]] bool has_fault() const { return fault_.has_value(); }
  /// True when the fault window covers `iteration` AND the (from, to)
  /// edge is inside the clause's `edges` restriction — the gate both
  /// fault_verdict() and the analytic mirror share.
  [[nodiscard]] bool fault_active(std::size_t from, std::size_t to,
                                  std::uint64_t iteration) const;
  /// Resolve the deterministic fault outcome of send attempt number
  /// `attempt` (0 = the first try) for one message. Pure in its
  /// arguments: the sender, the receiver, the analytic plane and a replay
  /// all agree on which attempts are lost. Returns a no-fault verdict
  /// outside the window / edge set.
  [[nodiscard]] FaultVerdict fault_verdict(
      std::size_t from, std::size_t to, const std::string& method,
      std::uint64_t iteration, std::uint64_t seed, std::uint32_t attempt,
      std::optional<std::uint64_t> window_iteration = std::nullopt) const;
  /// P(one attempt is lost) = drop + corrupt — what the sim's expected
  /// retry mirror integrates over.
  [[nodiscard]] double fault_loss_rate() const {
    return fault_ ? fault_->drop + fault_->corrupt : 0.0;
  }
  /// Expected spike contribution per attempt, in seconds.
  [[nodiscard]] double fault_spike_seconds() const {
    return fault_ ? fault_->spike * double(fault_->delay_spike.count()) * 1e-6
                  : 0.0;
  }
  /// Nodes inside [lo, hi) whose edges the fault clause can touch at
  /// `iteration` (the whole span when no `edges=` restriction applies).
  [[nodiscard]] std::size_t count_faulty(std::size_t lo, std::size_t hi,
                                         std::uint64_t iteration) const;

  [[nodiscard]] bool has_churn() const { return !churn_.empty(); }
  /// True when the churn schedule has `node` down (crashed, or not yet
  /// joined) at `iteration` — the membership predicate both planes share.
  [[nodiscard]] bool churn_down(std::size_t node,
                                std::uint64_t iteration) const;
  /// The first iteration >= `iteration` at which `node` is up again, or
  /// nullopt when the schedule never brings it back.
  [[nodiscard]] std::optional<std::uint64_t> next_up_iteration(
      std::size_t node, std::uint64_t iteration) const;

  // ------------------------------------------------------ sim-plane queries
  // The analytic plane reasons over id spans (servers [0, nps), workers
  // [nps, nps+nw), decentralized peers [0, n)) rather than edges.

  /// Slow nodes inside [lo, hi).
  [[nodiscard]] std::size_t count_slow(std::size_t lo, std::size_t hi) const;
  /// Nodes inside [lo, hi) straggling at `iteration`.
  [[nodiscard]] std::size_t count_straggling(std::size_t lo, std::size_t hi,
                                             std::uint64_t iteration) const;
  /// Nodes inside [lo, hi) cut off from `from` at `iteration`.
  [[nodiscard]] std::size_t count_cross(std::size_t from, std::size_t lo,
                                        std::size_t hi,
                                        std::uint64_t iteration) const;
  /// Nodes inside [lo, hi) the churn schedule has down at `iteration` —
  /// the quorum-trajectory primitive (a cohort of span n fields
  /// n - count_down(...) responders).
  [[nodiscard]] std::size_t count_down(std::size_t lo, std::size_t hi,
                                       std::uint64_t iteration) const;

  [[nodiscard]] double latency_seconds(std::uint64_t iteration = 0) const {
    return double(latency(iteration).count()) * 1e-6;
  }
  [[nodiscard]] double jitter_seconds(std::uint64_t iteration = 0) const {
    return double(jitter(iteration).count()) * 1e-6;
  }
  [[nodiscard]] double straggler_lag_seconds(
      std::uint64_t iteration = 0) const {
    const Straggler* s = active_straggler(iteration);
    return s ? double(s->lag.count()) * 1e-6 : 0.0;
  }
  [[nodiscard]] double partition_lag_seconds(
      std::uint64_t iteration = 0) const {
    const Partition* p = active_partition(iteration);
    return p ? double(p->lag.count()) * 1e-6 : 0.0;
  }
  [[nodiscard]] double slow_factor() const {
    return hetero_ ? hetero_->factor : 1.0;
  }

  /// Latency/jitter of the wan phase active at `iteration` (zeros when no
  /// phase covers it).
  [[nodiscard]] Duration latency(std::uint64_t iteration = 0) const {
    const Wan* w = active_wan(iteration);
    return w ? w->latency : Duration{0};
  }
  [[nodiscard]] Duration jitter(std::uint64_t iteration = 0) const {
    const Wan* w = active_wan(iteration);
    return w ? w->jitter : Duration{0};
  }
  [[nodiscard]] const std::vector<Wan>& wan() const { return wan_; }
  [[nodiscard]] const std::optional<Hetero>& hetero() const {
    return hetero_;
  }
  [[nodiscard]] const std::vector<LinkOverride>& links() const {
    return links_;
  }
  [[nodiscard]] const std::vector<Straggler>& stragglers() const {
    return stragglers_;
  }
  [[nodiscard]] const std::vector<Partition>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] const std::vector<ChurnEvent>& churn() const {
    return churn_;
  }
  [[nodiscard]] const std::optional<Fault>& fault() const { return fault_; }

 private:
  std::string spec_;
  std::vector<Wan> wan_;
  std::optional<Hetero> hetero_;
  std::vector<LinkOverride> links_;
  std::vector<Straggler> stragglers_;
  std::vector<Partition> partitions_;
  std::vector<ChurnEvent> churn_;
  std::optional<Fault> fault_;
};

}  // namespace garfield::net
