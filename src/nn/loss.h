// Loss functions. Each returns the scalar loss for a batch and produces the
// gradient w.r.t. the network output for backward().
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace garfield::nn {

using tensor::Tensor;

/// Result of a loss evaluation: scalar value plus dL/d(logits).
struct LossResult {
  double value = 0.0;
  Tensor grad;
};

/// Softmax + negative log-likelihood over integer class labels.
/// logits: {batch, classes}; labels: batch entries in [0, classes).
class SoftmaxCrossEntropy {
 public:
  [[nodiscard]] LossResult compute(const Tensor& logits,
                                   const std::vector<std::size_t>& labels) const;
};

/// Mean squared error against a dense target of the same shape.
class MeanSquaredError {
 public:
  [[nodiscard]] LossResult compute(const Tensor& output,
                                   const Tensor& target) const;
};

/// argmax-per-row predictions for {batch, classes} logits.
[[nodiscard]] std::vector<std::size_t> predict_classes(const Tensor& logits);

}  // namespace garfield::nn
