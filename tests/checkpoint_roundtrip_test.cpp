// Checkpoint round-trip regression: a saved model must reload bit-exactly —
// parameters, optimizer velocity and iteration tag — and corruption or
// mixed-up blobs must be rejected, never silently trained on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/checkpoint.h"
#include "net/wire.h"
#include "support/test_support.h"
#include "tensor/rng.h"

namespace gc = garfield::core;
namespace gn = garfield::net;
namespace ts = garfield::testsupport;

using garfield::tensor::FlatVector;

namespace {

class CheckpointRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("garfield_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static FlatVector random_vector(std::size_t d,
                                                std::uint64_t seed) {
    garfield::tensor::Rng rng(seed);
    FlatVector v(d);
    for (float& x : v) x = rng.normal();
    return v;
  }

  std::filesystem::path dir_;
};

}  // namespace

TEST_F(CheckpointRoundTrip, ModelAndOptimizerStateSurviveExactly) {
  gc::Checkpoint original;
  original.iteration = 123456789ULL;
  original.parameters = random_vector(513, 1);  // odd size, not a power of 2
  original.velocity = random_vector(513, 2);

  gc::save_checkpoint(path("full.ckpt"), original);
  const gc::Checkpoint loaded = gc::load_checkpoint(path("full.ckpt"));

  EXPECT_EQ(loaded.iteration, original.iteration);
  ASSERT_EQ(loaded.parameters.size(), original.parameters.size());
  ASSERT_EQ(loaded.velocity.size(), original.velocity.size());
  // Bit-exact: compare the raw bytes, not float values (which would let a
  // lossy encoder sneak through rounding, and would misbehave on NaN).
  EXPECT_EQ(std::memcmp(loaded.parameters.data(), original.parameters.data(),
                        original.parameters.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(loaded.velocity.data(), original.velocity.data(),
                        original.velocity.size() * sizeof(float)),
            0);
}

TEST_F(CheckpointRoundTrip, EmptyVelocityRoundTripsAsEmpty) {
  gc::Checkpoint original;
  original.iteration = 7;
  original.parameters = random_vector(64, 3);

  gc::save_checkpoint(path("plain.ckpt"), original);
  const gc::Checkpoint loaded = gc::load_checkpoint(path("plain.ckpt"));

  EXPECT_EQ(loaded.iteration, 7u);
  EXPECT_TRUE(loaded.velocity.empty());
  EXPECT_LE(ts::max_abs_diff(loaded.parameters, original.parameters), 0.0);
}

TEST_F(CheckpointRoundTrip, LegacySingleBlobFilesStillLoad) {
  // Files written before the velocity field existed are exactly one wire
  // message; they must keep loading with an empty velocity.
  const FlatVector params = random_vector(32, 4);
  const std::vector<std::uint8_t> blob = gn::encode(42, params);
  {
    std::ofstream out(path("legacy.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  const gc::Checkpoint loaded = gc::load_checkpoint(path("legacy.ckpt"));
  EXPECT_EQ(loaded.iteration, 42u);
  EXPECT_EQ(loaded.parameters, params);
  EXPECT_TRUE(loaded.velocity.empty());
}

TEST_F(CheckpointRoundTrip, MismatchedVelocityIterationIsRejected) {
  // A velocity blob from a different iteration than the parameters means
  // the file was stitched from two checkpoints — corrupt, not loadable.
  std::vector<std::uint8_t> blob = gn::encode(10, random_vector(16, 5));
  const std::vector<std::uint8_t> tail = gn::encode(11, random_vector(16, 6));
  blob.insert(blob.end(), tail.begin(), tail.end());
  {
    std::ofstream out(path("stitched.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("stitched.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, MismatchedVelocityDimensionIsRejected) {
  // A velocity of the wrong dimension would be silently zeroed by the
  // optimizer's first step; the loader must reject it up front.
  std::vector<std::uint8_t> blob = gn::encode(10, random_vector(16, 12));
  const std::vector<std::uint8_t> tail = gn::encode(10, random_vector(8, 13));
  blob.insert(blob.end(), tail.begin(), tail.end());
  {
    std::ofstream out(path("shortvel.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("shortvel.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, OverflowingElementCountIsRejected) {
  // A header whose element count makes kHeaderSize + 4*d wrap must fail as
  // WireError, not crash in payload.resize(). Craft a 28-byte file with
  // valid magic/version and d = 2^62.
  std::vector<std::uint8_t> blob = gn::encode(1, FlatVector{});
  ASSERT_EQ(blob.size(), gn::wire_size(0));
  const std::uint64_t huge = std::uint64_t{1} << 62;
  for (int i = 0; i < 8; ++i) {
    blob[16 + std::size_t(i)] = std::uint8_t(huge >> (8 * i));
  }
  {
    std::ofstream out(path("overflow.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("overflow.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, BitFlipIsDetected) {
  gc::Checkpoint original;
  original.iteration = 99;
  original.parameters = random_vector(128, 7);
  original.velocity = random_vector(128, 8);
  gc::save_checkpoint(path("flip.ckpt"), original);

  // Flip one payload byte in the second (velocity) message.
  std::fstream f(path("flip.ckpt"),
                 std::ios::binary | std::ios::in | std::ios::out);
  const std::size_t head = gn::wire_size(original.parameters.size());
  f.seekp(std::streamoff(head + 40));
  char byte = 0;
  f.seekg(std::streamoff(head + 40));
  f.read(&byte, 1);
  byte = char(byte ^ 0x20);
  f.seekp(std::streamoff(head + 40));
  f.write(&byte, 1);
  f.close();

  EXPECT_THROW(gc::load_checkpoint(path("flip.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, TruncationIsDetected) {
  gc::Checkpoint original;
  original.iteration = 5;
  original.parameters = random_vector(64, 9);
  original.velocity = random_vector(64, 10);
  gc::save_checkpoint(path("trunc.ckpt"), original);

  const auto full = std::filesystem::file_size(path("trunc.ckpt"));
  std::filesystem::resize_file(path("trunc.ckpt"), full - 5);
  EXPECT_THROW(gc::load_checkpoint(path("trunc.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, SaveLeavesNoTempFileBehind) {
  gc::Checkpoint original;
  original.iteration = 1;
  original.parameters = random_vector(8, 11);
  gc::save_checkpoint(path("atomic.ckpt"), original);
  EXPECT_TRUE(std::filesystem::exists(path("atomic.ckpt")));
  EXPECT_FALSE(std::filesystem::exists(path("atomic.ckpt") + ".tmp"));
}

TEST_F(CheckpointRoundTrip, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(gc::load_checkpoint(path("does_not_exist.ckpt")),
               std::runtime_error);
}

TEST_F(CheckpointRoundTrip, EmptyFileIsRejectedWithAPointedMessage) {
  // An empty file used to reach net::encoded_size and die on a generic
  // "truncated header"; the loader must say what actually happened — the
  // checkpoint on disk is empty (e.g. a crash before any bytes landed).
  { std::ofstream out(path("empty.ckpt"), std::ios::binary); }
  try {
    (void)gc::load_checkpoint(path("empty.ckpt"));
    FAIL() << "empty checkpoint must not load";
  } catch (const gn::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, SubHeaderFileIsRejectedAsTruncated) {
  // Shorter than one wire header: no field of it is trustworthy.
  {
    std::ofstream out(path("stub.ckpt"), std::ios::binary);
    out.write("GRFD\x01\x00\x00\x00\x99", 9);
  }
  try {
    (void)gc::load_checkpoint(path("stub.ckpt"));
    FAIL() << "sub-header checkpoint must not load";
  } catch (const gn::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, TruncatedParametersAreRejected) {
  // Header intact, parameter payload cut mid-vector — the header's element
  // count must trip the truncation check, not index past the blob.
  gc::Checkpoint original;
  original.iteration = 3;
  original.parameters = random_vector(64, 14);
  gc::save_checkpoint(path("cutparams.ckpt"), original);
  std::filesystem::resize_file(path("cutparams.ckpt"),
                               gn::wire_size(0) + 12);
  EXPECT_THROW(gc::load_checkpoint(path("cutparams.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, TruncatedVelocityTailIsRejected) {
  // Cut inside the velocity message's own header: the parameters decode
  // fine, the tail must still fail loudly instead of loading param-only.
  gc::Checkpoint original;
  original.iteration = 4;
  original.parameters = random_vector(32, 15);
  original.velocity = random_vector(32, 16);
  gc::save_checkpoint(path("cutvel.ckpt"), original);
  const std::size_t head = gn::wire_size(original.parameters.size());
  std::filesystem::resize_file(path("cutvel.ckpt"), head + 10);
  EXPECT_THROW(gc::load_checkpoint(path("cutvel.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, RenameFailureThrowsAndCleansUpTheTempFile) {
  // Make the final path un-renameable-to: a non-empty directory. The write
  // of the tmp file succeeds, the commit rename fails — save_checkpoint
  // must surface that as an error (the checkpoint is NOT durable) and not
  // leave the orphaned tmp file around.
  const std::string target = path("blocked.ckpt");
  std::filesystem::create_directories(std::filesystem::path(target) /
                                      "occupant");
  gc::Checkpoint ckpt;
  ckpt.iteration = 2;
  ckpt.parameters = random_vector(8, 17);
  EXPECT_THROW(gc::save_checkpoint(target, ckpt), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}
