#include "gars/gar.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "gars/median3.h"
#include "tensor/parallel.h"

namespace garfield::gars {

using tensor::parallel_for;

void Gar::check_inputs(std::span<const FlatVector> inputs) const {
  if (inputs.size() != n_) {
    throw std::invalid_argument(name() + ": expected " + std::to_string(n_) +
                                " inputs, got " +
                                std::to_string(inputs.size()));
  }
  const std::size_t d = inputs.front().size();
  if (d == 0) throw std::invalid_argument(name() + ": empty input vectors");
  for (const FlatVector& v : inputs) {
    if (v.size() != d) {
      throw std::invalid_argument(name() + ": ragged input dimensions");
    }
  }
}

namespace {

void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

/// Pairwise squared distances, symmetric n x n (diagonal zero).
std::vector<double> pairwise_sq_distances(std::span<const FlatVector> inputs) {
  const std::size_t n = inputs.size();
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = tensor::squared_distance(inputs[i], inputs[j]);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  return dist;
}

}  // namespace

std::vector<std::string> gar_names() {
  return {"average",    "median", "trimmed_mean",     "krum",
          "multi_krum", "mda",    "bulyan",           "geometric_median",
          "centered_clip", "cge"};
}

std::size_t gar_min_n(const std::string& name, std::size_t f) {
  if (name == "average") return std::max<std::size_t>(1, f + 1);
  if (name == "median" || name == "trimmed_mean" || name == "mda" ||
      name == "geometric_median" || name == "centered_clip" ||
      name == "cge")
    return 2 * f + 1;
  if (name == "krum" || name == "multi_krum") return 2 * f + 3;
  if (name == "bulyan") return 4 * f + 3;
  throw std::invalid_argument("gar_min_n: unknown GAR '" + name + "'");
}

GarPtr make_gar(const std::string& name, std::size_t n, std::size_t f) {
  if (name == "average") return std::make_unique<Average>(n, f);
  if (name == "median") return std::make_unique<Median>(n, f);
  if (name == "trimmed_mean") return std::make_unique<TrimmedMean>(n, f);
  if (name == "krum") return std::make_unique<Krum>(n, f);
  if (name == "multi_krum") return std::make_unique<MultiKrum>(n, f);
  if (name == "mda") return std::make_unique<Mda>(n, f);
  if (name == "bulyan") return std::make_unique<Bulyan>(n, f);
  if (name == "geometric_median")
    return std::make_unique<GeometricMedian>(n, f);
  if (name == "centered_clip") return std::make_unique<CenteredClip>(n, f);
  if (name == "cge") return std::make_unique<Cge>(n, f);
  throw std::invalid_argument("make_gar: unknown GAR '" + name + "'");
}

// ---------------------------------------------------------------- Average

Average::Average(std::size_t n, std::size_t f) : Gar(n, f) {
  // Matches gar_min_n("average", f): the mean tolerates no Byzantine input,
  // so it at least needs more inputs than declared adversaries.
  require(n >= gar_min_n("average", f),
          "average: needs at least f+1 inputs");
}

FlatVector Average::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  return tensor::mean(inputs);
}

// ---------------------------------------------------------------- Median

Median::Median(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= gar_min_n("median", f),
          "median: requires n >= 2f+1 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

FlatVector Median::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  FlatVector out(d);
  if (n == 1) return inputs.front();
  if (n == 3) {
    // Fast path via the branchless SIMT primitive of §4.3.
    const float* a = inputs[0].data();
    const float* b = inputs[1].data();
    const float* c = inputs[2].data();
    parallel_for(d, [&](std::size_t begin, std::size_t end) {
      for (std::size_t j = begin; j < end; ++j)
        out[j] = median3_branchless(a[j], b[j], c[j]);
    });
    return out;
  }
  // General path: each core owns a contiguous share of coordinates and runs
  // introselect (std::nth_element) per coordinate — the paper's CPU scheme.
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < n; ++i) column[i] = inputs[i][j];
      const std::size_t mid = n / 2;
      std::nth_element(column.begin(), column.begin() + long(mid),
                       column.end());
      if (n % 2 == 1) {
        out[j] = column[mid];
      } else {
        // Even count: average the two central order statistics.
        const float hi = column[mid];
        const float lo =
            *std::max_element(column.begin(), column.begin() + long(mid));
        out[j] = 0.5F * (lo + hi);
      }
    }
  });
  return out;
}

// ---------------------------------------------------------------- TrimmedMean

TrimmedMean::TrimmedMean(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= gar_min_n("trimmed_mean", f),
          "trimmed_mean: requires n >= 2f+1");
}

FlatVector TrimmedMean::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  const std::size_t keep = n - 2 * f_;
  FlatVector out(d);
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < n; ++i) column[i] = inputs[i][j];
      std::sort(column.begin(), column.end());
      double acc = 0.0;
      for (std::size_t i = f_; i < f_ + keep; ++i) acc += column[i];
      out[j] = float(acc / double(keep));
    }
  });
  return out;
}

// ---------------------------------------------------------- DistanceCache

DistanceCache::DistanceCache(std::span<const FlatVector> inputs)
    : n_(inputs.size()),
      matrix_(pairwise_sq_distances(inputs)),
      active_(inputs.size(), true) {}

std::size_t DistanceCache::active_count() const {
  return std::size_t(std::count(active_.begin(), active_.end(), true));
}

// ---------------------------------------------------------------- Krum

Krum::Krum(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= gar_min_n("krum", f),
          "krum: requires n >= 2f+3 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

std::vector<double> Krum::scores(std::span<const FlatVector> inputs) const {
  const std::size_t q = inputs.size();
  assert(q >= 3);
  const std::vector<double> dist = pairwise_sq_distances(inputs);
  // Sum of distances to the q-f-2 closest neighbours (at least one).
  const std::size_t neighbours =
      q > f_ + 2 ? q - f_ - 2 : std::size_t(1);
  std::vector<double> result(q, 0.0);
  std::vector<double> row(q - 1);
  for (std::size_t i = 0; i < q; ++i) {
    std::size_t k = 0;
    for (std::size_t j = 0; j < q; ++j) {
      if (j != i) row[k++] = dist[i * q + j];
    }
    std::partial_sort(row.begin(), row.begin() + long(neighbours), row.end());
    double acc = 0.0;
    for (std::size_t m = 0; m < neighbours; ++m) acc += row[m];
    result[i] = acc;
  }
  return result;
}

std::vector<std::size_t> Krum::selection_order(
    std::span<const FlatVector> inputs) const {
  const std::vector<double> s = scores(inputs);
  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (s[a] != s[b]) return s[a] < s[b];
    return std::lexicographical_compare(inputs[a].begin(), inputs[a].end(),
                                        inputs[b].begin(), inputs[b].end());
  });
  return order;
}

std::size_t Krum::select(std::span<const FlatVector> inputs) const {
  return selection_order(inputs).front();
}

std::size_t Krum::select_cached(const DistanceCache& cache,
                                std::span<const FlatVector> inputs) const {
  assert(cache.size() == inputs.size());
  const std::size_t q = cache.active_count();
  assert(q >= 3);
  const std::size_t neighbours = q > f_ + 2 ? q - f_ - 2 : std::size_t(1);
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best = cache.size();
  std::vector<double> row;
  row.reserve(q - 1);
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (!cache.is_active(i)) continue;
    row.clear();
    for (std::size_t j = 0; j < cache.size(); ++j) {
      if (j != i && cache.is_active(j)) row.push_back(cache.squared_distance(i, j));
    }
    std::partial_sort(row.begin(), row.begin() + long(neighbours), row.end());
    double score = 0.0;
    for (std::size_t m = 0; m < neighbours; ++m) score += row[m];
    const bool better =
        score < best_score ||
        (score == best_score && best < cache.size() &&
         std::lexicographical_compare(inputs[i].begin(), inputs[i].end(),
                                      inputs[best].begin(),
                                      inputs[best].end()));
    if (better) {
      best_score = score;
      best = i;
    }
  }
  assert(best < cache.size());
  return best;
}

FlatVector Krum::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  return inputs[select(inputs)];
}

// ---------------------------------------------------------------- MultiKrum

MultiKrum::MultiKrum(std::size_t n, std::size_t f)
    : Krum(n, f), m_(n - f - 2) {}

FlatVector MultiKrum::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::vector<std::size_t> order = selection_order(inputs);
  const std::size_t d = inputs.front().size();
  FlatVector out(d, 0.0F);
  for (std::size_t k = 0; k < m_; ++k)
    tensor::axpy(1.0F, inputs[order[k]], out);
  tensor::scale(out, 1.0F / float(m_));
  return out;
}

// ---------------------------------------------------------------- MDA

Mda::Mda(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= gar_min_n("mda", f), "mda: requires n >= 2f+1");
}

FlatVector Mda::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t keep = n - f_;
  const std::vector<double> dist = pairwise_sq_distances(inputs);

  // Enumerate all C(n, keep) subsets with the classic combination walk and
  // track the one with minimum diameter (max pairwise distance).
  std::vector<std::size_t> comb(keep);
  std::iota(comb.begin(), comb.end(), 0);
  std::vector<std::size_t> best = comb;
  double best_diameter = std::numeric_limits<double>::infinity();
  while (true) {
    double diameter = 0.0;
    for (std::size_t a = 0; a < keep && diameter < best_diameter; ++a) {
      for (std::size_t b = a + 1; b < keep; ++b) {
        diameter = std::max(diameter, dist[comb[a] * n + comb[b]]);
        if (diameter >= best_diameter) break;
      }
    }
    if (diameter < best_diameter) {
      best_diameter = diameter;
      best = comb;
    }
    // Advance to the next combination.
    long i = long(keep) - 1;
    while (i >= 0 && comb[std::size_t(i)] == n - keep + std::size_t(i)) --i;
    if (i < 0) break;
    ++comb[std::size_t(i)];
    for (std::size_t j = std::size_t(i) + 1; j < keep; ++j)
      comb[j] = comb[j - 1] + 1;
  }

  const std::size_t d = inputs.front().size();
  FlatVector out(d, 0.0F);
  for (std::size_t idx : best) tensor::axpy(1.0F, inputs[idx], out);
  tensor::scale(out, 1.0F / float(keep));
  return out;
}

// ---------------------------------------------------------------- Bulyan

Bulyan::Bulyan(std::size_t n, std::size_t f) : Gar(n, f) {
  require(n >= gar_min_n("bulyan", f),
          "bulyan: requires n >= 4f+3 (got n=" + std::to_string(n) +
              ", f=" + std::to_string(f) + ")");
}

FlatVector Bulyan::aggregate(std::span<const FlatVector> inputs) const {
  check_inputs(inputs);
  const std::size_t n = inputs.size();
  const std::size_t d = inputs.front().size();
  const std::size_t theta = n - 2 * f_;  // selection-set size
  const std::size_t beta = theta - 2 * f_;  // values averaged per coordinate

  // Phase 1: iterate Krum over a logically shrinking pool, harvesting
  // theta vectors. The O(n^2 d) pairwise distances are computed once and
  // cached across rounds (§4.4); each selection round is then O(n^2).
  DistanceCache cache(inputs);
  std::vector<FlatVector> selected;
  selected.reserve(theta);
  const Krum krum_rule(n, f_);
  for (std::size_t k = 0; k < theta; ++k) {
    std::size_t pick;
    if (cache.active_count() >= 3) {
      pick = krum_rule.select_cached(cache, inputs);
    } else {
      // Degenerate tail (only reachable when f = 0): take the
      // lexicographically smallest remaining vector, deterministically.
      pick = cache.size();
      for (std::size_t i = 0; i < cache.size(); ++i) {
        if (!cache.is_active(i)) continue;
        if (pick == cache.size() ||
            std::lexicographical_compare(inputs[i].begin(), inputs[i].end(),
                                         inputs[pick].begin(),
                                         inputs[pick].end())) {
          pick = i;
        }
      }
    }
    selected.push_back(inputs[pick]);
    cache.remove(pick);
  }

  // Phase 2: per coordinate, average the beta values closest to the median
  // of the selected set.
  FlatVector out(d);
  parallel_for(d, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(theta);
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < theta; ++i) column[i] = selected[i][j];
      const std::size_t mid = theta / 2;
      std::nth_element(column.begin(), column.begin() + long(mid),
                       column.end());
      const float med = column[mid];
      std::partial_sort(column.begin(), column.begin() + long(beta),
                        column.end(), [med](float a, float b) {
                          const float da = std::abs(a - med);
                          const float db = std::abs(b - med);
                          if (da != db) return da < db;
                          return a < b;  // deterministic on symmetric ties
                        });
      double acc = 0.0;
      for (std::size_t i = 0; i < beta; ++i) acc += column[i];
      out[j] = float(acc / double(beta));
    }
  });
  return out;
}

}  // namespace garfield::gars
