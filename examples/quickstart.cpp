// Quickstart: the paper's Listing 1 (SSMW — single server, multiple
// workers) in ~20 lines of garfield API.
//
// A trusted parameter server trains a small CNN with 7 workers, one of
// which mounts the reversed-gradient attack. Multi-Krum filters it out and
// training converges anyway; swap gradient_gar for "average" to watch the
// attack destroy the run.
//
// The [gar] argument is a registry spec string, so tuned rules work from
// the command line without code changes, e.g.:
//   ./examples/quickstart centered_clip:tau=0.5,iterations=20
//   ./examples/quickstart multi_krum:m=2
//   ./examples/quickstart average:pre_clip=1
//
// Build & run:   ./examples/quickstart [gar]
#include <cstdio>
#include <string>

#include "core/trainer.h"

int main(int argc, char** argv) {
  using namespace garfield::core;

  DeploymentConfig cfg;
  cfg.deployment = Deployment::kSsmw;    // Listing 1
  cfg.model = "mnist_cnn";               // MNIST_CNN-class model
  cfg.nw = 7;                            // workers
  cfg.fw = 1;                            // ... of which Byzantine
  cfg.gradient_gar = argc > 1 ? argv[1] : "multi_krum";
  cfg.worker_attack = "reversed";        // the Fig 5b attack
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.iterations = 150;
  cfg.eval_every = 25;
  cfg.seed = 1;

  std::printf("SSMW: nw=%zu fw=%zu gar=%s attack=%s model=%s\n", cfg.nw,
              cfg.fw, cfg.gradient_gar.c_str(), cfg.worker_attack.c_str(),
              cfg.model.c_str());

  const TrainResult result = train(cfg);

  std::printf("%-10s %-10s %-10s\n", "iteration", "accuracy", "loss");
  for (const EvalPoint& p : result.curve) {
    std::printf("%-10zu %-10.3f %-10.3f\n", p.iteration, p.accuracy, p.loss);
  }
  std::printf("final accuracy: %.3f   (messages: %llu, floats: %llu)\n",
              result.final_accuracy,
              static_cast<unsigned long long>(result.net_stats.requests_sent),
              static_cast<unsigned long long>(
                  result.net_stats.floats_transferred));
  return result.final_accuracy > 0.5 ? 0 : 1;
}
