// Dense row-major float tensor.
//
// This is the compute representation used by garfield::nn for activations,
// weights and gradients. It deliberately stays small: contiguous storage,
// a shape, and the handful of BLAS-like kernels a CNN/MLP needs. The wire
// representation is tensor::FlatVector (see vecops.h); Module::gradient()
// flattens into it.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace garfield::tensor {

/// Shape of a tensor, e.g. {batch, channels, h, w}.
using Shape = std::vector<std::size_t>;

[[nodiscard]] std::size_t shape_numel(const Shape& shape);
[[nodiscard]] std::string shape_to_string(const Shape& shape);

/// Contiguous row-major dense tensor of float.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// N(mean, stddev) entries.
  [[nodiscard]] static Tensor randn(Shape shape, Rng& rng, float mean = 0.0F,
                                    float stddev = 1.0F);
  /// U(lo, hi) entries.
  [[nodiscard]] static Tensor rand_uniform(Shape shape, Rng& rng, float lo,
                                           float hi);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access; tensor must have rank 2.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Reinterpret the same storage with a new shape of identical numel.
  [[nodiscard]] Tensor reshaped(Shape shape) const;

  void fill(float v);
  void zero() { fill(0.0F); }

  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float alpha);

  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] float max() const;
  /// Index of the maximum element (first on ties).
  [[nodiscard]] std::size_t argmax() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// out = a @ b for rank-2 tensors: (m,k) x (k,n) -> (m,n).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// out = a @ b^T: (m,k) x (n,k) -> (m,n). Hot kernel for Linear backward.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// out = a^T @ b: (k,m) x (k,n) -> (m,n).
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Rank-2 transpose.
[[nodiscard]] Tensor transpose(const Tensor& a);

}  // namespace garfield::tensor
