#include "core/server.h"

#include <cassert>

#include "core/worker.h"

namespace garfield::core {

Server::Server(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
               nn::SgdOptimizer::Options opt,
               std::vector<net::NodeId> workers,
               std::vector<net::NodeId> peer_servers)
    : id_(id),
      cluster_(cluster),
      model_(std::move(model)),
      optimizer_(opt),
      workers_(std::move(workers)),
      peer_servers_(std::move(peer_servers)),
      params_(model_->parameters()) {
  cluster_.register_handler(id_, kGetModel, [this](const net::Request& req) {
    return serve_model(req);
  });
  cluster_.register_handler(id_, kGetAggrGrad,
                            [this](const net::Request& req) {
                              return serve_aggr_grad(req);
                            });
}

net::Payload Server::snapshot() const {
  std::lock_guard lock(mutex_);
  return params_;
}

std::vector<net::Payload> Server::validate(std::vector<net::Reply> replies) {
  std::vector<net::Payload> out;
  out.reserve(replies.size());
  const std::size_t d = model_->dimension();
  for (net::Reply& r : replies) {
    if (r.payload.size() != d || !tensor::all_finite(r.payload)) {
      rejected_.fetch_add(1);
      continue;
    }
    out.push_back(std::move(r.payload));
  }
  return out;
}

std::vector<net::Payload> Server::get_gradients(std::uint64_t t,
                                                std::size_t q) {
  auto arg = std::make_shared<const net::Payload>(snapshot());
  return validate(
      cluster_.collect(id_, workers_, kGetGradient, t, std::move(arg), q));
}

std::vector<net::Payload> Server::get_models(std::size_t q) {
  return validate(cluster_.collect(id_, peer_servers_, kGetModel,
                                   steps_taken(), nullptr, q));
}

std::vector<net::Payload> Server::get_aggr_grads(std::uint64_t t,
                                                 std::size_t q) {
  return validate(
      cluster_.collect(id_, peer_servers_, kGetAggrGrad, t, nullptr, q));
}

void Server::set_latest_aggr_grad(net::Payload grad) {
  std::lock_guard lock(mutex_);
  latest_aggr_grad_ = std::move(grad);
}

void Server::update_model(const net::Payload& aggregated_gradient) {
  std::lock_guard lock(mutex_);
  optimizer_.step(params_, aggregated_gradient, step_);
  ++step_;
}

void Server::write_model(const net::Payload& parameters) {
  std::lock_guard lock(mutex_);
  assert(parameters.size() == params_.size());
  params_ = parameters;
}

double Server::compute_accuracy(const data::Batch& test) {
  std::lock_guard lock(mutex_);
  model_->set_parameters(params_);
  return model_->accuracy(test.inputs, test.labels);
}

double Server::compute_loss(const data::Batch& test) {
  std::lock_guard lock(mutex_);
  model_->set_parameters(params_);
  return model_->loss(test.inputs, test.labels);
}

net::Payload Server::parameters() const { return snapshot(); }

std::uint64_t Server::steps_taken() const {
  std::lock_guard lock(mutex_);
  return step_;
}

std::uint64_t Server::rejected_payloads() const { return rejected_.load(); }

std::optional<net::Payload> Server::serve_model(const net::Request&) {
  return snapshot();
}

std::optional<net::Payload> Server::serve_aggr_grad(const net::Request&) {
  std::lock_guard lock(mutex_);
  if (latest_aggr_grad_.empty()) return std::nullopt;
  return latest_aggr_grad_;
}

ByzantineServer::ByzantineServer(net::NodeId id, net::Cluster& cluster,
                                 nn::ModelPtr model,
                                 nn::SgdOptimizer::Options opt,
                                 std::vector<net::NodeId> workers,
                                 std::vector<net::NodeId> peer_servers,
                                 attacks::AttackPtr attack, tensor::Rng rng,
                                 std::size_t declared_n,
                                 std::size_t declared_f)
    : Server(id, cluster, std::move(model), opt, std::move(workers),
             std::move(peer_servers)),
      attack_(std::move(attack)),
      rng_(rng),
      declared_n_(declared_n),
      declared_f_(declared_f) {}

std::optional<net::Payload> ByzantineServer::corrupt(
    net::Payload honest, std::uint64_t iteration) {
  std::lock_guard lock(attack_mutex_);
  attacks::AttackContext ctx(rng_);
  ctx.iteration = iteration;
  ctx.attacker_id = id();
  ctx.n = declared_n_;
  ctx.f = declared_f_;
  return attack_->craft(honest, ctx);
}

std::optional<net::Payload> ByzantineServer::serve_model(
    const net::Request& req) {
  std::optional<net::Payload> honest = Server::serve_model(req);
  if (!honest) return std::nullopt;
  return corrupt(std::move(*honest), req.iteration);
}

std::optional<net::Payload> ByzantineServer::serve_aggr_grad(
    const net::Request& req) {
  std::optional<net::Payload> honest = Server::serve_aggr_grad(req);
  if (!honest) return std::nullopt;
  return corrupt(std::move(*honest), req.iteration);
}

}  // namespace garfield::core
