// Schedule model-checker for the node-lifecycle FSM (README "Node
// lifecycle & churn", net/cluster.h).
//
// The churn/lifecycle tests elsewhere exercise a handful of hand-picked
// trajectories; this suite explores the *schedule space*. Every concurrent
// history of the lifecycle plane is some interleaving of three primitives —
// advance_lifecycle(iter) calls (any loop thread, any iteration order),
// message deliveries, and the manual crash/begin_recovery/complete_recovery
// edges — and because each primitive is executed to completion here
// (pool_threads=1, zero simulated delay, wait-per-callback), every distinct
// *order* of primitives is a distinct logical interleaving of the real
// implementation, not of a model of it.
//
// Two explorers:
//  - an exhaustive pass over every manual-edge sequence of depth 4 on two
//    nodes (6^4 = 1296 schedules), cross-checked against a shadow FSM, and
//  - a seeded DFS over advance/delivery interleavings of a two-event churn
//    schedule (budget 12'000 distinct schedules), cross-checked against
//    the NetworkConditions membership predicate `churn_down` — the same
//    oracle the analytic plane uses, so live FSM and sim plane cannot
//    drift apart anywhere in the explored space.
//
// Together the two passes explore >= 10'000 distinct schedules. Invariants
// checked on every schedule:
//  - no delivery to a non-RUNNING node (fail-silent: nullptr reply, the
//    handler never fires);
//  - the recovery edges are strict (CRASHED -> RECOVERING -> RUNNING;
//    anything else throws std::logic_error and leaves the state unchanged);
//  - advance_lifecycle never parks a node mid-recovery;
//  - the not-ready redelivery chain terminates (gives up at the deadline,
//    bounded attempts);
//  - the below-floor churn abort fires deterministically with a
//    byte-identical diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "net/cluster.h"
#include "net/conditions.h"
#include "tensor/parallel.h"

namespace gc = garfield::core;
namespace gn = garfield::net;

namespace {

/// Synchronous delivery: one call(), wait for its callback. With zero
/// simulated delay and a single pool thread the reply (or refusal)
/// resolves immediately, so the caller observes exactly the lifecycle
/// state the schedule put the callee in.
gn::PayloadPtr deliver(gn::Cluster& cluster, gn::NodeId from, gn::NodeId to,
                       std::uint64_t iteration,
                       gn::Duration timeout = std::chrono::seconds(5)) {
  std::promise<gn::PayloadPtr> done;
  std::future<gn::PayloadPtr> reply = done.get_future();
  cluster.call(from, to, "probe", iteration, nullptr,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); },
               timeout);
  return reply.get();
}

std::string schedule_name(const std::vector<int>& schedule) {
  std::string name;
  for (int a : schedule) {
    if (!name.empty()) name += ',';
    name += std::to_string(a);
  }
  return name;
}

}  // namespace

// ------------------------------------------------ exhaustive manual edges

namespace {

enum class ShadowState { kRunning, kCrashed, kRecovering };

struct ShadowNode {
  ShadowState state = ShadowState::kRunning;
  bool handlers_present = true;  // dropped at crash, like the real thing
};

/// Apply one manual edge to the shadow FSM. Returns true when the edge is
/// legal; an illegal edge leaves the shadow unchanged (the real cluster
/// must throw and do the same).
bool shadow_apply(ShadowNode& node, int op) {
  switch (op) {
    case 0:  // crash: any state -> CRASHED, handlers dropped
      node.state = ShadowState::kCrashed;
      node.handlers_present = false;
      return true;
    case 1:  // begin_recovery: CRASHED -> RECOVERING only
      if (node.state != ShadowState::kCrashed) return false;
      node.state = ShadowState::kRecovering;
      return true;
    default:  // complete_recovery: RECOVERING -> RUNNING only
      if (node.state != ShadowState::kRecovering) return false;
      node.state = ShadowState::kRunning;
      return true;
  }
}

gn::NodeLifecycle to_lifecycle(ShadowState s) {
  switch (s) {
    case ShadowState::kRunning:
      return gn::NodeLifecycle::kRunning;
    case ShadowState::kCrashed:
      return gn::NodeLifecycle::kCrashed;
    default:
      return gn::NodeLifecycle::kRecovering;
  }
}

}  // namespace

TEST(LifecycleModelCheck, ExhaustiveManualEdgeSequencesMatchShadowFsm) {
  // Every sequence of 4 ops over {crash, begin_recovery, complete_recovery}
  // x {node 0, node 1}: 6^4 = 1296 schedules, executed exhaustively.
  constexpr int kOpsPerNode = 3;
  constexpr std::size_t kNodes = 2;
  constexpr int kAlphabet = kOpsPerNode * int(kNodes);
  constexpr int kDepth = 4;

  std::uint64_t total = 1;
  for (int d = 0; d < kDepth; ++d) total *= kAlphabet;

  std::uint64_t explored = 0;
  for (std::uint64_t code = 0; code < total; ++code) {
    // Decode the schedule id into its op sequence (base-6 digits).
    std::vector<int> schedule(kDepth);
    std::uint64_t rest = code;
    for (int d = 0; d < kDepth; ++d) {
      schedule[d] = int(rest % kAlphabet);
      rest /= kAlphabet;
    }

    // Handler captures must outlive the cluster (teardown flushes the
    // timer backlog inline), so declare them first.
    std::array<ShadowNode, kNodes> shadow;
    std::array<int, kNodes> served{};
    gn::Cluster::Options opt;
    opt.nodes = kNodes;
    opt.pool_threads = 1;
    gn::Cluster cluster(opt);
    for (gn::NodeId node = 0; node < kNodes; ++node) {
      cluster.register_handler(
          node, "probe", [&served, node](const gn::Request&) {
            ++served[node];
            return gn::HandlerResult::reply(gn::Payload{float(node)});
          });
    }

    for (int action : schedule) {
      const auto node = gn::NodeId(action / kOpsPerNode);
      const int op = action % kOpsPerNode;
      const bool legal = shadow_apply(shadow[node], op);
      bool threw = false;
      try {
        if (op == 0) {
          cluster.crash(node);
        } else if (op == 1) {
          cluster.begin_recovery(node);
        } else {
          cluster.complete_recovery(node);
        }
      } catch (const std::logic_error&) {
        threw = true;
      }
      ASSERT_EQ(threw, !legal)
          << "schedule " << schedule_name(schedule) << " op " << action;
      // Legal or not, the cluster must agree with the shadow afterwards:
      // an illegal edge may not move the state.
      for (gn::NodeId check = 0; check < kNodes; ++check) {
        ASSERT_EQ(cluster.lifecycle(check), to_lifecycle(shadow[check].state))
            << "schedule " << schedule_name(schedule) << " node " << check;
      }
    }

    // Fail-silence at the end state: a delivery reaches the handler iff the
    // node is RUNNING *and* still has the handler (crash drops handlers; a
    // manually completed recovery without re-registration serves nothing —
    // exactly the restarted-empty-process semantics the trainer's recovery
    // hook exists to fix).
    const int before = served[0];
    const gn::PayloadPtr reply = deliver(cluster, 1, 0, /*iteration=*/0);
    const bool expect_served =
        shadow[0].state == ShadowState::kRunning && shadow[0].handlers_present;
    ASSERT_EQ(reply != nullptr, expect_served)
        << "schedule " << schedule_name(schedule);
    ASSERT_EQ(served[0], before + (expect_served ? 1 : 0))
        << "schedule " << schedule_name(schedule);
    ++explored;
  }
  EXPECT_EQ(explored, total);
  RecordProperty("schedules_explored", std::to_string(explored));
}

// ------------------------------------------- seeded DFS over churn space

namespace {

/// Two overlapping crash windows on four nodes: node 1 is down over
/// [2, 4), node 2 over [3, 6). Advancing past 6 must walk both nodes all
/// the way back up regardless of the order the horizon grew in.
constexpr const char* kChurnSpec =
    "churn:crash=1,at_iter=2,recover_after=2;"
    "churn:crash=2,at_iter=3,recover_after=3";

/// Action alphabet for the DFS. Advances deliberately include horizon
/// jumps (6 straight from 0 spans a whole crash window: the down-edge must
/// still fire before the up-edge) and deliveries probe the two churned
/// nodes at the current horizon.
constexpr std::array<std::uint64_t, 5> kAdvances{1, 2, 3, 4, 6};
constexpr int kDeliverTargets = 2;  // nodes 1 and 2
constexpr int kDfsAlphabet = int(kAdvances.size()) + kDeliverTargets;
constexpr int kDfsDepth = 6;
constexpr std::size_t kDfsBudget = 12'000;

/// Replay one schedule against a fresh cluster, asserting the membership
/// invariants after every action. Returns false (with a recorded gtest
/// failure) on the first violation.
void run_churn_schedule(const std::vector<int>& schedule,
                        const gn::NetworkConditions& conditions) {
  // Declared before the cluster: handler captures must outlive it.
  std::array<int, 4> served{};
  const auto probe_for = [&served](gn::NodeId node) {
    return [&served, node](const gn::Request&) {
      ++served[node];
      return gn::HandlerResult::reply(gn::Payload{float(node)});
    };
  };

  gn::Cluster::Options opt;
  opt.nodes = 4;
  opt.pool_threads = 1;
  opt.conditions = conditions;
  gn::Cluster cluster(opt);
  for (gn::NodeId node = 0; node < 4; ++node) {
    cluster.register_handler(node, "probe", probe_for(node));
  }
  // The recovery hook re-registers the probe handler — the miniature of
  // the trainer's re-register + state-transfer hook.
  for (gn::NodeId node = 1; node <= 2; ++node) {
    cluster.set_recovery_handler(
        node, [&cluster, &probe_for, node](std::uint64_t) {
          cluster.register_handler(node, "probe", probe_for(node));
        });
  }

  std::uint64_t horizon = 0;
  const auto check_membership = [&](const char* when) {
    for (gn::NodeId node = 0; node < 4; ++node) {
      // The live FSM and the plane-shared membership predicate must agree
      // at every step of every schedule — this is the live-vs-analytic
      // no-drift oracle.
      ASSERT_EQ(cluster.is_crashed(node),
                conditions.churn_down(node, horizon))
          << "schedule " << schedule_name(schedule) << " " << when
          << " horizon " << horizon << " node " << node;
      // advance_lifecycle() must never park a node mid-recovery: the hook
      // runs inside the up-edge, so outside the call RECOVERING is not an
      // observable schedule-driven state.
      ASSERT_NE(cluster.lifecycle(node), gn::NodeLifecycle::kRecovering)
          << "schedule " << schedule_name(schedule) << " " << when
          << " horizon " << horizon << " node " << node;
    }
  };

  check_membership("initially");
  for (int action : schedule) {
    if (action < int(kAdvances.size())) {
      const std::uint64_t iter = kAdvances[std::size_t(action)];
      cluster.advance_lifecycle(iter);
      horizon = std::max(horizon, iter);
    } else {
      const auto to = gn::NodeId(1 + (action - int(kAdvances.size())));
      const bool expect_up = !conditions.churn_down(to, horizon);
      const int before = served[std::size_t(to)];
      const gn::PayloadPtr reply = deliver(cluster, 3, to, horizon);
      ASSERT_EQ(reply != nullptr, expect_up)
          << "schedule " << schedule_name(schedule) << " deliver to " << to
          << " at horizon " << horizon;
      ASSERT_EQ(served[std::size_t(to)], before + (expect_up ? 1 : 0))
          << "schedule " << schedule_name(schedule) << " deliver to " << to
          << " at horizon " << horizon;
    }
    check_membership("after action");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace

TEST(LifecycleModelCheck, SeededDfsOverChurnScheduleInterleavings) {
  const gn::NetworkConditions conditions =
      gn::NetworkConditions::parse(kChurnSpec);
  conditions.validate(4);

  // Enumerate distinct schedules by DFS over the action tree, visiting
  // children in seeded-shuffled order so the explored 12'000-schedule
  // subtree varies with the seed while staying fully reproducible
  // (GARFIELD_MODELCHECK_SEED overrides; the failure message names the
  // exact schedule either way).
  std::uint64_t seed = 20260808;
  if (const char* env = std::getenv("GARFIELD_MODELCHECK_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::mt19937_64 rng(seed);

  std::vector<std::vector<int>> schedules;
  schedules.reserve(kDfsBudget);
  std::vector<int> prefix;
  const std::function<void()> dfs = [&] {
    if (schedules.size() >= kDfsBudget) return;
    if (prefix.size() == kDfsDepth) {
      schedules.push_back(prefix);
      return;
    }
    std::array<int, kDfsAlphabet> order{};
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (int action : order) {
      if (schedules.size() >= kDfsBudget) return;
      prefix.push_back(action);
      dfs();
      prefix.pop_back();
    }
  };
  dfs();
  ASSERT_GE(schedules.size(), 10'000u)
      << "the model checker must explore at least 10k distinct schedules";

  for (const std::vector<int>& schedule : schedules) {
    run_churn_schedule(schedule, conditions);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "first violating schedule: " << schedule_name(schedule)
             << " (seed " << seed << ")";
    }
  }
  RecordProperty("schedules_explored", std::to_string(schedules.size()));
  RecordProperty("seed", std::to_string(seed));
}

// ------------------------------------------------- redelivery termination

TEST(LifecycleModelCheck, NotReadyRedeliveryTerminatesOnceReady) {
  std::atomic<int> attempts{0};
  gn::Cluster::Options opt;
  opt.nodes = 2;
  opt.pool_threads = 1;
  gn::Cluster cluster(opt);

  cluster.register_handler(0, "probe", [&attempts](const gn::Request&) {
    // Becomes ready on the 6th attempt; the redelivery chain (20us backoff
    // doubling per retry) must carry the request there, not drop it.
    if (attempts.fetch_add(1) + 1 < 6) return gn::HandlerResult::not_ready();
    return gn::HandlerResult::reply(gn::Payload{1.0F});
  });

  const gn::PayloadPtr reply =
      deliver(cluster, 1, 0, /*iteration=*/0, std::chrono::seconds(5));
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(attempts.load(), 6);
}

TEST(LifecycleModelCheck, NeverReadyRedeliveryGivesUpAtTheDeadline) {
  std::atomic<int> attempts{0};
  gn::Cluster::Options opt;
  opt.nodes = 2;
  opt.pool_threads = 1;
  gn::Cluster cluster(opt);

  cluster.register_handler(0, "probe", [&attempts](const gn::Request&) {
    ++attempts;
    return gn::HandlerResult::not_ready();
  });

  // A callee that never becomes ready must resolve the caller with nullptr
  // once the next retry would land past the deadline — the chain
  // terminates, it does not poll forever (and the doubling backoff bounds
  // the attempt count well below timeout/floor).
  const auto start = gn::Clock::now();
  const gn::PayloadPtr reply = deliver(cluster, 1, 0, /*iteration=*/0,
                                       std::chrono::milliseconds(5));
  const auto elapsed = gn::Clock::now() - start;
  EXPECT_EQ(reply, nullptr);
  EXPECT_GE(attempts.load(), 1);
  EXPECT_LE(attempts.load(), 64);
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

// ------------------------------------------- deterministic floor abort

TEST(LifecycleModelCheck, BelowFloorAbortIsDeterministic) {
  // multi_krum needs min_n = 2f+3 = 5 at fw=1; permanently crashing all
  // five workers' quorum down to 4 voids the (n, f) bound. The abort must
  // not only fire — it must fire with a byte-identical diagnostic on every
  // run, or churn CI triage turns into flaky-log archaeology.
  const auto run_once = []() -> std::string {
    gc::DeploymentConfig cfg;
    cfg.deployment = gc::Deployment::kSsmw;
    cfg.model = "tiny_mlp";
    cfg.dataset = "cluster";
    cfg.train_size = 256;
    cfg.test_size = 64;
    cfg.batch_size = 8;
    cfg.nw = 5;
    cfg.fw = 1;
    cfg.gradient_gar = "multi_krum";
    cfg.iterations = 4;
    cfg.eval_every = 1;
    cfg.seed = 20260808;
    cfg.asynchronous = false;  // q = nw = 5 passes config validation
    cfg.network = "churn:crash=5,at_iter=2";
    cfg.validate();
    try {
      (void)gc::train(cfg);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  };

  garfield::tensor::set_parallel_threads(1);
  const std::string first = run_once();
  const std::string second = run_once();
  garfield::tensor::set_parallel_threads(0);

  ASSERT_FALSE(first.empty())
      << "a schedule below the GAR floor must abort the run";
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("resilience floor"), std::string::npos) << first;
  EXPECT_NE(first.find("min_n=5"), std::string::npos) << first;
}
