// Figures 10, 13, 14 — throughput with an increasing number of declared
// Byzantine workers (fw) and Byzantine servers (fps), on the CPU and GPU
// profiles (Fig 10 is the main-text CPU pair; Figs 13/14 are the appendix
// CPU+GPU versions of the same sweeps).
//
// Paper shapes:
//  - fw sweep (nw fixed): throughput nearly flat (same links, same batch);
//    waiting on more replies (q = 2fw+3) costs a slight straggler tail.
//  - fps sweep: nps must grow as 3fps+1, adding links; throughput drops,
//    but by less than ~50%.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"
#include "gars/gar.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::sim;

SimSetup base(const DeviceProfile& device, const LinkProfile& link) {
  SimSetup s;
  s.deployment = SimDeployment::kMsmw;
  s.d = model_spec("ResNet-50").parameters;
  s.batch_size = 32;
  s.nw = 18;
  s.fw = 3;
  s.nps = 4;
  s.fps = 1;
  s.gradient_gar = "multi_krum";
  s.model_gar = "median";
  s.device = device;
  s.link = link;
  return s;
}

void fw_sweep(const char* title, const DeviceProfile& device,
              const LinkProfile& link) {
  std::printf("\n%s\n%-6s %-22s\n", title, "fw", "throughput (updates/s)");
  for (std::size_t fw = 0; fw <= 3; ++fw) {
    SimSetup s = base(device, link);
    s.fw = fw;
    // Main-text setting: nw fixed, synchronous collection — communication
    // cost identical across fw, so throughput stays almost the same. (The
    // appendix variant waits for >= 2fw+3 replies and sees only a slight
    // extra straggler-tail cost.)
    s.asynchronous = false;
    std::printf("%-6zu %-22.4f\n", fw, updates_per_sec(s));
  }
}

void fps_sweep(const char* title, const DeviceProfile& device,
               const LinkProfile& link) {
  std::printf("\n%s\n%-6s %-6s %-22s\n", title, "fps", "nps",
              "throughput (updates/s)");
  for (std::size_t fps = 0; fps <= 3; ++fps) {
    SimSetup s = base(device, link);
    s.fps = fps;
    s.nps = std::max<std::size_t>(3 * fps + 1, 1);  // resilience condition
    std::printf("%-6zu %-6zu %-22.4f\n", fps, s.nps, updates_per_sec(s));
  }
}

/// Extension: the throughput sweeps above hold the *attack* fixed; this
/// trained sweep crosses the Byzantine degree fw with attack intensity via
/// spec strings and reports final accuracy per (GAR, attack spec, fw) cell
/// on the in-process SSMW trainer — the accuracy face of the same
/// byz-degrees question (does the deployment keep learning as the declared
/// adversary grows stronger in number *and* intensity?).
void accuracy_sweep() {
  using namespace garfield::core;
  const std::vector<std::string> specs = {
      "little_is_enough:z=0.5", "little_is_enough:z=1.5",
      "little_is_enough:z=3",   "fall_of_empires:epsilon=0.5",
      "fall_of_empires:epsilon=1.1", "fall_of_empires:epsilon=2"};
  const std::string gar = "multi_krum";

  std::printf("\nFig 10c (extension) — final accuracy vs fw and attack "
              "intensity (SSMW, %s, nw = 11)\n%-32s", gar.c_str(),
              "attack spec");
  for (std::size_t fw = 1; fw <= 3; ++fw) std::printf("fw=%-13zu", fw);
  std::printf("\n");
  for (const std::string& spec : specs) {
    std::printf("%-32s", spec.c_str());
    for (std::size_t fw = 1; fw <= 3; ++fw) {
      DeploymentConfig cfg;
      cfg.deployment = Deployment::kSsmw;
      cfg.model = "tiny_mlp";
      cfg.nw = 11;
      cfg.fw = fw;
      cfg.worker_attack = spec;
      cfg.gradient_gar = gar;
      cfg.batch_size = 16;
      cfg.train_size = 2048;
      cfg.test_size = 512;
      cfg.optimizer.lr.gamma0 = 0.1F;
      cfg.iterations = 120;
      cfg.eval_every = 0;  // final accuracy only
      cfg.seed = 33;
      const TrainResult r = train(garfield::bench::smoke(cfg));
      std::printf("%-16.3f", r.final_accuracy);
    }
    std::printf("\n");
  }
}

/// Extension: the same byz-degrees question on the *decentralized*
/// trainer, with attack intensity swept through the contract() gossip
/// rounds — the contraction path sees the adversary twice (gradient
/// exchange and the gossip re-aggregation), so growing fw under a live
/// plan is the harder version of Fig 10a.
void decentralized_fw_sweep() {
  using namespace garfield::core;
  const std::vector<std::string> specs = {
      "little_is_enough:z=0.5", "little_is_enough:z=1.5",
      "little_is_enough:z=3"};
  std::printf("\nFig 10d (extension) — decentralized final accuracy vs fw "
              "and intensity\n(median, n = 10, contraction_steps = 1, "
              "non-iid)\n");
  std::printf("%-32s", "attack spec");
  for (std::size_t fw = 1; fw <= 3; ++fw) std::printf("fw=%-13zu", fw);
  std::printf("\n");
  for (const std::string& spec : specs) {
    std::printf("%-32s", spec.c_str());
    for (std::size_t fw = 1; fw <= 3; ++fw) {
      DeploymentConfig cfg;
      cfg.deployment = Deployment::kDecentralized;
      cfg.model = "tiny_mlp";
      cfg.nw = 10;  // n - f >= 2f + 1 must hold at fw = 3
      cfg.fw = fw;
      cfg.worker_attack = spec;
      cfg.gradient_gar = "median";
      cfg.model_gar = "median";
      cfg.non_iid = true;
      cfg.contraction_steps = 1;
      cfg.batch_size = 16;
      cfg.train_size = 2048;
      cfg.test_size = 512;
      cfg.optimizer.lr.gamma0 = 0.1F;
      cfg.iterations = 100;
      cfg.eval_every = 0;
      cfg.seed = 37;
      const TrainResult r = train(garfield::bench::smoke(cfg));
      std::printf("%-16.3f", r.final_accuracy);
    }
    std::printf("\n");
  }
}

/// Extension: the fault-injection face of the byz-degrees question. A
/// `window_striker` adversary behaves honestly until the churn plane
/// thins its cohort to the GAR's resilience floor, then mounts a -100x
/// reversed attack at full intensity for the crash window. Each GAR runs
/// at nw = min_n(gar, 1) + 2 so the single crashed worker leaves the live
/// cohort one node inside the striker's margin=1 trigger band — the
/// worst honest-majority configuration the resilience condition permits.
/// The unprotected mean is wrecked beyond repair; the robust GARs filter
/// the strike and re-converge over the post-window iterations.
void window_striker_sweep() {
  using namespace garfield::core;
  std::printf("\nFig 10e (extension) — final accuracy under a window-timed "
              "strike\n(SSMW, churn:crash=1,at_iter=5,recover_after=20, "
              "nw = min_n + 2, fw = 1)\n%-16s %-8s %-10s %-10s\n", "gar",
              "nw", "clean", "struck");
  for (const char* gar : {"average", "krum", "centered_clip"}) {
    double acc[2];
    for (int struck = 0; struck < 2; ++struck) {
      DeploymentConfig cfg;
      cfg.deployment = Deployment::kSsmw;
      cfg.model = "tiny_mlp";
      cfg.dataset = "cluster";
      cfg.train_size = 256;
      cfg.test_size = 64;
      cfg.batch_size = 8;
      cfg.nps = 1;
      cfg.nw = garfield::gars::gar_min_n(gar, 1) + 2;
      cfg.fw = 1;
      cfg.gradient_gar = gar;
      cfg.iterations = 45;
      cfg.eval_every = 0;
      cfg.seed = 20260808;
      cfg.worker_attack = struck ? "window_striker:margin=1" : "";
      cfg.network = "churn:crash=1,at_iter=5,recover_after=20";
      acc[struck] = train(garfield::bench::smoke(cfg)).final_accuracy;
    }
    std::printf("%-16s %-8zu %-10.3f %-10.3f\n", gar,
                garfield::gars::gar_min_n(gar, 1) + 2, acc[0], acc[1]);
  }
}

}  // namespace

int main() {
  fw_sweep("Fig 10a / 13a — throughput vs fw, CPU (nw = 18 fixed)",
           cpu_profile(), cpu_link());
  fw_sweep("Fig 13b — throughput vs fw, GPU", gpu_profile(), gpu_link());
  fps_sweep("Fig 10b / 14a — throughput vs fps, CPU (nps = 3*fps+1)",
            cpu_profile(), cpu_link());
  fps_sweep("Fig 14b — throughput vs fps, GPU", gpu_profile(), gpu_link());
  accuracy_sweep();
  decentralized_fw_sweep();
  window_striker_sweep();
  std::printf("\nPaper shapes: flat in fw; monotonic drop with fps bounded "
              "below ~50%%,\nwith the same degradation ratio on CPU and "
              "GPU. Extension shapes: multi_krum\nholds accuracy across fw "
              "and intensity while the adversary stays declared, the\n"
              "decentralized contraction path degrades gracefully as fw "
              "grows, and the\nwindow-timed strike wrecks `average` while "
              "`krum` and `centered_clip` hold.\n");
  return 0;
}
