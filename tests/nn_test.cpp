// Unit tests for garfield::nn — layers (with numerical gradient checks),
// losses, optimizer, Model flattening and the model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/zoo.h"

namespace nn = garfield::nn;
namespace gt = garfield::tensor;
namespace gd = garfield::data;

namespace {

/// Central-difference check of Model::gradient against the loss landscape.
/// Verifies forward, backward and flattening end to end.
void check_model_gradient(nn::Model& model, const gt::Tensor& inputs,
                          const std::vector<std::size_t>& labels,
                          double tolerance) {
  const gt::FlatVector params = model.parameters();
  const nn::GradientResult analytic = model.gradient(inputs, labels);
  gt::Rng rng(11);
  const double eps = 1e-3;
  // Probe a deterministic sample of coordinates (all of them is too slow).
  const std::size_t probes = std::min<std::size_t>(params.size(), 48);
  for (std::size_t k = 0; k < probes; ++k) {
    const std::size_t i = (k * 977) % params.size();
    gt::FlatVector perturbed = params;
    perturbed[i] += float(eps);
    model.set_parameters(perturbed);
    const double up = model.loss(inputs, labels);
    perturbed[i] -= float(2 * eps);
    model.set_parameters(perturbed);
    const double down = model.loss(inputs, labels);
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.gradient[i], numeric, tolerance)
        << "coordinate " << i;
  }
  model.set_parameters(params);
}

nn::ModelPtr tiny_linear_model(gt::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->push(std::make_unique<nn::Linear>(6, 5, rng));
  return std::make_unique<nn::Model>("probe", std::move(net),
                                     gt::Shape{6}, 5);
}

}  // namespace

// ------------------------------------------------------------------ layers

TEST(Linear, ForwardMatchesHandComputation) {
  gt::Rng rng(1);
  nn::Linear layer(2, 2, rng);
  // Overwrite weights to known values through params().
  auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  (*params[0].value) = gt::Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  (*params[1].value) = gt::Tensor({2}, std::vector<float>{0.5F, -0.5F});
  gt::Tensor x({1, 2}, std::vector<float>{10, 20});
  gt::Tensor y = layer.forward(x, true);
  // y = x W^T + b: [10*1+20*2+0.5, 10*3+20*4-0.5]
  EXPECT_FLOAT_EQ(y.at(0, 0), 50.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 109.5F);
}

TEST(Linear, BackwardShapes) {
  gt::Rng rng(1);
  nn::Linear layer(3, 4, rng);
  gt::Tensor x = gt::Tensor::randn({2, 3}, rng);
  (void)layer.forward(x, true);
  gt::Tensor grad = gt::Tensor::randn({2, 4}, rng);
  gt::Tensor gx = layer.backward(grad);
  EXPECT_EQ(gx.shape(), (gt::Shape{2, 3}));
}

TEST(ReLU, ForwardZeroesNegatives) {
  nn::ReLU relu;
  gt::Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  gt::Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 2.0F);
  EXPECT_EQ(y[3], 0.0F);
}

TEST(ReLU, BackwardMasksGradient) {
  nn::ReLU relu;
  gt::Tensor x({3}, std::vector<float>{-1, 1, 2});
  (void)relu.forward(x, true);
  gt::Tensor g({3}, std::vector<float>{5, 5, 5});
  gt::Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[1], 5.0F);
  EXPECT_EQ(gx[2], 5.0F);
}

TEST(TanhLayer, ForwardBackward) {
  nn::Tanh tanh_layer;
  gt::Tensor x({2}, std::vector<float>{0.0F, 1.0F});
  gt::Tensor y = tanh_layer.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_NEAR(y[1], std::tanh(1.0F), 1e-6);
  gt::Tensor g({2}, std::vector<float>{1, 1});
  gt::Tensor gx = tanh_layer.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 1.0F);  // 1 - tanh(0)^2
  EXPECT_NEAR(gx[1], 1.0F - std::tanh(1.0F) * std::tanh(1.0F), 1e-6);
}

TEST(Conv2d, OutputShape) {
  gt::Rng rng(2);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  gt::Tensor x = gt::Tensor::randn({2, 3, 8, 8}, rng);
  gt::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (gt::Shape{2, 8, 8, 8}));
}

TEST(Conv2d, StrideAndNoPadding) {
  gt::Rng rng(2);
  nn::Conv2d conv(1, 2, 3, 2, 0, rng);
  gt::Tensor x = gt::Tensor::randn({1, 1, 7, 7}, rng);
  gt::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (gt::Shape{1, 2, 3, 3}));
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  gt::Rng rng(2);
  nn::Conv2d conv(1, 1, 1, 1, 0, rng);  // 1x1 conv
  auto params = conv.params();
  (*params[0].value) = gt::Tensor({1, 1}, std::vector<float>{1.0F});
  (*params[1].value) = gt::Tensor({1}, std::vector<float>{0.0F});
  gt::Tensor x = gt::Tensor::randn({1, 1, 4, 4}, rng);
  gt::Tensor y = conv.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(MaxPool2d, ForwardPicksMaxima) {
  nn::MaxPool2d pool(2, 2);
  gt::Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  gt::Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0F);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  nn::MaxPool2d pool(2, 2);
  gt::Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  (void)pool.forward(x, true);
  gt::Tensor g({1, 1, 1, 1}, std::vector<float>{7});
  gt::Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[1], 7.0F);
  EXPECT_EQ(gx[2], 0.0F);
}

TEST(Flatten, RoundTrip) {
  nn::Flatten flat;
  gt::Rng rng(4);
  gt::Tensor x = gt::Tensor::randn({2, 3, 4, 4}, rng);
  gt::Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (gt::Shape{2, 48}));
  gt::Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity) {
  gt::Rng rng(5);
  nn::Dropout drop(0.5, rng);
  gt::Tensor x = gt::Tensor::randn({16}, rng);
  gt::Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainModeZeroesSome) {
  gt::Rng rng(5);
  nn::Dropout drop(0.5, rng);
  gt::Tensor x = gt::Tensor::full({256}, 1.0F);
  gt::Tensor y = drop.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, 64u);
  EXPECT_LT(zeros, 192u);
}

// ------------------------------------------------------------------ loss

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  nn::SoftmaxCrossEntropy loss;
  gt::Tensor logits({2, 4});  // zeros
  nn::LossResult r = loss.compute(logits, {0, 3});
  EXPECT_NEAR(r.value, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  nn::SoftmaxCrossEntropy loss;
  gt::Rng rng(6);
  gt::Tensor logits = gt::Tensor::randn({3, 5}, rng);
  nn::LossResult r = loss.compute(logits, {1, 2, 4});
  for (std::size_t i = 0; i < 3; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 5; ++j) row += r.grad.at(i, j);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  nn::SoftmaxCrossEntropy loss;
  gt::Tensor logits({1, 3}, std::vector<float>{100.0F, 0.0F, 0.0F});
  nn::LossResult r = loss.compute(logits, {0});
  EXPECT_LT(r.value, 1e-6);
}

TEST(MeanSquaredError, ValueAndGradient) {
  nn::MeanSquaredError mse;
  gt::Tensor out({2}, std::vector<float>{1, 3});
  gt::Tensor target({2}, std::vector<float>{0, 0});
  nn::LossResult r = mse.compute(out, target);
  EXPECT_DOUBLE_EQ(r.value, 5.0);  // (1 + 9) / 2
  EXPECT_FLOAT_EQ(r.grad[0], 1.0F);   // 2*1/2
  EXPECT_FLOAT_EQ(r.grad[1], 3.0F);   // 2*3/2
}

TEST(PredictClasses, PicksArgmaxRows) {
  gt::Tensor logits({2, 3}, std::vector<float>{0, 5, 1, 9, 2, 3});
  auto preds = nn::predict_classes(logits);
  EXPECT_EQ(preds[0], 1u);
  EXPECT_EQ(preds[1], 0u);
}

// ----------------------------------------------------------- grad checks

TEST(GradCheck, LinearSoftmaxModel) {
  gt::Rng rng(7);
  auto model = tiny_linear_model(rng);
  gt::Tensor x = gt::Tensor::randn({4, 6}, rng);
  check_model_gradient(*model, x, {0, 1, 2, 3}, 2e-3);
}

TEST(GradCheck, MlpWithReluAndTanh) {
  gt::Rng rng(8);
  auto net = std::make_unique<nn::Sequential>();
  net->push(std::make_unique<nn::Linear>(5, 7, rng));
  net->push(std::make_unique<nn::ReLU>());
  net->push(std::make_unique<nn::Linear>(7, 6, rng));
  net->push(std::make_unique<nn::Tanh>());
  net->push(std::make_unique<nn::Linear>(6, 4, rng));
  nn::Model model("mlp", std::move(net), {5}, 4);
  gt::Tensor x = gt::Tensor::randn({3, 5}, rng);
  check_model_gradient(model, x, {0, 1, 3}, 2e-3);
}

TEST(GradCheck, ConvPoolModel) {
  gt::Rng rng(9);
  auto net = std::make_unique<nn::Sequential>();
  net->push(std::make_unique<nn::Conv2d>(1, 3, 3, 1, 1, rng));
  net->push(std::make_unique<nn::ReLU>());
  net->push(std::make_unique<nn::MaxPool2d>(2, 2));
  net->push(std::make_unique<nn::Flatten>());
  net->push(std::make_unique<nn::Linear>(3 * 3 * 3, 4, rng));
  nn::Model model("cnn", std::move(net), {1, 6, 6}, 4);
  gt::Tensor x = gt::Tensor::randn({2, 1, 6, 6}, rng);
  check_model_gradient(model, x, {0, 2}, 3e-3);
}

// ------------------------------------------------------------------ model

TEST(Model, ParameterRoundTrip) {
  gt::Rng rng(10);
  auto model = tiny_linear_model(rng);
  gt::FlatVector params = model->parameters();
  EXPECT_EQ(params.size(), model->dimension());
  // Scramble, write back, read again.
  for (float& v : params) v += 1.0F;
  model->set_parameters(params);
  gt::FlatVector again = model->parameters();
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_EQ(params[i], again[i]);
}

TEST(Model, SetParametersRejectsWrongSize) {
  gt::Rng rng(10);
  auto model = tiny_linear_model(rng);
  gt::FlatVector bad(model->dimension() + 1, 0.0F);
  EXPECT_THROW(model->set_parameters(bad), std::invalid_argument);
}

TEST(Model, GradientLeavesParametersUntouched) {
  gt::Rng rng(12);
  auto model = tiny_linear_model(rng);
  gt::FlatVector before = model->parameters();
  gt::Tensor x = gt::Tensor::randn({2, 6}, rng);
  (void)model->gradient(x, {0, 1});
  gt::FlatVector after = model->parameters();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]);
}

TEST(Model, GradientIsDeterministic) {
  gt::Rng rng(13);
  auto model = tiny_linear_model(rng);
  gt::Tensor x = gt::Tensor::randn({2, 6}, rng);
  auto g1 = model->gradient(x, {0, 1});
  auto g2 = model->gradient(x, {0, 1});
  EXPECT_EQ(g1.loss, g2.loss);
  for (std::size_t i = 0; i < g1.gradient.size(); ++i)
    EXPECT_EQ(g1.gradient[i], g2.gradient[i]);
}

TEST(Model, AccuracyBounds) {
  gt::Rng rng(14);
  auto model = tiny_linear_model(rng);
  gt::Tensor x = gt::Tensor::randn({8, 6}, rng);
  const double acc = model->accuracy(x, {0, 1, 2, 3, 4, 0, 1, 2});
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

// -------------------------------------------------------------- optimizer

TEST(Optimizer, PlainSgdStep) {
  nn::SgdOptimizer opt({.lr = {.gamma0 = 0.5F}});
  gt::FlatVector params{1.0F, 2.0F};
  gt::FlatVector grad{2.0F, -2.0F};
  opt.step(params, grad, 0);
  EXPECT_FLOAT_EQ(params[0], 0.0F);
  EXPECT_FLOAT_EQ(params[1], 3.0F);
}

TEST(Optimizer, LrDecaySchedule) {
  nn::LrSchedule sched{.gamma0 = 1.0F, .decay_steps = 10.0F};
  EXPECT_FLOAT_EQ(sched.at(0), 1.0F);
  EXPECT_FLOAT_EQ(sched.at(10), 0.5F);
  EXPECT_FLOAT_EQ(sched.at(30), 0.25F);
}

TEST(Optimizer, MomentumAccumulates) {
  nn::SgdOptimizer opt({.lr = {.gamma0 = 1.0F}, .momentum = 0.9F});
  gt::FlatVector params{0.0F};
  gt::FlatVector grad{1.0F};
  opt.step(params, grad, 0);  // v=1, p=-1
  EXPECT_FLOAT_EQ(params[0], -1.0F);
  opt.step(params, grad, 1);  // v=1.9, p=-2.9
  EXPECT_FLOAT_EQ(params[0], -2.9F);
}

TEST(Optimizer, WeightDecayPullsTowardZero) {
  nn::SgdOptimizer opt({.lr = {.gamma0 = 0.1F}, .weight_decay = 1.0F});
  gt::FlatVector params{10.0F};
  gt::FlatVector grad{0.0F};
  opt.step(params, grad, 0);
  EXPECT_FLOAT_EQ(params[0], 9.0F);
}

TEST(Optimizer, ResetClearsVelocity) {
  nn::SgdOptimizer opt({.lr = {.gamma0 = 1.0F}, .momentum = 0.9F});
  gt::FlatVector params{0.0F};
  gt::FlatVector grad{1.0F};
  opt.step(params, grad, 0);
  opt.reset();
  opt.step(params, grad, 1);
  EXPECT_FLOAT_EQ(params[0], -2.0F);  // no accumulated velocity
}

TEST(GradCheck, ResidualBlock) {
  gt::Rng rng(15);
  auto inner = std::make_unique<nn::Sequential>();
  inner->push(std::make_unique<nn::Linear>(6, 6, rng));
  inner->push(std::make_unique<nn::Tanh>());
  auto net = std::make_unique<nn::Sequential>();
  net->push(std::make_unique<nn::Residual>(std::move(inner)));
  net->push(std::make_unique<nn::Linear>(6, 4, rng));
  nn::Model model("res", std::move(net), {6}, 4);
  gt::Tensor x = gt::Tensor::randn({3, 6}, rng);
  check_model_gradient(model, x, {0, 1, 3}, 2e-3);
}

TEST(GradCheck, ChannelConcatBranches) {
  gt::Rng rng(16);
  std::vector<nn::ModulePtr> branches;
  auto b1 = std::make_unique<nn::Sequential>();
  b1->push(std::make_unique<nn::Conv2d>(2, 2, 1, 1, 0, rng));
  branches.push_back(std::move(b1));
  auto b2 = std::make_unique<nn::Sequential>();
  b2->push(std::make_unique<nn::Conv2d>(2, 3, 3, 1, 1, rng));
  b2->push(std::make_unique<nn::ReLU>());
  branches.push_back(std::move(b2));
  auto net = std::make_unique<nn::Sequential>();
  net->push(std::make_unique<nn::ChannelConcat>(std::move(branches)));
  net->push(std::make_unique<nn::Flatten>());
  net->push(std::make_unique<nn::Linear>(5 * 4 * 4, 3, rng));
  nn::Model model("inc", std::move(net), {2, 4, 4}, 3);
  gt::Tensor x = gt::Tensor::randn({2, 2, 4, 4}, rng);
  check_model_gradient(model, x, {0, 2}, 3e-3);
}

TEST(Residual, ForwardAddsSkipPath) {
  gt::Rng rng(17);
  // Inner = Linear initialized to zero weights => y must equal x.
  auto inner = std::make_unique<nn::Linear>(4, 4, rng);
  auto params = inner->params();
  params[0].value->zero();
  params[1].value->zero();
  nn::Residual res(std::move(inner));
  gt::Tensor x = gt::Tensor::randn({2, 4}, rng);
  gt::Tensor y = res.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ChannelConcat, OutputChannelLayout) {
  gt::Rng rng(18);
  std::vector<nn::ModulePtr> branches;
  branches.push_back(std::make_unique<nn::Conv2d>(1, 2, 1, 1, 0, rng));
  branches.push_back(std::make_unique<nn::Conv2d>(1, 3, 1, 1, 0, rng));
  nn::ChannelConcat concat(std::move(branches));
  gt::Tensor x = gt::Tensor::randn({2, 1, 3, 3}, rng);
  gt::Tensor y = concat.forward(x, true);
  EXPECT_EQ(y.shape(), (gt::Shape{2, 5, 3, 3}));
}

// ------------------------------------------------------------------- zoo

TEST(Zoo, AllModelsConstructAndTrainOneStep) {
  for (const std::string& name : nn::model_names()) {
    gt::Rng rng(20);
    nn::ModelPtr model = nn::make_model(name, rng);
    EXPECT_GT(model->dimension(), 0u) << name;
    gt::Shape batch_shape = model->input_shape();
    batch_shape.insert(batch_shape.begin(), 2);
    gt::Tensor x = gt::Tensor::randn(batch_shape, rng);
    auto g = model->gradient(x, {0, 1});
    EXPECT_EQ(g.gradient.size(), model->dimension()) << name;
    EXPECT_TRUE(gt::all_finite(g.gradient)) << name;
  }
}

TEST(Zoo, UnknownNameThrows) {
  gt::Rng rng(21);
  EXPECT_THROW((void)nn::make_model("resnet-9000", rng),
               std::invalid_argument);
}

TEST(Zoo, IdenticalSeedsGiveIdenticalReplicas) {
  gt::Rng rng1(22), rng2(22);
  auto a = nn::make_model("small_mlp", rng1);
  auto b = nn::make_model("small_mlp", rng2);
  gt::FlatVector pa = a->parameters(), pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Zoo, TrainingReducesLossOnClusterData) {
  gt::Rng rng(23);
  auto model = nn::make_model("tiny_mlp", rng);
  auto full = gd::make_cluster_dataset({16}, 10, 640, rng, 0.8F);
  auto [train, test] = full.split(512);
  gd::BatchSampler sampler(train, 32, rng.fork(1));
  gt::FlatVector params = model->parameters();
  nn::SgdOptimizer opt({.lr = {.gamma0 = 0.1F}});
  const gd::Batch tb = test.all();
  model->set_parameters(params);
  const double loss_before = model->loss(tb.inputs, tb.labels);
  for (std::size_t it = 0; it < 150; ++it) {
    model->set_parameters(params);
    gd::Batch b = sampler.next();
    auto g = model->gradient(b.inputs, b.labels);
    opt.step(params, g.gradient, it);
  }
  model->set_parameters(params);
  const double loss_after = model->loss(tb.inputs, tb.labels);
  EXPECT_LT(loss_after, loss_before * 0.5);
  EXPECT_GT(model->accuracy(tb.inputs, tb.labels), 0.8);
}
