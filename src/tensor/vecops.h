// Flat-vector operations.
//
// Gradients and models travel through garfield as flat float vectors
// (the paper serializes tensors to protocol buffers; we serialize to
// FlatVector). GARs, attacks and the networking layer all operate on this
// representation, so these kernels are the hot path of robust aggregation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace garfield::tensor {

/// The wire/aggregation representation of a gradient or a model.
using FlatVector = std::vector<float>;

/// y += alpha * x. Sizes must match.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(std::span<float> x, float alpha);

/// Dot product.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Squared Euclidean distance between two vectors.
[[nodiscard]] double squared_distance(std::span<const float> a,
                                      std::span<const float> b);

/// Euclidean (L2) norm.
[[nodiscard]] double norm(std::span<const float> x);

/// Elementwise a - b into out (out may alias a).
void subtract(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/// Elementwise a + b into out (out may alias a).
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// Arithmetic mean of q equally-sized vectors into a caller-sized `out`
/// (no allocation). Preconditions: !inputs.empty(), out.size() == d.
void mean_into(std::span<const FlatVector> inputs, std::span<float> out);

/// Arithmetic mean of q equally-sized vectors. Precondition: !inputs.empty().
[[nodiscard]] FlatVector mean(std::span<const FlatVector> inputs);

/// cos(angle) between two vectors; 0 if either has zero norm.
[[nodiscard]] double cosine(std::span<const float> a, std::span<const float> b);

/// True iff every element is finite (no NaN / Inf). Used to reject
/// obviously-corrupt Byzantine payloads before they reach a GAR.
[[nodiscard]] bool all_finite(std::span<const float> x);

}  // namespace garfield::tensor
