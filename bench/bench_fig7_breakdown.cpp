// Figure 7 — overhead breakdown in the CPU-based experiment.
//
// Per-iteration latency of each deployment training ResNet-50 (d = 23.5M)
// on the CPU-cluster profile, split into computation / communication /
// aggregation, as in the paper's stacked bars. The TF (vanilla) bar uses
// the native runtime, whose computation and communication the paper cannot
// separate either — we print them anyway.
//
// Paper shapes: computation ~constant (~1.6 s) across systems;
// communication dominates (75-86% of the fault-tolerance overhead);
// aggregation contributes ~11% or less; decentralized aggregation is about
// twice SSMW's (extra model-aggregation step).
// A live section quantifies the *overshoot* cost of fastest-q pulls:
// replies that were crafted and transferred but arrived after the quorum
// was already met (NetStats::wasted_replies) — traffic the asynchronous
// protocol pays for and throws away.
#include <cstdio>

#include "bench_support.h"
#include "core/config.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

/// Live asynchronous run: every pull keeps the fastest q < n replies, so
/// the slowest nodes' replies are wasted work. Returns the measured stats.
void overshoot_row(const char* name, garfield::core::DeploymentConfig cfg) {
  cfg = garfield::bench::smoke(cfg);
  const garfield::core::TrainResult r = garfield::core::train(cfg);
  const garfield::net::NetStats s = r.net_stats;
  const double pct =
      s.replies_received > 0
          ? 100.0 * double(s.wasted_replies) / double(s.replies_received)
          : 0.0;
  // bytes_* charge the transport's framing model (payload floats plus the
  // frame envelope), so wasted replies show up here as real traffic: the
  // communication share of Fig 7's bars, measured instead of simulated.
  std::printf("%-22s %-10llu %-10llu %7.1f%% %-8llu %-11llu %-11llu\n", name,
              (unsigned long long)s.replies_received,
              (unsigned long long)s.wasted_replies, pct,
              (unsigned long long)s.quorum_misses,
              (unsigned long long)s.bytes_sent,
              (unsigned long long)s.bytes_received);
}

void overshoot_section() {
  std::printf("\nLive fastest-q overshoot (in-process trainer, tiny_mlp):\n"
              "%-22s %-10s %-10s %8s %-8s %-11s %-11s\n", "system", "replies",
              "wasted", "wasted%", "misses", "bytes_out", "bytes_in");
  garfield::core::DeploymentConfig base;
  base.model = "tiny_mlp";
  base.dataset = "cluster";
  base.train_size = 1024;
  base.test_size = 128;
  base.batch_size = 16;
  base.iterations = 40;
  base.eval_every = 0;
  base.seed = 11;
  base.gradient_gar = "multi_krum";
  base.model_gar = "median";

  {
    garfield::core::DeploymentConfig cfg = base;
    cfg.deployment = garfield::core::Deployment::kSsmw;
    cfg.nw = 8;
    cfg.fw = 1;
    cfg.asynchronous = true;  // qw = nw - fw: one reply per pull overshoots
    overshoot_row("SSMW async", cfg);
  }
  {
    garfield::core::DeploymentConfig cfg = base;
    cfg.deployment = garfield::core::Deployment::kMsmw;
    cfg.nps = 4;
    cfg.fps = 1;
    cfg.nw = 8;
    cfg.fw = 1;
    cfg.asynchronous = true;
    overshoot_row("MSMW async", cfg);
  }
  {
    garfield::core::DeploymentConfig cfg = base;
    cfg.deployment = garfield::core::Deployment::kDecentralized;
    cfg.nw = 8;
    cfg.fw = 1;  // q = nw - fw out of nw reachable peers
    overshoot_row("Decentralized", cfg);
  }
  {
    garfield::core::DeploymentConfig cfg = base;
    cfg.deployment = garfield::core::Deployment::kSsmw;
    cfg.nw = 8;
    cfg.fw = 1;
    cfg.asynchronous = false;  // q = nw: every crash-window pull runs short
    cfg.network = "churn:crash=8,at_iter=2,recover_after=2";
    overshoot_row("SSMW sync + churn", cfg);
  }
  std::printf("Synchronous deployments pull q = n and waste nothing; the "
              "wasted%% column is\nthe price of asynchrony's liveness. The "
              "misses column counts pulls that\nreturned short of their "
              "quorum — zero outside churn/straggler windows.\n");
}

}  // namespace

int main() {
  using namespace garfield::sim;

  std::printf("Fig 7 — per-iteration latency breakdown, ResNet-50, CPU "
              "cluster (nw=18, fw=3, nps=6, fps=1)\n\n");
  std::printf("%-16s %-14s %-16s %-14s %-10s\n", "System", "Computation",
              "Communication", "Aggregation", "Total");

  const struct {
    const char* name;
    SimDeployment dep;
    bool native;
  } systems[] = {
      {"TF (vanilla)", SimDeployment::kVanilla, true},
      {"Crash-tolerant", SimDeployment::kCrashTolerant, false},
      {"SSMW", SimDeployment::kSsmw, false},
      {"MSMW", SimDeployment::kMsmw, false},
      {"Dec. Learn.", SimDeployment::kDecentralized, false},
  };

  IterationBreakdown vanilla{};
  for (const auto& sys : systems) {
    SimSetup s;
    s.deployment = sys.dep;
    s.d = model_spec("ResNet-50").parameters;
    s.batch_size = 32;
    s.nw = 18;
    s.fw = 3;
    s.nps = 6;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = cpu_profile();
    s.native_runtime = sys.native;
    const IterationBreakdown b = simulate_iteration(s);
    if (sys.native) vanilla = b;
    std::printf("%-16s %-14.2f %-16.2f %-14.3f %-10.2f\n", sys.name,
                b.computation, b.communication, b.aggregation, b.total());
  }

  // Overhead attribution for the headline numbers of §6.6.
  SimSetup msmw;
  msmw.deployment = SimDeployment::kMsmw;
  msmw.d = model_spec("ResNet-50").parameters;
  msmw.batch_size = 32;
  msmw.nw = 18;
  msmw.fw = 3;
  msmw.nps = 6;
  msmw.fps = 1;
  msmw.gradient_gar = "multi_krum";
  msmw.model_gar = "median";
  msmw.device = cpu_profile();
  const IterationBreakdown mb = simulate_iteration(msmw);
  const double overhead = mb.total() - vanilla.total();
  std::printf("\nMSMW overhead vs vanilla: %.2f s/iteration, of which "
              "communication %.0f%%, aggregation %.0f%%\n",
              overhead,
              100.0 * (mb.communication - vanilla.communication) / overhead,
              100.0 * (mb.aggregation - vanilla.aggregation) / overhead);
  overshoot_section();
  return 0;
}
