// Tests for garfield::net — thread pool, timer wheel, pull-RPC, fastest-q
// collection, crash and straggler injection, not-ready redelivery, traffic
// accounting (including wasted replies and teardown drops).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/thread_pool.h"
#include "net/timer_wheel.h"

namespace gn = garfield::net;
using namespace std::chrono_literals;

TEST(ThreadPool, ExecutesAllTasks) {
  gn::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (count.load() < 100 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  gn::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TimerWheel, FiresAfterDelayInDueOrder) {
  gn::ThreadPool pool(1);
  std::mutex mutex;
  std::vector<int> order;
  std::atomic<int> fired{0};
  {
    gn::TimerWheel wheel(pool);
    auto record = [&](int tag) {
      std::lock_guard lock(mutex);
      order.push_back(tag);
      fired.fetch_add(1);
    };
    // Scheduled out of due order; must fire in due order.
    EXPECT_TRUE(wheel.schedule_after(20ms, [&] { record(2); }));
    EXPECT_TRUE(wheel.schedule_after(5ms, [&] { record(1); }));
    EXPECT_TRUE(wheel.schedule_after(40ms, [&] { record(3); }));
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (fired.load() < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, EqualDueTimesFireInScheduleOrder) {
  gn::ThreadPool pool(1);
  std::vector<int> order;
  std::atomic<int> fired{0};
  {
    gn::TimerWheel wheel(pool);
    for (int i = 0; i < 8; ++i) {
      // All due "immediately after" the same delay; sequence numbers must
      // break the ties deterministically.
      EXPECT_TRUE(wheel.schedule_after(10ms, [&order, &fired, i] {
        order.push_back(i);  // pool has 1 thread: no data race
        fired.fetch_add(1);
      }));
    }
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (fired.load() < 8 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimerWheel, FlushesPendingEntriesOnDestruction) {
  gn::ThreadPool pool(1);
  std::atomic<int> fired{0};
  {
    gn::TimerWheel wheel(pool);
    // Far-future entries must still run (flushed) when the wheel dies.
    EXPECT_TRUE(wheel.schedule_after(1h, [&] { fired.fetch_add(1); }));
    EXPECT_TRUE(wheel.schedule_after(2h, [&] { fired.fetch_add(1); }));
    EXPECT_EQ(wheel.pending(), 2u);
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fired.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired.load(), 2);
}

namespace {

gn::Cluster::Options small_cluster(std::size_t n) {
  gn::Cluster::Options opts;
  opts.nodes = n;
  return opts;
}

/// Register an echo handler that replies with a constant payload.
void serve_constant(gn::Cluster& cluster, gn::NodeId node, float value,
                    std::size_t d = 4) {
  cluster.register_handler(node, "echo",
                           [value, d](const gn::Request&) {
                             return gn::HandlerResult::reply(
                                 gn::Payload(d, value));
                           });
}

}  // namespace

TEST(Cluster, RejectsZeroNodes) {
  gn::Cluster::Options opts;
  opts.nodes = 0;
  EXPECT_THROW(gn::Cluster cluster(opts), std::invalid_argument);
}

TEST(Cluster, SingleCallRoundTrip) {
  gn::Cluster cluster(small_cluster(2));
  serve_constant(cluster, 1, 7.0F);
  std::promise<gn::PayloadPtr> done;
  cluster.call(0, 1, "echo", 0, nullptr,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); });
  auto result = done.get_future().get();
  ASSERT_TRUE(result);
  EXPECT_FLOAT_EQ((*result)[0], 7.0F);
}

TEST(Cluster, UnknownMethodYieldsNoReply) {
  gn::Cluster cluster(small_cluster(2));
  std::promise<gn::PayloadPtr> done;
  cluster.call(0, 1, "nope", 0, nullptr,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); });
  EXPECT_FALSE(done.get_future().get());
}

TEST(Cluster, RequestCarriesArgumentAndIteration) {
  gn::Cluster cluster(small_cluster(2));
  cluster.register_handler(1, "probe", [](const gn::Request& req) {
    EXPECT_EQ(req.from, 0u);
    EXPECT_EQ(req.to, 1u);
    EXPECT_EQ(req.iteration, 42u);
    EXPECT_TRUE(req.argument);
    return gn::HandlerResult::reply(
        gn::Payload{float(req.argument->at(0) * 2)});
  });
  auto arg = std::make_shared<const gn::Payload>(gn::Payload{21.0F});
  std::promise<gn::PayloadPtr> done;
  cluster.call(0, 1, "probe", 42, arg,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); });
  auto result = done.get_future().get();
  ASSERT_TRUE(result);
  EXPECT_FLOAT_EQ((*result)[0], 42.0F);
}

TEST(Cluster, ZeroCopyReplySharesTheServedSnapshot) {
  gn::Cluster cluster(small_cluster(2));
  // The handler serves the same refcounted snapshot on every pull; callers
  // must receive that exact object, not a copy.
  auto snapshot = std::make_shared<const gn::Payload>(gn::Payload(16, 3.0F));
  cluster.register_handler(1, "snap", [snapshot](const gn::Request&) {
    return gn::HandlerResult::reply(snapshot);
  });
  std::vector<gn::NodeId> peers{1};
  auto first = cluster.collect(0, peers, "snap", 0, nullptr, 1);
  auto second = cluster.collect(0, peers, "snap", 1, nullptr, 1);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].payload.get(), snapshot.get());
  EXPECT_EQ(second[0].payload.get(), snapshot.get());
}

TEST(Cluster, CollectReturnsQFastest) {
  gn::Cluster cluster(small_cluster(5));
  for (gn::NodeId i = 1; i < 5; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3, 4};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 3);
  EXPECT_EQ(replies.size(), 3u);
}

TEST(Cluster, CollectAllWhenQEqualsN) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 3);
  EXPECT_EQ(replies.size(), 3u);
}

TEST(Cluster, CollectRejectsOversizedQuorum) {
  gn::Cluster cluster(small_cluster(3));
  std::vector<gn::NodeId> peers{1, 2};
  EXPECT_THROW((void)cluster.collect(0, peers, "echo", 0, nullptr, 3),
               std::invalid_argument);
}

TEST(Cluster, CrashedNodeNeverReplies) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  cluster.crash(2);
  EXPECT_TRUE(cluster.is_crashed(2));
  std::vector<gn::NodeId> peers{1, 2, 3};
  // q = 2 is satisfiable by the two live nodes.
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2);
  EXPECT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_NE(r.from, 2u);
}

TEST(Cluster, CollectTimesOutGracefullyWhenQuorumImpossible) {
  gn::Cluster cluster(small_cluster(3));
  serve_constant(cluster, 1, 1.0F);
  cluster.crash(2);
  std::vector<gn::NodeId> peers{1, 2};
  // q = 2 but only one live replier: returns 1 reply once both callbacks
  // resolved (crashed responds nullptr), well before the deadline.
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2, 2s);
  EXPECT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].from, 1u);
}

TEST(Cluster, StragglersLoseTheRace) {
  gn::Cluster::Options opts = small_cluster(4);
  opts.conditions =
      gn::NetworkConditions::parse("straggler:nodes=1,lag=300ms");
  gn::Cluster cluster(opts);
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2);
  ASSERT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_NE(r.from, 1u);
}

TEST(Cluster, HandlerMayDeclineToReply) {
  gn::Cluster cluster(small_cluster(2));
  cluster.register_handler(1, "maybe", [](const gn::Request&) {
    return gn::HandlerResult::none();  // Byzantine "dropped"
  });
  std::promise<gn::PayloadPtr> done;
  cluster.call(0, 1, "maybe", 0, nullptr,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); });
  EXPECT_FALSE(done.get_future().get());
}

TEST(Cluster, NotReadyHandlerIsRedelivered) {
  gn::Cluster cluster(small_cluster(2));
  std::atomic<int> attempts{0};
  cluster.register_handler(1, "later", [&attempts](const gn::Request&) {
    // Not ready for the first three deliveries; answers on the fourth.
    if (attempts.fetch_add(1) < 3) return gn::HandlerResult::not_ready();
    return gn::HandlerResult::reply(gn::Payload{9.0F});
  });
  std::vector<gn::NodeId> peers{1};
  auto replies = cluster.collect(0, peers, "later", 0, nullptr, 1, 5s);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FLOAT_EQ((*replies[0].payload)[0], 9.0F);
  EXPECT_GE(attempts.load(), 4);
  // Only the final delivery produced a reply; redeliveries are not new
  // requests.
  const gn::NetStats stats = cluster.stats();
  EXPECT_EQ(stats.requests_sent, 1u);
  EXPECT_EQ(stats.replies_received, 1u);
}

TEST(Cluster, PerpetuallyNotReadyResolvesAtTheCallTimeout) {
  gn::Cluster cluster(small_cluster(2));
  cluster.register_handler(1, "never", [](const gn::Request&) {
    return gn::HandlerResult::not_ready();
  });
  std::vector<gn::NodeId> peers{1};
  const auto start = std::chrono::steady_clock::now();
  auto replies = cluster.collect(0, peers, "never", 0, nullptr, 1, 200ms);
  EXPECT_TRUE(replies.empty());
  // The retry loop must terminate around the timeout, not spin forever.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(Cluster, TeardownWithInFlightRetriesResolvesCallbacks) {
  // Destroying the cluster while a not-ready retry chain is live must
  // resolve the callback (as a dropped dispatch), not re-arm a dead timer
  // or leak the callback — the hang-then-timeout teardown failure mode.
  std::promise<gn::PayloadPtr> done;
  auto future = done.get_future();
  std::uint64_t dropped = 0;
  {
    gn::Cluster cluster(small_cluster(2));
    cluster.register_handler(1, "never", [](const gn::Request&) {
      return gn::HandlerResult::not_ready();
    });
    cluster.call(0, 1, "never", 0, nullptr,
                 [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); },
                 std::chrono::seconds(30));
    std::this_thread::sleep_for(5ms);  // let a few redeliveries happen
    dropped = cluster.stats().dropped_tasks;
    (void)dropped;
  }  // ~Cluster flushes the retry; the callback must have fired by now
  ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
  EXPECT_FALSE(future.get());
}

TEST(Cluster, StatsCountTraffic) {
  gn::Cluster cluster(small_cluster(3));
  serve_constant(cluster, 1, 1.0F, 10);
  serve_constant(cluster, 2, 2.0F, 10);
  auto arg = std::make_shared<const gn::Payload>(gn::Payload(5, 0.0F));
  std::vector<gn::NodeId> peers{1, 2};
  (void)cluster.collect(0, peers, "echo", 0, arg, 2);
  const gn::NetStats stats = cluster.stats();
  EXPECT_EQ(stats.requests_sent, 2u);
  EXPECT_EQ(stats.replies_received, 2u);
  // 2 requests x 5 floats + 2 replies x 10 floats.
  EXPECT_EQ(stats.floats_transferred, 30u);
  EXPECT_EQ(stats.wasted_replies, 0u);
  EXPECT_EQ(stats.dropped_tasks, 0u);
}

TEST(Cluster, StatsSnapshotStaysCoherentUnderConcurrentLoad) {
  // The traffic counters are relaxed atomics, except the replies_received
  // release/acquire pair that anchors the snapshot (see Cluster::stats()).
  // The audited contract: any snapshot taken mid-flight is per-counter
  // monotone against any earlier snapshot from the same thread, and never
  // shows more replies than requests — even while collects are racing.
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i), 4);
  std::atomic<bool> stop{false};
  std::thread load([&] {
    std::vector<gn::NodeId> peers{1, 2, 3};
    for (std::uint64_t it = 0; !stop.load(); ++it) {
      (void)cluster.collect(0, peers, "echo", it, nullptr, 2);
    }
  });
  gn::NetStats prev;
  for (int i = 0; i < 2000; ++i) {
    const gn::NetStats s = cluster.stats();
    ASSERT_LE(s.replies_received, s.requests_sent) << "sample " << i;
    ASSERT_GE(s.requests_sent, prev.requests_sent) << "sample " << i;
    ASSERT_GE(s.replies_received, prev.replies_received) << "sample " << i;
    ASSERT_GE(s.floats_transferred, prev.floats_transferred) << "sample " << i;
    ASSERT_GE(s.wasted_replies, prev.wasted_replies) << "sample " << i;
    ASSERT_GE(s.quorum_misses, prev.quorum_misses) << "sample " << i;
    ASSERT_GE(s.dropped_tasks, prev.dropped_tasks) << "sample " << i;
    prev = s;
  }
  stop = true;
  load.join();
  // Drain: the last collect returned at q=2, so its third reply may still
  // be in flight. At quiescence the cross-field relation is exact.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.stats().replies_received < cluster.stats().requests_sent &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const gn::NetStats end = cluster.stats();
  EXPECT_EQ(end.replies_received, end.requests_sent);
  EXPECT_EQ(end.dropped_tasks, 0u);
}

TEST(Cluster, RepliesBeyondTheQuorumCountAsWasted) {
  // One fast peer, three stragglers; q=1 means the stragglers' replies are
  // crafted after the quorum is met and must be counted, not stored.
  gn::Cluster::Options opts = small_cluster(5);
  opts.conditions =
      gn::NetworkConditions::parse("straggler:nodes=2-4,lag=50ms");
  gn::Cluster cluster(opts);
  for (gn::NodeId i = 1; i < 5; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3, 4};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].from, 1u);
  // The stragglers still answer; wait for their callbacks to land.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.stats().replies_received < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const gn::NetStats stats = cluster.stats();
  EXPECT_EQ(stats.replies_received, 4u);
  EXPECT_EQ(stats.wasted_replies, 3u);
}

TEST(Cluster, JitterIsDeterministicPerEdgeAndIteration) {
  // The jitter draw is a pure hash of (seed, from, to, method, iteration)
  // — the old shared-Rng draw made simulated latency depend on thread
  // interleaving. Assert the function directly: same inputs => same delay,
  // across repeated draws and across independently-built clusters.
  gn::Cluster::Options opts;
  opts.nodes = 4;
  opts.conditions = gn::NetworkConditions::parse("wan:jitter=10ms");
  opts.seed = 99;
  gn::Cluster a(opts), b(opts);

  std::vector<gn::Duration> draws;
  for (gn::NodeId from = 0; from < 4; ++from) {
    for (gn::NodeId to = 0; to < 4; ++to) {
      for (std::uint64_t it = 0; it < 5; ++it) {
        const gn::Duration d = a.jitter_for(from, to, "echo", it);
        EXPECT_GE(d.count(), 0);
        EXPECT_LT(d.count(), 10000);
        EXPECT_EQ(d, a.jitter_for(from, to, "echo", it));  // repeat draw
        EXPECT_EQ(d, b.jitter_for(from, to, "echo", it));  // fresh cluster
        draws.push_back(d);
      }
    }
  }
  // Distribution sanity: the edges/iterations must not all collapse onto
  // one value.
  std::sort(draws.begin(), draws.end());
  EXPECT_GT(draws.back() - draws.front(), gn::Duration{1000});
  // The method name is part of the edge key, and a different seed moves
  // the draw.
  EXPECT_NE(a.jitter_for(0, 1, "echo", 0), a.jitter_for(0, 1, "get", 0));
  opts.seed = 100;
  gn::Cluster c(opts);
  EXPECT_NE(a.jitter_for(0, 1, "echo", 0), c.jitter_for(0, 1, "echo", 0));
}

TEST(Cluster, ConcurrentCollectsDoNotInterfere) {
  gn::Cluster cluster(small_cluster(6));
  for (gn::NodeId i = 1; i < 6; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3, 4, 5};
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cluster, &peers, &total] {
      for (int k = 0; k < 20; ++k) {
        auto replies =
            cluster.collect(0, peers, "echo", std::uint64_t(k), nullptr, 3);
        total.fetch_add(int(replies.size()));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 3);
}

TEST(Cluster, LatencyAndJitterDelayDelivery) {
  gn::Cluster::Options opts;
  opts.nodes = 2;
  opts.conditions = gn::NetworkConditions::parse("wan:latency=50ms");
  gn::Cluster cluster(opts);
  serve_constant(cluster, 1, 1.0F);
  const auto start = std::chrono::steady_clock::now();
  std::vector<gn::NodeId> peers{1};
  (void)cluster.collect(0, peers, "echo", 0, nullptr, 1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 45ms);
}

// ----------------------------------------------------------- lifecycle FSM

TEST(Lifecycle, RetryGiveUpIsStrictlyAfterTheDeadline) {
  // The give-up comparison must be strict: a retry landing exactly AT the
  // deadline is the last legitimate attempt of a timeout-bounded exchange,
  // not one past it (the old `>=` silently dropped it).
  const auto deadline = gn::Clock::now() + 1s;
  EXPECT_FALSE(gn::retry_gives_up(deadline, deadline));
  EXPECT_FALSE(gn::retry_gives_up(deadline - 1us, deadline));
  EXPECT_TRUE(gn::retry_gives_up(deadline + 1us, deadline));
}

TEST(Lifecycle, CrashRecoverRoundTripRestoresService) {
  gn::Cluster cluster(small_cluster(2));
  serve_constant(cluster, 1, 5.0F);
  EXPECT_EQ(cluster.lifecycle(1), gn::NodeLifecycle::kRunning);

  cluster.crash(1);
  EXPECT_EQ(cluster.lifecycle(1), gn::NodeLifecycle::kCrashed);
  EXPECT_TRUE(cluster.is_crashed(1));
  std::vector<gn::NodeId> peers{1};
  EXPECT_TRUE(cluster.collect(0, peers, "echo", 0, nullptr, 1, 1s).empty());

  cluster.begin_recovery(1);
  EXPECT_EQ(cluster.lifecycle(1), gn::NodeLifecycle::kRecovering);
  // RECOVERING is still fail-silent.
  EXPECT_TRUE(cluster.is_crashed(1));
  EXPECT_TRUE(cluster.collect(0, peers, "echo", 1, nullptr, 1, 1s).empty());

  // A restarted process has no handlers: re-register before completing.
  serve_constant(cluster, 1, 6.0F);
  cluster.complete_recovery(1);
  EXPECT_EQ(cluster.lifecycle(1), gn::NodeLifecycle::kRunning);
  EXPECT_FALSE(cluster.is_crashed(1));
  auto replies = cluster.collect(0, peers, "echo", 2, nullptr, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FLOAT_EQ((*replies[0].payload)[0], 6.0F);
}

TEST(Lifecycle, CrashDropsRegisteredHandlers) {
  gn::Cluster cluster(small_cluster(2));
  serve_constant(cluster, 1, 5.0F);
  cluster.crash(1);
  cluster.begin_recovery(1);
  cluster.complete_recovery(1);
  // Recovered without re-registering: the old handler must be gone (a
  // restarted process does not keep the dead one's function pointers).
  std::promise<gn::PayloadPtr> done;
  cluster.call(0, 1, "echo", 0, nullptr,
               [&done](gn::PayloadPtr p) { done.set_value(std::move(p)); });
  EXPECT_FALSE(done.get_future().get());
}

TEST(Lifecycle, OutOfOrderTransitionsThrow) {
  gn::Cluster cluster(small_cluster(2));
  EXPECT_THROW(cluster.begin_recovery(1), std::logic_error);     // RUNNING
  EXPECT_THROW(cluster.complete_recovery(1), std::logic_error);  // RUNNING
  cluster.crash(1);
  EXPECT_THROW(cluster.complete_recovery(1), std::logic_error);  // CRASHED
  cluster.begin_recovery(1);
  EXPECT_THROW(cluster.begin_recovery(1), std::logic_error);  // RECOVERING
  cluster.complete_recovery(1);
  EXPECT_EQ(cluster.lifecycle(1), gn::NodeLifecycle::kRunning);
}

TEST(Lifecycle, ChurnScheduleDrivesCrashAndRecovery) {
  gn::Cluster::Options opts = small_cluster(3);
  opts.conditions =
      gn::NetworkConditions::parse("churn:crash=2,at_iter=5,recover_after=3");
  gn::Cluster cluster(opts);
  serve_constant(cluster, 2, 1.0F);
  std::atomic<int> recoveries{0};
  std::atomic<std::uint64_t> recovered_at{0};
  cluster.set_recovery_handler(2, [&](std::uint64_t up) {
    recoveries.fetch_add(1);
    recovered_at.store(up);
  });

  cluster.advance_lifecycle(4);
  EXPECT_FALSE(cluster.is_crashed(2));
  cluster.advance_lifecycle(5);
  EXPECT_TRUE(cluster.is_crashed(2));
  cluster.advance_lifecycle(7);
  EXPECT_TRUE(cluster.is_crashed(2));
  cluster.advance_lifecycle(8);  // up-edge: 5 + 3
  EXPECT_FALSE(cluster.is_crashed(2));
  EXPECT_EQ(recoveries.load(), 1);
  EXPECT_EQ(recovered_at.load(), 8u);
  // One-shot events: replaying old iterations must not re-crash the node.
  cluster.advance_lifecycle(6);
  EXPECT_FALSE(cluster.is_crashed(2));
  // wait_until_running on an already-running node reports the recovery.
  const auto resumed = cluster.wait_until_running(2, 1s);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(*resumed, 8u);
}

TEST(Lifecycle, JoinNodesStartCrashedAndComeUpAtTheirIteration) {
  gn::Cluster::Options opts = small_cluster(3);
  opts.conditions = gn::NetworkConditions::parse("churn:join=2,at_iter=10");
  gn::Cluster cluster(opts);
  // Down from construction, before any advance_lifecycle call.
  EXPECT_TRUE(cluster.is_crashed(2));
  EXPECT_FALSE(cluster.is_crashed(1));
  cluster.advance_lifecycle(9);
  EXPECT_TRUE(cluster.is_crashed(2));
  cluster.advance_lifecycle(10);
  EXPECT_FALSE(cluster.is_crashed(2));
}

TEST(Lifecycle, PermanentCrashNeverRecovers) {
  gn::Cluster::Options opts = small_cluster(2);
  opts.conditions = gn::NetworkConditions::parse("churn:crash=1,at_iter=3");
  gn::Cluster cluster(opts);
  cluster.advance_lifecycle(1000);
  EXPECT_TRUE(cluster.is_crashed(1));
  EXPECT_FALSE(cluster.wait_until_running(1, 50ms).has_value());
}

TEST(Lifecycle, QuorumMissesCountShortCollects) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  cluster.crash(3);
  std::vector<gn::NodeId> peers{1, 2, 3};
  // Met quorum: no miss.
  EXPECT_EQ(cluster.collect(0, peers, "echo", 0, nullptr, 2).size(), 2u);
  EXPECT_EQ(cluster.stats().quorum_misses, 0u);
  // q = 3 with one crashed responder: resolves short, counts one miss.
  EXPECT_EQ(cluster.collect(0, peers, "echo", 1, nullptr, 3, 2s).size(), 2u);
  EXPECT_EQ(cluster.stats().quorum_misses, 1u);
}
