// Determinism regression for the selection-based GARs.
//
// The selection_order contract (gars/gar.h): exact Krum-score ties are real
// — mutual nearest neighbours score identically — so ties break on the
// vectors' lexicographic order, keeping aggregation invariant to
// reply-arrival order, which is adversarial under asynchrony. These tests
// pin that contract: Krum, Multi-Krum and Bulyan must return bit-identical
// aggregates under any input permutation, including clouds engineered to
// contain exact score ties, with all randomness drawn from fixed
// tensor/rng.h seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "gars/gar.h"
#include "support/test_support.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;
namespace ts = garfield::testsupport;

using gt::FlatVector;

namespace {

constexpr std::uint64_t kSeed = 20260728;

/// Shuffle a copy of `inputs` with the given seed.
std::vector<FlatVector> shuffled(const std::vector<FlatVector>& inputs,
                                 std::uint64_t seed) {
  std::vector<FlatVector> out = inputs;
  gt::Rng rng(seed);
  std::shuffle(out.begin(), out.end(), rng.engine());
  return out;
}

/// Bitwise vector equality (== would treat NaN oddly; none expected here,
/// but a determinism test should compare representations, not values).
bool bit_equal(const FlatVector& a, const FlatVector& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(float)) == 0);
}

/// A cloud with deliberate exact ties: pairs of identical vectors are
/// mutual nearest neighbours with identical Krum scores, exercising the
/// lexicographic tie-break rather than leaving it to luck.
std::vector<FlatVector> tied_cloud(std::size_t pairs, std::size_t d,
                                   gt::Rng& rng) {
  std::vector<FlatVector> out;
  for (std::size_t p = 0; p < pairs; ++p) {
    FlatVector v(d);
    for (float& x : v) x = rng.normal();
    out.push_back(v);
    out.push_back(std::move(v));  // exact duplicate
  }
  return out;
}

struct Case {
  const char* gar;
  std::size_t n;
  std::size_t f;
};

const Case kCases[] = {
    {"krum", 9, 2},
    {"krum", 11, 3},
    {"multi_krum", 9, 2},
    {"multi_krum", 13, 4},
    {"bulyan", 7, 1},
    {"bulyan", 11, 2},
};

}  // namespace

TEST(Determinism, SelectionGarsAreBitwiseInvariantUnderPermutation) {
  for (const Case& c : kCases) {
    gt::Rng rng(kSeed);
    const ts::CloudSpec spec{c.n, 24, 0.0F, 1.0F};
    const std::vector<FlatVector> inputs = ts::honest_cloud(spec, rng);
    const gg::GarPtr gar = gg::make_gar(c.gar, c.n, c.f);
    const FlatVector base = gar->aggregate(inputs);

    for (std::uint64_t perm_seed = 1; perm_seed <= 8; ++perm_seed) {
      const FlatVector out = gar->aggregate(shuffled(inputs, perm_seed));
      EXPECT_TRUE(bit_equal(base, out))
          << c.gar << " n=" << c.n << " f=" << c.f
          << " diverged under permutation seed " << perm_seed;
    }
    std::vector<FlatVector> reversed = inputs;
    std::reverse(reversed.begin(), reversed.end());
    EXPECT_TRUE(bit_equal(base, gar->aggregate(reversed)))
        << c.gar << " diverged under reversal";
  }
}

TEST(Determinism, ExactScoreTiesBreakOnLexicographicOrder) {
  // With exact duplicates in the cloud, scores tie exactly; the contract
  // says the winning *vector* is still permutation-independent.
  for (const Case& c : kCases) {
    gt::Rng rng(kSeed + c.n);
    std::vector<FlatVector> inputs = tied_cloud(c.n / 2, 16, rng);
    while (inputs.size() < c.n) {
      FlatVector v(16);
      for (float& x : v) x = rng.normal();
      inputs.push_back(std::move(v));
    }
    ASSERT_EQ(inputs.size(), c.n);

    const gg::GarPtr gar = gg::make_gar(c.gar, c.n, c.f);
    const FlatVector base = gar->aggregate(inputs);
    for (std::uint64_t perm_seed = 11; perm_seed <= 16; ++perm_seed) {
      EXPECT_TRUE(bit_equal(base, gar->aggregate(shuffled(inputs, perm_seed))))
          << c.gar << " n=" << c.n << " f=" << c.f
          << " tie-break diverged under permutation seed " << perm_seed;
    }
  }
}

TEST(Determinism, KrumSelectsTheSameVectorRegardlessOfIndexing) {
  // select() returns an index into the (permuted) span; the *vector* at
  // that index must be the same one every time.
  gt::Rng rng(kSeed);
  const ts::CloudSpec spec{11, 20, 0.0F, 1.0F};
  const std::vector<FlatVector> inputs = ts::honest_cloud(spec, rng);
  const gg::Krum krum(11, 3);
  const FlatVector winner = inputs[krum.select(inputs)];

  for (std::uint64_t perm_seed = 21; perm_seed <= 26; ++perm_seed) {
    const std::vector<FlatVector> p = shuffled(inputs, perm_seed);
    EXPECT_TRUE(bit_equal(winner, p[krum.select(p)])) << perm_seed;
  }
}

TEST(Determinism, SerialAndParallelKernelsAreBitwiseIdentical) {
  // §4.3 coordinate sharding and the sharded distance matrix must be pure
  // partitioning: every shard writes disjoint outputs with the same
  // per-element arithmetic, so any thread count yields the same bits. The
  // dimension exceeds the coordinate-shard grain (64k) so the parallel
  // path genuinely engages; set_parallel_threads forces real threads even
  // on single-core hosts. The CTest harness additionally reruns this whole
  // binary under GARFIELD_THREADS=1 (the *_serial variants).
  struct ThreadGuard {
    ~ThreadGuard() { garfield::tensor::set_parallel_threads(0); }
  } guard;

  const std::size_t d = (1 << 17) + 3;  // odd tail crosses shard boundaries
  for (const std::string& name : gg::gar_names()) {
    const std::size_t f = name == "average" ? 0 : 1;
    const std::size_t n = gg::gar_min_n(name, f) + 2;
    gt::Rng rng(kSeed + n);
    const ts::CloudSpec spec{n, d, 0.5F, 1.0F};
    const std::vector<FlatVector> inputs = ts::honest_cloud(spec, rng);
    const gg::GarPtr gar = gg::make_gar(name, n, f);

    garfield::tensor::set_parallel_threads(1);
    const FlatVector serial = gar->aggregate(inputs);
    for (std::size_t threads : {2u, 5u}) {
      garfield::tensor::set_parallel_threads(threads);
      gg::AggregationContext ctx;
      FlatVector parallel;
      gar->aggregate_into(inputs, ctx, parallel);
      EXPECT_TRUE(bit_equal(serial, parallel))
          << name << " diverged between 1 and " << threads << " threads";
    }
    garfield::tensor::set_parallel_threads(0);
  }
}

TEST(Determinism, FixedSeedsReproduceAcrossIndependentRuns) {
  // Two fully independent constructions from the same rng seed must agree
  // bit-for-bit end to end (cloud, rule, aggregate).
  for (const Case& c : kCases) {
    FlatVector first;
    for (int run = 0; run < 2; ++run) {
      gt::Rng rng(kSeed ^ c.f);
      const ts::CloudSpec spec{c.n, 24, 1.0F, 0.5F};
      const std::vector<FlatVector> inputs = ts::honest_cloud(spec, rng);
      const FlatVector out =
          gg::make_gar(c.gar, c.n, c.f)->aggregate(inputs);
      if (run == 0) {
        first = out;
      } else {
        EXPECT_TRUE(bit_equal(first, out)) << c.gar << " not reproducible";
      }
    }
  }
}
