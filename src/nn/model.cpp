#include "nn/model.h"

#include <cassert>
#include <stdexcept>

namespace garfield::nn {

Model::Model(std::string name, ModulePtr net, tensor::Shape input_shape,
             std::size_t num_classes)
    : name_(std::move(name)),
      net_(std::move(net)),
      input_shape_(std::move(input_shape)),
      num_classes_(num_classes),
      params_(net_->params()) {
  for (const Param& p : params_) dimension_ += p.value->numel();
}

FlatVector Model::parameters() const {
  FlatVector flat;
  flat.reserve(dimension_);
  for (const Param& p : params_) {
    std::span<const float> v = p.value->data();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

void Model::set_parameters(std::span<const float> flat) {
  if (flat.size() != dimension_) {
    throw std::invalid_argument("Model::set_parameters: expected " +
                                std::to_string(dimension_) + " values, got " +
                                std::to_string(flat.size()));
  }
  std::size_t offset = 0;
  for (const Param& p : params_) {
    std::span<float> v = p.value->data();
    std::copy(flat.begin() + long(offset), flat.begin() + long(offset + v.size()),
              v.begin());
    offset += v.size();
  }
}

void Model::zero_grad() {
  for (const Param& p : params_) p.grad->zero();
}

GradientResult Model::gradient(const Tensor& inputs,
                               const std::vector<std::size_t>& labels) {
  zero_grad();
  const Tensor logits = net_->forward(inputs, /*train=*/true);
  LossResult loss = loss_fn_.compute(logits, labels);
  net_->backward(loss.grad);
  GradientResult result;
  result.loss = loss.value;
  result.gradient.reserve(dimension_);
  for (const Param& p : params_) {
    std::span<const float> g = p.grad->data();
    result.gradient.insert(result.gradient.end(), g.begin(), g.end());
  }
  zero_grad();
  return result;
}

double Model::loss(const Tensor& inputs,
                   const std::vector<std::size_t>& labels) {
  const Tensor logits = net_->forward(inputs, /*train=*/false);
  return loss_fn_.compute(logits, labels).value;
}

double Model::accuracy(const Tensor& inputs,
                       const std::vector<std::size_t>& labels) {
  assert(inputs.dim(0) == labels.size());
  const Tensor logits = net_->forward(inputs, /*train=*/false);
  const std::vector<std::size_t> preds = predict_classes(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return labels.empty() ? 0.0 : double(correct) / double(labels.size());
}

}  // namespace garfield::nn
