// Checkpoint round-trip regression: a saved model must reload bit-exactly —
// parameters, optimizer velocity and iteration tag — and corruption or
// mixed-up blobs must be rejected, never silently trained on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/checkpoint.h"
#include "net/wire.h"
#include "support/test_support.h"
#include "tensor/rng.h"

namespace gc = garfield::core;
namespace gn = garfield::net;
namespace ts = garfield::testsupport;

using garfield::tensor::FlatVector;

namespace {

class CheckpointRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("garfield_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static FlatVector random_vector(std::size_t d,
                                                std::uint64_t seed) {
    garfield::tensor::Rng rng(seed);
    FlatVector v(d);
    for (float& x : v) x = rng.normal();
    return v;
  }

  std::filesystem::path dir_;
};

}  // namespace

TEST_F(CheckpointRoundTrip, ModelAndOptimizerStateSurviveExactly) {
  gc::Checkpoint original;
  original.iteration = 123456789ULL;
  original.parameters = random_vector(513, 1);  // odd size, not a power of 2
  original.velocity = random_vector(513, 2);

  gc::save_checkpoint(path("full.ckpt"), original);
  const gc::Checkpoint loaded = gc::load_checkpoint(path("full.ckpt"));

  EXPECT_EQ(loaded.iteration, original.iteration);
  ASSERT_EQ(loaded.parameters.size(), original.parameters.size());
  ASSERT_EQ(loaded.velocity.size(), original.velocity.size());
  // Bit-exact: compare the raw bytes, not float values (which would let a
  // lossy encoder sneak through rounding, and would misbehave on NaN).
  EXPECT_EQ(std::memcmp(loaded.parameters.data(), original.parameters.data(),
                        original.parameters.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(loaded.velocity.data(), original.velocity.data(),
                        original.velocity.size() * sizeof(float)),
            0);
}

TEST_F(CheckpointRoundTrip, EmptyVelocityRoundTripsAsEmpty) {
  gc::Checkpoint original;
  original.iteration = 7;
  original.parameters = random_vector(64, 3);

  gc::save_checkpoint(path("plain.ckpt"), original);
  const gc::Checkpoint loaded = gc::load_checkpoint(path("plain.ckpt"));

  EXPECT_EQ(loaded.iteration, 7u);
  EXPECT_TRUE(loaded.velocity.empty());
  EXPECT_LE(ts::max_abs_diff(loaded.parameters, original.parameters), 0.0);
}

TEST_F(CheckpointRoundTrip, LegacySingleBlobFilesStillLoad) {
  // Files written before the velocity field existed are exactly one wire
  // message; they must keep loading with an empty velocity.
  const FlatVector params = random_vector(32, 4);
  const std::vector<std::uint8_t> blob = gn::encode(42, params);
  {
    std::ofstream out(path("legacy.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  const gc::Checkpoint loaded = gc::load_checkpoint(path("legacy.ckpt"));
  EXPECT_EQ(loaded.iteration, 42u);
  EXPECT_EQ(loaded.parameters, params);
  EXPECT_TRUE(loaded.velocity.empty());
}

TEST_F(CheckpointRoundTrip, MismatchedVelocityIterationIsRejected) {
  // A velocity blob from a different iteration than the parameters means
  // the file was stitched from two checkpoints — corrupt, not loadable.
  std::vector<std::uint8_t> blob = gn::encode(10, random_vector(16, 5));
  const std::vector<std::uint8_t> tail = gn::encode(11, random_vector(16, 6));
  blob.insert(blob.end(), tail.begin(), tail.end());
  {
    std::ofstream out(path("stitched.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("stitched.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, MismatchedVelocityDimensionIsRejected) {
  // A velocity of the wrong dimension would be silently zeroed by the
  // optimizer's first step; the loader must reject it up front.
  std::vector<std::uint8_t> blob = gn::encode(10, random_vector(16, 12));
  const std::vector<std::uint8_t> tail = gn::encode(10, random_vector(8, 13));
  blob.insert(blob.end(), tail.begin(), tail.end());
  {
    std::ofstream out(path("shortvel.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("shortvel.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, OverflowingElementCountIsRejected) {
  // A header whose element count makes kHeaderSize + 4*d wrap must fail as
  // WireError, not crash in payload.resize(). Craft a 28-byte file with
  // valid magic/version and d = 2^62.
  std::vector<std::uint8_t> blob = gn::encode(1, FlatVector{});
  ASSERT_EQ(blob.size(), gn::wire_size(0));
  const std::uint64_t huge = std::uint64_t{1} << 62;
  for (int i = 0; i < 8; ++i) {
    blob[16 + std::size_t(i)] = std::uint8_t(huge >> (8 * i));
  }
  {
    std::ofstream out(path("overflow.ckpt"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
  }
  EXPECT_THROW(gc::load_checkpoint(path("overflow.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, BitFlipIsDetected) {
  gc::Checkpoint original;
  original.iteration = 99;
  original.parameters = random_vector(128, 7);
  original.velocity = random_vector(128, 8);
  gc::save_checkpoint(path("flip.ckpt"), original);

  // Flip one payload byte in the second (velocity) message.
  std::fstream f(path("flip.ckpt"),
                 std::ios::binary | std::ios::in | std::ios::out);
  const std::size_t head = gn::wire_size(original.parameters.size());
  f.seekp(std::streamoff(head + 40));
  char byte = 0;
  f.seekg(std::streamoff(head + 40));
  f.read(&byte, 1);
  byte = char(byte ^ 0x20);
  f.seekp(std::streamoff(head + 40));
  f.write(&byte, 1);
  f.close();

  EXPECT_THROW(gc::load_checkpoint(path("flip.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, TruncationIsDetected) {
  gc::Checkpoint original;
  original.iteration = 5;
  original.parameters = random_vector(64, 9);
  original.velocity = random_vector(64, 10);
  gc::save_checkpoint(path("trunc.ckpt"), original);

  const auto full = std::filesystem::file_size(path("trunc.ckpt"));
  std::filesystem::resize_file(path("trunc.ckpt"), full - 5);
  EXPECT_THROW(gc::load_checkpoint(path("trunc.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, SaveLeavesNoTempFileBehind) {
  gc::Checkpoint original;
  original.iteration = 1;
  original.parameters = random_vector(8, 11);
  gc::save_checkpoint(path("atomic.ckpt"), original);
  EXPECT_TRUE(std::filesystem::exists(path("atomic.ckpt")));
  EXPECT_FALSE(std::filesystem::exists(path("atomic.ckpt") + ".tmp"));
}

TEST_F(CheckpointRoundTrip, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(gc::load_checkpoint(path("does_not_exist.ckpt")),
               std::runtime_error);
}

TEST_F(CheckpointRoundTrip, EmptyFileIsRejectedWithAPointedMessage) {
  // An empty file used to reach net::encoded_size and die on a generic
  // "truncated header"; the loader must say what actually happened — the
  // checkpoint on disk is empty (e.g. a crash before any bytes landed).
  { std::ofstream out(path("empty.ckpt"), std::ios::binary); }
  try {
    (void)gc::load_checkpoint(path("empty.ckpt"));
    FAIL() << "empty checkpoint must not load";
  } catch (const gn::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, SubHeaderFileIsRejectedAsTruncated) {
  // Shorter than one wire header: no field of it is trustworthy.
  {
    std::ofstream out(path("stub.ckpt"), std::ios::binary);
    out.write("GRFD\x01\x00\x00\x00\x99", 9);
  }
  try {
    (void)gc::load_checkpoint(path("stub.ckpt"));
    FAIL() << "sub-header checkpoint must not load";
  } catch (const gn::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, TruncatedParametersAreRejected) {
  // Header intact, parameter payload cut mid-vector — the header's element
  // count must trip the truncation check, not index past the blob.
  gc::Checkpoint original;
  original.iteration = 3;
  original.parameters = random_vector(64, 14);
  gc::save_checkpoint(path("cutparams.ckpt"), original);
  std::filesystem::resize_file(path("cutparams.ckpt"),
                               gn::wire_size(0) + 12);
  EXPECT_THROW(gc::load_checkpoint(path("cutparams.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, TruncatedVelocityTailIsRejected) {
  // Cut inside the velocity message's own header: the parameters decode
  // fine, the tail must still fail loudly instead of loading param-only.
  gc::Checkpoint original;
  original.iteration = 4;
  original.parameters = random_vector(32, 15);
  original.velocity = random_vector(32, 16);
  gc::save_checkpoint(path("cutvel.ckpt"), original);
  const std::size_t head = gn::wire_size(original.parameters.size());
  std::filesystem::resize_file(path("cutvel.ckpt"), head + 10);
  EXPECT_THROW(gc::load_checkpoint(path("cutvel.ckpt")), gn::WireError);
}

// ------------------------------------------- verified state-transfer blobs
//
// The same serialized form a recovering replica pulls over get_checkpoint.
// The whole-blob digest must catch the corruptions the per-message CRCs
// are blind to: a flipped iteration tag (outside the payload CRC), spliced
// messages from different checkpoints, a stripped trailer.

TEST_F(CheckpointRoundTrip, StateBlobRoundTripsThroughTheRpcCarrier) {
  gc::Checkpoint original;
  original.iteration = 321;
  original.parameters = random_vector(257, 20);
  original.velocity = random_vector(257, 21);

  const std::vector<std::uint8_t> blob = gc::encode_checkpoint_blob(original);
  // pack_bytes/unpack_bytes is the float-payload carrier the RPC uses.
  const auto carrier = gc::pack_bytes(blob);
  const std::vector<std::uint8_t> shipped = gc::unpack_bytes(carrier, "test");
  ASSERT_EQ(shipped, blob);

  const gc::Checkpoint loaded = gc::decode_checkpoint_blob(shipped, "test");
  EXPECT_EQ(loaded.iteration, original.iteration);
  EXPECT_EQ(std::memcmp(loaded.parameters.data(), original.parameters.data(),
                        original.parameters.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(loaded.velocity.data(), original.velocity.data(),
                        original.velocity.size() * sizeof(float)),
            0);
}

TEST_F(CheckpointRoundTrip, TamperedIterationTagFailsTheDigest) {
  // The iteration tag at offset 8 is NOT covered by the per-message payload
  // CRC — flipping it yields a blob whose messages decode "cleanly" into
  // the wrong step. Exactly what a corrupt_recovery server serves; the
  // digest must reject it before any decode.
  gc::Checkpoint original;
  original.iteration = 50;
  original.parameters = random_vector(64, 22);
  std::vector<std::uint8_t> blob = gc::encode_checkpoint_blob(original);
  blob[8] ^= 0x01;
  try {
    (void)gc::decode_checkpoint_blob(blob, "transfer from server 2");
    FAIL() << "tampered iteration tag must not decode";
  } catch (const gn::WireError& e) {
    // The error names the context so NetStats diagnostics can say WHICH
    // peer served the tampered blob.
    EXPECT_NE(std::string(e.what()).find("transfer from server 2"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, AnySingleByteTamperFailsTheDigest) {
  gc::Checkpoint original;
  original.iteration = 7;
  original.parameters = random_vector(48, 23);
  original.velocity = random_vector(48, 24);
  const std::vector<std::uint8_t> sealed =
      gc::encode_checkpoint_blob(original);
  garfield::tensor::Rng rng(25);
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint8_t> blob = sealed;
    blob[rng.index(blob.size())] ^= std::uint8_t(1U << rng.index(8));
    EXPECT_THROW((void)gc::decode_checkpoint_blob(blob, "tamper"),
                 gn::WireError);
  }
}

TEST_F(CheckpointRoundTrip, SplicedMessagesFromTwoCheckpointsAreRejected) {
  // Paste checkpoint A's parameters message together with checkpoint B's
  // velocity message (same iteration, same dimension — every per-message
  // check passes) and reseal nothing: the digest over the splice is absent.
  gc::Checkpoint a, b;
  a.iteration = b.iteration = 9;
  a.parameters = random_vector(32, 26);
  a.velocity = random_vector(32, 27);
  b.parameters = random_vector(32, 28);
  b.velocity = random_vector(32, 29);
  const std::vector<std::uint8_t> blob_a = gc::encode_checkpoint_blob(a);
  const std::vector<std::uint8_t> blob_b = gc::encode_checkpoint_blob(b);
  const std::size_t head = gn::wire_size(a.parameters.size());
  std::vector<std::uint8_t> spliced(blob_a.begin(),
                                    blob_a.begin() + std::ptrdiff_t(head));
  spliced.insert(spliced.end(), blob_b.begin() + std::ptrdiff_t(head),
                 blob_b.end());
  EXPECT_THROW((void)gc::decode_checkpoint_blob(spliced, "splice"),
               gn::WireError);
}

TEST_F(CheckpointRoundTrip, MissingTrailerIsRejectedOnTheTransferPath) {
  // A pre-digest blob is tolerated on local disk (legacy files) but never
  // on the state-transfer path: stripping the trailer must read as
  // tampering there.
  gc::Checkpoint original;
  original.iteration = 11;
  original.parameters = random_vector(16, 30);
  std::vector<std::uint8_t> blob = gc::encode_checkpoint_blob(original);
  blob.resize(blob.size() - 8);  // strip magic + digest
  try {
    (void)gc::decode_checkpoint_blob(blob, "strip");
    FAIL() << "trailer-less transfer blob must not decode";
  } catch (const gn::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("trailer"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointRoundTrip, TamperedFileOnDiskFailsTheDigestToo) {
  // save_checkpoint seals the digest; a byte flipped anywhere in the file
  // — including the header fields outside any payload CRC — must fail the
  // load.
  gc::Checkpoint original;
  original.iteration = 77;
  original.parameters = random_vector(32, 31);
  gc::save_checkpoint(path("sealed.ckpt"), original);
  std::fstream f(path("sealed.ckpt"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);  // iteration tag, outside the per-message payload CRC
  char byte = 0;
  f.seekg(8);
  f.read(&byte, 1);
  byte = char(byte ^ 0x01);
  f.seekp(8);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW((void)gc::load_checkpoint(path("sealed.ckpt")), gn::WireError);
}

TEST_F(CheckpointRoundTrip, ByteCarrierRejectsInconsistentLengths) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  auto carrier = gc::pack_bytes(bytes);
  // Claim more bytes than the carrier holds.
  std::uint32_t lie = 64;
  std::memcpy(carrier.data(), &lie, 4);
  EXPECT_THROW((void)gc::unpack_bytes(carrier, "carrier"), gn::WireError);
  // Claim far fewer than the trailing elements imply (torn carrier).
  lie = 0;
  std::memcpy(carrier.data(), &lie, 4);
  EXPECT_THROW((void)gc::unpack_bytes(carrier, "carrier"), gn::WireError);
  EXPECT_THROW((void)gc::unpack_bytes(std::vector<float>{}, "carrier"),
               gn::WireError);
  // Empty blob round-trips.
  const auto empty = gc::pack_bytes(std::vector<std::uint8_t>{});
  EXPECT_TRUE(gc::unpack_bytes(empty, "carrier").empty());
}

TEST_F(CheckpointRoundTrip, RenameFailureThrowsAndCleansUpTheTempFile) {
  // Make the final path un-renameable-to: a non-empty directory. The write
  // of the tmp file succeeds, the commit rename fails — save_checkpoint
  // must surface that as an error (the checkpoint is NOT durable) and not
  // leave the orphaned tmp file around.
  const std::string target = path("blocked.ckpt");
  std::filesystem::create_directories(std::filesystem::path(target) /
                                      "occupant");
  gc::Checkpoint ckpt;
  ckpt.iteration = 2;
  ckpt.parameters = random_vector(8, 17);
  EXPECT_THROW(gc::save_checkpoint(target, ckpt), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}
