// Tests for garfield::core — config validation, controller parsing,
// Server/Worker objects over the live cluster, and integration tests of
// all five deployments (convergence, determinism, fault injection).
#include <gtest/gtest.h>

#include <limits>

#include "core/config.h"
#include "core/controller.h"
#include "core/server.h"
#include "core/trainer.h"
#include "core/worker.h"
#include "nn/zoo.h"

namespace gc = garfield::core;
namespace gt = garfield::tensor;
namespace gd = garfield::data;
namespace gn = garfield::net;

namespace {

/// Small fast config shared by the integration tests.
gc::DeploymentConfig fast_config() {
  gc::DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  cfg.train_size = 1024;
  cfg.test_size = 256;
  cfg.batch_size = 16;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.dataset_noise = 1.0F;
  cfg.iterations = 120;
  cfg.eval_every = 30;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

// ------------------------------------------------------------------ config

TEST(Config, ValidatesClusterShape) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.nw = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = fast_config();
  cfg.fw = cfg.nw;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = fast_config();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nps = 2;
  cfg.fps = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, ValidatesGarPreconditions) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.gradient_gar = "krum";
  cfg.nw = 4;
  cfg.fw = 1;  // krum needs 2f+3 = 5
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.nw = 5;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, TotalNodes) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.nw = 5;
  cfg.nps = 3;
  cfg.deployment = gc::Deployment::kMsmw;
  EXPECT_EQ(cfg.total_nodes(), 8u);
  cfg.deployment = gc::Deployment::kDecentralized;
  EXPECT_EQ(cfg.total_nodes(), 5u);
}

TEST(Config, DeploymentNamesRoundTrip) {
  for (gc::Deployment d :
       {gc::Deployment::kVanilla, gc::Deployment::kCrashTolerant,
        gc::Deployment::kSsmw, gc::Deployment::kMsmw,
        gc::Deployment::kDecentralized}) {
    EXPECT_EQ(gc::deployment_from_string(gc::to_string(d)), d);
  }
  EXPECT_THROW((void)gc::deployment_from_string("p2p"),
               std::invalid_argument);
}

// -------------------------------------------------------------- controller

TEST(Controller, ParsesKeyValueText) {
  const gc::DeploymentConfig cfg = gc::parse_config(R"(
    deployment = msmw
    model = cifarnet          # comment
    nw = 10   fw = 3
    nps = 3   fps = 1
    gradient_gar = multi_krum
    asynchronous = true
    lr = 0.05
    iterations = 500
  )");
  EXPECT_EQ(cfg.deployment, gc::Deployment::kMsmw);
  EXPECT_EQ(cfg.model, "cifarnet");
  EXPECT_EQ(cfg.nw, 10u);
  EXPECT_EQ(cfg.fw, 3u);
  EXPECT_EQ(cfg.nps, 3u);
  EXPECT_EQ(cfg.fps, 1u);
  EXPECT_EQ(cfg.gradient_gar, "multi_krum");
  EXPECT_TRUE(cfg.asynchronous);
  EXPECT_FLOAT_EQ(cfg.optimizer.lr.gamma0, 0.05F);
  EXPECT_EQ(cfg.iterations, 500u);
}

TEST(Controller, ParsesSpaceSeparatedAssignments) {
  const gc::DeploymentConfig cfg = gc::parse_config("nw = 7\nfw=2\nseed =9");
  EXPECT_EQ(cfg.nw, 7u);
  EXPECT_EQ(cfg.fw, 2u);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Controller, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)gc::parse_config("warp_speed = 9"),
               std::invalid_argument);
  EXPECT_THROW((void)gc::parse_config("nw = many"), std::invalid_argument);
  EXPECT_THROW((void)gc::parse_config("asynchronous = maybe"),
               std::invalid_argument);
  EXPECT_THROW((void)gc::parse_config("nw"), std::invalid_argument);
}

TEST(Controller, FormatRoundTrips) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.nw = 9;
  cfg.fw = 2;
  cfg.worker_attack = "reversed";
  cfg.non_iid = true;
  const gc::DeploymentConfig back = gc::parse_config(gc::format_config(cfg));
  EXPECT_EQ(back.deployment, cfg.deployment);
  EXPECT_EQ(back.nw, cfg.nw);
  EXPECT_EQ(back.fw, cfg.fw);
  EXPECT_EQ(back.worker_attack, cfg.worker_attack);
  EXPECT_EQ(back.non_iid, cfg.non_iid);
  EXPECT_EQ(back.iterations, cfg.iterations);
}

// ------------------------------------------------- server/worker objects

TEST(ServerWorker, GradientPullRoundTrip) {
  gn::Cluster::Options opts;
  opts.nodes = 3;
  gn::Cluster cluster(opts);
  gt::Rng rng(5);

  auto server_model = garfield::nn::make_model("tiny_mlp", rng);
  const std::size_t dim = server_model->dimension();
  gt::Rng data_rng(6);
  gd::Dataset data = gd::make_cluster_dataset({16}, 10, 64, data_rng, 1.0F);

  gc::Server server(0, cluster, std::move(server_model), {}, {1, 2}, {});
  gt::Rng w1(7), w2(8);
  gc::Worker worker1(1, cluster, garfield::nn::make_model("tiny_mlp", w1),
                     data, 8, gt::Rng(9));
  gc::Worker worker2(2, cluster, garfield::nn::make_model("tiny_mlp", w2),
                     data, 8, gt::Rng(10));

  auto grads = server.get_gradients(0, 2);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_EQ(grads[0].size(), dim);
  EXPECT_EQ(grads[1].size(), dim);
  EXPECT_TRUE(gt::all_finite(grads[0]));
  EXPECT_EQ(worker1.gradients_served() + worker2.gradients_served(), 2u);
}

TEST(ServerWorker, UpdateModelAppliesSgdStep) {
  gn::Cluster::Options opts;
  opts.nodes = 1;
  gn::Cluster cluster(opts);
  gt::Rng rng(11);
  garfield::nn::SgdOptimizer::Options sgd;
  sgd.lr.gamma0 = 1.0F;
  gc::Server server(0, cluster, garfield::nn::make_model("tiny_mlp", rng),
                    sgd, {}, {});
  const gn::Payload before = server.parameters();
  gn::Payload grad(before.size(), 1.0F);
  server.update_model(grad);
  const gn::Payload after = server.parameters();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i] - 1.0F);
  EXPECT_EQ(server.steps_taken(), 1u);
}

TEST(ServerWorker, WriteModelOverwritesState) {
  gn::Cluster::Options opts;
  opts.nodes = 1;
  gn::Cluster cluster(opts);
  gt::Rng rng(12);
  gc::Server server(0, cluster, garfield::nn::make_model("tiny_mlp", rng),
                    {}, {}, {});
  gn::Payload target(server.dimension(), 0.25F);
  server.write_model(target);
  EXPECT_EQ(server.parameters(), target);
}

TEST(ServerWorker, GetModelsPullsPeerState) {
  gn::Cluster::Options opts;
  opts.nodes = 2;
  gn::Cluster cluster(opts);
  gt::Rng r1(13), r2(13);
  gc::Server s0(0, cluster, garfield::nn::make_model("tiny_mlp", r1), {}, {},
                {1});
  gc::Server s1(1, cluster, garfield::nn::make_model("tiny_mlp", r2), {}, {},
                {0});
  gn::Payload marker(s1.dimension(), 9.0F);
  s1.write_model(marker);
  auto models = s0.get_models(0, 1);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0], marker);
}

TEST(ServerWorker, ByzantineServerServesCorruptedModel) {
  gn::Cluster::Options opts;
  opts.nodes = 2;
  gn::Cluster cluster(opts);
  gt::Rng r1(14), r2(14);
  gc::Server honest(0, cluster, garfield::nn::make_model("tiny_mlp", r1), {},
                    {}, {1});
  gc::ByzantineServer byz(1, cluster,
                          garfield::nn::make_model("tiny_mlp", r2), {}, {},
                          {0}, garfield::attacks::make_attack("reversed"),
                          gt::Rng(15));
  gn::Payload marker(byz.dimension(), 1.0F);
  byz.write_model(marker);
  auto models = honest.get_models(0, 1);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_FLOAT_EQ(models[0][0], -100.0F);  // reversed & amplified
}

TEST(ServerWorker, AggrGradGossip) {
  gn::Cluster::Options opts;
  opts.nodes = 2;
  gn::Cluster cluster(opts);
  gt::Rng r1(16), r2(16);
  gc::Server s0(0, cluster, garfield::nn::make_model("tiny_mlp", r1), {}, {},
                {1});
  gc::Server s1(1, cluster, garfield::nn::make_model("tiny_mlp", r2), {}, {},
                {0});
  // Before publication: no reply, collect returns empty.
  auto none = s0.get_aggr_grads(0, 1, 0);
  EXPECT_TRUE(none.empty());
  gn::Payload grad(s1.dimension(), 2.5F);
  s1.set_latest_aggr_grad(grad);
  auto got = s0.get_aggr_grads(0, 1, 0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], grad);
}

TEST(ServerWorker, IngressValidationRejectsMalformedPayloads) {
  gn::Cluster::Options opts;
  opts.nodes = 3;
  gn::Cluster cluster(opts);
  gt::Rng r1(17), r2(17), r3(17);
  gc::Server s0(0, cluster, garfield::nn::make_model("tiny_mlp", r1), {}, {},
                {1, 2});
  gc::Server s1(1, cluster, garfield::nn::make_model("tiny_mlp", r2), {}, {},
                {0, 2});
  gc::Server s2(2, cluster, garfield::nn::make_model("tiny_mlp", r3), {}, {},
                {0, 1});
  // s1 gossips a wrong-dimension vector, s2 a NaN-poisoned one.
  s1.set_latest_aggr_grad(gn::Payload{1.0F, 2.0F});
  gn::Payload poisoned(s2.dimension(), 1.0F);
  poisoned[3] = std::numeric_limits<float>::quiet_NaN();
  s2.set_latest_aggr_grad(poisoned);
  auto got = s0.get_aggr_grads(0, 2, 0);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(s0.rejected_payloads(), 2u);
}

// ---------------------------------------------------------- deployments

TEST(Deployments, VanillaConverges) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.nw = 4;
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.75);
  ASSERT_GE(result.curve.size(), 2u);
  EXPECT_GT(result.final_accuracy, result.curve.front().accuracy);
}

TEST(Deployments, SsmwWithEachGarConverges) {
  for (const char* gar : {"median", "multi_krum", "mda"}) {
    gc::DeploymentConfig cfg = fast_config();
    cfg.deployment = gc::Deployment::kSsmw;
    cfg.nw = 7;
    cfg.fw = 1;
    cfg.gradient_gar = gar;
    const gc::TrainResult result = gc::train(cfg);
    EXPECT_GT(result.final_accuracy, 0.7) << gar;
  }
}

TEST(Deployments, MsmwConvergesAndAligns) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nw = 7;
  cfg.fw = 1;
  cfg.nps = 3;
  cfg.fps = 0;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.alignment_every = 30;
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.7);
  ASSERT_FALSE(result.alignment.empty());
  for (const auto& a : result.alignment) {
    EXPECT_GE(a.max_diff1, a.max_diff2);
  }
}

TEST(Deployments, DecentralizedConverges) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.nw = 7;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(Deployments, DecentralizedNonIidWithContraction) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.nw = 5;
  cfg.fw = 0;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.non_iid = true;
  cfg.contraction_steps = 2;
  cfg.iterations = 150;
  const gc::TrainResult result = gc::train(cfg);
  // Non-iid is harder; require clear learning, not full accuracy.
  EXPECT_GT(result.final_accuracy, 0.4);
}

TEST(Deployments, CrashTolerantSurvivesPrimaryCrash) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kCrashTolerant;
  cfg.nw = 4;
  cfg.nps = 3;
  cfg.crash_primary_at = 40;
  const gc::TrainResult result = gc::train(cfg);
  // Failover replica finishes the run and reaches good accuracy.
  EXPECT_GT(result.final_accuracy, 0.7);
  EXPECT_GE(result.curve.back().iteration, cfg.iterations - cfg.eval_every);
}

TEST(Deployments, MsmwSurvivesByzantineWorkersAndServers) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nw = 8;
  cfg.fw = 1;
  cfg.nps = 4;
  cfg.fps = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.worker_attack = "reversed";
  cfg.server_attack = "reversed";
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.7);
}

TEST(Deployments, VanillaCollapsesUnderReversedAttack) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.nw = 8;
  cfg.fw = 1;
  cfg.worker_attack = "reversed";
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_LT(result.final_accuracy, 0.3);
}

TEST(Deployments, SsmwToleratesDroppedWorkersAsynchronously) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.nw = 8;
  cfg.fw = 2;
  cfg.gradient_gar = "median";
  cfg.asynchronous = true;  // wait for nw - fw only
  cfg.worker_attack = "dropped";
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.7);
}

TEST(Deployments, SurvivesNanPoisonEvenWithAveraging) {
  // The ingress gate (not the GAR) is what stops NaN poisoning: a single
  // NaN would survive plain averaging and destroy the model. With the
  // gate, even the vanilla deployment keeps learning.
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.nw = 8;
  cfg.fw = 2;
  cfg.worker_attack = "nan_poison";
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.7);
  EXPECT_GT(result.rejected_payloads, 0u);
}

TEST(Deployments, WorkerMomentumStillConverges) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.nw = 7;
  cfg.fw = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.worker_momentum = 0.9F;
  cfg.optimizer.lr.gamma0 = 0.02F;  // momentum amplifies the step ~1/(1-m)
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.final_accuracy, 0.7);
}

TEST(Deployments, NetStatsAccumulateTraffic) {
  gc::DeploymentConfig cfg = fast_config();
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.nw = 3;
  cfg.iterations = 10;
  cfg.eval_every = 0;
  const gc::TrainResult result = gc::train(cfg);
  // 10 iterations x 3 workers: one request+reply per worker per iteration.
  EXPECT_EQ(result.net_stats.requests_sent, 30u);
  EXPECT_EQ(result.net_stats.replies_received, 30u);
  EXPECT_GT(result.net_stats.floats_transferred, 0u);
}

TEST(Deployments, DecentralizedUsesQuadraticMessages) {
  gc::DeploymentConfig base = fast_config();
  base.deployment = gc::Deployment::kDecentralized;
  base.fw = 0;
  base.gradient_gar = "median";
  base.model_gar = "median";
  base.iterations = 5;
  base.eval_every = 0;

  auto msgs = [&](std::size_t n) {
    gc::DeploymentConfig cfg = base;
    cfg.nw = n;
    return gc::train(cfg).net_stats.requests_sent;
  };
  const auto m3 = msgs(3), m6 = msgs(6);
  // Per iteration: each of n nodes pulls gradients from n peers and models
  // from n-1 peers -> Theta(n^2) messages. Doubling n should roughly
  // quadruple traffic.
  EXPECT_GT(double(m6), 3.0 * double(m3));
}

TEST(Deployments, RunExperimentFromText) {
  const gc::TrainResult result = gc::run_experiment(R"(
    deployment = ssmw
    model = tiny_mlp
    nw = 5  fw = 1
    gradient_gar = median
    train_size = 512  test_size = 128
    batch_size = 16   lr = 0.1
    iterations = 60   eval_every = 20
    seed = 4
  )");
  EXPECT_GT(result.final_accuracy, 0.5);
}
