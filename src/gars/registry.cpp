#include "gars/registry.h"

#include <algorithm>
#include <stdexcept>

namespace garfield::gars {

namespace {

using util::valid_identifier;

/// Universal input-rewriting decorator: L2-clip every input to `radius`
/// before handing the set to the wrapped rule. Gradient clipping composes
/// with any GAR and caps the leverage of magnitude attacks before the
/// rule's own filtering runs.
class PreClipped final : public Gar {
 public:
  PreClipped(GarPtr inner, double radius)
      : Gar(inner->n(), inner->f()),
        inner_(std::move(inner)),
        radius_(radius) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }

 protected:
  void do_aggregate(std::span<const FlatVector> inputs,
                    AggregationContext& ctx, FlatVector& out) const override {
    const std::size_t n = inputs.size();
    const std::size_t d = inputs.front().size();
    std::vector<FlatVector>& staged = ctx.input_scratch(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      const double norm = tensor::norm(inputs[i]);
      if (norm > radius_) {
        const float scale = float(radius_ / norm);
        for (std::size_t j = 0; j < d; ++j) {
          staged[i][j] = inputs[i][j] * scale;
        }
      } else {
        std::copy(inputs[i].begin(), inputs[i].end(), staged[i].begin());
      }
    }
    inner_->aggregate_into(staged, ctx, out);
  }

 private:
  GarPtr inner_;
  double radius_;
};

}  // namespace

// --------------------------------------------------------- parse_gar_spec

GarSpec parse_gar_spec(const std::string& spec) {
  return util::parse_spec(spec, "gar spec");
}

// ------------------------------------------------------------ GarRegistry

GarRegistry::GarRegistry() {
  detail::register_core_gars(*this);
  detail::register_extended_gars(*this);
}

GarRegistry& GarRegistry::instance() {
  static GarRegistry registry;
  return registry;
}

void GarRegistry::add(GarDescriptor descriptor) {
  if (!valid_identifier(descriptor.name)) {
    throw std::invalid_argument("gar registry: bad rule name '" +
                                descriptor.name + "'");
  }
  if (!descriptor.min_n || !descriptor.factory) {
    throw std::invalid_argument("gar registry: rule '" + descriptor.name +
                                "' is missing min_n or factory");
  }
  if (find(descriptor.name) != nullptr) {
    throw std::invalid_argument("gar registry: rule '" + descriptor.name +
                                "' is already registered");
  }
  descriptors_.push_back(std::move(descriptor));
}

const GarDescriptor* GarRegistry::find(const std::string& name) const {
  for (const GarDescriptor& d : descriptors_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const GarDescriptor& GarRegistry::at(const std::string& name) const {
  const GarDescriptor* d = find(name);
  if (d == nullptr) {
    throw std::invalid_argument("gar registry: unknown GAR '" + name + "'");
  }
  return *d;
}

std::vector<std::string> GarRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(descriptors_.size());
  for (const GarDescriptor& d : descriptors_) out.push_back(d.name);
  return out;
}

// ------------------------------------------------- registry-backed make_gar

namespace {

std::size_t effective_min_n(const GarDescriptor& desc, std::size_t f,
                            const GarOptions& options) {
  std::size_t floor = desc.min_n(f);
  if (desc.option_floor) {
    floor = std::max(floor, desc.option_floor(f, options));
  }
  return floor;
}

}  // namespace

std::size_t gar_min_n(const GarSpec& spec, std::size_t f) {
  return effective_min_n(GarRegistry::instance().at(spec.name), f,
                         spec.options);
}

GarPtr make_gar(const GarSpec& spec, std::size_t n, std::size_t f) {
  const GarDescriptor& desc = GarRegistry::instance().at(spec.name);
  const std::size_t floor = effective_min_n(desc, f, spec.options);
  if (n < floor) {
    throw std::invalid_argument(
        "make_gar: " + spec.name + " requires n >= " + std::to_string(floor) +
        " for f=" + std::to_string(f) + " (got n=" + std::to_string(n) +
        ")");
  }
  GarPtr gar = desc.factory(n, f, spec.options);

  // Universal options, applied outside the factories.
  const double pre_clip = spec.options.get_double("pre_clip", 0.0);
  if (spec.options.contains("pre_clip")) {
    if (!(pre_clip > 0.0)) {
      throw std::invalid_argument(
          "gar spec: pre_clip expects a radius > 0");
    }
    gar = std::make_unique<PreClipped>(std::move(gar), pre_clip);
  }

  const std::vector<std::string> leftover = spec.options.unconsumed();
  if (!leftover.empty()) {
    std::string what =
        "make_gar: unknown option(s) for rule '" + spec.name + "':";
    for (const std::string& key : leftover) what += " '" + key + "'";
    throw std::invalid_argument(what);
  }
  return gar;
}

// -------------------------------------- string API (thin registry queries)

std::vector<std::string> gar_names() {
  return GarRegistry::instance().names();
}

std::size_t gar_min_n(const std::string& spec, std::size_t f) {
  return gar_min_n(parse_gar_spec(spec), f);
}

GarPtr make_gar(const std::string& spec, std::size_t n, std::size_t f) {
  return make_gar(parse_gar_spec(spec), n, f);
}

}  // namespace garfield::gars
