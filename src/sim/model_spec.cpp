#include "sim/model_spec.h"

#include <stdexcept>

namespace garfield::sim {

const std::vector<ModelSpec>& table1_models() {
  // Parameter counts and sizes exactly as reported in Table 1.
  static const std::vector<ModelSpec> kModels = {
      {"MNIST_CNN", 79510, 0.3},      {"CifarNet", 1756426, 6.7},
      {"Inception", 5602874, 21.4},   {"ResNet-50", 23539850, 89.8},
      {"ResNet-200", 62697610, 239.2}, {"VGG", 128807306, 491.4},
  };
  return kModels;
}

const ModelSpec& model_spec(const std::string& name) {
  for (const ModelSpec& m : table1_models()) {
    if (m.name == name) return m;
  }
  // The appendix PyTorch experiment swaps ResNet-200 for ResNet-152.
  static const ModelSpec kResNet152{"ResNet-152", 60192808, 229.6};
  if (name == "ResNet-152") return kResNet152;
  throw std::invalid_argument("model_spec: unknown model '" + name + "'");
}

}  // namespace garfield::sim
