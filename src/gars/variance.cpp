#include "gars/variance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/vecops.h"

namespace garfield::gars {

using tensor::FlatVector;

const VarianceStat& VarianceReport::for_gar(const std::string& name) const {
  for (const VarianceStat& s : stats) {
    if (s.gar == name) return s;
  }
  throw std::invalid_argument("VarianceReport: no stat for GAR '" + name +
                              "'");
}

double variance_delta(const std::string& gar, std::size_t n, std::size_t f) {
  const double nd = double(n), fd = double(f);
  if (gar == "mda") {
    // 2 * sqrt(2f / (n - f))
    return 2.0 * std::sqrt(2.0 * fd / (nd - fd));
  }
  if (gar == "krum" || gar == "multi_krum") {
    // sqrt(2 * (n - f + (f(n-f-2) + f^2 (n-f-1)) / (n - 2f - 2)))
    const double denom = nd - 2.0 * fd - 2.0;
    if (denom <= 0.0) return std::numeric_limits<double>::infinity();
    const double inner =
        nd - fd + (fd * (nd - fd - 2.0) + fd * fd * (nd - fd - 1.0)) / denom;
    return std::sqrt(2.0 * inner);
  }
  if (gar == "median") {
    return std::sqrt(nd - fd);
  }
  throw std::invalid_argument("variance_delta: no bound known for GAR '" +
                              gar + "'");
}

VarianceReport measure_variance(nn::Model& model, const data::Dataset& train,
                                const VarianceSetup& setup) {
  if (setup.n <= setup.f) {
    throw std::invalid_argument("measure_variance: need n > f");
  }
  const std::size_t honest = setup.n - setup.f;
  tensor::Rng rng(setup.seed);
  data::BatchSampler worker_sampler(train, setup.batch_size, rng.fork(1));
  data::BatchSampler huge_sampler(
      train, std::min(setup.huge_batch, train.size()), rng.fork(2));

  const std::vector<std::string> gars = {"mda", "krum", "median"};
  std::vector<std::vector<double>> ratios(gars.size());

  FlatVector params = model.parameters();
  nn::SgdOptimizer sgd({.lr = {.gamma0 = setup.lr}});

  for (std::size_t step = 0; step < setup.steps; ++step) {
    model.set_parameters(params);
    // True-gradient estimate from a huge batch.
    const data::Batch big = huge_sampler.next();
    const nn::GradientResult truth = model.gradient(big.inputs, big.labels);
    const double grad_norm = tensor::norm(truth.gradient);

    // Per-worker estimates at the experiment's batch size.
    std::vector<FlatVector> grads;
    grads.reserve(honest);
    for (std::size_t i = 0; i < honest; ++i) {
      const data::Batch b = worker_sampler.next();
      grads.push_back(model.gradient(b.inputs, b.labels).gradient);
    }
    // sigma^2 = E ||g - Eg||^2, with Eg approximated by the huge batch.
    double var = 0.0;
    for (const FlatVector& g : grads)
      var += tensor::squared_distance(g, truth.gradient);
    var /= double(honest);
    const double sigma = std::sqrt(var);

    for (std::size_t k = 0; k < gars.size(); ++k) {
      const double delta = variance_delta(gars[k], setup.n, setup.f);
      const double denom = delta * sigma;
      ratios[k].push_back(denom > 0.0
                              ? grad_norm / denom
                              : std::numeric_limits<double>::infinity());
    }

    // Advance theta so successive samples see the real training trajectory.
    sgd.step(params, truth.gradient, step);
  }

  VarianceReport report;
  report.steps = setup.steps;
  for (std::size_t k = 0; k < gars.size(); ++k) {
    VarianceStat stat;
    stat.gar = gars[k];
    stat.delta = variance_delta(gars[k], setup.n, setup.f);
    std::size_t satisfied = 0;
    double sum = 0.0, mn = std::numeric_limits<double>::infinity();
    for (double r : ratios[k]) {
      if (r > 1.0) ++satisfied;
      sum += r;
      mn = std::min(mn, r);
    }
    stat.fraction_satisfied =
        ratios[k].empty() ? 0.0 : double(satisfied) / double(ratios[k].size());
    stat.mean_ratio = ratios[k].empty() ? 0.0 : sum / double(ratios[k].size());
    stat.min_ratio = ratios[k].empty() ? 0.0 : mn;
    report.stats.push_back(stat);
  }
  return report;
}

}  // namespace garfield::gars
