#include "core/worker.h"

#include <cassert>

namespace garfield::core {

Worker::Worker(net::NodeId id, net::Cluster& cluster, nn::ModelPtr model,
               data::Dataset shard, std::size_t batch_size, tensor::Rng rng,
               float momentum)
    : rng_(rng),
      id_(id),
      model_(std::move(model)),
      shard_(std::move(shard)),
      sampler_(shard_, batch_size, rng_.fork(0xb0)),
      momentum_(momentum) {
  cluster.register_handler(id_, kGetGradient,
                           [this](const net::Request& req) {
                             return serve_gradient(req);
                           });
}

nn::GradientResult Worker::honest_gradient(const net::Request& req) {
  std::lock_guard lock(mutex_);
  assert(req.argument && req.argument->size() == model_->dimension());
  model_->set_parameters(*req.argument);
  const data::Batch batch = sampler_.next();
  nn::GradientResult result = model_->gradient(batch.inputs, batch.labels);
  loss_sum_ += result.loss;
  ++served_;
  if (momentum_ > 0.0F) {
    // Distributed momentum: v = m*v + g; the server receives v.
    if (velocity_.size() != result.gradient.size()) {
      velocity_.assign(result.gradient.size(), 0.0F);
    }
    for (std::size_t i = 0; i < velocity_.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] + result.gradient[i];
    }
    result.gradient = velocity_;
  }
  return result;
}

std::vector<net::Payload> Worker::local_gradient_cloud(
    const net::Request& req, std::size_t k) {
  std::lock_guard lock(mutex_);
  assert(req.argument && req.argument->size() == model_->dimension());
  model_->set_parameters(*req.argument);
  std::vector<net::Payload> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const data::Batch batch = sampler_.next();
    out.push_back(model_->gradient(batch.inputs, batch.labels).gradient);
  }
  return out;
}

std::optional<net::Payload> Worker::serve_gradient(const net::Request& req) {
  return honest_gradient(req).gradient;
}

double Worker::mean_loss() const {
  std::lock_guard lock(mutex_);
  return served_ == 0 ? 0.0 : loss_sum_ / double(served_);
}

std::uint64_t Worker::gradients_served() const {
  std::lock_guard lock(mutex_);
  return served_;
}

namespace {

/// Cohort-estimate size an omniscient worker attack samples per request.
/// Enough batches for a usable mean/stddev estimate; small enough that the
/// adversary's extra compute stays a constant factor.
constexpr std::size_t kOmniscienceProbes = 4;

}  // namespace

ByzantineWorker::ByzantineWorker(net::NodeId id, net::Cluster& cluster,
                                 nn::ModelPtr model, data::Dataset shard,
                                 std::size_t batch_size, tensor::Rng rng,
                                 attacks::AttackPtr attack, float momentum,
                                 bool omniscient, std::size_t declared_n,
                                 std::size_t declared_f)
    : Worker(id, cluster, std::move(model), std::move(shard), batch_size,
             rng, momentum),
      attack_(std::move(attack)),
      omniscient_(omniscient),
      declared_n_(declared_n),
      declared_f_(declared_f) {}

std::optional<net::Payload> ByzantineWorker::serve_gradient(
    const net::Request& req) {
  const nn::GradientResult honest = honest_gradient(req);
  // Omniscient attacks get a local cohort estimate (see class comment);
  // non-omniscient ones see only the attacker's own honest estimate. The
  // full honest-cohort view is exercised directly against GARs in the
  // robustness-matrix tests.
  std::vector<net::Payload> view;
  if (omniscient_) {
    view = local_gradient_cloud(req, kOmniscienceProbes);
  }
  std::lock_guard lock(attack_mutex_);
  attacks::AttackContext ctx(rng_);
  ctx.iteration = req.iteration;
  ctx.attacker_id = id();
  ctx.n = declared_n_;
  ctx.f = declared_f_;
  ctx.honest = view;
  return attack_->craft(honest.gradient, ctx);
}

}  // namespace garfield::core
