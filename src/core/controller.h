// Controller (§3.2): cluster deployment, parameter definition and
// experiment launching.
//
// The paper's controller parses cluster information (jobs, IPs, ports) and
// starts the training procedure over SSH. Here a deployment is described by
// a small key=value text format and launched as an in-process run; the
// grammar covers every experiment knob in DeploymentConfig.
#pragma once

#include <string>

#include "core/config.h"
#include "core/trainer.h"

namespace garfield::core {

/// Parse a key=value experiment description ('#' starts a comment, blank
/// lines ignored). Unknown keys throw std::invalid_argument. Example:
///
///   deployment = msmw
///   model      = cifarnet
///   nw = 10      fw = 3       # whitespace-insensitive
///   nps = 3      fps = 1
///   gradient_gar = multi_krum
///   model_gar = centered_clip:tau=0.5,iterations=20   # GAR spec w/ options
///   iterations = 500
[[nodiscard]] DeploymentConfig parse_config(const std::string& text);

/// parse_config over the contents of a file.
[[nodiscard]] DeploymentConfig load_config_file(const std::string& path);

/// Render a config back to the textual format (round-trips parse_config).
[[nodiscard]] std::string format_config(const DeploymentConfig& config);

/// Convenience: parse, validate, run.
[[nodiscard]] TrainResult run_experiment(const std::string& config_text);

}  // namespace garfield::core
