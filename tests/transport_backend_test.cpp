// Transport backend parity: the pluggable-transport contract (README
// "Transport backends") is that `transport=` selects a wire, not a
// behavior. Sync deployments normalize reply order by origin id and wait
// for the full cohort, so their float reductions are bitwise
// deterministic — an `inproc` run (timer-wheel + thread pool in one
// address space) and a `tcp` run (one OS process per node, framed
// length-prefixed streams over localhost) of the same config must
// produce byte-identical final parameters, curves, and counters.
//
// Pinned here:
//   - SSMW / MSMW / decentralized parity, each rank its own process
//   - crash/recovery over TCP: a `churn:` schedule derived independently
//     by every process walks the same trajectory as the in-process FSM
//   - config validation scope limits of the tcp backend
//   - the ScenarioMatrix `transports` axis: twins share one seed
//
// Tests that spawn node processes carry the `multiproc` ctest label and
// skip when the garfield_node launcher is not built.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "support/test_support.h"

namespace gc = garfield::core;
namespace ts = garfield::testsupport;

namespace {

/// Shared tiny-run shape: big enough to exercise quorums and eval probes,
/// small enough that a per-node-process run finishes in seconds.
gc::DeploymentConfig tiny(gc::Deployment deployment) {
  gc::DeploymentConfig cfg;
  cfg.deployment = deployment;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.iterations = 6;
  cfg.eval_every = 3;
  cfg.seed = 20260808;
  return cfg;
}

/// Run the config under transport=tcp. nullopt means the garfield_node
/// launcher is not available in this build — callers GTEST_SKIP; any
/// other failure propagates as the test failure it is.
std::optional<gc::TrainResult> try_tcp(gc::DeploymentConfig cfg) {
  cfg.transport = "tcp";
  try {
    return gc::train(cfg);
  } catch (const std::runtime_error& e) {
    if (std::string(e.what()).find("garfield_node") != std::string::npos) {
      return std::nullopt;
    }
    throw;
  }
}

gc::TrainResult run_inproc(gc::DeploymentConfig cfg) {
  cfg.transport = "inproc";
  return gc::train(cfg);
}

/// The parity contract: not "close", identical. Parameters byte-for-byte,
/// probes bit-for-bit, and the work counters (which count protocol
/// events, not wire bytes) equal.
void expect_bitwise(const gc::TrainResult& inproc, const gc::TrainResult& tcp,
                    const char* what) {
  ASSERT_FALSE(inproc.final_parameters.empty()) << what;
  ASSERT_EQ(inproc.final_parameters.size(), tcp.final_parameters.size())
      << what;
  EXPECT_EQ(std::memcmp(inproc.final_parameters.data(),
                        tcp.final_parameters.data(),
                        inproc.final_parameters.size() * sizeof(float)),
            0)
      << what << ": final parameters diverged across backends";
  ASSERT_EQ(inproc.curve.size(), tcp.curve.size()) << what;
  for (std::size_t i = 0; i < inproc.curve.size(); ++i) {
    EXPECT_EQ(inproc.curve[i].iteration, tcp.curve[i].iteration) << what;
    EXPECT_EQ(inproc.curve[i].accuracy, tcp.curve[i].accuracy)
        << what << " probe " << i;
    EXPECT_EQ(inproc.curve[i].loss, tcp.curve[i].loss) << what << " probe "
                                                       << i;
  }
  EXPECT_EQ(inproc.final_accuracy, tcp.final_accuracy) << what;
  EXPECT_EQ(inproc.final_loss, tcp.final_loss) << what;
  EXPECT_EQ(inproc.iterations_run, tcp.iterations_run) << what;
  EXPECT_EQ(inproc.reporting_gradient_counts, tcp.reporting_gradient_counts)
      << what;
  // Deliberately NOT compared: rejected_payloads / gradients_served /
  // gradients_computed. Those sum over the harvesting process's local
  // objects, and under tcp the serving happened in other ranks' processes
  // — a documented scope limit (core/node_runner.h), not a parity bug.
}

}  // namespace

// ------------------------------------------------------------ sync parity

TEST(TransportBackend, SsmwIsBitwiseIdenticalAcrossBackends) {
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kSsmw);
  cfg.nw = 3;
  cfg.fw = 0;
  cfg.nps = 1;
  cfg.gradient_gar = "median";
  const std::optional<gc::TrainResult> tcp = try_tcp(cfg);
  if (!tcp) GTEST_SKIP() << "garfield_node launcher not built";
  expect_bitwise(run_inproc(cfg), *tcp, "ssmw");
}

TEST(TransportBackend, MsmwIsBitwiseIdenticalAcrossBackends) {
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kMsmw);
  cfg.nps = 3;
  cfg.fps = 0;
  cfg.nw = 3;
  cfg.fw = 0;
  const std::optional<gc::TrainResult> tcp = try_tcp(cfg);
  if (!tcp) GTEST_SKIP() << "garfield_node launcher not built";
  expect_bitwise(run_inproc(cfg), *tcp, "msmw");
}

TEST(TransportBackend, DecentralizedIsBitwiseIdenticalAcrossBackends) {
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kDecentralized);
  cfg.nw = 3;
  cfg.fw = 0;
  const std::optional<gc::TrainResult> tcp = try_tcp(cfg);
  if (!tcp) GTEST_SKIP() << "garfield_node launcher not built";
  expect_bitwise(run_inproc(cfg), *tcp, "decentralized");
}

// -------------------------------------------------- crash/recovery on TCP

TEST(TransportBackend, ChurnCrashRecoveryMatchesAcrossBackends) {
  // Node 3 (a worker: servers occupy [0, nps)) crashes at iteration 3 and
  // recovers at 7. Every process derives the same schedule from the
  // config's `churn:` spec, so the per-iteration quorum trajectory — and
  // with it the whole training run — must stay bitwise identical to the
  // in-process lifecycle FSM walking the same schedule.
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kSsmw);
  cfg.nw = 4;
  cfg.fw = 1;
  cfg.nps = 1;
  cfg.gradient_gar = "median";
  cfg.iterations = 10;
  cfg.eval_every = 5;
  cfg.network = "churn:crash=3,at_iter=3,recover_after=4";
  const std::optional<gc::TrainResult> tcp = try_tcp(cfg);
  if (!tcp) GTEST_SKIP() << "garfield_node launcher not built";
  const gc::TrainResult inproc = run_inproc(cfg);
  // The crash must actually have bitten: the reporting replica sees the
  // quorum dip from 4 to 3 inside [3, 7).
  ASSERT_EQ(inproc.reporting_gradient_counts.size(), 10u);
  EXPECT_EQ(inproc.reporting_gradient_counts[2], 4u);
  EXPECT_EQ(inproc.reporting_gradient_counts[4], 3u);
  EXPECT_EQ(inproc.reporting_gradient_counts[8], 4u);
  expect_bitwise(inproc, *tcp, "ssmw+churn");
}

// ------------------------------------------------- fault-injection parity

TEST(TransportBackend, FaultInjectionIsBitwiseIdenticalAcrossBackends) {
  // A `fault:` clause derives every drop/corrupt/dup verdict from a pure
  // hash of (seed, edge, method, iteration, attempt) — the inproc dispatch
  // path and the tcp frame path must inject the SAME faults, and the
  // bounded retry layer must recover every one of them, so the run stays
  // bitwise identical across backends AND to a fault-free run.
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kSsmw);
  cfg.nw = 3;
  cfg.fw = 0;
  cfg.nps = 1;
  cfg.gradient_gar = "median";
  cfg.network = "fault:drop=0.1,corrupt=0.05,dup=0.05";
  const std::optional<gc::TrainResult> tcp = try_tcp(cfg);
  if (!tcp) GTEST_SKIP() << "garfield_node launcher not built";
  const gc::TrainResult inproc = run_inproc(cfg);

  // The fault plane actually fired and the retry layer absorbed it: no
  // give-ups, no quorum damage.
  EXPECT_GT(inproc.net_stats.faults_injected, 0u);
  EXPECT_GT(inproc.net_stats.retries, 0u);
  EXPECT_EQ(inproc.net_stats.retry_give_ups, 0u);
  EXPECT_EQ(inproc.net_stats.quorum_misses, 0u);
  // The tcp result blob (v2) carries the reporting rank's fault counters;
  // its own edges are under the same clause, so it saw faults too.
  EXPECT_GT(tcp->net_stats.faults_injected, 0u);
  EXPECT_EQ(tcp->net_stats.retry_give_ups, 0u);

  expect_bitwise(inproc, *tcp, "ssmw+fault");

  // Retries make recovered wire faults invisible to synchronous learning:
  // the faulted run's trajectory equals the clean run's, bit for bit.
  gc::DeploymentConfig clean = cfg;
  clean.network.clear();
  const gc::TrainResult baseline = run_inproc(clean);
  ASSERT_EQ(baseline.final_parameters.size(),
            inproc.final_parameters.size());
  EXPECT_EQ(std::memcmp(baseline.final_parameters.data(),
                        inproc.final_parameters.data(),
                        baseline.final_parameters.size() * sizeof(float)),
            0)
      << "recovered faults leaked into the learning trajectory";
  EXPECT_EQ(baseline.net_stats.retries, 0u);
}

// ------------------------------------------------------- validation scope

TEST(TransportBackend, ValidateRejectsWhatTcpCannotHonor) {
  gc::DeploymentConfig cfg = tiny(gc::Deployment::kSsmw);
  cfg.nw = 3;
  cfg.gradient_gar = "median";
  cfg.transport = "bogus";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg.transport = "tcp";
  EXPECT_NO_THROW(cfg.validate());
  // The alignment probe reads every replica's parameters in one address
  // space; imperative primary crashes don't propagate across per-process
  // lifecycle FSMs. Both are inproc-only and must fail loudly at
  // validate(), not silently diverge at runtime.
  cfg.alignment_every = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.alignment_every = 0;
  cfg.crash_primary_at = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.crash_primary_at = 0;
  EXPECT_NO_THROW(cfg.validate());
}

// -------------------------------------------------- ScenarioMatrix axis

TEST(TransportBackend, MatrixTransportTwinsShareSeedsAndResults) {
  // The `transports` axis exists so deployment suites sweep identical
  // cells across backends: twins are the SAME cell, so they share one
  // seed, and anything seeded off the cell (here: run_scenario's
  // backend-independent ingress model) must agree exactly.
  ts::ScenarioMatrix matrix;
  matrix.gars = {"median", "krum"};
  matrix.attacks = {"sign_flip"};
  matrix.byzantine_fs = {1};
  matrix.quorum_slacks = {0};
  matrix.transports = {"inproc", "tcp"};
  std::vector<ts::Scenario> cells;
  const std::size_t count =
      matrix.for_each([&](const ts::Scenario& s) { cells.push_back(s); });
  ASSERT_EQ(count, cells.size());
  ASSERT_EQ(count % 2, 0u);
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    const ts::Scenario& a = cells[i];
    const ts::Scenario& b = cells[i + 1];
    EXPECT_EQ(a.transport, "inproc");
    EXPECT_EQ(b.transport, "tcp");
    EXPECT_EQ(a.seed, b.seed) << "twins must share the cell seed";
    if (i + 2 < cells.size()) {
      EXPECT_NE(a.seed, cells[i + 2].seed) << "distinct cells decorrelate";
    }
    const ts::ScenarioResult ra = ts::run_scenario(a);
    const ts::ScenarioResult rb = ts::run_scenario(b);
    ASSERT_EQ(ra.aggregate.size(), rb.aggregate.size());
    EXPECT_EQ(std::memcmp(ra.aggregate.data(), rb.aggregate.data(),
                          ra.aggregate.size() * sizeof(float)),
              0);
    EXPECT_EQ(ra.received, rb.received);
  }
}
