// Unit and property tests for garfield::gars — every GAR's correctness on
// hand-checkable inputs, the resilience preconditions, permutation
// invariance, and the central robustness property: with at most f
// adversarial inputs the aggregate stays near the honest gradients.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gars/gar.h"
#include "gars/median3.h"
#include "tensor/rng.h"
#include "tensor/vecops.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;

using gt::FlatVector;

namespace {

std::vector<FlatVector> honest_cloud(std::size_t n, std::size_t d,
                                     gt::Rng& rng, float center = 1.0F,
                                     float spread = 0.1F) {
  std::vector<FlatVector> out(n, FlatVector(d));
  for (auto& v : out) {
    for (float& x : v) x = center + rng.normal(0.0F, spread);
  }
  return out;
}

double distance_to_center(const FlatVector& v, float center) {
  FlatVector ref(v.size(), center);
  return std::sqrt(gt::squared_distance(v, ref));
}

}  // namespace

// ---------------------------------------------------------------- factory

TEST(GarFactory, KnowsAllNames) {
  for (const std::string& name : gg::gar_names()) {
    const std::size_t f = name == "average" ? 0 : 1;
    gg::GarPtr gar = gg::make_gar(name, gg::gar_min_n(name, f), f);
    EXPECT_EQ(gar->name(), name);
  }
}

TEST(GarFactory, UnknownNameThrows) {
  EXPECT_THROW((void)gg::make_gar("resilient_mean_9000", 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)gg::gar_min_n("nope", 1), std::invalid_argument);
}

TEST(GarFactory, EnforcesResiliencePreconditions) {
  EXPECT_THROW((void)gg::make_gar("median", 2, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("median", 3, 1));
  EXPECT_THROW((void)gg::make_gar("krum", 4, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("krum", 5, 1));
  EXPECT_THROW((void)gg::make_gar("bulyan", 6, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)gg::make_gar("bulyan", 7, 1));
  EXPECT_THROW((void)gg::make_gar("mda", 2, 1), std::invalid_argument);
  EXPECT_THROW((void)gg::make_gar("trimmed_mean", 2, 1),
               std::invalid_argument);
}

TEST(Gar, RejectsWrongInputCountAndRaggedDimensions) {
  gg::GarPtr avg = gg::make_gar("average", 3, 0);
  std::vector<FlatVector> two = {{1, 2}, {3, 4}};
  EXPECT_THROW((void)avg->aggregate(two), std::invalid_argument);
  std::vector<FlatVector> ragged = {{1, 2}, {3, 4}, {5}};
  EXPECT_THROW((void)avg->aggregate(ragged), std::invalid_argument);
  std::vector<FlatVector> empty = {{}, {}, {}};
  EXPECT_THROW((void)avg->aggregate(empty), std::invalid_argument);
}

TEST(Gar, AggregateIntoMatchesAggregateForEveryRule) {
  // The compatibility wrapper and the primary entry point must agree
  // bitwise, for every rule, with one shared context reused across rules
  // and rounds (the steady-state server pattern) and an `out` that arrives
  // dirty and wrongly sized.
  gt::Rng rng(4242);
  gg::AggregationContext ctx;
  for (int round = 0; round < 2; ++round) {
    for (const std::string& name : gg::gar_names()) {
      const std::size_t f = name == "average" ? 0 : 1;
      const std::size_t n = gg::gar_min_n(name, f) + 1;
      const std::size_t d = 24 + std::size_t(round) * 9;
      const auto inputs = honest_cloud(n, d, rng);
      gg::GarPtr gar = gg::make_gar(name, n, f);
      FlatVector out(3, -123.0F);  // wrong size, garbage contents
      gar->aggregate_into(inputs, ctx, out);
      EXPECT_EQ(out.size(), d) << name;
      EXPECT_EQ(out, gar->aggregate(inputs)) << name << " round " << round;
    }
  }
}

// ------------------------------------------------------------- average

TEST(AverageGar, ComputesMean) {
  gg::GarPtr gar = gg::make_gar("average", 3, 0);
  std::vector<FlatVector> in = {{0, 3}, {3, 3}, {6, 3}};
  FlatVector out = gar->aggregate(in);
  EXPECT_FLOAT_EQ(out[0], 3.0F);
  EXPECT_FLOAT_EQ(out[1], 3.0F);
}

// -------------------------------------------------------------- median

TEST(MedianGar, OddCountExactMedian) {
  gg::GarPtr gar = gg::make_gar("median", 5, 2);
  std::vector<FlatVector> in = {{1}, {9}, {5}, {3}, {7}};
  EXPECT_FLOAT_EQ(gar->aggregate(in)[0], 5.0F);
}

TEST(MedianGar, EvenCountAveragesMiddles) {
  gg::GarPtr gar = gg::make_gar("median", 4, 1);
  std::vector<FlatVector> in = {{1}, {2}, {3}, {10}};
  EXPECT_FLOAT_EQ(gar->aggregate(in)[0], 2.5F);
}

TEST(MedianGar, ThreeInputsUsesBranchlessPath) {
  gg::GarPtr gar = gg::make_gar("median", 3, 1);
  std::vector<FlatVector> in = {{5, -1}, {1, 0}, {3, 7}};
  FlatVector out = gar->aggregate(in);
  EXPECT_FLOAT_EQ(out[0], 3.0F);
  EXPECT_FLOAT_EQ(out[1], 0.0F);
}

TEST(MedianGar, CoordinateWiseIndependence) {
  gg::GarPtr gar = gg::make_gar("median", 3, 1);
  std::vector<FlatVector> in = {{1, 100}, {2, 50}, {3, 0}};
  FlatVector out = gar->aggregate(in);
  EXPECT_FLOAT_EQ(out[0], 2.0F);
  EXPECT_FLOAT_EQ(out[1], 50.0F);
}

TEST(MedianGar, IgnoresFExtremes) {
  gg::GarPtr gar = gg::make_gar("median", 5, 2);
  std::vector<FlatVector> in = {{1.0F}, {1.1F}, {0.9F}, {1e9F}, {-1e9F}};
  EXPECT_NEAR(gar->aggregate(in)[0], 1.0F, 0.2F);
}

// --------------------------------------------------------- trimmed mean

TEST(TrimmedMeanGar, DropsExtremes) {
  gg::GarPtr gar = gg::make_gar("trimmed_mean", 5, 1);
  std::vector<FlatVector> in = {{2}, {4}, {6}, {100}, {-100}};
  EXPECT_FLOAT_EQ(gar->aggregate(in)[0], 4.0F);  // mean of {2,4,6}
}

TEST(TrimmedMeanGar, FZeroIsPlainMean) {
  gg::GarPtr gar = gg::make_gar("trimmed_mean", 3, 0);
  std::vector<FlatVector> in = {{1}, {2}, {9}};
  EXPECT_FLOAT_EQ(gar->aggregate(in)[0], 4.0F);
}

// ------------------------------------------------------------------ krum

TEST(KrumGar, ReturnsOneOfTheInputs) {
  gt::Rng rng(1);
  auto in = honest_cloud(7, 5, rng);
  gg::GarPtr gar = gg::make_gar("krum", 7, 2);
  FlatVector out = gar->aggregate(in);
  bool is_input = false;
  for (const auto& v : in) {
    if (v == out) is_input = true;
  }
  EXPECT_TRUE(is_input);
}

TEST(KrumGar, PicksFromTheDenseCluster) {
  // 5 vectors near 0, 2 outliers far away: Krum must select a cluster one.
  std::vector<FlatVector> in = {{0.0F, 0.1F}, {0.1F, 0.0F},  {-0.1F, 0.0F},
                                {0.0F, -0.1F}, {0.05F, 0.05F}, {50.0F, 50.0F},
                                {-50.0F, 50.0F}};
  gg::GarPtr gar = gg::make_gar("krum", 7, 2);
  FlatVector out = gar->aggregate(in);
  EXPECT_LT(std::abs(out[0]), 1.0F);
  EXPECT_LT(std::abs(out[1]), 1.0F);
}

TEST(MultiKrumGar, AveragesSelectionSet) {
  gt::Rng rng(2);
  auto in = honest_cloud(9, 4, rng, 2.0F, 0.05F);
  // Two adversarial inputs far away.
  in[7].assign(4, 1000.0F);
  in[8].assign(4, -1000.0F);
  gg::GarPtr gar = gg::make_gar("multi_krum", 9, 2);
  FlatVector out = gar->aggregate(in);
  EXPECT_LT(distance_to_center(out, 2.0F), 0.5);
}

TEST(MultiKrumGar, MatchesManualSelectionSize) {
  gg::MultiKrum mk(9, 2);
  EXPECT_EQ(mk.m(), 5u);  // n - f - 2
}

// ------------------------------------------------------------------- mda

TEST(MdaGar, AveragesMinimumDiameterSubset) {
  // 3 tight vectors + 1 outlier, f = 1: subset of size 3 with min diameter
  // is the tight cluster, so the aggregate is its mean.
  std::vector<FlatVector> in = {{1.0F}, {1.2F}, {0.8F}, {100.0F}};
  gg::GarPtr gar = gg::make_gar("mda", 4, 1);
  EXPECT_NEAR(gar->aggregate(in)[0], 1.0F, 1e-5F);
}

TEST(MdaGar, ExactSubsetChoice) {
  // Constructed so the minimum-diameter 2-subset is {10.0, 10.4}, not the
  // pair containing 9.0.
  std::vector<FlatVector> in = {{9.0F}, {10.0F}, {10.4F}};
  gg::GarPtr gar = gg::make_gar("mda", 3, 1);
  EXPECT_NEAR(gar->aggregate(in)[0], 10.2F, 1e-5F);
}

TEST(MdaGar, FZeroAveragesEverything) {
  std::vector<FlatVector> in = {{2.0F}, {4.0F}, {9.0F}};
  gg::GarPtr gar = gg::make_gar("mda", 3, 0);
  EXPECT_FLOAT_EQ(gar->aggregate(in)[0], 5.0F);
}

// ---------------------------------------------------------------- bulyan

TEST(BulyanGar, SurvivesCoordinateAttack) {
  // 7 inputs, f = 1. Adversary poisons a single coordinate massively (the
  // attack Bulyan was designed against).
  gt::Rng rng(3);
  auto in = honest_cloud(7, 6, rng, 1.0F, 0.05F);
  in[6] = FlatVector(6, 1.0F);
  in[6][3] = 1e6F;  // hidden single-coordinate poison
  gg::GarPtr gar = gg::make_gar("bulyan", 7, 1);
  FlatVector out = gar->aggregate(in);
  EXPECT_LT(std::abs(out[3] - 1.0F), 0.5F);
}

TEST(BulyanGar, CleanInputsStayNearMean) {
  gt::Rng rng(4);
  auto in = honest_cloud(7, 8, rng, -3.0F, 0.02F);
  gg::GarPtr gar = gg::make_gar("bulyan", 7, 1);
  EXPECT_LT(distance_to_center(gar->aggregate(in), -3.0F), 0.3);
}

// --------------------------------------------------------- median3 (§4.3)

TEST(Median3, ExhaustiveOverPermutations) {
  const float vals[3] = {-2.5F, 0.0F, 7.25F};
  int perm[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                    {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (auto& p : perm) {
    auto sorted =
        gg::sort3_branchless(vals[p[0]], vals[p[1]], vals[p[2]]);
    EXPECT_FLOAT_EQ(sorted[0], -2.5F);
    EXPECT_FLOAT_EQ(sorted[1], 0.0F);
    EXPECT_FLOAT_EQ(sorted[2], 7.25F);
    EXPECT_FLOAT_EQ(
        gg::median3_branchless(vals[p[0]], vals[p[1]], vals[p[2]]), 0.0F);
  }
}

TEST(Median3, HandlesTies) {
  EXPECT_FLOAT_EQ(gg::median3_branchless(1.0F, 1.0F, 5.0F), 1.0F);
  EXPECT_FLOAT_EQ(gg::median3_branchless(5.0F, 1.0F, 1.0F), 1.0F);
  EXPECT_FLOAT_EQ(gg::median3_branchless(2.0F, 2.0F, 2.0F), 2.0F);
}

TEST(Median3, RandomAgreesWithSort) {
  gt::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    float a = rng.normal(), b = rng.normal(), c = rng.normal();
    std::array<float, 3> v{a, b, c};
    std::sort(v.begin(), v.end());
    EXPECT_EQ(gg::median3_branchless(a, b, c), v[1]);
  }
}

// -------------------------------------------------- property: robustness

struct RobustCase {
  std::string gar;
  std::size_t n;
  std::size_t f;
};

class GarRobustness : public ::testing::TestWithParam<RobustCase> {};

/// With f adversarial vectors at +/-10^4 and honest vectors near `center`,
/// every Byzantine-resilient GAR must output something near `center`.
TEST_P(GarRobustness, BoundedDeviationUnderOutliers) {
  const RobustCase& c = GetParam();
  gt::Rng rng(7);
  const std::size_t d = 24;
  auto in = honest_cloud(c.n, d, rng, 1.0F, 0.1F);
  for (std::size_t k = 0; k < c.f; ++k) {
    const float sign = (k % 2 == 0) ? 1.0F : -1.0F;
    in[c.n - 1 - k].assign(d, sign * 1e4F);
  }
  gg::GarPtr gar = gg::make_gar(c.gar, c.n, c.f);
  FlatVector out = gar->aggregate(in);
  EXPECT_LT(distance_to_center(out, 1.0F), 1.0)
      << c.gar << " n=" << c.n << " f=" << c.f;
}

/// GARs must be invariant to the order in which replies arrive (the paper's
/// collect keeps the *fastest* q — arrival order is adversarial).
TEST_P(GarRobustness, PermutationInvariant) {
  const RobustCase& c = GetParam();
  gt::Rng rng(8);
  const std::size_t d = 12;
  auto in = honest_cloud(c.n, d, rng, 0.0F, 1.0F);
  gg::GarPtr gar = gg::make_gar(c.gar, c.n, c.f);
  FlatVector base = gar->aggregate(in);
  std::reverse(in.begin(), in.end());
  FlatVector reversed = gar->aggregate(in);
  for (std::size_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(base[j], reversed[j]);
}

/// Aggregating n identical vectors must return that vector (idempotence).
TEST_P(GarRobustness, IdempotentOnIdenticalInputs) {
  const RobustCase& c = GetParam();
  const std::size_t d = 9;
  FlatVector v(d);
  for (std::size_t j = 0; j < d; ++j) v[j] = float(j) - 4.0F;
  std::vector<FlatVector> in(c.n, v);
  gg::GarPtr gar = gg::make_gar(c.gar, c.n, c.f);
  FlatVector out = gar->aggregate(in);
  for (std::size_t j = 0; j < d; ++j) EXPECT_NEAR(out[j], v[j], 1e-5F);
}

INSTANTIATE_TEST_SUITE_P(
    AllGars, GarRobustness,
    ::testing::Values(RobustCase{"median", 5, 2}, RobustCase{"median", 9, 3},
                      RobustCase{"trimmed_mean", 7, 2},
                      RobustCase{"krum", 7, 2}, RobustCase{"krum", 9, 3},
                      RobustCase{"multi_krum", 7, 2},
                      RobustCase{"multi_krum", 11, 4},
                      RobustCase{"mda", 7, 2}, RobustCase{"mda", 9, 3},
                      RobustCase{"bulyan", 7, 1}, RobustCase{"bulyan", 11, 2}),
    [](const ::testing::TestParamInfo<RobustCase>& info) {
      return info.param.gar + "_n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.f);
    });

// --------------------------------------- property: dimension scalability

class GarDimensions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GarDimensions, AllGarsHandleDimension) {
  const std::size_t d = GetParam();
  gt::Rng rng(9);
  const std::size_t n = 7, f = 1;
  auto in = honest_cloud(n, d, rng, 0.5F, 0.1F);
  for (const std::string& name : gg::gar_names()) {
    gg::GarPtr gar = gg::make_gar(name, n, name == "average" ? 0 : f);
    FlatVector out = gar->aggregate(in);
    ASSERT_EQ(out.size(), d) << name;
    EXPECT_TRUE(gt::all_finite(out)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GarDimensions,
                         ::testing::Values(1, 2, 63, 64, 65, 1000, 100000));
