// measure_variance — C++ port of the paper's §3.1 helper script.
//
// Takes the experimental setup (n, f, batch size, model) and reports, for
// each GAR with a known variance bound (MDA, Krum, Median), how often the
// resilience condition
//     kappa * Delta * sqrt(E||g - Eg||^2) <= ||grad L(theta)||
// held along a short training trajectory. A satisfaction ratio near 1
// means the GAR's guarantees apply to your setup; near 0 means the noise
// is too large (increase the batch size or pick MDA).
//
// Usage: ./examples/measure_variance [n] [f] [batch_size] [model]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/dataset.h"
#include "gars/variance.h"
#include "nn/zoo.h"

int main(int argc, char** argv) {
  using namespace garfield;

  gars::VarianceSetup setup;
  setup.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  setup.f = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  setup.batch_size = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;
  const std::string model_name = argc > 4 ? argv[4] : "tiny_mlp";
  setup.steps = 25;
  setup.huge_batch = 4096;

  tensor::Rng rng(1);
  nn::ModelPtr model = nn::make_model(model_name, rng);
  data::Dataset train = data::make_cluster_dataset(
      model->input_shape(), model->num_classes(), 8192, rng, 1.0F);

  std::printf("measure_variance: n=%zu f=%zu b=%zu model=%s (d=%zu), %zu steps\n\n",
              setup.n, setup.f, setup.batch_size, model_name.c_str(),
              model->dimension(), setup.steps);

  const gars::VarianceReport report =
      gars::measure_variance(*model, train, setup);

  std::printf("%-10s %-10s %-14s %-12s %-12s\n", "GAR", "Delta",
              "satisfied", "mean ratio", "min ratio");
  for (const auto& stat : report.stats) {
    std::printf("%-10s %-10.3f %5.1f%%        %-12.3f %-12.3f\n",
                stat.gar.c_str(), stat.delta,
                100.0 * stat.fraction_satisfied, stat.mean_ratio,
                stat.min_ratio);
  }
  std::printf("\nratio = ||grad L|| / (Delta * sigma); the condition needs "
              "ratio > 1 (kappa > 1).\n");
  return 0;
}
