// Byzantine attacks (§3.2 "Main objects": ByzantineServer/ByzantineWorker
// "implement the popular attacks published in the Byzantine ML literature").
//
// An Attack turns the payload a correct node *would* send into the payload
// the adversary actually sends. Omniscient attacks (little-is-enough, fall
// of empires) additionally see the honest gradients of the other nodes —
// the strongest adversary model used in the papers they come from.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/vecops.h"

namespace garfield::attacks {

using tensor::FlatVector;
using tensor::Rng;

/// Interface of a Byzantine payload rewriter.
class Attack {
 public:
  virtual ~Attack() = default;

  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;
  Attack() = default;

  /// Produce the Byzantine vector. `honest` is what this node would have
  /// sent; `others` are honest vectors from correct nodes (empty for
  /// non-omniscient attacks). Returns std::nullopt to send nothing at all
  /// (the "dropped vector" attack — a silent node).
  [[nodiscard]] virtual std::optional<FlatVector> craft(
      const FlatVector& honest, std::span<const FlatVector> others,
      Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

/// Names accepted by make_attack: "random", "reversed", "dropped",
/// "sign_flip", "zero", "little_is_enough", "fall_of_empires",
/// "nan_poison".
[[nodiscard]] std::vector<std::string> attack_names();

/// Factory. Throws std::invalid_argument for unknown names.
[[nodiscard]] AttackPtr make_attack(const std::string& name);

/// Replace the vector by i.i.d. N(0, scale) noise (Fig 5a).
class RandomAttack final : public Attack {
 public:
  explicit RandomAttack(float scale = 10.0F) : scale_(scale) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  float scale_;
};

/// Reverse and amplify: multiply by -factor (paper uses -100, Fig 5b).
class ReversedAttack final : public Attack {
 public:
  explicit ReversedAttack(float factor = 100.0F) : factor_(factor) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "reversed"; }

 private:
  float factor_;
};

/// Send nothing — models a mute/crashed Byzantine node.
class DroppedAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "dropped"; }
};

/// Plain sign flip (multiply by -1), the mildest directional attack.
class SignFlipAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "sign_flip"; }
};

/// All-zeros vector: stalls learning without looking like an outlier.
class ZeroAttack final : public Attack {
 public:
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "zero"; }
};

/// "A little is enough" [Baruch et al.]: mean(others) - z * stddev(others),
/// coordinate-wise, with z small enough to hide inside the honest variance.
class LittleIsEnoughAttack final : public Attack {
 public:
  explicit LittleIsEnoughAttack(float z = 1.5F) : z_(z) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override {
    return "little_is_enough";
  }

 private:
  float z_;
};

/// Poison a fraction of coordinates with NaN/Inf. A single NaN survives
/// averaging and corrupts the whole model; robust systems must reject such
/// payloads at ingress (garfield's servers do) — coordinate-wise GARs like
/// Median would otherwise still let NaN coordinates through.
class NanPoisonAttack final : public Attack {
 public:
  explicit NanPoisonAttack(double fraction = 0.01) : fraction_(fraction) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "nan_poison"; }

 private:
  double fraction_;
};

/// "Fall of empires" [Xie et al.]: send -epsilon * mean(others), the inner
/// product manipulation attack.
class FallOfEmpiresAttack final : public Attack {
 public:
  explicit FallOfEmpiresAttack(float epsilon = 1.1F) : epsilon_(epsilon) {}
  std::optional<FlatVector> craft(const FlatVector& honest,
                                  std::span<const FlatVector> others,
                                  Rng& rng) const override;
  [[nodiscard]] std::string name() const override {
    return "fall_of_empires";
  }

 private:
  float epsilon_;
};

}  // namespace garfield::attacks
