// Multi-process TCP backend for the Transport seam.
//
// Each node of the deployment runs as its own OS process (the paper's
// actual topology, §4: one Garfield process per machine); this transport
// is one process's endpoint. Frames are length-prefixed (net/wire
// FrameDecoder) over localhost TCP streams, payloads travel as net/wire
// blobs (magic + CRC), and the full mesh is built at start():
//
//  - the parent orchestrator (core/node_runner.h) binds one listening
//    socket per rank *before* forking, so ports are race-free and every
//    connect() lands on an established backlog;
//  - rank r connects to every lower rank and accepts from every higher
//    rank, identifying itself with a hello frame — connects first, then
//    accepts, so the mesh construction cannot deadlock;
//  - requests carry a call id, the window-iteration tag and the caller's
//    remaining timeout budget; the callee's Cluster runs the identical
//    lifecycle-gate -> handler -> not-ready-redelivery chain it runs in
//    process, and every request is answered by exactly one reply frame
//    (a silent callee sends an empty reply, so callers never hang on a
//    crashed node);
//  - NetworkConditions delays are applied sender-side, before the frame is
//    written, by the same timer-wheel path the in-process backend uses —
//    `wan:`/`hetero:`/`churn:` specs drive both backends identically;
//  - a corrupted frame body fails the stream prefix CRC and is discarded
//    by the receiver's FrameDecoder — one lost message the sender's fault
//    retry layer recovers, never a dead stream;
//  - peer death (EOF, reset, unrecoverable stream desync) resolves that
//    peer's pending calls with nullptr: fail-silence, the same shape a
//    crashed node has — but no longer silent to the operator: the death
//    is counted (NetStats::peer_deaths) and announced on stderr naming
//    the local and dead ranks.
//
// Beyond the Transport contract the backend exposes two process-level
// barriers the orchestrator drives: a ready barrier (no request may arrive
// before every process has registered its handlers) and a done/quiescence
// barrier (no process may tear down while a peer still pulls step-tagged
// state from it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/thread_pool.h"
#include "net/timer_wheel.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    /// This process's node id; also its index into `ports`.
    std::size_t rank = 0;
    /// Total nodes in the deployment (== Cluster::Options::nodes).
    std::size_t nodes = 1;
    /// Inherited listening socket for this rank, already bound to
    /// 127.0.0.1 and listening (the orchestrator binds pre-fork). The
    /// transport takes ownership and closes it once the mesh is up.
    int listen_fd = -1;
    /// Localhost port of every rank's listener, indexed by rank.
    std::vector<std::uint16_t> ports;
    /// Handler-compute pool size; 0 => hardware concurrency.
    std::size_t pool_threads = 0;
  };

  explicit TcpTransport(const Options& options);
  ~TcpTransport() override;

  /// Builds the full mesh (connect to lower ranks, accept higher ranks)
  /// and starts one reader thread per peer. Blocks until every link is up;
  /// throws std::runtime_error if a sibling process never shows.
  void start(DeliverFn deliver) override;

  [[nodiscard]] bool send(Request request, Duration delay,
                          Clock::time_point deadline,
                          Respond on_reply) override;
  [[nodiscard]] bool run_after(Duration delay,
                               std::function<void()>&& task) override;
  [[nodiscard]] bool remote() const override { return true; }
  void shutdown() override;

  // Process-level barriers, driven by the orchestrator (node_runner).

  /// Broadcast "my handlers are registered" to every peer. No request may
  /// be initiated before await_ready() — a pull that raced a peer's
  /// object-graph construction would see a missing handler as a silent
  /// decline and silently change quorum membership.
  void announce_ready();
  /// Wait until every peer announced ready (a dead peer counts, so a
  /// crashed sibling fails the run loudly downstream instead of hanging
  /// the barrier). False on timeout.
  [[nodiscard]] bool await_ready(Duration timeout);

  /// Broadcast "my driving loops have finished". The process keeps serving
  /// incoming requests until await_done() returns, so peers still pulling
  /// step-tagged state for the final iterations are never cut off.
  void announce_done();
  /// Wait until every driver rank (< driver_count, excluding self)
  /// announced done or died. False on timeout.
  [[nodiscard]] bool await_done(std::size_t driver_count, Duration timeout);

 private:
  struct Peer {
    int fd = -1;
    /// Serializes frame writes; a frame interleaved with another's bytes
    /// is stream corruption, not a race the decoder can survive.
    util::Mutex write_mutex;
    /// Cleared by the writer on EPIPE and by the reader on EOF; checked
    /// under write_mutex before every write.
    std::atomic<bool> alive{false};
    std::thread reader;
  };

  /// Loopback fast path for request.to == rank_: byte-accounted and
  /// scheduled exactly like InProcTransport::send.
  [[nodiscard]] bool send_local(Request request, Duration delay,
                                Clock::time_point deadline, Respond on_reply);
  /// Frame and write one remote request; runs after the sender-side delay.
  void write_request(Request request, Clock::time_point deadline,
                     Respond on_reply);
  /// Write a length+CRC-prefixed frame to `peer`; false when the peer is
  /// down. With `corrupt` set the frame ships with a flipped body byte —
  /// the fault plane's wire damage, which the receiver's stream CRC
  /// discards.
  [[nodiscard]] bool write_frame(Peer& peer,
                                 std::span<const std::uint8_t> body,
                                 bool corrupt = false)
      GARFIELD_EXCLUDES(pending_mutex_);
  void broadcast_control(std::uint8_t type);
  void reader_loop(std::size_t peer_rank);
  void handle_frame(std::size_t peer_rank,
                    std::span<const std::uint8_t> body);
  /// Resolve one pending call (no-op if already resolved).
  void resolve_pending(std::uint64_t cid, PayloadPtr payload)
      GARFIELD_EXCLUDES(pending_mutex_);
  /// Peer died: resolve its pending calls with nullptr and unblock both
  /// barriers. Called from the peer's reader thread only.
  void on_peer_down(std::size_t peer_rank);

  Options options_;
  std::size_t rank_;
  std::size_t nodes_;
  DeliverFn deliver_;
  std::vector<std::unique_ptr<Peer>> peers_;  ///< by rank; self is null
  std::atomic<bool> down_{false};

  struct PendingCall {
    Respond respond;
    std::size_t peer = 0;
  };
  util::Mutex pending_mutex_;
  std::unordered_map<std::uint64_t, PendingCall> pending_
      GARFIELD_GUARDED_BY(pending_mutex_);
  std::atomic<std::uint64_t> next_cid_{1};

  util::Mutex control_mutex_;
  util::CondVar control_cv_;
  std::vector<bool> ready_ GARFIELD_GUARDED_BY(control_mutex_);
  std::vector<bool> done_ GARFIELD_GUARDED_BY(control_mutex_);

  // Same delayed-execution machinery as InProcTransport; shutdown() stops
  // the wheel, drains the pool, then closes sockets.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TimerWheel> timer_;
};

}  // namespace garfield::net
