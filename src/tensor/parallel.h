// Minimal data-parallel helper.
//
// The paper parallelizes GAR coordinate work across CPU cores (§4.3: "each
// of the m >= 1 available cores processes a continuous share of n/m
// coordinates"). parallel_for reproduces exactly that partitioning.
#pragma once

#include <cstddef>
#include <functional>

namespace garfield::tensor {

/// Number of worker threads parallel_for will use (hardware_concurrency,
/// at least 1).
[[nodiscard]] std::size_t parallel_threads();

/// Run fn(begin, end) over contiguous shards of [0, n). Runs inline when the
/// range is small (below ~64k elements) to avoid thread overhead.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace garfield::tensor
