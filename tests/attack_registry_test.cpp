// AttackRegistry / spec / plan tests — the attack-side twin of
// registry_test.cpp's GAR drift guard: the exact built-in name set, option
// semantics, unknown-name/-option rejection, plan grammar and shape
// validation, config-time rejection through DeploymentConfig::validate(),
// an end-to-end SSMW round-trip of a typed spec, and runtime registration
// of a custom attack.
//
// Test order matters within this binary: the exact-name-set guard runs
// before the runtime-registration test extends the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/attack.h"
#include "attacks/registry.h"
#include "core/controller.h"
#include "core/trainer.h"
#include "tensor/rng.h"

namespace ga = garfield::attacks;
namespace gc = garfield::core;
namespace gt = garfield::tensor;

using gt::FlatVector;

// ------------------------------------------------------------ drift guard

TEST(AttackRegistry, ExactBuiltinNameSet) {
  // The advertised list and the registry can no longer drift apart (both
  // are the same list); this pins the *content* so a rename or an
  // accidentally dropped registration fails loudly. Runs before any
  // runtime registration in this binary.
  const std::vector<std::string> expected = {
      "random",          "reversed",       "dropped",
      "sign_flip",       "zero",           "little_is_enough",
      "fall_of_empires", "nan_poison",     "alternating",
      "adaptive_z",      "window_striker", "corrupt_recovery"};
  EXPECT_EQ(ga::attack_names(), expected);
}

TEST(AttackRegistry, EveryAdvertisedAttackConstructsAndCrafts) {
  gt::Rng rng(7);
  const FlatVector honest(16, 1.0F);
  const std::vector<FlatVector> view(5, FlatVector(16, 1.0F));
  for (const std::string& name : ga::attack_names()) {
    ga::AttackPtr attack;
    ASSERT_NO_THROW(attack = ga::make_attack(name)) << name;
    ASSERT_NE(attack, nullptr) << name;
    EXPECT_EQ(attack->name(), name);
    ga::AttackContext ctx(rng);
    ctx.n = 6;
    ctx.f = 1;
    if (ga::attack_is_omniscient(name)) ctx.honest = view;
    std::optional<FlatVector> out;
    ASSERT_NO_THROW(out = attack->craft(honest, ctx)) << name;
    if (out) {
      EXPECT_EQ(out->size(), honest.size()) << name;
    }
  }
}

TEST(AttackRegistry, OmniscienceFlagsMatchTheLiterature) {
  for (const char* omniscient :
       {"little_is_enough", "fall_of_empires", "adaptive_z"}) {
    EXPECT_TRUE(ga::attack_is_omniscient(omniscient)) << omniscient;
  }
  for (const char* blind :
       {"random", "reversed", "dropped", "sign_flip", "zero", "nan_poison"}) {
    EXPECT_FALSE(ga::attack_is_omniscient(blind)) << blind;
  }
  // Spec options don't change the flag; unknown names throw.
  EXPECT_TRUE(ga::attack_is_omniscient("little_is_enough:z=2.5"));
  EXPECT_THROW((void)ga::attack_is_omniscient("nuke"), std::invalid_argument);
}

// --------------------------------------------------------- option semantics

TEST(AttackRegistry, UnknownAttackAndUnknownOptionAreRejected) {
  EXPECT_THROW((void)ga::make_attack("nuke"), std::invalid_argument);
  // A typo'd option must fail loudly, not be silently ignored.
  EXPECT_THROW((void)ga::make_attack("little_is_enough:zz=2.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("sign_flip:scale=2"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("random:scale=ten"),
               std::invalid_argument);
}

TEST(AttackRegistry, OptionRangesAreValidated) {
  EXPECT_NO_THROW((void)ga::make_attack("random:scale=100"));
  EXPECT_THROW((void)ga::make_attack("random:scale=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("reversed:factor=-2"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)ga::make_attack("nan_poison:fraction=0.1"));
  EXPECT_THROW((void)ga::make_attack("nan_poison:fraction=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("nan_poison:fraction=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("little_is_enough:z=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("alternating:period=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("alternating:first=nuke"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("adaptive_z:z_max=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::make_attack("adaptive_z:steps=0"),
               std::invalid_argument);
  // adaptive_z's probe is a GAR spec: unknown rules or options in it must
  // surface at construction, i.e. at validate() time.
  EXPECT_NO_THROW((void)ga::make_attack("adaptive_z:probe=median"));
  EXPECT_THROW((void)ga::make_attack("adaptive_z:probe=resilient_mean_9000"),
               std::invalid_argument);
}

TEST(AttackRegistry, OptionsChangeBehavior) {
  gt::Rng rng(21);
  const FlatVector honest{2.0F, -3.0F};
  ga::AttackContext ctx(rng);
  auto weak = ga::make_attack("reversed:factor=2")->craft(honest, ctx);
  ASSERT_TRUE(weak.has_value());
  EXPECT_FLOAT_EQ((*weak)[0], -4.0F);
  auto strong = ga::make_attack("reversed:factor=50")->craft(honest, ctx);
  ASSERT_TRUE(strong.has_value());
  EXPECT_FLOAT_EQ((*strong)[0], -100.0F);
}

// ------------------------------------------------------------ plan grammar

TEST(AttackPlan, ParsesUniformAndShapedPlans) {
  const ga::AttackPlan uniform = ga::parse_attack_plan("reversed");
  EXPECT_TRUE(uniform.uniform());
  EXPECT_EQ(uniform.expand(3).size(), 3u);
  EXPECT_EQ(uniform.expand(3)[2].name, "reversed");
  // Uniform plans stretch to any cohort, including none.
  EXPECT_TRUE(uniform.expand(0).empty());

  const ga::AttackPlan mixed =
      ga::parse_attack_plan("little_is_enough:z=1.5;2*sign_flip");
  EXPECT_FALSE(mixed.uniform());
  EXPECT_EQ(mixed.declared_attackers(), 3u);
  const std::vector<ga::AttackSpec> specs = mixed.expand(3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "little_is_enough");
  EXPECT_DOUBLE_EQ(specs[0].options.get_double("z", 0.0), 1.5);
  EXPECT_EQ(specs[1].name, "sign_flip");
  EXPECT_EQ(specs[2].name, "sign_flip");

  EXPECT_TRUE(ga::parse_attack_plan("").empty());
}

TEST(AttackPlan, RejectsGrammarAndShapeViolations) {
  EXPECT_THROW((void)ga::parse_attack_plan(";"), std::invalid_argument);
  EXPECT_THROW((void)ga::parse_attack_plan("reversed;"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::parse_attack_plan("0*reversed"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::parse_attack_plan("x*reversed"),
               std::invalid_argument);
  EXPECT_THROW((void)ga::parse_attack_plan("*reversed"),
               std::invalid_argument);
  // Shape mismatches surface at expand time with both numbers named.
  const ga::AttackPlan mixed = ga::parse_attack_plan("2*zero;sign_flip");
  EXPECT_EQ(mixed.expand(3).size(), 3u);
  EXPECT_THROW((void)mixed.expand(2), std::invalid_argument);
  EXPECT_THROW((void)mixed.expand(4), std::invalid_argument);
  // A count makes even a single entry shaped.
  const ga::AttackPlan counted = ga::parse_attack_plan("2*zero");
  EXPECT_FALSE(counted.uniform());
  EXPECT_THROW((void)counted.expand(3), std::invalid_argument);
}

// ----------------------------------------------------- config-time checks

TEST(ConfigValidation, RejectsBadAttackSpecsUpFront) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.worker_attack = "nuke";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.worker_attack = "little_is_enough:zz=1";  // typo'd option
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.worker_attack = "little_is_enough:z=2.5";
  EXPECT_NO_THROW(cfg.validate());
  // Plan shape vs fw: a shaped plan must cover exactly fw attackers.
  cfg.worker_attack = "zero;sign_flip";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fw = 2;
  cfg.nw = 7;
  EXPECT_NO_THROW(cfg.validate());
  // Same for the server cohort.
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.nw = 9;  // multi_krum needs qw = nw - fw >= 2fw + 3
  cfg.nps = 4;
  cfg.fps = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.worker_attack = "reversed";
  cfg.server_attack = "2*reversed";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.server_attack = "reversed";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidation, ErrorMessagesNameTheCohort) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.worker_attack = "nuke";
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker_attack"), std::string::npos) << what;
    EXPECT_NE(what.find("nuke"), std::string::npos) << what;
  }
}

// ------------------------------------------------------ end-to-end round trip

TEST(AttackSpecRoundTrip, TypedSpecSurvivesConfigTrainerAndSsmwRun) {
  // The ISSUE's acceptance bar: a typed attack spec flows config-file text
  // -> DeploymentConfig -> validate() -> trainer -> a full SSMW run.
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.worker_attack = "little_is_enough:z=2.5";
  cfg.batch_size = 8;
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.iterations = 4;
  cfg.eval_every = 2;
  cfg.seed = 5;

  // Config text round trip preserves the spec verbatim.
  const gc::DeploymentConfig back =
      gc::parse_config(gc::format_config(cfg));
  EXPECT_EQ(back.worker_attack, "little_is_enough:z=2.5");

  const gc::TrainResult result = gc::train(back);
  EXPECT_EQ(result.iterations_run, cfg.iterations);
  EXPECT_FALSE(result.curve.empty());
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(AttackSpecRoundTrip, MixedPlanDrivesAnMsmwRun) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kMsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 9;  // qw = nw - fw must clear multi_krum's 2fw + 3 floor
  cfg.fw = 2;
  cfg.nps = 3;
  cfg.fps = 0;
  cfg.gradient_gar = "multi_krum";
  cfg.model_gar = "median";
  cfg.worker_attack = "little_is_enough:z=1.5;sign_flip";
  cfg.batch_size = 8;
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.iterations = 3;
  cfg.eval_every = 0;
  cfg.seed = 6;
  ASSERT_NO_THROW(cfg.validate());
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_EQ(result.iterations_run, cfg.iterations);
}

TEST(AttackSpecRoundTrip, DecentralizedServerOnlyPlanIsActuallyMounted) {
  // Regression: the decentralized builder used to gate *both* halves of a
  // Byzantine peer on the worker plan, so a server-only plan passed
  // validate() but mounted nothing. nan_poison makes the mount observable:
  // poisoned model replies are dropped at ingress and counted.
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kDecentralized;
  cfg.model = "tiny_mlp";
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.model_gar = "median";
  cfg.server_attack = "nan_poison:fraction=0.5";  // worker_attack stays ""
  cfg.batch_size = 8;
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.iterations = 10;
  cfg.eval_every = 0;
  cfg.seed = 9;
  // Zero-latency pulls answer in submission order, which always ranks the
  // (last-built) Byzantine peer behind the fastest-q cut; jitter mixes the
  // arrival order so its poisoned model replies actually reach ingress.
  // The jitter must dominate the transport's not-ready retry backoff
  // (<= 2ms per redelivery): step-tagged model pulls resolve at
  // publication time + backoff, and with small jitter that quantization
  // would park the last-scheduled peer behind the cut every iteration.
  cfg.network = "wan:jitter=8ms";
  ASSERT_NO_THROW(cfg.validate());
  const gc::TrainResult result = gc::train(cfg);
  EXPECT_GT(result.rejected_payloads, 0u)
      << "server-only attack plan was never mounted";
}

TEST(AttackRegistry, AdaptiveZProbesTheDeploymentsActualGar) {
  // Default probe is "deployment": the adversary tunes itself against the
  // GAR the deployment's config actually declares for its cohort
  // (AttackContext::gar, wired from gradient_gar/model_gar by the trainer)
  // instead of a separately configured guess.
  gt::Rng rng(11);
  const ga::AttackPtr attack = ga::make_attack("adaptive_z");
  auto* adaptive = dynamic_cast<ga::AdaptiveZAttack*>(attack.get());
  ASSERT_NE(adaptive, nullptr);
  gt::Rng cloud_rng(5);
  std::vector<FlatVector> view(8, FlatVector(16));
  for (FlatVector& v : view) {
    for (float& x : v) x = 1.0F + cloud_rng.normal(0.0F, 0.2F);
  }
  const FlatVector honest = view.front();
  ga::AttackContext ctx(rng);
  ctx.n = 9;
  ctx.f = 1;
  ctx.honest = view;
  ctx.gar = "median";
  ASSERT_TRUE(attack->craft(honest, ctx).has_value());
  EXPECT_EQ(adaptive->last_probe(), "median");
  // A different deployment GAR retargets the probe on the next craft...
  ctx.gar = "multi_krum";
  ASSERT_TRUE(attack->craft(honest, ctx).has_value());
  EXPECT_EQ(adaptive->last_probe(), "multi_krum");
  // ...a config-less context falls back to the classic krum probe...
  ctx.gar.clear();
  ASSERT_TRUE(attack->craft(honest, ctx).has_value());
  EXPECT_EQ(adaptive->last_probe(), "krum");
  // ...and an explicitly pinned probe ignores the deployment's GAR.
  const ga::AttackPtr pinned = ga::make_attack("adaptive_z:probe=median");
  auto* pinned_z = dynamic_cast<ga::AdaptiveZAttack*>(pinned.get());
  ASSERT_NE(pinned_z, nullptr);
  ctx.gar = "multi_krum";
  ASSERT_TRUE(pinned->craft(honest, ctx).has_value());
  EXPECT_EQ(pinned_z->last_probe(), "median");
}

// --------------------------------------------------------------- extension

TEST(AttackRegistry, RuntimeRegistrationExtendsTheStringApi) {
  // An attack registered at runtime is immediately reachable through
  // attack_names / make_attack / attack plans — the registry is the single
  // source of truth. Registered once per process; idempotent across gtest
  // repeats via the duplicate check.
  const std::string name = "registry_test_echo";
  if (ga::AttackRegistry::instance().find(name) == nullptr) {
    ga::AttackRegistry::instance().add(
        {.name = name, .omniscient = false, .factory = [](
             const ga::AttackOptions& options) -> ga::AttackPtr {
           class Echo final : public ga::Attack {
            public:
             explicit Echo(float gain) : gain_(gain) {}
             std::optional<FlatVector> craft(const FlatVector& honest,
                                             ga::AttackContext&) override {
               FlatVector out = honest;
               for (float& x : out) x *= gain_;
               return out;
             }
             [[nodiscard]] std::string name() const override {
               return "registry_test_echo";
             }

            private:
             float gain_;
           };
           return std::make_unique<Echo>(
               float(options.get_double("gain", 1.0)));
         }});
  }
  const auto names = ga::attack_names();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  gt::Rng rng(3);
  ga::AttackContext ctx(rng);
  const FlatVector honest{2.0F};
  auto out = ga::make_attack(name + ":gain=3")->craft(honest, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_FLOAT_EQ((*out)[0], 6.0F);
  // And it participates in plans like any built-in.
  const auto specs =
      ga::parse_attack_plan("2*" + name + ";sign_flip").expand(3);
  EXPECT_EQ(specs[0].name, name);

  // Duplicate registration is a hard error.
  EXPECT_THROW(ga::AttackRegistry::instance().add(
                   {.name = name,
                    .omniscient = false,
                    .factory = [](const ga::AttackOptions&) -> ga::AttackPtr {
                      return nullptr;
                    }}),
               std::invalid_argument);
}
