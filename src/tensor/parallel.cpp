#include "tensor/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace garfield::tensor {

namespace {
constexpr std::size_t kInlineThreshold = 1 << 16;
}

std::size_t parallel_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = parallel_threads();
  if (n < kInlineThreshold || workers == 1) {
    fn(0, n);
    return;
  }
  const std::size_t shards = std::min(workers, n);
  const std::size_t chunk = (n + shards - 1) / shards;
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace garfield::tensor
