// Synthetic datasets.
//
// Substitution for MNIST / CIFAR-10 (unavailable offline): procedurally
// generated classification problems with controllable difficulty. Two
// generators are provided:
//  - ClusterDataset: class prototypes + Gaussian noise ("easy MNIST-like").
//  - TeacherDataset: labels produced by a random frozen teacher network
//    ("hard CIFAR-like", non-linear decision boundaries).
// Both are deterministic in the seed, and shardable across workers in iid
// and non-iid fashion (the non-iid case drives the decentralized
// contraction experiments of §5.3).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace garfield::data {

using tensor::Rng;
using tensor::Tensor;

/// One mini-batch: inputs {b, ...} plus integer labels.
struct Batch {
  Tensor inputs;
  std::vector<std::size_t> labels;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

/// A materialized labelled dataset.
class Dataset {
 public:
  Dataset() = default;
  /// inputs: {n, ...sample_shape}; labels: n entries in [0, num_classes).
  Dataset(Tensor inputs, std::vector<std::size_t> labels,
          std::size_t num_classes);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const tensor::Shape& sample_shape() const {
    return sample_shape_;
  }

  /// Gather the given sample indices into a batch.
  [[nodiscard]] Batch gather(std::span<const std::size_t> indices) const;

  /// The whole dataset as one batch (test-set evaluation).
  [[nodiscard]] Batch all() const;

  /// Subset by indices; used by the sharders.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Split into a {train, test} pair: the first n_train samples and the
  /// rest. Use this (not two generator calls) to get train and test data
  /// from the *same* underlying distribution — each generator call draws
  /// fresh class prototypes / a fresh teacher.
  [[nodiscard]] std::pair<Dataset, Dataset> split(std::size_t n_train) const;

  [[nodiscard]] const std::vector<std::size_t>& labels() const {
    return labels_;
  }

 private:
  Tensor inputs_;                    // {n, ...}
  std::vector<std::size_t> labels_;  // n
  std::size_t num_classes_ = 0;
  tensor::Shape sample_shape_;
  std::size_t sample_numel_ = 0;
};

/// Gaussian clusters around per-class prototypes.
/// noise controls difficulty: ~0.5 trivial, ~1.5 hard.
[[nodiscard]] Dataset make_cluster_dataset(const tensor::Shape& sample_shape,
                                           std::size_t num_classes,
                                           std::size_t n, Rng& rng,
                                           float noise);

/// Labels from a random 2-layer teacher network over N(0,1) inputs.
[[nodiscard]] Dataset make_teacher_dataset(const tensor::Shape& sample_shape,
                                           std::size_t num_classes,
                                           std::size_t n, Rng& rng);

/// Split into `parts` near-equal shards after a seeded shuffle (iid).
[[nodiscard]] std::vector<Dataset> shard_iid(const Dataset& dataset,
                                             std::size_t parts, Rng& rng);

/// Sort by label, then split contiguously: each shard sees only a few
/// classes (strongly non-iid).
[[nodiscard]] std::vector<Dataset> shard_by_class(const Dataset& dataset,
                                                  std::size_t parts);

/// Draws reshuffled mini-batches, epoch after epoch, deterministically.
class BatchSampler {
 public:
  BatchSampler(const Dataset& dataset, std::size_t batch_size, Rng rng);

  /// Next mini-batch; reshuffles when the epoch is exhausted. The final
  /// short batch of an epoch is emitted as-is.
  [[nodiscard]] Batch next();

  /// The mini-batch for training iteration `iteration`, as a pure function
  /// of (construction seed, iteration): epoch e = iteration / batches
  /// -per-epoch is shuffled with an rng forked on e, and the iteration
  /// indexes a slot of that epoch. Unlike next(), the result does not
  /// depend on how many draws happened before — the property the worker's
  /// per-iteration gradient cache needs so concurrent server pulls cannot
  /// perturb the batch sequence. Independent of (and not interleaved with)
  /// the next() stream.
  [[nodiscard]] Batch batch_for(std::uint64_t iteration);

  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }
  [[nodiscard]] std::size_t epoch() const { return epoch_; }

 private:
  void reshuffle();

  const Dataset* dataset_;
  std::size_t batch_size_;
  Rng rng_;
  Rng keyed_root_;  // pristine fork source for batch_for's epoch shuffles
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::size_t epoch_ = 0;
  // batch_for's own epoch permutation cache (separate from the next()
  // stream so the two entry points cannot perturb each other).
  std::vector<std::size_t> keyed_order_;
  std::uint64_t keyed_epoch_ = std::uint64_t(-1);
};

}  // namespace garfield::data
