// Event-driven delay scheduling for the simulated cluster.
//
// The old transport modeled link latency by sleeping on a pool thread,
// which forced the pool to be over-provisioned (2 threads per node) and
// made "simulated latency" and "real contention" indistinguishable in the
// throughput benches. The TimerWheel separates the two concerns: one timer
// thread holds a due-time priority queue and, when an entry matures,
// hands its task to the ThreadPool — so pool threads only ever run handler
// compute and the pool can default to hardware concurrency.
//
// Entries with identical due times fire in schedule order (a per-entry
// sequence number breaks ties), keeping delivery deterministic for
// zero-jitter configurations.
//
// Locking discipline (compile-checked under the clang-analyze preset):
// `mutex_` guards the heap, the sequence counter and the stop flag; the
// timer thread drops it before submitting a matured task to the pool.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "net/thread_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::net {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// The wheel submits matured tasks to `pool`, which must outlive the
  /// wheel's *running* phase (until stop_and_flush() returns).
  explicit TimerWheel(ThreadPool& pool);

  /// Calls stop_and_flush() if it has not run yet.
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Stop the timer thread, then run every pending entry INLINE on the
  /// calling thread, in due order — no scheduled dispatch is silently lost
  /// at teardown, and the pool is not touched (so the owner may tear the
  /// pool down before or after this call). After it returns,
  /// schedule_after() refuses new entries, which lets flushed tasks that
  /// try to re-arm (not-ready retries) observe the shutdown and resolve
  /// instead of looping. Idempotent.
  void stop_and_flush() GARFIELD_EXCLUDES(mutex_);

  /// Fire `task` on the pool once `delay` has elapsed. Returns false (task
  /// left untouched) once shutdown has begun.
  [[nodiscard]] bool schedule_after(Clock::duration delay,
                                    std::function<void()>&& task)
      GARFIELD_EXCLUDES(mutex_);

  /// Entries currently waiting to mature (diagnostics).
  [[nodiscard]] std::size_t pending() const GARFIELD_EXCLUDES(mutex_);

 private:
  struct Entry {
    Clock::time_point due;
    std::uint64_t seq = 0;  // schedule order; breaks equal-due ties
    std::function<void()> task;
  };
  /// Heap comparator: std::push_heap/pop_heap build a max-heap, so
  /// "greater due (or seq)" sorts toward the bottom — the top is the
  /// earliest entry.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  /// Pop the earliest entry. Caller holds the lock; heap must be
  /// non-empty.
  [[nodiscard]] Entry pop_locked() GARFIELD_REQUIRES(mutex_);

  void run() GARFIELD_EXCLUDES(mutex_);

  ThreadPool& pool_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  /// std::push_heap/pop_heap with Later.
  std::vector<Entry> heap_ GARFIELD_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GARFIELD_GUARDED_BY(mutex_) = 0;
  bool stop_ GARFIELD_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace garfield::net
