// Ablation — gradient-quorum size (synchrony spectrum).
//
// The paper's get_gradients(t, q) spans synchronous (q = nw) to
// asynchronous (q = nw - fw) collection. This sweep measures, with live
// training plus the cost model, what q buys and costs:
//  - accuracy: larger quorums average more honest gradients (less noise);
//  - latency: larger quorums wait deeper into the straggler tail.
#include <cstdio>

#include "bench_support.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

int main() {
  using namespace garfield::core;
  namespace gs = garfield::sim;

  const std::size_t nw = 12, fw = 3;
  std::printf("Ablation — quorum sweep, SSMW with median, nw=%zu fw=%zu\n\n",
              nw, fw);
  std::printf("%-6s %-16s %-22s %-22s\n", "q", "final accuracy",
              "messages (live run)", "iteration latency (sim)");

  for (std::size_t q = nw - fw; q <= nw; ++q) {
    DeploymentConfig cfg;
    cfg.deployment = Deployment::kSsmw;
    cfg.model = "tiny_mlp";
    cfg.nw = nw;
    // Declared-Byzantine count implied by the quorum: q = nw - fw.
    cfg.fw = nw - q;
    cfg.asynchronous = true;
    cfg.gradient_gar = "median";
    cfg.batch_size = 16;
    cfg.train_size = 1536;
    cfg.test_size = 384;
    cfg.optimizer.lr.gamma0 = 0.1F;
    cfg.iterations = 150;
    cfg.eval_every = 0;
    cfg.seed = 17;
    const TrainResult result = train(garfield::bench::smoke(cfg));

    gs::SimSetup sim;
    sim.deployment = gs::SimDeployment::kSsmw;
    sim.d = gs::model_spec("ResNet-50").parameters;
    sim.nw = nw;
    sim.fw = nw - q;
    sim.asynchronous = true;
    sim.device = gs::cpu_profile();
    sim.gradient_gar = "median";
    const double latency = gs::simulate_iteration(sim).total();

    std::printf("%-6zu %-16.3f %-22llu %-22.2f\n", q, result.final_accuracy,
                static_cast<unsigned long long>(
                    result.net_stats.requests_sent),
                latency);
  }
  std::printf("\nShape: accuracy roughly flat to slightly rising with q "
              "(more honest gradients);\nlatency rising with q (deeper "
              "straggler tail) — the availability/accuracy dial.\n");
  return 0;
}
